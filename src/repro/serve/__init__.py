"""Long-lived serving layer over the lake discovery pipeline.

The one-shot ``lake query`` CLI pays the full cold-start bill on every
invocation: process launch, store open, rerank-pool spawn.  This package
keeps all of that warm in a daemon (``lake serve``) and admits many
concurrent queries over HTTP (TCP or a unix socket, stdlib only):

* :mod:`repro.serve.protocol` — the JSON wire format: request decoding
  with validation, response encoding, and the content-hash cache key the
  batcher coalesces identical concurrent requests on;
* :mod:`repro.serve.admission` — back-pressure primitives: per-request
  :class:`Deadline`, the bounded :class:`AdmissionQueue` (full ⇒ reject
  with 429, never hang), and :func:`run_with_deadline` for the one-shot
  CLI path;
* :mod:`repro.serve.batcher` — the single dispatcher thread that drains
  the admission queue into micro-batches; **all** engine and store access
  happens on this thread (SQLite connections are thread-bound);
* :mod:`repro.serve.server` — :class:`DiscoveryServer`: one warm
  :class:`~repro.lake.engine.LakeDiscoveryEngine` + shared
  :class:`~repro.discovery.search.RerankPool` behind ``/query``,
  ``/stats`` and ``/healthz``, with graceful store reopen when a writer
  cycles the on-disk stores;
* :mod:`repro.serve.client` — :class:`ServeClient`, the thin HTTP client
  the benchmarks (and tests) drive the daemon with.
"""

from repro.serve.admission import (
    AdmissionQueue,
    Deadline,
    DeadlineExpired,
    QueueFull,
    Ticket,
    run_with_deadline,
)
from repro.serve.batcher import MicroBatcher
from repro.serve.health import CircuitBreaker
from repro.serve.client import (
    DeadlineExpiredError,
    QueueFullError,
    ServeClient,
    ServeError,
)
from repro.serve.protocol import (
    ProtocolError,
    QueryRequest,
    decode_query_request,
    encode_query_request,
    request_cache_key,
    response_to_dict,
    table_to_dict,
)
from repro.serve.server import DiscoveryServer, ServeConfig

__all__ = [
    "AdmissionQueue",
    "Deadline",
    "DeadlineExpired",
    "QueueFull",
    "Ticket",
    "run_with_deadline",
    "MicroBatcher",
    "CircuitBreaker",
    "ProtocolError",
    "QueryRequest",
    "decode_query_request",
    "encode_query_request",
    "request_cache_key",
    "response_to_dict",
    "table_to_dict",
    "DiscoveryServer",
    "ServeConfig",
    "ServeClient",
    "ServeError",
    "QueueFullError",
    "DeadlineExpiredError",
]
