"""JSON wire format of the discovery daemon.

One request shape (``POST /query``)::

    {"table": {"name": "orders", "columns": {"id": [1, 2], "ts": [...]}},
     "mode": "joinable", "top_k": 10, "timeout_s": 5.0}

and one response shape::

    {"query": "orders", "mode": "joinable", "coalesced": false,
     "results": [{"table_name": ..., "joinability": ..., "unionability": ...,
                  "best_pair": ["id", "order_id"]}],
     "stats": {"shortlist_size": ..., "rerank_count": ..., ...}}

Decoding is strict (unknown modes, ragged columns and non-object tables are
:class:`ProtocolError`, rendered as HTTP 400) because the daemon sits on a
socket: garbage must bounce at the door, not surface as a 500 from deep in
the engine.  Floats survive the JSON round trip exactly (``repr``-based
serialisation), so a served ranking is bit-identical to the one-shot
``lake query`` ranking over the same stores.
"""

from __future__ import annotations

import hashlib
import json
from dataclasses import dataclass
from typing import Mapping, Optional

from repro.data.table import Table
from repro.lake.profiles import table_content_hash

__all__ = [
    "ProtocolError",
    "QueryRequest",
    "MODES",
    "decode_query_request",
    "encode_query_request",
    "request_cache_key",
    "result_to_dict",
    "response_to_dict",
    "table_to_dict",
]

MODES = ("joinable", "unionable", "combined")


class ProtocolError(ValueError):
    """A malformed request body — the daemon answers 400, not 500."""


@dataclass(frozen=True)
class QueryRequest:
    """One decoded, validated ``/query`` request."""

    table: Table
    mode: str = "joinable"
    top_k: Optional[int] = None
    timeout_s: Optional[float] = None
    #: Anytime rerank budget (milliseconds): the engine stops scoring at the
    #: deadline and flags the response stats ``partial``.
    budget_ms: Optional[float] = None


def table_to_dict(table: Table) -> dict:
    """The wire form of a :class:`Table` (name + column-major values)."""
    return {
        "name": table.name,
        "columns": {column.name: list(column.values) for column in table.columns},
    }


def encode_query_request(
    table: Table,
    mode: str = "joinable",
    top_k: Optional[int] = None,
    timeout_s: Optional[float] = None,
    budget_ms: Optional[float] = None,
) -> bytes:
    """Client-side: serialise one ``/query`` body."""
    payload: dict = {"table": table_to_dict(table), "mode": mode}
    if top_k is not None:
        payload["top_k"] = top_k
    if timeout_s is not None:
        payload["timeout_s"] = timeout_s
    if budget_ms is not None:
        payload["budget_ms"] = budget_ms
    return json.dumps(payload).encode("utf-8")


def decode_query_request(body: bytes) -> QueryRequest:
    """Server-side: parse and validate one ``/query`` body."""
    try:
        payload = json.loads(body.decode("utf-8"))
    except (UnicodeDecodeError, json.JSONDecodeError) as exc:
        raise ProtocolError(f"request body is not valid JSON: {exc}") from exc
    if not isinstance(payload, dict):
        raise ProtocolError("request body must be a JSON object")

    raw_table = payload.get("table")
    if not isinstance(raw_table, dict):
        raise ProtocolError('"table" must be an object with "name" and "columns"')
    name = raw_table.get("name")
    if not isinstance(name, str) or not name:
        raise ProtocolError('"table.name" must be a non-empty string')
    raw_columns = raw_table.get("columns")
    if not isinstance(raw_columns, Mapping) or not raw_columns:
        raise ProtocolError('"table.columns" must be a non-empty object')
    for column_name, values in raw_columns.items():
        if not isinstance(column_name, str):
            raise ProtocolError("column names must be strings")
        if not isinstance(values, list):
            raise ProtocolError(f"column {column_name!r} values must be a JSON array")
    try:
        table = Table(name, {str(k): v for k, v in raw_columns.items()})
    except ValueError as exc:  # ragged columns, duplicate names
        raise ProtocolError(str(exc)) from exc

    mode = payload.get("mode", "joinable")
    if mode not in MODES:
        raise ProtocolError(f'"mode" must be one of {MODES}, got {mode!r}')

    top_k = payload.get("top_k")
    if top_k is not None:
        if not isinstance(top_k, int) or isinstance(top_k, bool) or top_k <= 0:
            raise ProtocolError('"top_k" must be a positive integer')

    timeout_s = payload.get("timeout_s")
    if timeout_s is not None:
        if not isinstance(timeout_s, (int, float)) or isinstance(timeout_s, bool):
            raise ProtocolError('"timeout_s" must be a number')
        timeout_s = float(timeout_s)
        if timeout_s <= 0:
            raise ProtocolError('"timeout_s" must be positive')

    budget_ms = payload.get("budget_ms")
    if budget_ms is not None:
        if not isinstance(budget_ms, (int, float)) or isinstance(budget_ms, bool):
            raise ProtocolError('"budget_ms" must be a number')
        budget_ms = float(budget_ms)
        if budget_ms <= 0:
            raise ProtocolError('"budget_ms" must be positive')

    return QueryRequest(
        table=table,
        mode=mode,
        top_k=top_k,
        timeout_s=timeout_s,
        budget_ms=budget_ms,
    )


def request_cache_key(request: QueryRequest) -> str:
    """The coalescing key: identical concurrent requests score once.

    Keyed on table *content* (the same hash the sketch store uses for cache
    invalidation), not the table name — two clients querying the same data
    under different handles still share one rerank; the same name over
    different data does not.  ``timeout_s`` is deliberately excluded: it
    shapes waiting, not the answer.  ``budget_ms`` is deliberately
    *included*: a budgeted request may return a partial ranking, which must
    never be coalesced with (or served to) a full request.
    """
    digest = hashlib.sha256()
    digest.update(table_content_hash(request.table).encode("utf-8"))
    digest.update(
        f"|{request.mode}|{request.top_k}|{request.budget_ms}".encode("utf-8")
    )
    return digest.hexdigest()


def result_to_dict(result) -> dict:
    """The wire form of one :class:`~repro.discovery.search.DiscoveryResult`."""
    best = result.scores.best_pair
    return {
        "table_name": result.table_name,
        "joinability": result.joinability,
        "unionability": result.unionability,
        "best_pair": list(best) if best else None,
    }


def response_to_dict(request: QueryRequest, outcome, coalesced: bool) -> dict:
    """The full ``/query`` response for one admitted request.

    *outcome* is a :class:`~repro.lake.engine.BatchQueryResult`; its stats
    ride along so a client can see shortlist/rerank behaviour per request
    without scraping ``/stats``.
    """
    stats = outcome.stats
    return {
        "query": request.table.name,
        "mode": request.mode,
        "coalesced": coalesced,
        "results": [result_to_dict(result) for result in outcome.results],
        "stats": {
            "shortlist_size": stats.shortlist_size,
            "rerank_count": stats.rerank_count,
            "store_hits": stats.store_hits,
            "parallel": stats.parallel,
            "total_seconds": stats.total_seconds,
            "shortlist_seconds": stats.shortlist_seconds,
            "rerank_seconds": stats.rerank_seconds,
            "partial": stats.partial,
            "cascade_skipped": stats.cascade_skipped,
            "cascade_exact": stats.cascade_exact,
        },
    }
