"""Serving health: a circuit breaker and the daemon's health states.

The daemon degrades instead of dying.  When the shared rerank pool breaks
repeatedly (workers OOM-killed, a poisoned payload segfaulting them), the
dispatcher stops paying the spawn-retry-break cycle on every batch and
falls back to serial scoring until the breaker lets a trial batch through.

State machine (the classic three states):

* **closed** — normal; failures are counted, ``threshold`` consecutive
  ones open the breaker;
* **open** — the guarded path is off; after ``cooldown_s`` the next
  :meth:`~CircuitBreaker.allow` transitions to half-open;
* **half-open** — exactly one trial is allowed; success closes the
  breaker, failure re-opens it for another cooldown.

The breaker never decides *correctness* — every query is still answered
(serially, degraded); it decides when to risk the fast path again.

``/healthz`` maps the daemon's condition onto three statuses: ``ok``
(session open, breaker closed), ``degraded`` (serving, but the breaker is
open or half-open — answers are correct yet slower), ``starting`` (no
engine session yet).  ``ok`` and ``degraded`` answer HTTP 200 — a load
balancer should keep routing to a degraded node; ``starting`` answers 503.
"""

from __future__ import annotations

import threading
import time
from typing import Callable

__all__ = ["CircuitBreaker"]

CLOSED = "closed"
OPEN = "open"
HALF_OPEN = "half_open"


class CircuitBreaker:
    """Consecutive-failure circuit breaker with a time-based cooldown.

    Thread-safe; *clock* is injectable (tests drive time by hand).
    """

    def __init__(
        self,
        threshold: int = 2,
        cooldown_s: float = 5.0,
        clock: Callable[[], float] = time.monotonic,
    ) -> None:
        if threshold < 1:
            raise ValueError("threshold must be >= 1")
        if cooldown_s < 0:
            raise ValueError("cooldown_s must be >= 0")
        self.threshold = threshold
        self.cooldown_s = cooldown_s
        self._clock = clock
        self._lock = threading.Lock()
        self._state = CLOSED
        self._failures = 0
        self._opened_at = 0.0
        #: Lifetime transition counts (observability).
        self.opened_count = 0

    @property
    def state(self) -> str:
        """``closed`` / ``open`` / ``half_open`` (cooldown-aware)."""
        with self._lock:
            return self._observe()

    def _observe(self) -> str:
        if self._state == OPEN and self._clock() - self._opened_at >= self.cooldown_s:
            self._state = HALF_OPEN
        return self._state

    def allow(self) -> bool:
        """May the guarded path run now?

        ``True`` in closed state and for the single trial of half-open
        (repeated calls during half-open keep returning True until the
        trial's outcome is recorded — the dispatcher records an outcome
        after every allowed batch, so only one trial is in flight).
        """
        with self._lock:
            return self._observe() != OPEN

    def record_success(self) -> None:
        """The guarded path worked: close and forget past failures."""
        with self._lock:
            self._state = CLOSED
            self._failures = 0

    def record_failure(self) -> None:
        """The guarded path failed; maybe open the breaker."""
        with self._lock:
            state = self._observe()
            self._failures += 1
            if state == HALF_OPEN or self._failures >= self.threshold:
                # A failed trial re-opens immediately; in closed state the
                # threshold must fill up first.
                self._state = OPEN
                self._opened_at = self._clock()
                self.opened_count += 1
                self._failures = 0

    def snapshot(self) -> dict:
        """Gauges for ``/stats``."""
        with self._lock:
            return {
                "state": self._observe(),
                "consecutive_failures": self._failures,
                "opened_count": self.opened_count,
                "threshold": self.threshold,
                "cooldown_s": self.cooldown_s,
            }
