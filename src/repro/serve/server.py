"""The discovery daemon: warm engine + shared pool behind three endpoints.

``DiscoveryServer`` assembles the serving stack:

* a **threaded HTTP front end** (``ThreadingHTTPServer`` over TCP, or the
  same handler over a unix socket) whose handler threads only parse,
  admit, and wait — they never touch the engine;
* the **dispatcher** (:class:`~repro.serve.batcher.MicroBatcher`): one
  thread owning the engine session, because the stores' SQLite
  connections are bound to the thread that opens them;
* one **engine session per store generation** — sketch store opened
  read-only, prepared store writable (cold queries warm it for everyone),
  both wrapped by a :class:`~repro.lake.engine.LakeDiscoveryEngine`
  holding the *shared* :class:`~repro.discovery.search.RerankPool`, whose
  spawned workers survive every reopen;
* **graceful reopen**: between batches the dispatcher polls
  :func:`~repro.lake.store.store_generation` (inode + monotone version)
  and, on change, opens the new generation before closing the old one —
  queued requests simply continue onto the fresh session, so a writer
  cycling ``lake build`` under the daemon drops no in-flight queries.

WAL caveat: generation polling detects *committed* writer cycles (version
bumps and file replacement).  A writer appending into the same inode
without bumping the store version is invisible — the repo's build tools
always bump, so this only matters for foreign writers.
"""

from __future__ import annotations

import json
import logging
import os
import socket
import socketserver
import threading
import time
from dataclasses import dataclass, field
from http.server import BaseHTTPRequestHandler, ThreadingHTTPServer
from pathlib import Path
from typing import Optional, Sequence, Tuple

from concurrent.futures import TimeoutError as FutureTimeoutError
from concurrent.futures.process import BrokenProcessPool

from repro.discovery.prepared import PreparedStore
from repro.discovery.search import RerankPool
from repro.lake import LakeDiscoveryEngine, SketchStore, store_generation
from repro.matchers.registry import create_matcher
from repro.serve.admission import AdmissionQueue, Deadline, DeadlineExpired, QueueFull, Ticket
from repro.serve.batcher import MicroBatcher
from repro.serve.health import CircuitBreaker
from repro.serve.protocol import (
    ProtocolError,
    decode_query_request,
    request_cache_key,
    response_to_dict,
)
from repro.telemetry import TelemetryRecorder, use

__all__ = ["ServeConfig", "DiscoveryServer"]

logger = logging.getLogger(__name__)

#: Upper bound on a ``/query`` body; protects the daemon from a client
#: streaming an arbitrarily large table into its memory.
_MAX_BODY_BYTES = 64 * 1024 * 1024


@dataclass
class ServeConfig:
    """Everything ``lake serve`` needs to stand the daemon up."""

    store_path: Path
    method: str = "ComaSchema"
    #: Constructor kwargs for the matcher — must match what the prepared
    #: store was warmed with, or every query falls back to cold preparation.
    method_kwargs: dict = field(default_factory=dict)
    prepared_path: Optional[Path] = None
    host: str = "127.0.0.1"
    port: int = 0  # 0 = ephemeral (the bound port is on DiscoveryServer.address)
    unix_socket: Optional[Path] = None  # serve on AF_UNIX instead of TCP
    queue_limit: int = 32
    batch_max: int = 8
    batch_wait_s: float = 0.005
    default_timeout_s: Optional[float] = 30.0
    parallel: bool = True
    max_workers: Optional[int] = None
    reopen_poll_s: float = 1.0
    #: Circuit breaker over the parallel rerank path: this many consecutive
    #: pool breaks switch batches to serial scoring for ``cooldown_s``.
    breaker_threshold: int = 2
    breaker_cooldown_s: float = 5.0
    #: Arm the two-stage rerank cascade for every served query (exact
    #: rankings; admissible bounds skip candidates that cannot reach the
    #: top-k).  Per-request anytime budgets (``budget_ms``) work either way.
    cascade: bool = False
    #: Optional :class:`~repro.faults.FaultPlan` (duck-typed: anything with
    #: ``check(operation)``) consulted at ``serve.score_batch`` — the chaos
    #: suite's injection point.  ``None`` costs nothing.
    fault_plan: Optional[object] = None

    def resolved_prepared_path(self) -> Path:
        if self.prepared_path is not None:
            return self.prepared_path
        return self.store_path.with_name(self.store_path.name + ".prepared")


@dataclass
class _EngineSession:
    """One generation of the stores and the engine wrapped around them.

    Sessions are opened and closed **on the dispatcher thread only** —
    their SQLite connections are unusable from any other thread.  The
    rerank pool is shared across sessions (``owns_stores=True`` makes
    ``engine.close()`` release the stores but a handed-in pool is never
    closed by the engine).
    """

    engine: LakeDiscoveryEngine
    generation: Tuple[object, object]
    table_count: int

    @classmethod
    def open(cls, config: ServeConfig, pool: RerankPool) -> "_EngineSession":
        generation = current_generation(config)
        store = SketchStore(config.store_path, read_only=True)
        prepared_store = None
        try:
            prepared_store = PreparedStore(config.resolved_prepared_path())
        except ValueError as exc:
            logger.warning("prepared store unavailable, serving cold: %s", exc)
        engine = LakeDiscoveryEngine(
            matcher=create_matcher(config.method, **config.method_kwargs),
            store=store,
            prepared_store=prepared_store,
            rerank_pool=pool,
            owns_stores=True,
        )
        return cls(engine=engine, generation=generation, table_count=len(store))

    def close(self) -> None:
        self.engine.close()


def current_generation(config: ServeConfig) -> Tuple[object, object]:
    """The on-disk generation of (sketch store, prepared store)."""
    return (
        store_generation(config.store_path),
        store_generation(config.resolved_prepared_path()),
    )


class _UnixHTTPServer(ThreadingHTTPServer):
    """``ThreadingHTTPServer`` bound to a unix-domain socket path.

    ``HTTPServer.server_bind`` assumes an ``(host, port)`` address tuple
    (it unpacks it to compute ``server_name``); for ``AF_UNIX`` the
    address is a filesystem path, so binding goes straight through
    ``socketserver.TCPServer`` and the name fields are filled by hand.
    """

    address_family = socket.AF_UNIX
    allow_reuse_address = False

    def server_bind(self) -> None:
        socketserver.TCPServer.server_bind(self)
        self.server_name = str(self.server_address)
        self.server_port = 0

    def get_request(self):
        connection, _ = self.socket.accept()
        # BaseHTTPRequestHandler renders client_address[0] in log lines; a
        # unix peer has no address, so substitute a stable placeholder.
        return connection, ("unix-socket", 0)


class _Handler(BaseHTTPRequestHandler):
    """Routes ``/query``, ``/stats`` and ``/healthz``; engine-free.

    Runs on the front-end handler threads: everything here must be either
    thread-safe (the recorder, the admission queue) or immutable snapshots
    (the cached generation/table count) — never the engine or stores.
    """

    server_version = "repro-serve/1"
    protocol_version = "HTTP/1.1"

    @property
    def daemon(self) -> "DiscoveryServer":
        return self.server.discovery  # type: ignore[attr-defined]

    def log_message(self, format: str, *args: object) -> None:
        logger.debug("%s %s", self.address_string(), format % args)

    # ------------------------------------------------------------------ #
    # routing
    # ------------------------------------------------------------------ #
    def do_GET(self) -> None:
        if self.path == "/healthz":
            payload = self.daemon.health()
            # ok/degraded answer 200 (keep routing here — degraded still
            # serves correct results); starting answers 503.
            status = 200 if payload["status"] in ("ok", "degraded") else 503
            self._send_json(status, payload)
        elif self.path == "/stats":
            self._send_json(200, self.daemon.stats())
        else:
            self._send_json(404, {"error": "not_found", "path": self.path})

    def do_POST(self) -> None:
        if self.path != "/query":
            self._send_json(404, {"error": "not_found", "path": self.path})
            return
        try:
            body = self._read_body()
        except ProtocolError as exc:
            self._send_json(413, {"error": "body_too_large", "detail": str(exc)})
            return
        self.daemon.handle_query(body, self._send_json)

    def _read_body(self) -> bytes:
        length = int(self.headers.get("Content-Length") or 0)
        if length > _MAX_BODY_BYTES:
            raise ProtocolError(f"body of {length} bytes exceeds {_MAX_BODY_BYTES}")
        return self.rfile.read(length)

    def _send_json(
        self, status: int, payload: dict, headers: Optional[dict] = None
    ) -> None:
        body = json.dumps(payload).encode("utf-8")
        self.send_response(status)
        self.send_header("Content-Type", "application/json")
        self.send_header("Content-Length", str(len(body)))
        for name, value in (headers or {}).items():
            self.send_header(name, value)
        self.end_headers()
        self.wfile.write(body)


class DiscoveryServer:
    """The daemon: construct, :meth:`start`, serve, :meth:`stop`.

    ``start()`` brings up the dispatcher (which opens the engine session
    and surfaces store-open errors here, in the caller's thread) and then
    the HTTP front end; ``stop()`` tears down in reverse.  Use as a
    context manager in tests and benchmarks.
    """

    def __init__(self, config: ServeConfig) -> None:
        self.config = config
        self.recorder = TelemetryRecorder()
        self.pool = RerankPool(max_workers=config.max_workers)
        self.breaker = CircuitBreaker(
            threshold=config.breaker_threshold,
            cooldown_s=config.breaker_cooldown_s,
        )
        self.pool_restarts = 0
        self.reopen_count = 0
        self._session: Optional[_EngineSession] = None
        self._session_lock = threading.Lock()  # guards the reference swap only
        self._last_reopen_poll = time.monotonic()
        self.admission = AdmissionQueue(config.queue_limit)
        self.batcher = MicroBatcher(
            self.admission,
            execute=self._execute_batch,
            batch_max=config.batch_max,
            batch_wait_s=config.batch_wait_s,
            on_start=self._open_session,
            on_stop=self._close_session,
            before_batch=self._maybe_reopen,
        )
        self._httpd: Optional[ThreadingHTTPServer] = None
        self._http_thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self) -> "DiscoveryServer":
        self.batcher.start()
        try:
            self._httpd = self._build_httpd()
        except BaseException:
            self.batcher.stop()
            self.pool.close()
            raise
        self._httpd.discovery = self  # type: ignore[attr-defined]
        self._http_thread = threading.Thread(
            target=self._httpd.serve_forever,
            kwargs={"poll_interval": 0.1},
            name="serve-http",
            daemon=True,
        )
        self._http_thread.start()
        return self

    def stop(self) -> None:
        if self._httpd is not None:
            self._httpd.shutdown()
            self._httpd.server_close()
            self._httpd = None
        if self._http_thread is not None:
            self._http_thread.join(timeout=10)
            self._http_thread = None
        self.batcher.stop()
        self.pool.close()
        if self.config.unix_socket is not None:
            try:
                self.config.unix_socket.unlink()
            except OSError:
                pass

    def __enter__(self) -> "DiscoveryServer":
        return self.start()

    def __exit__(self, *exc_info: object) -> None:
        self.stop()

    def run_forever(self) -> None:
        """Block the calling thread until interrupted, then stop."""
        try:
            while True:
                time.sleep(1.0)
        except KeyboardInterrupt:
            pass
        finally:
            self.stop()

    @property
    def address(self) -> Tuple[str, int]:
        """The bound ``(host, port)`` — resolves ephemeral port 0."""
        if self._httpd is None:
            raise RuntimeError("server is not started")
        if self.config.unix_socket is not None:
            return (str(self.config.unix_socket), 0)
        host, port = self._httpd.server_address[:2]
        return (str(host), int(port))

    def _build_httpd(self) -> ThreadingHTTPServer:
        if self.config.unix_socket is not None:
            path = self.config.unix_socket
            try:
                path.unlink()
            except OSError:
                pass
            httpd = _UnixHTTPServer(str(path), _Handler)
        else:
            httpd = ThreadingHTTPServer((self.config.host, self.config.port), _Handler)
        httpd.daemon_threads = True
        return httpd

    # ------------------------------------------------------------------ #
    # dispatcher-thread half (session ownership)
    # ------------------------------------------------------------------ #
    def _open_session(self) -> None:
        session = _EngineSession.open(self.config, self.pool)
        with self._session_lock:
            self._session = session

    def _close_session(self) -> None:
        with self._session_lock:
            session, self._session = self._session, None
        if session is not None:
            session.close()

    def _maybe_reopen(self) -> None:
        now = time.monotonic()
        if now - self._last_reopen_poll < self.config.reopen_poll_s:
            return
        self._last_reopen_poll = now
        current = current_generation(self.config)
        session = self._session
        if session is None or current == session.generation:
            return
        if current[0] is None:
            # The sketch store vanished mid-cycle (writer renaming): keep
            # serving the old generation until a readable one appears.
            return
        logger.info(
            "store generation changed %s -> %s; reopening",
            session.generation,
            current,
        )
        try:
            fresh = _EngineSession.open(self.config, self.pool)
        except (ValueError, OSError) as exc:
            logger.warning("reopen failed (writer mid-cycle?), retrying later: %s", exc)
            return
        with self._session_lock:
            self._session = fresh
        session.close()
        self.reopen_count += 1
        self.recorder.count("serve.reopens")

    def _execute_batch(self, requests: Sequence) -> Sequence:
        session = self._session
        if session is None:  # pragma: no cover - dispatcher guarantees open
            raise RuntimeError("no engine session")
        groups: dict = {}
        for index, request in enumerate(requests):
            # budget_ms joins the group key: a budget is a per-request rerank
            # deadline, so budgeted and full requests never share a
            # query_many call (their stats — and possibly rankings — differ).
            groups.setdefault(
                (request.mode, request.top_k, request.budget_ms), []
            ).append(index)
        with use(self.recorder):
            self.recorder.count("serve.batches")
            self.recorder.count("serve.batched_queries", len(requests))
            parallel = self.config.parallel and self.breaker.allow()
            try:
                outcomes = self._score_groups(session, requests, groups, parallel)
            except BrokenProcessPool:
                # The shared pool died *twice* for this batch (RerankPool
                # already respawned and retried once internally).  Restart
                # it behind the breaker and answer this batch serially —
                # degraded latency, correct results, no dropped queries.
                self.recorder.count("serve.pool_restarts")
                self.pool_restarts += 1
                self.breaker.record_failure()
                self.pool.close()
                logger.warning(
                    "rerank pool broke; restarted it and degraded this "
                    "batch to serial scoring (breaker: %s)",
                    self.breaker.state,
                )
                outcomes = self._score_groups(session, requests, groups, False)
            else:
                if parallel:
                    self.breaker.record_success()
        return outcomes

    def _score_groups(
        self, session: _EngineSession, requests: Sequence, groups: dict, parallel: bool
    ) -> list:
        if self.config.fault_plan is not None:
            self.config.fault_plan.check("serve.score_batch")
        outcomes: list = [None] * len(requests)
        for (mode, top_k, budget_ms), indexes in groups.items():
            batch = session.engine.query_many(
                [requests[i].table for i in indexes],
                mode=mode,
                top_k=top_k,
                parallel=parallel,
                max_workers=self.config.max_workers,
                cascade=self.config.cascade,
                budget_ms=budget_ms,
            )
            for i, outcome in zip(indexes, batch):
                outcomes[i] = outcome
        return outcomes

    # ------------------------------------------------------------------ #
    # handler-thread half (admission + endpoints)
    # ------------------------------------------------------------------ #
    def handle_query(self, body: bytes, send_json) -> None:
        """Admit one ``/query`` body and wait (bounded) for its outcome."""
        started = time.monotonic()
        try:
            request = decode_query_request(body)
        except ProtocolError as exc:
            self.recorder.count("serve.bad_requests")
            send_json(400, {"error": "bad_request", "detail": str(exc)})
            return
        timeout_s = request.timeout_s
        if timeout_s is None:
            timeout_s = self.config.default_timeout_s
        deadline = Deadline.after(timeout_s) if timeout_s is not None else None
        ticket = Ticket(
            request=request, key=request_cache_key(request), deadline=deadline
        )
        try:
            self.admission.submit(ticket)
        except QueueFull:
            self.recorder.count("serve.rejected_queue_full")
            send_json(
                429,
                {"error": "queue_full", "queue_limit": self.config.queue_limit},
                {"Retry-After": "1"},
            )
            return
        self.recorder.count("serve.admitted")
        try:
            wait = deadline.remaining() if deadline is not None else None
            outcome, coalesced = ticket.future.result(timeout=wait)
        except (FutureTimeoutError, DeadlineExpired):
            self.recorder.count("serve.deadline_expired")
            send_json(504, {"error": "deadline_expired", "timeout_s": timeout_s})
            return
        except Exception as exc:
            # Contract: the daemon never answers 500.  A failed batch is a
            # *transient server condition* — the session reopens, the pool
            # restarts, the breaker degrades — so tell the client to retry,
            # the same way a full queue does.
            self.recorder.count("serve.errors")
            logger.exception("query failed")
            send_json(
                503,
                {"error": "unavailable", "detail": str(exc)},
                {"Retry-After": "1"},
            )
            return
        if coalesced:
            self.recorder.count("serve.coalesced")
        self.recorder.observe("serve.request", time.monotonic() - started)
        send_json(200, response_to_dict(request, outcome, coalesced))

    def health_status(self) -> str:
        """The daemon's condition: ``ok`` / ``degraded`` / ``starting``.

        ``ok`` — session open, breaker closed (full fast path).
        ``degraded`` — serving correct answers, but the rerank breaker is
        open or half-open, so batches score serially.  ``starting`` — no
        engine session yet (also the state after a failed open).
        """
        with self._session_lock:
            session = self._session
        if session is None:
            return "starting"
        return "ok" if self.breaker.state == "closed" else "degraded"

    def health(self) -> dict:
        """The ``/healthz`` payload — cached fields only, never the stores."""
        with self._session_lock:
            session = self._session
        return {
            "status": self.health_status(),
            "breaker": self.breaker.state,
            "tables": session.table_count if session is not None else None,
            "generation": _generation_as_json(
                session.generation if session is not None else None
            ),
            "queue_depth": self.admission.depth(),
            "reopen_count": self.reopen_count,
            "pool_restarts": self.pool_restarts,
        }

    def stats(self) -> dict:
        """The ``/stats`` payload: merged recorder + serving-level gauges."""
        payload = self.recorder.snapshot().as_dict()
        payload["serve"] = {
            "status": self.health_status(),
            "queue_depth": self.admission.depth(),
            "queue_limit": self.config.queue_limit,
            "batches_run": self.batcher.batches_run,
            "coalesced": self.batcher.coalesced_count,
            "expired_in_queue": self.batcher.expired_in_queue,
            "reopen_count": self.reopen_count,
            "pool_spawns": self.pool.spawn_count,
            "pool_restarts": self.pool_restarts,
            "breaker": self.breaker.snapshot(),
            "pid": os.getpid(),
        }
        return payload


def _generation_as_json(generation):
    """Generations are tuples of tuples — flatten to JSON-friendly lists."""
    if generation is None:
        return None
    return [list(part) if part is not None else None for part in generation]
