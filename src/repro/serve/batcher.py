"""The dispatcher: one thread draining the admission queue in micro-batches.

Why a single thread: every SQLite connection in the stores is bound to the
thread that opened it (and the engine's shortlist/rerank path is written
for one caller at a time), so the daemon confines *all* engine and store
access to this thread.  HTTP handler threads never touch the engine — they
park on ticket futures; concurrency comes from the rerank process pool
underneath, which one dispatcher keeps saturated by batching.

Batching policy: take the first ticket (blocking), then collect more for at
most ``batch_wait_s`` or until ``batch_max`` — a classic micro-batch window
that adds at most a few milliseconds of latency in exchange for feeding
:meth:`~repro.lake.engine.LakeDiscoveryEngine.query_many` whole batches,
whose chunks interleave in **one** pool pass.  Duplicate concurrent
requests (same content-hash cache key) coalesce onto a single score.
"""

from __future__ import annotations

import logging
import threading
import time
from typing import Callable, List, Optional, Sequence

from repro.serve.admission import AdmissionQueue, DeadlineExpired, Ticket
from repro.serve.protocol import QueryRequest

__all__ = ["MicroBatcher"]

logger = logging.getLogger(__name__)

#: How long a blocking queue read waits before re-checking the stop flag
#: (and giving ``before_batch`` — the store-reopen poll — a chance to run).
_IDLE_TICK_S = 0.1


class MicroBatcher:
    """Owns the dispatcher thread; hooks run **on that thread** only.

    Parameters
    ----------
    admission:
        The bounded ticket queue the HTTP handlers submit into.
    execute:
        ``execute(requests) -> outcomes`` scoring one deduplicated batch
        (the server wires this to ``engine.query_many``); outcomes align
        with *requests* by index.
    on_start / on_stop:
        Open and close the engine session.  They run on the dispatcher
        thread because the session's SQLite connections must be created
        and closed by the thread that uses them.  An ``on_start`` failure
        is re-raised from :meth:`start` in the caller's thread.
    before_batch:
        Runs between batches (never mid-batch) — where the server polls
        store generations and swaps the session; queued tickets simply
        continue onto the new session.
    """

    def __init__(
        self,
        admission: AdmissionQueue,
        execute: Callable[[Sequence[QueryRequest]], Sequence[object]],
        batch_max: int = 8,
        batch_wait_s: float = 0.005,
        on_start: Optional[Callable[[], None]] = None,
        on_stop: Optional[Callable[[], None]] = None,
        before_batch: Optional[Callable[[], None]] = None,
    ) -> None:
        if batch_max <= 0:
            raise ValueError("batch_max must be positive")
        self.admission = admission
        self.execute = execute
        self.batch_max = batch_max
        self.batch_wait_s = batch_wait_s
        self.on_start = on_start
        self.on_stop = on_stop
        self.before_batch = before_batch
        self.batches_run = 0
        self.coalesced_count = 0
        self.expired_in_queue = 0
        self._stop = threading.Event()
        self._ready = threading.Event()
        self._startup_error: Optional[BaseException] = None
        self._thread: Optional[threading.Thread] = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def start(self, timeout: float = 30.0) -> None:
        """Start the dispatcher and wait for ``on_start`` to succeed."""
        if self._thread is not None:
            raise RuntimeError("batcher already started")
        self._thread = threading.Thread(
            target=self._run, name="serve-dispatcher", daemon=True
        )
        self._thread.start()
        if not self._ready.wait(timeout):
            raise RuntimeError("dispatcher did not become ready in time")
        if self._startup_error is not None:
            raise self._startup_error

    def stop(self, timeout: float = 30.0) -> None:
        """Stop the dispatcher; pending tickets are failed, not dropped."""
        self._stop.set()
        if self._thread is not None:
            self._thread.join(timeout)
            self._thread = None

    def _run(self) -> None:
        try:
            if self.on_start is not None:
                self.on_start()
        except BaseException as exc:
            self._startup_error = exc
            self._ready.set()
            return
        self._ready.set()
        try:
            while not self._stop.is_set():
                first = self.admission.get(timeout=_IDLE_TICK_S)
                if first is None:
                    if self.before_batch is not None:
                        self._guarded_before_batch()
                    continue
                tickets = self._collect_batch(first)
                self._run_batch(tickets)
        finally:
            self._fail_pending(RuntimeError("serve daemon is shutting down"))
            if self.on_stop is not None:
                try:
                    self.on_stop()
                except Exception:  # pragma: no cover - teardown best effort
                    logger.exception("serve session teardown failed")

    # ------------------------------------------------------------------ #
    # batching
    # ------------------------------------------------------------------ #
    def _collect_batch(self, first: Ticket) -> List[Ticket]:
        tickets = [first]
        window_end = time.monotonic() + self.batch_wait_s
        while len(tickets) < self.batch_max:
            wait_left = window_end - time.monotonic()
            if wait_left <= 0:
                break
            ticket = self.admission.get(timeout=wait_left)
            if ticket is None:
                break
            tickets.append(ticket)
        return tickets

    def _run_batch(self, tickets: List[Ticket]) -> None:
        if self.before_batch is not None:
            self._guarded_before_batch()
        live: List[Ticket] = []
        for ticket in tickets:
            if ticket.expired:
                self.expired_in_queue += 1
                ticket.future.set_exception(
                    DeadlineExpired("deadline expired while queued")
                )
            else:
                live.append(ticket)
        if not live:
            return
        # Coalesce: one score per distinct cache key, fanned back out.
        order: List[str] = []
        unique: dict = {}
        for ticket in live:
            if ticket.key not in unique:
                unique[ticket.key] = ticket.request
                order.append(ticket.key)
            else:
                self.coalesced_count += 1
        try:
            outcomes = self.execute([unique[key] for key in order])
        except BaseException as exc:
            for ticket in live:
                ticket.future.set_exception(exc)
            return
        outcome_of = dict(zip(order, outcomes))
        seen_key: set = set()
        self.batches_run += 1
        for ticket in live:
            coalesced = ticket.key in seen_key
            seen_key.add(ticket.key)
            ticket.future.set_result((outcome_of[ticket.key], coalesced))

    def _guarded_before_batch(self) -> None:
        try:
            self.before_batch()  # type: ignore[misc]
        except Exception:  # pragma: no cover - reopen poll must not kill serve
            logger.exception("before_batch hook failed; continuing")

    def _fail_pending(self, error: Exception) -> None:
        for ticket in self.admission.drain(self.admission.limit):
            ticket.future.set_exception(error)
