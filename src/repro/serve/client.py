"""Thin stdlib HTTP client for the discovery daemon.

One :class:`ServeClient` wraps one keep-alive connection (TCP or unix
socket), so a benchmark thread pays the connect cost once and then
measures request latency, not TCP setup.  Instances are **not**
thread-safe — ``http.client`` connections serialize one request at a
time — so concurrent clients each hold their own instance.

Back-pressure surfaces as typed exceptions: a 429 raises
:class:`QueueFullError` (with the daemon's ``Retry-After`` hint) and a
504 raises :class:`DeadlineExpiredError`, so callers distinguish "come
back later" from "this query is too slow" without parsing bodies.
"""

from __future__ import annotations

import http.client
import json
import socket
import time
from pathlib import Path
from typing import Callable, Optional, Union

from repro.data.table import Table
from repro.serve.protocol import encode_query_request

__all__ = ["ServeClient", "ServeError", "QueueFullError", "DeadlineExpiredError"]


class ServeError(Exception):
    """A non-2xx daemon response."""

    def __init__(self, status: int, payload: dict) -> None:
        detail = payload.get("detail") or payload.get("error") or "server error"
        super().__init__(f"HTTP {status}: {detail}")
        self.status = status
        self.payload = payload


class QueueFullError(ServeError):
    """HTTP 429 — the admission queue rejected the request."""

    def __init__(self, status: int, payload: dict, retry_after: float) -> None:
        super().__init__(status, payload)
        self.retry_after = retry_after


class DeadlineExpiredError(ServeError):
    """HTTP 504 — the per-request deadline passed before an answer."""


class _UnixHTTPConnection(http.client.HTTPConnection):
    """``HTTPConnection`` that dials a unix-domain socket path."""

    def __init__(self, socket_path: str, timeout: Optional[float] = None) -> None:
        super().__init__("localhost", timeout=timeout)
        self._socket_path = socket_path

    def connect(self) -> None:
        sock = socket.socket(socket.AF_UNIX, socket.SOCK_STREAM)
        if self.timeout is not None:
            sock.settimeout(self.timeout)
        sock.connect(self._socket_path)
        self.sock = sock


class ServeClient:
    """Talk to a :class:`~repro.serve.server.DiscoveryServer`.

    Exactly one of ``(host, port)`` or ``unix_socket`` selects the
    transport.  ``timeout_s`` is the *socket* timeout — a hung daemon
    fails the call instead of hanging the client forever; per-request
    scoring deadlines travel in the request body (``timeout_s=`` on
    :meth:`query`) and are enforced server-side.

    Back-pressure retry is **opt-in**: with ``retry_queue_full=True`` a
    :meth:`query` rejected 429 sleeps the daemon's ``Retry-After`` hint and
    resubmits, up to ``max_attempts`` total tries, then re-raises
    :class:`QueueFullError`.  Off by default — a load generator usually
    *wants* to observe the 429s, and an interactive caller should decide
    its own patience.
    """

    def __init__(
        self,
        host: str = "127.0.0.1",
        port: Optional[int] = None,
        unix_socket: Optional[Union[str, Path]] = None,
        timeout_s: float = 60.0,
        retry_queue_full: bool = False,
        max_attempts: int = 3,
        retry_sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        if (port is None) == (unix_socket is None):
            raise ValueError("pass exactly one of port= or unix_socket=")
        if max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        self._timeout = timeout_s
        self.retry_queue_full = retry_queue_full
        self.max_attempts = max_attempts
        self._retry_sleep = retry_sleep
        if unix_socket is not None:
            self._connection: http.client.HTTPConnection = _UnixHTTPConnection(
                str(unix_socket), timeout=timeout_s
            )
        else:
            self._connection = http.client.HTTPConnection(
                host, port, timeout=timeout_s
            )

    # ------------------------------------------------------------------ #
    # endpoints
    # ------------------------------------------------------------------ #
    def query(
        self,
        table: Table,
        mode: str = "joinable",
        top_k: Optional[int] = None,
        timeout_s: Optional[float] = None,
        budget_ms: Optional[float] = None,
    ) -> dict:
        """Score *table* against the lake; returns the decoded response.

        Raises :class:`QueueFullError` / :class:`DeadlineExpiredError` /
        :class:`ServeError` for 429 / 504 / other non-2xx answers.  With
        ``retry_queue_full`` set, 429s are retried after the daemon's
        ``Retry-After`` hint (bounded by ``max_attempts``).  ``budget_ms``
        caps the server-side rerank (anytime semantics): the response may
        come back with ``stats.partial`` set and a best-effort top-k.
        """
        body = encode_query_request(
            table, mode=mode, top_k=top_k, timeout_s=timeout_s, budget_ms=budget_ms
        )
        attempts = self.max_attempts if self.retry_queue_full else 1
        for attempt in range(1, attempts + 1):
            try:
                return self._request("POST", "/query", body)
            except QueueFullError as exc:
                if attempt >= attempts:
                    raise
                self._retry_sleep(exc.retry_after)
        raise AssertionError("unreachable")  # pragma: no cover

    def stats(self) -> dict:
        return self._request("GET", "/stats")

    def healthz(self) -> dict:
        return self._request("GET", "/healthz")

    def close(self) -> None:
        self._connection.close()

    def __enter__(self) -> "ServeClient":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # plumbing
    # ------------------------------------------------------------------ #
    def _request(self, method: str, path: str, body: Optional[bytes] = None) -> dict:
        headers = {"Content-Type": "application/json"} if body is not None else {}
        try:
            self._connection.request(method, path, body=body, headers=headers)
            response = self._connection.getresponse()
            raw = response.read()
        except (http.client.HTTPException, OSError):
            # A dropped keep-alive (daemon restarted, socket idled out)
            # poisons the connection object: reset and retry once.
            self._connection.close()
            self._connection.request(method, path, body=body, headers=headers)
            response = self._connection.getresponse()
            raw = response.read()
        try:
            payload = json.loads(raw.decode("utf-8")) if raw else {}
        except (UnicodeDecodeError, json.JSONDecodeError):
            payload = {"error": "bad_response_body"}
        if 200 <= response.status < 300:
            return payload
        if response.status == 429:
            retry_after = float(response.getheader("Retry-After") or 1.0)
            raise QueueFullError(response.status, payload, retry_after)
        if response.status == 504:
            raise DeadlineExpiredError(response.status, payload)
        raise ServeError(response.status, payload)
