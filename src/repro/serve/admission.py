"""Admission control: deadlines, the bounded queue, and back-pressure.

The daemon's contract under overload is *reject, never hang*: a request
either gets a seat in the bounded admission queue or an immediate 429 —
the queue cannot grow without bound, and a request that waited past its
deadline is answered 504 whether it is still queued or already mid-rerank.

Everything here is engine-agnostic plumbing: a :class:`Ticket` couples one
decoded request to the :class:`~concurrent.futures.Future` its handler
thread waits on; the dispatcher (:mod:`repro.serve.batcher`) is the only
consumer.  :func:`run_with_deadline` reuses the same deadline semantics
for the one-shot ``lake query --timeout-s`` CLI path.
"""

from __future__ import annotations

import queue
import threading
import time
from concurrent.futures import Future
from concurrent.futures import TimeoutError as FutureTimeoutError
from dataclasses import dataclass, field
from typing import Callable, List, Optional, TypeVar

from repro.serve.protocol import QueryRequest

__all__ = [
    "Deadline",
    "DeadlineExpired",
    "QueueFull",
    "Ticket",
    "AdmissionQueue",
    "run_with_deadline",
]

T = TypeVar("T")


class QueueFull(Exception):
    """The admission queue is at capacity — rendered as HTTP 429."""


class DeadlineExpired(Exception):
    """The request's deadline passed before an answer — rendered as 504."""


class Deadline:
    """A monotonic-clock expiry shared by the daemon and the CLI.

    Built once at admission from the request's ``timeout_s`` and consulted
    at every hand-off: the batcher drops tickets that expired while queued,
    and the handler thread bounds its wait on the ticket future with
    :meth:`remaining`.
    """

    __slots__ = ("expires_at",)

    def __init__(self, expires_at: float) -> None:
        self.expires_at = expires_at

    @classmethod
    def after(cls, seconds: float) -> "Deadline":
        return cls(time.monotonic() + seconds)

    def remaining(self) -> float:
        """Seconds until expiry — negative once the deadline has passed."""
        return self.expires_at - time.monotonic()

    @property
    def expired(self) -> bool:
        return self.remaining() <= 0.0


@dataclass
class Ticket:
    """One admitted request travelling from handler thread to dispatcher.

    The handler thread blocks on :attr:`future` (bounded by the deadline);
    the dispatcher resolves it with ``(BatchQueryResult, coalesced)`` or an
    exception.  The future is the *only* channel between the two threads.
    """

    request: QueryRequest
    key: str
    deadline: Optional[Deadline] = None
    future: Future = field(default_factory=Future)
    enqueued_at: float = field(default_factory=time.monotonic)

    @property
    def expired(self) -> bool:
        return self.deadline is not None and self.deadline.expired


class AdmissionQueue:
    """A bounded FIFO of tickets; full means reject, not block.

    ``limit`` counts *waiting* tickets only — requests already being scored
    by the dispatcher have left the queue, so the bound is on queued work,
    the quantity back-pressure must cap.
    """

    def __init__(self, limit: int) -> None:
        if limit <= 0:
            raise ValueError("admission queue limit must be positive")
        self.limit = limit
        self._queue: "queue.Queue[Ticket]" = queue.Queue(maxsize=limit)

    def submit(self, ticket: Ticket) -> None:
        """Seat *ticket* or raise :class:`QueueFull` immediately (no wait)."""
        try:
            self._queue.put_nowait(ticket)
        except queue.Full:
            raise QueueFull(
                f"admission queue is full ({self.limit} waiting requests)"
            ) from None

    def get(self, timeout: Optional[float] = None) -> Optional[Ticket]:
        """The next ticket, or ``None`` when *timeout* elapses empty."""
        try:
            return self._queue.get(timeout=timeout)
        except queue.Empty:
            return None

    def drain(self, max_items: int) -> List[Ticket]:
        """Up to *max_items* immediately available tickets (no waiting)."""
        drained: List[Ticket] = []
        while len(drained) < max_items:
            try:
                drained.append(self._queue.get_nowait())
            except queue.Empty:
                break
        return drained

    def depth(self) -> int:
        """Approximate number of waiting tickets (racy by nature)."""
        return self._queue.qsize()


def run_with_deadline(fn: Callable[[], T], timeout_s: Optional[float]) -> T:
    """Run ``fn()`` under the daemon's deadline semantics, synchronously.

    The CLI's ``lake query --timeout-s``: *fn* runs in a daemon thread and
    the caller waits at most *timeout_s*, raising :class:`DeadlineExpired`
    on expiry.  The worker thread is not (cannot be) interrupted — it is
    abandoned, which is acceptable for a process that exits right after —
    so the caller gets a prompt, honest timeout instead of a hung terminal.
    """
    if timeout_s is None:
        return fn()
    future: Future = Future()

    def runner() -> None:
        try:
            future.set_result(fn())
        except BaseException as exc:  # propagate everything to the waiter
            future.set_exception(exc)

    thread = threading.Thread(target=runner, name="deadline-runner", daemon=True)
    thread.start()
    try:
        return future.result(timeout=timeout_s)
    except FutureTimeoutError:
        raise DeadlineExpired(
            f"query did not finish within --timeout-s {timeout_s:g}"
        ) from None
