"""Earth Mover's Distance (EMD) between distributions.

Two flavours are provided:

* :func:`emd_1d` — the closed-form 1-D EMD (area between CDFs) used to
  compare quantile histograms in the distribution-based matcher.
* :func:`emd_general` — the transportation-problem formulation for arbitrary
  ground distances, solved with ``scipy.optimize.linprog``; used by tests as
  an oracle and available for non-ordinal domains.

Additionally :func:`intersection_emd` implements the "intersection EMD" used
in phase 2 of the distribution-based matcher: the EMD between each column and
the intersection of the two value sets, which is robust to columns whose full
domains differ widely but overlap meaningfully.
"""

from __future__ import annotations

from typing import Sequence

import numpy as np
from scipy.optimize import linprog

from repro.distributions.histograms import QuantileHistogram, build_histogram_pair, rank_values

__all__ = ["emd_1d", "emd_general", "histogram_emd", "column_emd", "intersection_emd"]


def emd_1d(weights_a: Sequence[float], weights_b: Sequence[float]) -> float:
    """Closed-form EMD between two 1-D histograms on the same bucket grid.

    Both weight vectors are normalised to sum to one; the distance is the sum
    of absolute differences of the cumulative distributions (in units of
    buckets).
    """
    a = np.asarray(weights_a, dtype=float)
    b = np.asarray(weights_b, dtype=float)
    if a.shape != b.shape:
        raise ValueError(f"histograms must share a bucket grid: {a.shape} vs {b.shape}")
    # Fully vectorised: normalise, difference, prefix-sum (cumulative CDF
    # gap) and L1-reduce without materialising intermediate Python floats.
    total_a = a.sum()
    total_b = b.sum()
    if total_a > 0:
        a = a / total_a
    if total_b > 0:
        b = b / total_b
    return float(np.abs(np.cumsum(a - b)).sum())


def emd_general(
    weights_a: Sequence[float],
    weights_b: Sequence[float],
    ground_distance: np.ndarray,
) -> float:
    """EMD with an arbitrary ground-distance matrix via linear programming.

    Parameters
    ----------
    weights_a, weights_b:
        Supply and demand mass vectors (normalised internally).
    ground_distance:
        Matrix of shape ``(len(weights_a), len(weights_b))`` with pairwise
        ground distances.
    """
    a = np.asarray(weights_a, dtype=float)
    b = np.asarray(weights_b, dtype=float)
    distance = np.asarray(ground_distance, dtype=float)
    if distance.shape != (a.size, b.size):
        raise ValueError("ground_distance shape does not match weight vectors")
    if a.sum() == 0 or b.sum() == 0:
        return 0.0
    a = a / a.sum()
    b = b / b.sum()

    num_a, num_b = a.size, b.size
    cost = distance.reshape(-1)
    # Row (supply) constraints and column (demand) constraints.
    a_eq = np.zeros((num_a + num_b, num_a * num_b))
    for i in range(num_a):
        a_eq[i, i * num_b : (i + 1) * num_b] = 1.0
    for j in range(num_b):
        a_eq[num_a + j, j::num_b] = 1.0
    b_eq = np.concatenate([a, b])
    result = linprog(cost, A_eq=a_eq, b_eq=b_eq, bounds=(0, None), method="highs")
    if not result.success:  # pragma: no cover - defensive
        raise RuntimeError(f"EMD linear program failed: {result.message}")
    return float(result.fun)


def histogram_emd(hist_a: QuantileHistogram, hist_b: QuantileHistogram) -> float:
    """EMD between two quantile histograms built on the same bucket grid."""
    if hist_a.num_buckets != hist_b.num_buckets:
        raise ValueError("histograms have different bucket counts")
    if hist_a.is_empty or hist_b.is_empty:
        return float(hist_a.num_buckets)
    return emd_1d(hist_a.weights, hist_b.weights)


def column_emd(values_a: Sequence[object], values_b: Sequence[object], num_buckets: int = 20) -> float:
    """EMD between two columns' quantile histograms over their value union."""
    hist_a, hist_b = build_histogram_pair(values_a, values_b, num_buckets=num_buckets)
    return histogram_emd(hist_a, hist_b)


def intersection_emd(
    values_a: Sequence[object],
    values_b: Sequence[object],
    num_buckets: int = 20,
) -> float:
    """Intersection EMD used by phase 2 of the distribution-based matcher.

    The measure is ``(EMD(A, A∩B) + EMD(B, A∩B)) / 2``.  When the value sets
    do not intersect at all the measure is defined as the maximum bucket
    count, i.e. "infinitely far".
    """
    set_a = {str(v).strip().lower() for v in values_a}
    set_b = {str(v).strip().lower() for v in values_b}
    intersection_keys = set_a & set_b
    if not intersection_keys:
        return float(num_buckets)
    intersection_values = [v for v in list(values_a) + list(values_b)
                           if str(v).strip().lower() in intersection_keys]
    emd_a = column_emd(values_a, intersection_values, num_buckets=num_buckets)
    emd_b = column_emd(values_b, intersection_values, num_buckets=num_buckets)
    return (emd_a + emd_b) / 2.0
