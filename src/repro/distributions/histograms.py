"""Quantile histograms over column value sets.

The distribution-based matcher of Zhang et al. (SIGMOD 2011) compares columns
by the Earth Mover's Distance between *quantile histograms* built over a
shared ranking of the union of their values.  This module builds those
histograms for both numeric and textual columns (textual values are ranked
lexicographically, numeric values numerically), mirroring the original
method's treatment of ordinal domains.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["QuantileHistogram", "build_histogram", "build_histogram_pair", "rank_values"]


def _as_sortable(values: Iterable[object]) -> list:
    """Normalise mixed values into a homogeneous, sortable list.

    Numeric-looking values are converted to floats; everything else is
    compared as lowercase strings.  If both kinds are present, all values are
    rendered as strings so ordering is total.
    """
    numbers: list[float] = []
    strings: list[str] = []
    raw = list(values)
    for value in raw:
        try:
            numbers.append(float(str(value)))
        except (TypeError, ValueError):
            strings.append(str(value).strip().lower())
    if strings:
        return sorted(str(v).strip().lower() for v in raw)
    return sorted(numbers)


def rank_values(values: Iterable[object]) -> dict[object, int]:
    """Assign dense ranks to the distinct values of *values*.

    Ranks follow the natural order of the (normalised) values and start at 0.
    """
    normalised = []
    for value in values:
        try:
            normalised.append((float(str(value)), None))
        except (TypeError, ValueError):
            normalised.append((None, str(value).strip().lower()))
    has_text = any(text is not None for _, text in normalised)
    keyed: list[tuple[object, object]] = []
    for original, (num, text) in zip(values, normalised):
        key = str(original).strip().lower() if has_text else num
        keyed.append((key, original))
    distinct_keys = sorted({key for key, _ in keyed})
    rank_of_key = {key: i for i, key in enumerate(distinct_keys)}
    ranks: dict[object, int] = {}
    for key, original in keyed:
        ranks.setdefault(original, rank_of_key[key])
    return ranks


@dataclass(frozen=True)
class QuantileHistogram:
    """A histogram over rank buckets of equal width.

    Attributes
    ----------
    bucket_edges:
        ``num_buckets + 1`` monotonically increasing rank boundaries.
    weights:
        Normalised mass per bucket (sums to 1 unless the histogram is empty).
    """

    bucket_edges: tuple[float, ...]
    weights: tuple[float, ...]

    @property
    def num_buckets(self) -> int:
        return len(self.weights)

    @property
    def is_empty(self) -> bool:
        return not self.weights or sum(self.weights) == 0.0

    def as_arrays(self) -> tuple[np.ndarray, np.ndarray]:
        """Return ``(bucket centres, weights)`` as numpy arrays."""
        edges = np.asarray(self.bucket_edges, dtype=float)
        centres = (edges[:-1] + edges[1:]) / 2.0
        return centres, np.asarray(self.weights, dtype=float)


def build_histogram(
    values: Sequence[object],
    ranks: dict[object, int],
    num_buckets: int = 20,
    max_rank: int | None = None,
) -> QuantileHistogram:
    """Build a quantile histogram of *values* under a shared *ranks* mapping.

    Parameters
    ----------
    values:
        The column's values; values missing from *ranks* are ignored.
    ranks:
        Shared value→rank mapping (typically built over the union of two
        columns with :func:`rank_values`).
    num_buckets:
        Number of equi-width rank buckets.
    max_rank:
        Highest rank in the shared domain; defaults to ``max(ranks.values())``.
    """
    if num_buckets <= 0:
        raise ValueError("num_buckets must be positive")
    if max_rank is None:
        max_rank = max(ranks.values()) if ranks else 0
    upper = float(max_rank) + 1.0
    edges = np.linspace(0.0, upper, num_buckets + 1)
    # Ranks are looked up in Python (dict of arbitrary objects) but the
    # bucket arithmetic and counting are one vectorised pass: same
    # ``int(rank / upper * num_buckets)`` truncation as the old per-value
    # loop, so bucket assignment is bit-identical.
    get_rank = ranks.get
    rank_list = [r for r in map(get_rank, values) if r is not None]
    if rank_list:
        rank_array = np.asarray(rank_list, dtype=float)
        buckets = np.minimum(
            (rank_array / upper * num_buckets).astype(np.int64), num_buckets - 1
        )
        counts = np.bincount(buckets, minlength=num_buckets).astype(float)
    else:
        counts = np.zeros(num_buckets, dtype=float)
    total = counts.sum()
    weights = counts / total if total > 0 else counts
    return QuantileHistogram(tuple(edges.tolist()), tuple(weights.tolist()))


def build_histogram_pair(
    values_a: Sequence[object],
    values_b: Sequence[object],
    num_buckets: int = 20,
) -> tuple[QuantileHistogram, QuantileHistogram]:
    """Build comparable histograms for two columns over their value union."""
    union = list(values_a) + list(values_b)
    if not union:
        empty = QuantileHistogram((0.0, 1.0), (0.0,))
        return empty, empty
    ranks = rank_values(union)
    max_rank = max(ranks.values())
    hist_a = build_histogram(values_a, ranks, num_buckets=num_buckets, max_rank=max_rank)
    hist_b = build_histogram(values_b, ranks, num_buckets=num_buckets, max_rank=max_rank)
    return hist_a, hist_b
