"""Distribution substrate: quantile histograms and Earth Mover's Distance."""

from repro.distributions.emd import (
    column_emd,
    emd_1d,
    emd_general,
    histogram_emd,
    intersection_emd,
)
from repro.distributions.histograms import (
    QuantileHistogram,
    build_histogram,
    build_histogram_pair,
    rank_values,
)

__all__ = [
    "QuantileHistogram",
    "build_histogram",
    "build_histogram_pair",
    "rank_values",
    "emd_1d",
    "emd_general",
    "histogram_emd",
    "column_emd",
    "intersection_emd",
]
