"""Core schema-matching API: matches, ranked results and the matcher base class.

Every method in the suite — Cupid, Similarity Flooding, COMA, the
distribution-based matcher, SemProp, EmbDI and the Jaccard–Levenshtein
baseline — implements :class:`BaseMatcher` and returns a :class:`MatchResult`:
a list of column-pair correspondences *ranked by matching confidence*, which
is the output format the paper argues dataset discovery needs (Section II-C).

Matching is a **two-phase protocol**:

1. :meth:`BaseMatcher.prepare` condenses one table into a
   :class:`PreparedTable` — a matcher-specific bundle of everything the
   method derives from a single table in isolation (tokenised names, column
   profiles, value sets, MinHash signatures, schema trees/graphs, ontology
   links).  Preparation touches only that table, so a prepared table can be
   cached and reused across many match calls.
2. :meth:`BaseMatcher.match_prepared` combines two prepared tables into the
   ranked :class:`MatchResult`.  Only genuinely *pairwise* work (pair EMDs,
   fixpoint propagation, joint embedding training) happens here.

:meth:`BaseMatcher.get_matches` remains the convenience entry point — it
prepares both sides and delegates to :meth:`match_prepared` — so one-off
callers are unaffected.  Dataset discovery, which matches one query table
against hundreds of candidates, prepares the query exactly once and streams
candidates through :meth:`match_prepared` (see
:func:`repro.discovery.search.prune_then_rerank`), turning O(candidates)
redundant query-side preprocessing into O(1).

Third-party matchers may implement either side of the protocol: overriding
only :meth:`get_matches` keeps working (the default :meth:`match_prepared`
falls back to it), while overriding :meth:`prepare`/:meth:`match_prepared`
opts into prepared reuse and caching.
"""

from __future__ import annotations

import abc
import math
from dataclasses import dataclass, field
from enum import Enum
from typing import TYPE_CHECKING, Iterable, Iterator, Mapping, Optional, Sequence, Union

from repro.data.table import ColumnRef, Table

if TYPE_CHECKING:  # pragma: no cover - annotation-only (cycle guard)
    from repro.discovery.cascade import CandidateSignals

__all__ = ["MatchType", "Match", "MatchResult", "PreparedTable", "BaseMatcher"]


class MatchType(str, Enum):
    """The matcher categories of Table I of the paper."""

    ATTRIBUTE_OVERLAP = "attribute_overlap"
    VALUE_OVERLAP = "value_overlap"
    SEMANTIC_OVERLAP = "semantic_overlap"
    DATA_TYPE = "data_type"
    DISTRIBUTION = "distribution"
    EMBEDDINGS = "embeddings"


@dataclass(frozen=True, order=True)
class Match:
    """A scored correspondence between a source column and a target column."""

    score: float
    source: ColumnRef
    target: ColumnRef

    def as_pair(self) -> tuple[str, str]:
        """Return ``(source column name, target column name)``."""
        return (self.source.column, self.target.column)

    def as_refs(self) -> tuple[ColumnRef, ColumnRef]:
        """Return ``(source ref, target ref)``."""
        return (self.source, self.target)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.source} ~ {self.target} ({self.score:.3f})"


class MatchResult:
    """An ordered (descending score) list of :class:`Match` objects.

    The class encapsulates the ranking semantics: ties are broken
    deterministically by column names so that experiments are reproducible.
    """

    def __init__(self, matches: Iterable[Match] = ()) -> None:
        self._matches = sorted(
            matches,
            key=lambda m: (-m.score, m.source.table, m.source.column, m.target.table, m.target.column),
        )

    @classmethod
    def from_scores(
        cls,
        scores: Mapping[tuple[ColumnRef, ColumnRef], float],
        threshold: float = 0.0,
        keep_zero: bool = False,
    ) -> "MatchResult":
        """Build a result from a ``{(source, target): score}`` mapping.

        Pairs scoring at or below *threshold* are dropped unless *keep_zero*
        is set (some matchers deliberately emit complete rankings).
        """
        matches = [
            Match(score=float(score), source=source, target=target)
            for (source, target), score in scores.items()
            if keep_zero or score > threshold
        ]
        return cls(matches)

    # ------------------------------------------------------------------ #
    # sequence behaviour
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._matches)

    def __iter__(self) -> Iterator[Match]:
        return iter(self._matches)

    def __getitem__(self, index: int) -> Match:
        return self._matches[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MatchResult(n={len(self)})"

    @property
    def matches(self) -> list[Match]:
        """The ranked matches (copy)."""
        return list(self._matches)

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #
    def top_k(self, k: int) -> "MatchResult":
        """The first *k* matches of the ranking."""
        return MatchResult(self._matches[: max(k, 0)])

    def ranked_pairs(self) -> list[tuple[str, str]]:
        """Column-name pairs in ranking order."""
        return [match.as_pair() for match in self._matches]

    def ranked_ref_pairs(self) -> list[tuple[ColumnRef, ColumnRef]]:
        """Fully qualified ref pairs in ranking order."""
        return [match.as_refs() for match in self._matches]

    def scores(self) -> dict[tuple[str, str], float]:
        """``{(source column, target column): score}`` (best score per pair)."""
        result: dict[tuple[str, str], float] = {}
        for match in self._matches:
            pair = match.as_pair()
            if pair not in result:
                result[pair] = match.score
        return result

    def filter_threshold(self, threshold: float) -> "MatchResult":
        """Matches with ``score >= threshold``."""
        return MatchResult(m for m in self._matches if m.score >= threshold)

    def one_to_one(self) -> "MatchResult":
        """Greedy 1-1 filtering of the ranking (each column used at most once)."""
        used_sources: set[ColumnRef] = set()
        used_targets: set[ColumnRef] = set()
        kept: list[Match] = []
        for match in self._matches:
            if match.source in used_sources or match.target in used_targets:
                continue
            kept.append(match)
            used_sources.add(match.source)
            used_targets.add(match.target)
        return MatchResult(kept)

    def to_records(self) -> list[dict[str, object]]:
        """Serialise to a list of plain dictionaries (for JSON/CSV export)."""
        return [
            {
                "source_table": match.source.table,
                "source_column": match.source.column,
                "target_table": match.target.table,
                "target_column": match.target.column,
                "score": match.score,
            }
            for match in self._matches
        ]


@dataclass(frozen=True)
class PreparedTable:
    """One table plus everything a specific matcher precomputes from it.

    Attributes
    ----------
    table:
        The underlying table (always available, so matchers whose pairwise
        stage needs raw values — e.g. EmbDI's joint embedding training — can
        reach them).
    fingerprint:
        The :meth:`BaseMatcher.fingerprint` of the matcher configuration that
        produced the payload.  A matcher only trusts payloads carrying its
        own fingerprint; anything else is transparently re-prepared.
    payload:
        Matcher-specific artifacts (value sets, signatures, schema trees...).
        Must stay picklable: prepared query tables are shipped to rerank
        worker processes.
    """

    table: Table
    fingerprint: str
    payload: Mapping[str, object] = field(default_factory=dict)

    @property
    def name(self) -> str:
        """Name of the underlying table."""
        return self.table.name


class BaseMatcher(abc.ABC):
    """Abstract base class of every schema matching method in the suite.

    Subclasses implement the two-phase protocol — :meth:`prepare` and
    :meth:`match_prepared` — or, for simple/legacy methods, just
    :meth:`get_matches`; class attributes describe the method for the
    registry and the Table I coverage report.
    """

    #: Human-readable method name (e.g. ``"Cupid"``).
    name: str = "base"
    #: Short code used in the paper's figures (e.g. ``"CU"``).
    code: str = "??"
    #: The match types of Table I this method covers.
    match_types: tuple[MatchType, ...] = ()
    #: Whether the method reads instance values (affects runtime accounting).
    uses_instances: bool = False
    #: Whether the method reads schema-level information.
    uses_schema: bool = True

    # ------------------------------------------------------------------ #
    # the two-phase protocol
    # ------------------------------------------------------------------ #
    def fingerprint(self) -> str:
        """Stable identity of this matcher's *prepared artifacts*.

        Keys prepared payloads, the
        :class:`~repro.discovery.prepared.PreparedTableCache` and the
        persistent :class:`~repro.discovery.prepared.PreparedStore`: two
        matcher instances with the same class, the same
        :meth:`prepare_parameters` and the same :meth:`_fingerprint_extras`
        share prepared tables; changing any parameter that shapes
        :meth:`prepare` output produces a different fingerprint.  Parameters
        that only affect the pairwise stage (e.g. an acceptance threshold
        applied in :meth:`match_prepared`) are deliberately excluded, so a
        parameter sweep over them reuses one prepared payload per table.
        """
        cls = type(self)
        params = ", ".join(
            f"{k}={v!r}" for k, v in sorted(self.prepare_parameters().items())
        )
        extras = self._fingerprint_extras()
        suffix = f" deps={extras!r}" if extras else ""
        return f"{cls.__module__}.{cls.__qualname__}({params}){suffix}"

    def prepare_parameters(self) -> dict[str, object]:
        """The subset of :meth:`parameters` that shapes :meth:`prepare` output.

        The default is *all* parameters — always safe, never maximally
        shared.  Matchers whose prepare stage provably ignores some
        parameters override this to exclude them, which lets the prepared
        caches and the experiment runner reuse payloads across a parameter
        sweep.  Never exclude a parameter the prepare stage reads: a stale
        payload would silently corrupt matches.
        """
        return self.parameters()

    def _fingerprint_extras(self) -> tuple[object, ...]:
        """Identity tokens of dependencies :meth:`parameters` cannot see.

        :meth:`parameters` only exposes public attributes, so matchers whose
        prepared artifacts depend on privately-stored collaborators (a
        custom thesaurus, ontology or embedding model) override this to
        return stable, content-based tokens for them — otherwise two
        configurations differing only in such a dependency would share cache
        entries.  Tokens must be stable across processes (no ``id()``): the
        parallel rerank recomputes fingerprints in worker processes.
        """
        return ()

    def prefers_legacy_get_matches(self) -> bool:
        """True when a subclass overrode :meth:`get_matches` below the class
        that last overrode :meth:`match_prepared`.

        Such a subclass (e.g. a third-party matcher deriving from a bundled
        one to post-process its scores) expects every ranking to flow
        through its ``get_matches``; callers that normally use the prepared
        fast path (discovery, ensembles) consult this predicate and fall
        back to ``get_matches`` so the override is never silently bypassed.
        """
        for klass in type(self).__mro__:
            owns_match_prepared = "match_prepared" in klass.__dict__
            if "get_matches" in klass.__dict__ and not owns_match_prepared:
                return True
            if owns_match_prepared:
                return False
        return False

    def prepare(self, table: Table) -> PreparedTable:
        """Precompute this matcher's single-table artifacts for *table*.

        The default prepares nothing (the payload is empty); matchers with
        per-table work override this and stash their artifacts in the
        payload.
        """
        return PreparedTable(table=table, fingerprint=self.fingerprint())

    # ------------------------------------------------------------------ #
    # rerank-cascade hooks
    # ------------------------------------------------------------------ #
    def score_bound(
        self, prepared_query: PreparedTable, signals: "CandidateSignals"
    ) -> float:
        """Upper bound on any column-pair score against this candidate.

        Stage 1 of the rerank cascade calls this once per shortlisted
        candidate with the *prepared* query table and the candidate's cheap
        store-resident evidence (a
        :class:`~repro.discovery.cascade.CandidateSignals`: sketch-level
        MinHash Jaccard, histogram distance, column counts).  The returned
        value must satisfy, for every column pair ``(q, c)``::

            match_prepared(prepared_query, prepare(candidate))
                .score of (q, c)  <=  score_bound(prepared_query, signals)

        whenever :meth:`bounds_admissible` is ``True`` — the cascade then
        skips the expensive :meth:`match_prepared` for candidates whose
        bound falls strictly below the current top-k cutoff, and the final
        ranking is provably identical to scoring everything.

        A matcher that can only *estimate* (its exact score may exceed the
        estimate) should still override this but leave
        :meth:`bounds_admissible` at ``False``: the value is then used
        purely to schedule scoring best-bound-first (which tightens the
        cutoff early and feeds the anytime budget), never to skip.

        The conservative default is ``+inf`` — "I cannot bound this" — so
        third-party matchers are always scored exactly.  Overrides should
        return ``+inf`` themselves for any configuration where their
        calibration assumptions break (mismatched signature widths or
        seeds, value sampling that could truncate, semantic evidence the
        signals cannot see).
        """
        return math.inf

    def bounds_admissible(self) -> bool:
        """Whether :meth:`score_bound` is a *sound* upper bound.

        Only an admissible bound may cause the rerank cascade to skip a
        candidate; inadmissible bounds (the default) still order the work
        but every candidate is scored exactly.  Override to return ``True``
        only when :meth:`score_bound` provably dominates every pair score
        this matcher can emit (returning ``+inf`` for configurations it
        cannot vouch for).
        """
        return False

    def match_prepared(self, source: PreparedTable, target: PreparedTable) -> MatchResult:
        """Compute the ranked matches from two prepared tables.

        The default supports legacy matchers that only implement
        :meth:`get_matches` by unwrapping the tables; matchers implementing
        the two-phase protocol override this with their pairwise stage.
        """
        if type(self).get_matches is BaseMatcher.get_matches:
            raise TypeError(
                f"{type(self).__name__} must override match_prepared() "
                "(or the legacy get_matches())"
            )
        return self.get_matches(source.table, target.table)

    def get_matches(self, source: Table, target: Table) -> MatchResult:
        """Compute the ranked matches between *source* and *target* columns.

        Thin default over the two-phase protocol: prepare both sides, then
        match.  Discovery callers should instead prepare the query once and
        call :meth:`match_prepared` per candidate.
        """
        if type(self).match_prepared is BaseMatcher.match_prepared:
            raise TypeError(
                f"{type(self).__name__} must override get_matches() "
                "or match_prepared()"
            )
        return self.match_prepared(self.prepare(source), self.prepare(target))

    def _ensure_prepared(self, table: Union[Table, PreparedTable]) -> PreparedTable:
        """Coerce *table* into a PreparedTable this matcher can consume.

        Raw tables are prepared on the spot; prepared tables carrying a
        foreign fingerprint (another matcher, or the same matcher under a
        different configuration) are re-prepared from their underlying table
        so a stale payload can never corrupt a match.
        """
        if isinstance(table, PreparedTable):
            if table.fingerprint == self.fingerprint():
                return table
            table = table.table
        return self.prepare(table)

    def parameters(self) -> dict[str, object]:
        """Return the method's current parameter values (for result records).

        The default implementation exposes public, non-callable instance
        attributes, which matches how the concrete matchers store their
        configuration.
        """
        return {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_") and not callable(value)
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.parameters().items()))
        return f"{type(self).__name__}({params})"
