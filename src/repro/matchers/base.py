"""Core schema-matching API: matches, ranked results and the matcher base class.

Every method in the suite — Cupid, Similarity Flooding, COMA, the
distribution-based matcher, SemProp, EmbDI and the Jaccard–Levenshtein
baseline — implements :class:`BaseMatcher` and returns a :class:`MatchResult`:
a list of column-pair correspondences *ranked by matching confidence*, which
is the output format the paper argues dataset discovery needs (Section II-C).
"""

from __future__ import annotations

import abc
from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Iterator, Mapping, Optional, Sequence

from repro.data.table import ColumnRef, Table

__all__ = ["MatchType", "Match", "MatchResult", "BaseMatcher"]


class MatchType(str, Enum):
    """The matcher categories of Table I of the paper."""

    ATTRIBUTE_OVERLAP = "attribute_overlap"
    VALUE_OVERLAP = "value_overlap"
    SEMANTIC_OVERLAP = "semantic_overlap"
    DATA_TYPE = "data_type"
    DISTRIBUTION = "distribution"
    EMBEDDINGS = "embeddings"


@dataclass(frozen=True, order=True)
class Match:
    """A scored correspondence between a source column and a target column."""

    score: float
    source: ColumnRef
    target: ColumnRef

    def as_pair(self) -> tuple[str, str]:
        """Return ``(source column name, target column name)``."""
        return (self.source.column, self.target.column)

    def as_refs(self) -> tuple[ColumnRef, ColumnRef]:
        """Return ``(source ref, target ref)``."""
        return (self.source, self.target)

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.source} ~ {self.target} ({self.score:.3f})"


class MatchResult:
    """An ordered (descending score) list of :class:`Match` objects.

    The class encapsulates the ranking semantics: ties are broken
    deterministically by column names so that experiments are reproducible.
    """

    def __init__(self, matches: Iterable[Match] = ()) -> None:
        self._matches = sorted(
            matches,
            key=lambda m: (-m.score, m.source.table, m.source.column, m.target.table, m.target.column),
        )

    @classmethod
    def from_scores(
        cls,
        scores: Mapping[tuple[ColumnRef, ColumnRef], float],
        threshold: float = 0.0,
        keep_zero: bool = False,
    ) -> "MatchResult":
        """Build a result from a ``{(source, target): score}`` mapping.

        Pairs scoring at or below *threshold* are dropped unless *keep_zero*
        is set (some matchers deliberately emit complete rankings).
        """
        matches = [
            Match(score=float(score), source=source, target=target)
            for (source, target), score in scores.items()
            if keep_zero or score > threshold
        ]
        return cls(matches)

    # ------------------------------------------------------------------ #
    # sequence behaviour
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._matches)

    def __iter__(self) -> Iterator[Match]:
        return iter(self._matches)

    def __getitem__(self, index: int) -> Match:
        return self._matches[index]

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"MatchResult(n={len(self)})"

    @property
    def matches(self) -> list[Match]:
        """The ranked matches (copy)."""
        return list(self._matches)

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #
    def top_k(self, k: int) -> "MatchResult":
        """The first *k* matches of the ranking."""
        return MatchResult(self._matches[: max(k, 0)])

    def ranked_pairs(self) -> list[tuple[str, str]]:
        """Column-name pairs in ranking order."""
        return [match.as_pair() for match in self._matches]

    def ranked_ref_pairs(self) -> list[tuple[ColumnRef, ColumnRef]]:
        """Fully qualified ref pairs in ranking order."""
        return [match.as_refs() for match in self._matches]

    def scores(self) -> dict[tuple[str, str], float]:
        """``{(source column, target column): score}`` (best score per pair)."""
        result: dict[tuple[str, str], float] = {}
        for match in self._matches:
            pair = match.as_pair()
            if pair not in result:
                result[pair] = match.score
        return result

    def filter_threshold(self, threshold: float) -> "MatchResult":
        """Matches with ``score >= threshold``."""
        return MatchResult(m for m in self._matches if m.score >= threshold)

    def one_to_one(self) -> "MatchResult":
        """Greedy 1-1 filtering of the ranking (each column used at most once)."""
        used_sources: set[ColumnRef] = set()
        used_targets: set[ColumnRef] = set()
        kept: list[Match] = []
        for match in self._matches:
            if match.source in used_sources or match.target in used_targets:
                continue
            kept.append(match)
            used_sources.add(match.source)
            used_targets.add(match.target)
        return MatchResult(kept)

    def to_records(self) -> list[dict[str, object]]:
        """Serialise to a list of plain dictionaries (for JSON/CSV export)."""
        return [
            {
                "source_table": match.source.table,
                "source_column": match.source.column,
                "target_table": match.target.table,
                "target_column": match.target.column,
                "score": match.score,
            }
            for match in self._matches
        ]


class BaseMatcher(abc.ABC):
    """Abstract base class of every schema matching method in the suite.

    Subclasses implement :meth:`get_matches`; class attributes describe the
    method for the registry and the Table I coverage report.
    """

    #: Human-readable method name (e.g. ``"Cupid"``).
    name: str = "base"
    #: Short code used in the paper's figures (e.g. ``"CU"``).
    code: str = "??"
    #: The match types of Table I this method covers.
    match_types: tuple[MatchType, ...] = ()
    #: Whether the method reads instance values (affects runtime accounting).
    uses_instances: bool = False
    #: Whether the method reads schema-level information.
    uses_schema: bool = True

    @abc.abstractmethod
    def get_matches(self, source: Table, target: Table) -> MatchResult:
        """Compute the ranked matches between *source* and *target* columns."""

    def parameters(self) -> dict[str, object]:
        """Return the method's current parameter values (for result records).

        The default implementation exposes public, non-callable instance
        attributes, which matches how the concrete matchers store their
        configuration.
        """
        return {
            key: value
            for key, value in vars(self).items()
            if not key.startswith("_") and not callable(value)
        }

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        params = ", ".join(f"{k}={v!r}" for k, v in sorted(self.parameters().items()))
        return f"{type(self).__name__}({params})"
