"""SemProp matcher package."""

from repro.matchers.semprop.matcher import SemPropMatcher
from repro.matchers.semprop.semantic import SemanticLink, coherence_score, link_to_ontology

__all__ = ["SemPropMatcher", "SemanticLink", "coherence_score", "link_to_ontology"]
