"""SemProp's semantic matcher: linking schema elements to ontology classes.

SemProp (Fernandez et al., ICDE 2018 — "Seeping Semantics") links attribute
and table names to classes of a domain ontology using word-embedding
similarity, then relates schema elements *transitively* through those links:
two columns match semantically when they link (strongly and coherently
enough) to the same or related ontology classes.

This module implements the link computation.  Embeddings come from the
deterministic pre-trained substitute (see
:mod:`repro.embeddings.pretrained`), which intentionally carries only lexical
signal — reproducing the paper's observation that generic pre-trained vectors
help little on domain-specific vocabulary.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.embeddings.pretrained import PretrainedEmbeddings, default_pretrained_embeddings
from repro.ontology.model import Ontology
from repro.text.tokenize import tokenize_identifier

__all__ = ["SemanticLink", "link_to_ontology", "coherence_score"]


@dataclass(frozen=True)
class SemanticLink:
    """A link from a schema element to an ontology class."""

    element: str
    ontology_class: str
    strength: float


def link_to_ontology(
    element_name: str,
    ontology: Ontology,
    embeddings: PretrainedEmbeddings | None = None,
    threshold: float = 0.5,
    top_k: int = 3,
) -> list[SemanticLink]:
    """Link a schema element name to ontology classes by embedding similarity.

    Parameters
    ----------
    element_name:
        Attribute or table name.
    ontology:
        Domain ontology whose class labels are candidate link targets.
    embeddings:
        Pre-trained embedding substitute used to embed names and labels.
    threshold:
        Minimum cosine similarity for a link (``sem.threshold`` in Table II).
    top_k:
        At most this many links (strongest first) are returned.
    """
    embeddings = embeddings or default_pretrained_embeddings()
    element_text = " ".join(tokenize_identifier(element_name)) or str(element_name)
    links: list[SemanticLink] = []
    for class_name in ontology.class_names:
        best = 0.0
        for label in ontology.labels_of(class_name):
            best = max(best, embeddings.similarity(element_text, label))
        if best >= threshold:
            links.append(SemanticLink(element=element_name, ontology_class=class_name, strength=best))
    links.sort(key=lambda link: -link.strength)
    return links[:top_k]


def coherence_score(links_a: list[SemanticLink], links_b: list[SemanticLink], ontology: Ontology) -> float:
    """Coherence of two link sets: how strongly they point at related classes.

    The score is the maximum over pairs of links of
    ``min(strength_a, strength_b)`` for links whose ontology classes are
    identical or related (shared ancestry); 0 when no such pair exists.
    """
    best = 0.0
    for link_a in links_a:
        for link_b in links_b:
            if ontology.related(link_a.ontology_class, link_b.ontology_class):
                best = max(best, min(link_a.strength, link_b.strength))
    return best
