"""The SemProp matcher (Fernandez et al., ICDE 2018).

SemProp is a hybrid method combining a *semantic* matcher and a *syntactic*
one.  The semantic matcher links attribute/table names to ontology classes
using pre-trained word embeddings and relates columns transitively through
those links; column pairs that cannot be related semantically are forwarded
to a syntactic matcher, which here (as in the Aurum code base the paper used)
estimates value-set overlap with MinHash sketches.

Parameters follow Table II: ``minhash_threshold`` (syntactic acceptance),
``semantic_threshold`` (strength required for an ontology link) and
``coherent_threshold`` (coherence required between two columns' link sets).
"""

from __future__ import annotations

import math

from repro.data.table import Table
from repro.embeddings.pretrained import PretrainedEmbeddings, default_pretrained_embeddings
from repro.matchers.base import BaseMatcher, MatchResult, MatchType, PreparedTable
from repro.matchers.registry import register_matcher
from repro.matchers.semprop.semantic import coherence_score, link_to_ontology
from repro.ontology.domain import business_ontology
from repro.ontology.model import Ontology
from repro.sketches.minhash import jaccard_matrix, minhash_signature

__all__ = ["SemPropMatcher"]


@register_matcher
class SemPropMatcher(BaseMatcher):
    """SemProp: ontology-anchored semantic matching with a syntactic fallback.

    Parameters
    ----------
    minhash_threshold:
        Estimated-Jaccard threshold of the syntactic fallback (Table II grid
        0.2–0.3).
    semantic_threshold:
        Embedding similarity required to link a name to an ontology class
        (Table II grid 0.4–0.6).
    coherent_threshold:
        Coherence required between the two columns' link sets for a semantic
        match (Table II grid 0.2–0.4).
    ontology:
        Domain ontology; defaults to the bundled business ontology.
    num_permutations:
        MinHash signature size of the syntactic matcher.
    sample_size:
        Values per column used when sketching.
    """

    name = "SemProp"
    code = "SP"
    match_types = (MatchType.SEMANTIC_OVERLAP, MatchType.VALUE_OVERLAP, MatchType.EMBEDDINGS)
    uses_instances = True
    uses_schema = True

    def __init__(
        self,
        minhash_threshold: float = 0.25,
        semantic_threshold: float = 0.5,
        coherent_threshold: float = 0.3,
        ontology: Ontology | None = None,
        embeddings: PretrainedEmbeddings | None = None,
        num_permutations: int = 128,
        sample_size: int = 1000,
    ) -> None:
        for label, value in (
            ("minhash_threshold", minhash_threshold),
            ("semantic_threshold", semantic_threshold),
            ("coherent_threshold", coherent_threshold),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {value}")
        self.minhash_threshold = minhash_threshold
        self.semantic_threshold = semantic_threshold
        self.coherent_threshold = coherent_threshold
        self.num_permutations = num_permutations
        self.sample_size = sample_size
        self._ontology = ontology or business_ontology()
        self._embeddings = embeddings or default_pretrained_embeddings()

    def _fingerprint_extras(self) -> tuple[object, ...]:
        """The ontology and embedding model shape every prepared link."""
        return (self._ontology.fingerprint(), self._embeddings.fingerprint())

    def prepare_parameters(self) -> dict[str, object]:
        """Prepared links/sketches ignore the match-stage thresholds.

        ``minhash_threshold`` and ``coherent_threshold`` are applied per
        pair in :meth:`match_prepared`; ``semantic_threshold``,
        ``num_permutations`` and ``sample_size`` are baked into the payload
        and stay in the fingerprint.
        """
        return {
            key: value
            for key, value in self.parameters().items()
            if key not in ("minhash_threshold", "coherent_threshold")
        }

    def prepare(self, table: Table) -> PreparedTable:
        """Link column names to the ontology and sketch value sets once.

        Both artifacts depend only on one table (plus the matcher's ontology,
        embeddings and thresholds), so discovery amortises the expensive
        embedding lookups and MinHash hashing over every candidate the
        prepared query meets.
        """
        links = {
            column.name: link_to_ontology(
                column.name,
                self._ontology,
                embeddings=self._embeddings,
                threshold=self.semantic_threshold,
            )
            for column in table.columns
        }
        signatures = {
            column.name: minhash_signature(
                column.as_strings()[: self.sample_size],
                num_permutations=self.num_permutations,
            )
            for column in table.columns
        }
        return PreparedTable(
            table=table,
            fingerprint=self.fingerprint(),
            payload={"links": links, "signatures": signatures},
        )

    def bounds_admissible(self) -> bool:
        """SemProp's cascade bound is sound (it returns ``+inf`` otherwise).

        When :meth:`score_bound` returns a finite value, every pair fell to
        the syntactic branch (no query column carries ontology links, so
        ``coherence_score`` is 0 for every pair and stays below the positive
        ``coherent_threshold``), and the branch scores at most
        ``0.5 * estimated_jaccard``.  Under the conditions the bound checks
        — same signature width and seed as the store sketches, no value
        sampling truncation on either side — the matcher's MinHash estimate
        *is* the store-sketch estimate (both hash the identical normalised
        distinct value set through the identical permutation family), so
        ``0.5 * signals.max_jaccard`` dominates every pair score exactly.
        """
        return True

    def score_bound(self, prepared_query: PreparedTable, signals) -> float:
        """Upper-bound pair scores with the store-sketch Jaccard, when sound.

        Sound only when the semantic branch is provably closed and the
        syntactic estimates coincide with the store sketches; any violated
        assumption returns ``+inf`` (score exactly).
        """
        if self.coherent_threshold <= 0.0:
            # A zero threshold lets linkless pairs take the semantic branch
            # (score >= 0.5) — nothing cheap bounds that.
            return math.inf
        links = prepared_query.payload.get("links") or {}
        if any(links.values()):
            # Semantic matches score 0.5 + 0.5 * coherence; the sketch
            # signals carry no ontology evidence to bound coherence with.
            return math.inf
        if signals.num_permutations != self.num_permutations or signals.seed != 7:
            # minhash_signature() hashes with the default seed-7 family; a
            # store sketched differently estimates a different Jaccard.
            return math.inf
        if (
            prepared_query.table.num_rows > self.sample_size
            or signals.max_values > self.sample_size
        ):
            # Sampling would truncate a value set on one side, so the two
            # estimators no longer hash the same sets.
            return math.inf
        return 0.5 * min(1.0, signals.max_jaccard)

    def match_prepared(self, source: PreparedTable, target: PreparedTable) -> MatchResult:
        """Combine semantic (ontology-linked) and syntactic (MinHash) evidence."""
        source = self._ensure_prepared(source)
        target = self._ensure_prepared(target)
        source_links = source.payload["links"]
        target_links = target.payload["links"]
        source_signatures = source.payload["signatures"]
        target_signatures = target.payload["signatures"]

        # All-pairs syntactic evidence in one broadcast comparison; each cell
        # equals the corresponding signature.jaccard() exactly, so rankings
        # are unchanged versus the per-pair loop.
        source_columns = source.table.columns
        target_columns = target.table.columns
        estimated_matrix = jaccard_matrix(
            [source_signatures[column.name] for column in source_columns],
            [target_signatures[column.name] for column in target_columns],
        )

        scores = {}
        for i, source_column in enumerate(source_columns):
            for j, target_column in enumerate(target_columns):
                semantic = coherence_score(
                    source_links[source_column.name],
                    target_links[target_column.name],
                    self._ontology,
                )
                if semantic >= self.coherent_threshold:
                    # Semantic matches rank above purely syntactic ones.
                    score = 0.5 + 0.5 * semantic
                else:
                    estimated = float(estimated_matrix[i, j])
                    score = 0.5 * estimated if estimated >= self.minhash_threshold else 0.25 * estimated
                scores[(source_column.ref, target_column.ref)] = score
        return MatchResult.from_scores(scores, keep_zero=True)
