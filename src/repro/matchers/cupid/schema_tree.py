"""Schema tree model used by Cupid.

Cupid translates each schema into a tree of elements.  For a denormalised
tabular dataset the tree is shallow: a root schema node, a table node and one
leaf per column.  Each element carries a name, a category (Cupid groups
elements of compatible categories) and, for leaves, a data type.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterator, Optional

from repro.data.table import Table
from repro.data.types import DataType

__all__ = ["SchemaElement", "SchemaTree", "build_schema_tree"]


@dataclass
class SchemaElement:
    """A node of a Cupid schema tree.

    Attributes
    ----------
    name:
        Element name (table or column name).
    category:
        Element category; Cupid only compares elements in compatible
        categories (here: ``"schema"``, ``"table"`` or the data type name for
        leaves).
    data_type:
        Leaf data type (``None`` for inner nodes).
    children:
        Child elements.
    """

    name: str
    category: str
    data_type: Optional[DataType] = None
    children: list["SchemaElement"] = field(default_factory=list)

    @property
    def is_leaf(self) -> bool:
        """True when the element has no children (i.e. it is a column)."""
        return not self.children

    def add_child(self, child: "SchemaElement") -> None:
        """Append a child element."""
        self.children.append(child)

    def leaves(self) -> list["SchemaElement"]:
        """All leaf descendants (the element itself when it is a leaf)."""
        if self.is_leaf:
            return [self]
        result: list[SchemaElement] = []
        for child in self.children:
            result.extend(child.leaves())
        return result

    def walk(self) -> Iterator["SchemaElement"]:
        """Pre-order traversal of the subtree rooted at this element."""
        yield self
        for child in self.children:
            yield from child.walk()


@dataclass
class SchemaTree:
    """A schema tree with convenience accessors."""

    root: SchemaElement
    table_name: str

    def leaves(self) -> list[SchemaElement]:
        """All leaf (column) elements."""
        return self.root.leaves()

    def elements(self) -> list[SchemaElement]:
        """All elements in pre-order."""
        return list(self.root.walk())

    def leaf_by_name(self, name: str) -> Optional[SchemaElement]:
        """Find the leaf whose name equals *name* (case-sensitive)."""
        for leaf in self.leaves():
            if leaf.name == name:
                return leaf
        return None


def build_schema_tree(table: Table) -> SchemaTree:
    """Build the Cupid schema tree of a tabular dataset.

    The tree is ``schema -> table -> columns``; column leaves carry their
    inferred data type as category so that Cupid's category compatibility
    check (numeric vs. textual leaves) has signal to work with.
    """
    root = SchemaElement(name=f"{table.name}_schema", category="schema")
    table_element = SchemaElement(name=table.name, category="table")
    root.add_child(table_element)
    for column in table.columns:
        leaf = SchemaElement(
            name=column.name,
            category=column.data_type.value,
            data_type=column.data_type,
        )
        table_element.add_child(leaf)
    return SchemaTree(root=root, table_name=table.name)
