"""The Cupid schema matcher (Madhavan, Bernstein, Rahm — VLDB 2001).

Cupid is schema-based: it combines linguistic matching (name similarity via a
thesaurus) and structural matching (TreeMatch over the schema trees) into a
weighted similarity per element pair.  As in the paper's reproduction, the
thesaurus is a bundled lexicon standing in for WordNet and name similarity
doubles as data-compatibility evidence.

The matcher emits the complete ranked list of column pairs with their
weighted similarities; pairs below ``th_accept`` are still reported (with
their scores) because Valentine evaluates rankings, but the parameter governs
the structural-adjustment step exactly as in Cupid.
"""

from __future__ import annotations

from repro.data.table import Table
from repro.matchers.base import BaseMatcher, MatchResult, MatchType, PreparedTable
from repro.matchers.cupid.schema_tree import build_schema_tree
from repro.matchers.cupid.structural import CupidWeights, tree_match
from repro.matchers.registry import register_matcher
from repro.text.thesaurus import Thesaurus, default_thesaurus

__all__ = ["CupidMatcher"]


@register_matcher
class CupidMatcher(BaseMatcher):
    """Cupid: linguistic + structural schema-based matching.

    Parameters
    ----------
    w_struct:
        Structural weight for inner nodes (paper grid: 0.0–0.6).
    leaf_w_struct:
        Structural weight for leaves (paper grid: 0.0–0.6).
    th_accept:
        Acceptance threshold used by TreeMatch (paper grid: 0.3–0.8).
    thesaurus:
        Thesaurus used for linguistic matching; defaults to the bundled one.
    """

    name = "Cupid"
    code = "CU"
    match_types = (MatchType.ATTRIBUTE_OVERLAP, MatchType.SEMANTIC_OVERLAP, MatchType.DATA_TYPE)
    uses_instances = False
    uses_schema = True

    def __init__(
        self,
        w_struct: float = 0.2,
        leaf_w_struct: float = 0.2,
        th_accept: float = 0.7,
        thesaurus: Thesaurus | None = None,
    ) -> None:
        for label, value in (("w_struct", w_struct), ("leaf_w_struct", leaf_w_struct), ("th_accept", th_accept)):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {value}")
        self.w_struct = w_struct
        self.leaf_w_struct = leaf_w_struct
        self.th_accept = th_accept
        self._thesaurus = thesaurus or default_thesaurus()

    def _fingerprint_extras(self) -> tuple[object, ...]:
        """A custom thesaurus changes the linguistic similarities."""
        return (self._thesaurus.fingerprint(),)

    def prepare_parameters(self) -> dict[str, object]:
        """The schema tree depends on the table alone.

        ``w_struct``/``leaf_w_struct``/``th_accept`` only steer TreeMatch in
        :meth:`match_prepared`, so all Cupid configurations share prepared
        trees.
        """
        return {}

    def prepare(self, table: Table) -> PreparedTable:
        """Build the table's Cupid schema tree once."""
        return PreparedTable(
            table=table,
            fingerprint=self.fingerprint(),
            payload={"tree": build_schema_tree(table)},
        )

    def match_prepared(self, source: PreparedTable, target: PreparedTable) -> MatchResult:
        """Match columns through Cupid's TreeMatch over the two schema trees."""
        source = self._ensure_prepared(source)
        target = self._ensure_prepared(target)
        tree_source = source.payload["tree"]
        tree_target = target.payload["tree"]
        weights = CupidWeights(
            w_struct=self.w_struct,
            leaf_w_struct=self.leaf_w_struct,
            th_accept=self.th_accept,
        )
        weighted = tree_match(tree_source, tree_target, weights=weights, thesaurus=self._thesaurus)
        scores = {}
        for (source_name, target_name), score in weighted.items():
            scores[
                (source.table.column(source_name).ref, target.table.column(target_name).ref)
            ] = score
        return MatchResult.from_scores(scores, keep_zero=True)
