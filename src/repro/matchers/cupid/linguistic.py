"""Cupid's linguistic matching phase.

Linguistic matching computes name-based similarity between elements of the
two schema trees that belong to compatible categories.  Following Madhavan et
al. (VLDB 2001) the phase has three steps: normalisation (tokenisation,
abbreviation expansion), categorisation (grouping by data-type category) and
comparison (thesaurus lookups combined with token-level string similarity).

The paper notes that the original Cupid is not openly available and that the
Valentine authors used WordNet as thesaurus; here the bundled mini-thesaurus
(see :mod:`repro.text.thesaurus`) plays that role, and name similarity also
serves as the data-type compatibility surrogate, as in the paper.
"""

from __future__ import annotations

from typing import Sequence

from repro.data.types import DataType, type_compatibility
from repro.matchers.cupid.schema_tree import SchemaElement
from repro.text.distance import jaro_winkler_similarity, monge_elkan
from repro.text.thesaurus import Thesaurus, default_thesaurus
from repro.text.tokenize import tokenize_identifier

__all__ = ["name_similarity", "linguistic_similarity", "category_compatibility"]


def name_similarity(
    name_a: str,
    name_b: str,
    thesaurus: Thesaurus | None = None,
) -> float:
    """Token-level name similarity combining thesaurus and string evidence.

    For every token pair the score is the maximum of the thesaurus relation
    score and the Jaro–Winkler string similarity; token scores are combined
    with a Monge–Elkan style averaging in both directions.
    """
    thesaurus = thesaurus or default_thesaurus()
    tokens_a = tokenize_identifier(name_a)
    tokens_b = tokenize_identifier(name_b)
    if not tokens_a or not tokens_b:
        return 0.0

    def token_score(token_a: str, token_b: str) -> float:
        lexical = thesaurus.relation_score(token_a, token_b)
        string = jaro_winkler_similarity(token_a, token_b)
        return max(lexical, string)

    forward = monge_elkan(tokens_a, tokens_b, inner=token_score)
    backward = monge_elkan(tokens_b, tokens_a, inner=token_score)
    return (forward + backward) / 2.0


def category_compatibility(element_a: SchemaElement, element_b: SchemaElement) -> float:
    """Compatibility of two elements' categories in [0, 1].

    Inner nodes compare by category equality; leaves compare through the
    data-type compatibility table.
    """
    if element_a.is_leaf and element_b.is_leaf:
        type_a = element_a.data_type or DataType.UNKNOWN
        type_b = element_b.data_type or DataType.UNKNOWN
        return type_compatibility(type_a, type_b)
    return 1.0 if element_a.category == element_b.category else 0.5


def linguistic_similarity(
    element_a: SchemaElement,
    element_b: SchemaElement,
    thesaurus: Thesaurus | None = None,
) -> float:
    """Linguistic similarity of two schema elements.

    The product of name similarity and category compatibility, as in Cupid's
    ``lsim = cat_compatibility * name_similarity``.
    """
    return category_compatibility(element_a, element_b) * name_similarity(
        element_a.name, element_b.name, thesaurus=thesaurus
    )
