"""Cupid schema matcher package."""

from repro.matchers.cupid.linguistic import linguistic_similarity, name_similarity
from repro.matchers.cupid.matcher import CupidMatcher
from repro.matchers.cupid.schema_tree import SchemaElement, SchemaTree, build_schema_tree
from repro.matchers.cupid.structural import CupidWeights, tree_match

__all__ = [
    "CupidMatcher",
    "CupidWeights",
    "SchemaElement",
    "SchemaTree",
    "build_schema_tree",
    "tree_match",
    "linguistic_similarity",
    "name_similarity",
]
