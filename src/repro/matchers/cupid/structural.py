"""Cupid's structural matching phase (TreeMatch).

Structural similarity of two elements reflects how similar their *contexts*
are: for leaves, the similarity of their ancestors; for inner nodes, the
fraction of strongly linked leaves in their subtrees.  The implementation
follows the TreeMatch post-order sweep of the Cupid paper, simplified to the
shallow trees produced by tabular schemata:

1. leaves are initialised with ``ssim = data-type compatibility`` and
   ``wsim = w_struct * ssim + (1 - w_struct) * lsim``;
2. inner nodes get ``ssim`` equal to the fraction of leaf pairs in their
   subtrees whose weighted similarity exceeds ``th_accept``;
3. after computing an inner node's similarity, the leaves of strongly similar
   subtrees are boosted (``c_inc``) and those of dissimilar ones are
   penalised (``c_dec``), as in the original algorithm.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping

from repro.data.types import DataType, type_compatibility
from repro.matchers.cupid.linguistic import linguistic_similarity
from repro.matchers.cupid.schema_tree import SchemaElement, SchemaTree
from repro.text.thesaurus import Thesaurus

__all__ = ["CupidWeights", "tree_match"]

ElementPair = tuple[int, int]


@dataclass(frozen=True)
class CupidWeights:
    """Weights and thresholds of the TreeMatch computation.

    Attributes
    ----------
    w_struct:
        Weight of structural similarity for inner nodes.
    leaf_w_struct:
        Weight of structural similarity for leaves.
    th_accept:
        Similarity threshold above which a leaf pair is considered strongly
        linked.
    th_high / th_low:
        Thresholds steering the increase/decrease adjustment of leaf
        similarities after an inner node is processed.
    c_inc / c_dec:
        Multiplicative factors applied during adjustment.
    """

    w_struct: float = 0.2
    leaf_w_struct: float = 0.2
    th_accept: float = 0.7
    th_high: float = 0.6
    th_low: float = 0.35
    c_inc: float = 1.2
    c_dec: float = 0.9


def tree_match(
    tree_a: SchemaTree,
    tree_b: SchemaTree,
    weights: CupidWeights | None = None,
    thesaurus: Thesaurus | None = None,
) -> dict[tuple[str, str], float]:
    """Run TreeMatch and return weighted similarities for leaf (column) pairs.

    Returns
    -------
    dict
        ``{(leaf name in A, leaf name in B): weighted similarity}``.
    """
    weights = weights or CupidWeights()
    leaves_a = tree_a.leaves()
    leaves_b = tree_b.leaves()

    lsim: dict[tuple[int, int], float] = {}
    wsim: dict[tuple[int, int], float] = {}

    # Step 1: leaf-level linguistic + data-type similarity.
    for i, leaf_a in enumerate(leaves_a):
        for j, leaf_b in enumerate(leaves_b):
            linguistic = linguistic_similarity(leaf_a, leaf_b, thesaurus=thesaurus)
            type_a = leaf_a.data_type or DataType.UNKNOWN
            type_b = leaf_b.data_type or DataType.UNKNOWN
            structural = type_compatibility(type_a, type_b)
            lsim[(i, j)] = linguistic
            wsim[(i, j)] = (
                weights.leaf_w_struct * structural
                + (1.0 - weights.leaf_w_struct) * linguistic
            )

    # Step 2: inner-node structural similarity (single table node per side for
    # tabular data, but the computation is generic over subtrees).
    inner_a = [e for e in tree_a.elements() if not e.is_leaf]
    inner_b = [e for e in tree_b.elements() if not e.is_leaf]
    index_a = {id(leaf): i for i, leaf in enumerate(leaves_a)}
    index_b = {id(leaf): j for j, leaf in enumerate(leaves_b)}

    for node_a in reversed(inner_a):
        for node_b in reversed(inner_b):
            sub_a = [index_a[id(leaf)] for leaf in node_a.leaves()]
            sub_b = [index_b[id(leaf)] for leaf in node_b.leaves()]
            if not sub_a or not sub_b:
                continue
            strong = sum(
                1
                for i in sub_a
                for j in sub_b
                if wsim[(i, j)] > weights.th_accept
            )
            total = len(sub_a) * len(sub_b)
            ssim = strong / total if total else 0.0
            node_linguistic = linguistic_similarity(node_a, node_b, thesaurus=thesaurus)
            node_wsim = weights.w_struct * ssim + (1.0 - weights.w_struct) * node_linguistic

            # Step 3: adjust leaf similarities of this subtree pair.
            if node_wsim > weights.th_high:
                factor = weights.c_inc
            elif node_wsim < weights.th_low:
                factor = weights.c_dec
            else:
                factor = 1.0
            if factor != 1.0:
                for i in sub_a:
                    for j in sub_b:
                        structural_component = min(1.0, wsim[(i, j)] * factor)
                        wsim[(i, j)] = (
                            weights.leaf_w_struct * structural_component
                            + (1.0 - weights.leaf_w_struct) * lsim[(i, j)]
                        )

    return {
        (leaves_a[i].name, leaves_b[j].name): score
        for (i, j), score in wsim.items()
    }
