"""Distribution-based matcher package."""

from repro.matchers.distribution_based.clustering import (
    ClusterRefinement,
    connected_components,
    refine_cluster,
)
from repro.matchers.distribution_based.matcher import DistributionBasedMatcher

__all__ = [
    "DistributionBasedMatcher",
    "ClusterRefinement",
    "connected_components",
    "refine_cluster",
]
