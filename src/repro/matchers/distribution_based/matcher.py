"""Distribution-based matcher (Zhang, Hadjieleftheriou, Ooi et al. — SIGMOD 2011).

The matcher is purely instance-based: relationships between columns are
captured by comparing the *distributions* of their values.

Phase 1 ("global" EMD)
    Quantile histograms are built for every cross-table column pair over the
    union of the pair's values, and the EMD between them is computed.  Pairs
    whose normalised EMD is at most ``phase1_threshold`` form edges of a
    graph whose connected components are the coarse clusters.

Phase 2 (intersection EMD + integer program)
    Within every coarse cluster the intersection EMD is computed for each
    pair; pairs at or below ``phase2_threshold`` are candidate edges whose
    quality feeds the correlation-clustering integer program (see
    :mod:`repro.matchers.distribution_based.clustering`).  Columns that end
    up in the same final cluster are reported as matches.

Valentine needs a ranked list, so every cross-table pair receives a score:
pairs confirmed by the final clusters rank above unconfirmed pairs, and both
groups are ordered by their (inverted, normalised) EMD.
"""

from __future__ import annotations

from repro.data.table import Column, ColumnRef, Table
from repro.distributions.emd import column_emd, intersection_emd
from repro.matchers.base import BaseMatcher, MatchResult, MatchType, PreparedTable
from repro.matchers.distribution_based.clustering import connected_components, refine_cluster
from repro.matchers.registry import register_matcher

__all__ = ["DistributionBasedMatcher"]


@register_matcher
class DistributionBasedMatcher(BaseMatcher):
    """Distribution-based (EMD) column matching.

    Parameters
    ----------
    phase1_threshold:
        Normalised-EMD cut-off of the coarse clustering phase (paper grids:
        0.1–0.2 for the strict run, 0.3–0.5 for the lenient run).
    phase2_threshold:
        Normalised intersection-EMD cut-off of the refinement phase.
    num_buckets:
        Number of quantile-histogram buckets.
    sample_size:
        Number of (distinct) values per column used to build histograms.
    """

    name = "DistributionBased"
    code = "DB"
    match_types = (MatchType.VALUE_OVERLAP, MatchType.DISTRIBUTION)
    uses_instances = True
    uses_schema = False

    def __init__(
        self,
        phase1_threshold: float = 0.15,
        phase2_threshold: float = 0.15,
        num_buckets: int = 20,
        sample_size: int = 1000,
    ) -> None:
        for label, value in (
            ("phase1_threshold", phase1_threshold),
            ("phase2_threshold", phase2_threshold),
        ):
            if not 0.0 <= value <= 1.0:
                raise ValueError(f"{label} must be in [0, 1], got {value}")
        if num_buckets <= 0:
            raise ValueError("num_buckets must be positive")
        self.phase1_threshold = phase1_threshold
        self.phase2_threshold = phase2_threshold
        self.num_buckets = num_buckets
        self.sample_size = sample_size

    # ------------------------------------------------------------------ #
    # helpers
    # ------------------------------------------------------------------ #
    def _column_values(self, column: Column) -> list[str]:
        values = [str(v).strip().lower() for v in column.non_missing()]
        if self.sample_size and len(values) > self.sample_size:
            values = values[: self.sample_size]
        return values

    def _normalised_emd(self, values_a: list[str], values_b: list[str]) -> float:
        if not values_a or not values_b:
            return 1.0
        raw = column_emd(values_a, values_b, num_buckets=self.num_buckets)
        return min(1.0, raw / self.num_buckets)

    def _normalised_intersection_emd(self, values_a: list[str], values_b: list[str]) -> float:
        if not values_a or not values_b:
            return 1.0
        raw = intersection_emd(values_a, values_b, num_buckets=self.num_buckets)
        return min(1.0, raw / self.num_buckets)

    # ------------------------------------------------------------------ #
    # matching
    # ------------------------------------------------------------------ #
    def prepare_parameters(self) -> dict[str, object]:
        """Only ``sample_size`` shapes the prepared (truncated) value lists.

        The clustering thresholds and ``num_buckets`` act on the pairwise
        EMD computation in :meth:`match_prepared`.
        """
        return {
            key: value
            for key, value in self.parameters().items()
            if key == "sample_size"
        }

    def prepare(self, table: Table) -> PreparedTable:
        """Normalise (and truncate) every column's value list once.

        The EMDs themselves are genuinely pairwise — each pair's histograms
        are built over the union of the two columns' values — so only the
        value normalisation can move to the prepare phase.
        """
        values = {c.name: self._column_values(c) for c in table.columns}
        return PreparedTable(
            table=table,
            fingerprint=self.fingerprint(),
            payload={"values": values},
        )

    def score_bound(self, prepared_query: PreparedTable, signals) -> float:
        """Scheduling estimate only — ``bounds_admissible()`` stays False.

        The matcher's EMDs are computed over *per-pair* quantile histograms
        of the two columns' value union; the store's sketches histogram a
        fixed hashed rank domain instead.  The two distances are not
        comparable, so no sound bound exists — but a small store-histogram
        distance still correlates with a small EMD, which makes
        ``0.5 + 0.5 * (1 - d/2)`` (the best score a cluster-confirmed pair
        at that distance could plausibly reach) a useful best-first
        ordering for the cascade and the anytime budget.
        """
        closeness = max(0.0, 1.0 - signals.min_histogram_distance / 2.0)
        return 0.5 + 0.5 * closeness

    def match_prepared(self, source: PreparedTable, target: PreparedTable) -> MatchResult:
        """Run the two clustering phases and rank cross-table column pairs."""
        source = self._ensure_prepared(source)
        target = self._ensure_prepared(target)
        source_values = source.payload["values"]
        target_values = target.payload["values"]

        source_nodes = [("source", name) for name in source.table.column_names]
        target_nodes = [("target", name) for name in target.table.column_names]
        all_nodes = source_nodes + target_nodes

        # Phase 1: global EMD between cross-table pairs.
        phase1_emd: dict[tuple, float] = {}
        phase1_edges: list[tuple] = []
        for source_name, values_a in source_values.items():
            for target_name, values_b in target_values.items():
                emd = self._normalised_emd(values_a, values_b)
                node_a = ("source", source_name)
                node_b = ("target", target_name)
                phase1_emd[(node_a, node_b)] = emd
                if emd <= self.phase1_threshold:
                    phase1_edges.append((node_a, node_b))

        coarse_clusters = connected_components(all_nodes, phase1_edges)

        # Phase 2: intersection EMD refinement + ILP within each coarse cluster.
        matched_pairs: set[tuple[str, str]] = set()
        for cluster in coarse_clusters:
            if len(cluster) < 2:
                continue
            members = sorted(cluster)
            edge_quality: dict[tuple, float] = {}
            for i, node_a in enumerate(members):
                for node_b in members[i + 1 :]:
                    if node_a[0] == node_b[0]:
                        continue  # only cross-table candidates matter
                    values_a = (source_values if node_a[0] == "source" else target_values)[node_a[1]]
                    values_b = (source_values if node_b[0] == "source" else target_values)[node_b[1]]
                    refined = self._normalised_intersection_emd(values_a, values_b)
                    if refined <= self.phase2_threshold:
                        edge_quality[(node_a, node_b)] = 1.0 - refined
            refinement = refine_cluster(members, edge_quality)
            for final_cluster in refinement.clusters:
                sources = [n for n in final_cluster if n[0] == "source"]
                targets = [n for n in final_cluster if n[0] == "target"]
                for node_a in sources:
                    for node_b in targets:
                        matched_pairs.add((node_a[1], node_b[1]))

        # Ranked output: confirmed cluster members first, then the rest, both
        # ordered by inverted EMD.
        scores: dict[tuple[ColumnRef, ColumnRef], float] = {}
        for (node_a, node_b), emd in phase1_emd.items():
            source_name, target_name = node_a[1], node_b[1]
            base = 1.0 - emd
            if (source_name, target_name) in matched_pairs:
                score = 0.5 + 0.5 * base
            else:
                score = 0.5 * base
            scores[
                (source.table.column(source_name).ref, target.table.column(target_name).ref)
            ] = score
        return MatchResult.from_scores(scores, keep_zero=True)
