"""Clustering machinery of the distribution-based matcher.

Zhang et al. (SIGMOD 2011) discover related attributes in two phases:

* **Phase 1** builds coarse clusters from pairwise EMD between the columns'
  quantile histograms — columns whose (normalised) EMD falls below a global
  threshold end up in the same connected component.
* **Phase 2** refines each cluster using the *intersection EMD* and decides
  the final clusters with an integer program (the original paper uses CPLEX;
  Valentine used PuLP, this reproduction uses the bundled branch-and-bound
  solver).  We encode the refinement as correlation clustering over the
  candidate edges: binary variable per edge, maximise total edge quality,
  subject to transitivity constraints so that the selected edges form cliques.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Hashable, Mapping, Sequence

from repro.optimize.ilp import BinaryProgram

__all__ = ["connected_components", "refine_cluster", "ClusterRefinement"]

Node = Hashable
Edge = tuple[Node, Node]


def connected_components(nodes: Sequence[Node], edges: Sequence[Edge]) -> list[set[Node]]:
    """Connected components of an undirected graph given nodes and edges."""
    parent: dict[Node, Node] = {node: node for node in nodes}

    def find(node: Node) -> Node:
        while parent[node] != node:
            parent[node] = parent[parent[node]]
            node = parent[node]
        return node

    def union(a: Node, b: Node) -> None:
        root_a, root_b = find(a), find(b)
        if root_a != root_b:
            parent[root_b] = root_a

    for a, b in edges:
        if a in parent and b in parent:
            union(a, b)

    components: dict[Node, set[Node]] = {}
    for node in nodes:
        components.setdefault(find(node), set()).add(node)
    return list(components.values())


@dataclass
class ClusterRefinement:
    """Result of refining one coarse cluster.

    Attributes
    ----------
    accepted_edges:
        Edges (column pairs) kept by the integer program.
    clusters:
        Final clusters: connected components of the accepted edges plus
        singleton clusters for isolated columns.
    """

    accepted_edges: list[Edge]
    clusters: list[set[Node]]


def refine_cluster(
    members: Sequence[Node],
    edge_quality: Mapping[Edge, float],
    max_ilp_nodes: int = 14,
) -> ClusterRefinement:
    """Refine one coarse cluster into final clusters via correlation clustering.

    Parameters
    ----------
    members:
        Columns in the coarse cluster.
    edge_quality:
        Candidate edges with quality in ``(0, 1]`` (higher is better); edges
        absent from the mapping are not candidates.
    max_ilp_nodes:
        Above this cluster size the exact ILP would blow up, so a greedy
        transitive-closure fallback is used instead.
    """
    members = list(members)
    candidate_edges = [
        edge for edge in edge_quality
        if edge[0] in members and edge[1] in members and edge[0] != edge[1]
    ]
    if not candidate_edges:
        return ClusterRefinement(accepted_edges=[], clusters=[{m} for m in members])

    if len(members) > max_ilp_nodes:
        accepted = _greedy_refinement(members, edge_quality, candidate_edges)
    else:
        accepted = _ilp_refinement(members, edge_quality, candidate_edges)

    clusters = connected_components(members, accepted)
    return ClusterRefinement(accepted_edges=accepted, clusters=clusters)


def _ilp_refinement(
    members: Sequence[Node],
    edge_quality: Mapping[Edge, float],
    candidate_edges: Sequence[Edge],
) -> list[Edge]:
    """Exact correlation clustering on a small cluster via the 0/1 ILP solver."""
    edge_index = {edge: i for i, edge in enumerate(candidate_edges)}
    program = BinaryProgram(num_variables=len(candidate_edges))
    program.set_objective(
        {edge_index[edge]: float(edge_quality[edge]) for edge in candidate_edges}
    )

    def lookup(a: Node, b: Node) -> int | None:
        return edge_index.get((a, b), edge_index.get((b, a)))

    # Transitivity: if (a,b) and (b,c) are selected then (a,c) must exist and
    # be selected.  When (a,c) is not even a candidate, forbid selecting both.
    for a, b, c in combinations(members, 3):
        for first, second, third in (
            ((a, b), (b, c), (a, c)),
            ((a, b), (a, c), (b, c)),
            ((a, c), (b, c), (a, b)),
        ):
            i = lookup(*first)
            j = lookup(*second)
            if i is None or j is None:
                continue
            k = lookup(*third)
            if k is None:
                program.add_constraint({i: 1.0, j: 1.0}, "<=", 1.0)
            else:
                program.add_constraint({i: 1.0, j: 1.0, k: -1.0}, "<=", 1.0)

    solution = program.solve()
    if not solution.is_optimal:
        return list(candidate_edges)
    return [edge for edge, index in edge_index.items() if solution.assignment.get(index)]


def _greedy_refinement(
    members: Sequence[Node],
    edge_quality: Mapping[Edge, float],
    candidate_edges: Sequence[Edge],
) -> list[Edge]:
    """Greedy fallback: accept edges best-first, merging clusters as we go."""
    cluster_of: dict[Node, int] = {node: i for i, node in enumerate(members)}
    accepted: list[Edge] = []
    ordered = sorted(candidate_edges, key=lambda e: -edge_quality[e])
    for a, b in ordered:
        if cluster_of[a] == cluster_of[b]:
            accepted.append((a, b))
            continue
        # Merge only when the edge quality is high enough relative to the
        # existing intra-cluster structure (best-first greedy always merges).
        old, new = cluster_of[b], cluster_of[a]
        for node, cluster in cluster_of.items():
            if cluster == old:
                cluster_of[node] = new
        accepted.append((a, b))
    return accepted
