"""COMA composite matcher package."""

from repro.matchers.coma.combination import CombinationConfig, aggregate, select_pairs
from repro.matchers.coma.component_matchers import (
    DataTypeMatcher,
    NamePathMatcher,
    NameTokenMatcher,
    NameTrigramMatcher,
    NumericStatisticsMatcher,
    PatternMatcher,
    ThesaurusMatcher,
    ValueOverlapMatcher,
)
from repro.matchers.coma.matcher import ComaInstanceMatcher, ComaSchemaMatcher

__all__ = [
    "ComaSchemaMatcher",
    "ComaInstanceMatcher",
    "CombinationConfig",
    "aggregate",
    "select_pairs",
    "NameTokenMatcher",
    "NameTrigramMatcher",
    "NamePathMatcher",
    "DataTypeMatcher",
    "ThesaurusMatcher",
    "ValueOverlapMatcher",
    "NumericStatisticsMatcher",
    "PatternMatcher",
]
