"""The COMA composite matcher (Do & Rahm, VLDB 2002; COMA++ / COMA 3.0).

Two flavours are exposed, matching the two strategies Valentine evaluates:

* :class:`ComaSchemaMatcher` (``COMA-Schema``, code ``COS``) combines the
  schema-level component matchers;
* :class:`ComaInstanceMatcher` (``COMA-Instance``, code ``COI``) additionally
  combines the instance-level components from the COMA++ instance extension.

Valentine runs COMA with the accept threshold set to 0 so that every element
pair is reported with its combined similarity, and ranking decides.
"""

from __future__ import annotations

from typing import Sequence

from repro.data.table import Table
from repro.matchers.base import BaseMatcher, MatchResult, MatchType, PreparedTable
from repro.matchers.coma.combination import CombinationConfig, aggregate, select_pairs
from repro.matchers.coma.component_matchers import (
    ComponentMatcher,
    DataTypeMatcher,
    NamePathMatcher,
    NameTokenMatcher,
    NameTrigramMatcher,
    NumericStatisticsMatcher,
    PatternMatcher,
    ThesaurusMatcher,
    ValueOverlapMatcher,
)
from repro.matchers.registry import register_matcher

__all__ = ["ComaSchemaMatcher", "ComaInstanceMatcher"]


class _ComaBase(BaseMatcher):
    """Shared implementation of the two COMA strategies."""

    uses_schema = True

    def __init__(
        self,
        threshold: float = 0.0,
        aggregation: str = "average",
        use_both_directions: bool = True,
    ) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        self.threshold = threshold
        self.aggregation = aggregation
        self.use_both_directions = use_both_directions
        self._config = CombinationConfig(
            aggregation=aggregation,
            selection="threshold",
            threshold=threshold,
        )

    def _components(self) -> Sequence[ComponentMatcher]:
        raise NotImplementedError

    def prepare_parameters(self) -> dict[str, object]:
        """Only parameters consumed by a component's prepare stage.

        ``threshold``/``aggregation``/``use_both_directions`` shape the
        combination step in :meth:`match_prepared`; of the constructor
        parameters only ``sample_size`` (COMA-Instance's value sampling)
        changes the per-column features.
        """
        return {
            key: value
            for key, value in self.parameters().items()
            if key == "sample_size"
        }

    def prepare(self, table: Table) -> PreparedTable:
        """Precompute every component's per-column features once per table.

        The payload maps each component name to its feature bundle per
        column (in column order), so the pairwise stage never re-tokenises
        names or re-normalises value sets.
        """
        features = {
            component.name: [component.prepare(column) for column in table.columns]
            for component in self._components()
        }
        return PreparedTable(
            table=table,
            fingerprint=self.fingerprint(),
            payload={"features": features},
        )

    def match_prepared(self, source: PreparedTable, target: PreparedTable) -> MatchResult:
        """Run every component matcher, aggregate and rank the similarities."""
        source = self._ensure_prepared(source)
        target = self._ensure_prepared(target)
        source_features = source.payload["features"]
        target_features = target.payload["features"]
        source_names = source.table.column_names
        target_names = target.table.column_names

        component_scores: dict[str, dict[tuple[str, str], float]] = {}
        for component in self._components():
            features_a = source_features[component.name]
            features_b = target_features[component.name]
            scores: dict[tuple[str, str], float] = {}
            for i, source_name in enumerate(source_names):
                for j, target_name in enumerate(target_names):
                    forward = component.similarity_prepared(features_a[i], features_b[j])
                    if self.use_both_directions:
                        backward = component.similarity_prepared(
                            features_b[j], features_a[i]
                        )
                        value = (forward + backward) / 2.0
                    else:
                        value = forward
                    scores[(source_name, target_name)] = value
            component_scores[component.name] = scores

        aggregated = aggregate(component_scores, self._config)
        selected = select_pairs(aggregated, self._config)

        result_scores = {}
        for (source_name, target_name), score in selected.items():
            result_scores[
                (source.table.column(source_name).ref, target.table.column(target_name).ref)
            ] = score
        return MatchResult.from_scores(result_scores, keep_zero=True)


@register_matcher
class ComaSchemaMatcher(_ComaBase):
    """COMA with the default schema-level strategy (name, path, type, thesaurus).

    Parameters
    ----------
    threshold:
        Accept threshold for reported pairs (Valentine sets 0).
    aggregation:
        Aggregation of component similarities (default COMA average).
    use_both_directions:
        Evaluate similarity in both directions and average (COMA default).
    """

    name = "ComaSchema"
    code = "COS"
    match_types = (MatchType.ATTRIBUTE_OVERLAP, MatchType.SEMANTIC_OVERLAP, MatchType.DATA_TYPE)
    uses_instances = False

    def _components(self) -> Sequence[ComponentMatcher]:
        return (
            NameTokenMatcher(),
            NameTrigramMatcher(),
            NamePathMatcher(),
            DataTypeMatcher(),
            ThesaurusMatcher(),
        )


@register_matcher
class ComaInstanceMatcher(_ComaBase):
    """COMA with the instance-extended strategy (COMA++ instance matchers).

    Combines the schema-level components with value-overlap, numeric
    statistics and pattern matchers over the columns' instances.
    """

    name = "ComaInstance"
    code = "COI"
    match_types = (
        MatchType.ATTRIBUTE_OVERLAP,
        MatchType.VALUE_OVERLAP,
        MatchType.SEMANTIC_OVERLAP,
        MatchType.DATA_TYPE,
        MatchType.DISTRIBUTION,
    )
    uses_instances = True

    def __init__(
        self,
        threshold: float = 0.0,
        aggregation: str = "average",
        use_both_directions: bool = True,
        sample_size: int = 2000,
    ) -> None:
        super().__init__(
            threshold=threshold,
            aggregation=aggregation,
            use_both_directions=use_both_directions,
        )
        self.sample_size = sample_size

    def _components(self) -> Sequence[ComponentMatcher]:
        return (
            NameTokenMatcher(),
            NameTrigramMatcher(),
            NamePathMatcher(),
            DataTypeMatcher(),
            ThesaurusMatcher(),
            ValueOverlapMatcher(sample_size=self.sample_size),
            NumericStatisticsMatcher(),
            PatternMatcher(),
        )
