"""COMA's similarity combination machinery.

COMA combines the similarity cube produced by its component matchers in three
configurable steps:

* **aggregation** of per-component similarities into one value per element
  pair (``max``, ``average``, ``weighted``);
* **direction** — similarity is evaluated source→target, target→source or in
  both directions (both directions is the COMA default and is what keeps
  rankings symmetric);
* **selection** — which candidate pairs are reported (``threshold``,
  ``max-delta``, or ``all`` — Valentine configures COMA with threshold 0 so
  every pair is reported with its score and ranking decides).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

__all__ = ["CombinationConfig", "aggregate", "select_pairs"]

PairKey = tuple[str, str]


@dataclass(frozen=True)
class CombinationConfig:
    """Configuration of COMA's combination step.

    Attributes
    ----------
    aggregation:
        ``"max"``, ``"average"`` or ``"weighted"``.
    weights:
        Component name → weight (only used by ``"weighted"``).
    selection:
        ``"all"``, ``"threshold"`` or ``"max_delta"``.
    threshold:
        Similarity threshold for the ``"threshold"`` selection (Valentine
        sets 0, i.e. report everything).
    delta:
        Tolerance for the ``"max_delta"`` selection: pairs within *delta* of
        the best score per source column survive.
    """

    aggregation: str = "average"
    weights: Mapping[str, float] | None = None
    selection: str = "threshold"
    threshold: float = 0.0
    delta: float = 0.05

    def __post_init__(self) -> None:
        if self.aggregation not in ("max", "average", "weighted"):
            raise ValueError(f"unknown aggregation {self.aggregation!r}")
        if self.selection not in ("all", "threshold", "max_delta"):
            raise ValueError(f"unknown selection {self.selection!r}")


def aggregate(
    component_scores: Mapping[str, Mapping[PairKey, float]],
    config: CombinationConfig,
) -> dict[PairKey, float]:
    """Aggregate per-component similarities into one score per pair."""
    pairs: set[PairKey] = set()
    for scores in component_scores.values():
        pairs.update(scores)
    aggregated: dict[PairKey, float] = {}
    for pair in pairs:
        values = []
        weights = []
        for component, scores in component_scores.items():
            value = scores.get(pair)
            if value is None:
                continue
            values.append(value)
            if config.aggregation == "weighted":
                weights.append((config.weights or {}).get(component, 1.0))
        if not values:
            aggregated[pair] = 0.0
        elif config.aggregation == "max":
            aggregated[pair] = max(values)
        elif config.aggregation == "average":
            aggregated[pair] = sum(values) / len(values)
        else:  # weighted
            total_weight = sum(weights) or 1.0
            aggregated[pair] = sum(v * w for v, w in zip(values, weights)) / total_weight
    return aggregated


def select_pairs(
    aggregated: Mapping[PairKey, float],
    config: CombinationConfig,
) -> dict[PairKey, float]:
    """Apply COMA's selection strategy to the aggregated similarities."""
    if config.selection == "all":
        return dict(aggregated)
    if config.selection == "threshold":
        return {pair: score for pair, score in aggregated.items() if score >= config.threshold}
    # max_delta: per source column keep candidates within delta of the best.
    best_per_source: dict[str, float] = {}
    for (source, _), score in aggregated.items():
        best_per_source[source] = max(best_per_source.get(source, 0.0), score)
    return {
        pair: score
        for pair, score in aggregated.items()
        if score >= best_per_source[pair[0]] - config.delta
    }
