"""COMA's constituent ("component") matchers.

COMA (Do & Rahm, VLDB 2002) is a *composite* matcher: it runs a library of
simple matchers over every element pair and combines their similarity values.
This module implements the component matchers used by the default strategies
of COMA 3.0 Community Edition as described in the literature:

Schema-level components
    * ``NameTokenMatcher`` — token-set similarity of attribute names with
      abbreviation expansion (a combination of trigram and edit similarity).
    * ``NameTrigramMatcher`` — character-trigram Dice similarity of raw names.
    * ``NamePathMatcher`` — similarity of the full ``table.column`` paths.
    * ``DataTypeMatcher`` — compatibility of inferred data types.
    * ``ThesaurusMatcher`` — synonym/hypernym lookups in the bundled lexicon.

Instance-level components (from the COMA++ instance extension)
    * ``ValueOverlapMatcher`` — Jaccard overlap of distinct value sets.
    * ``NumericStatisticsMatcher`` — similarity of numeric summary statistics.
    * ``PatternMatcher`` — similarity of simple value "shape" patterns
      (character classes and lengths).

Each component exposes ``similarity(source_column, target_column) -> float``
plus the two-phase form behind it: ``prepare(column)`` precomputes the
component's per-column features (token lists, trigram sets, value sets,
numeric profiles, pattern sets) and ``similarity_prepared(a, b)`` combines
two prepared feature bundles.  :class:`~repro.matchers.coma.matcher._ComaBase`
prepares every column of a table once and reuses the features across all
column pairs — and, through the matcher-level prepare/match protocol, across
all candidate tables of a discovery query.
"""

from __future__ import annotations

import math
from typing import Optional, Protocol

from repro.data.profiling import profile_column
from repro.data.table import Column
from repro.data.types import type_compatibility
from repro.text.distance import (
    dice_coefficient,
    jaccard_similarity,
    jaro_winkler_similarity,
    monge_elkan,
    normalized_levenshtein,
)
from repro.text.thesaurus import Thesaurus, default_thesaurus
from repro.text.tokenize import character_ngrams, tokenize_identifier

__all__ = [
    "ComponentMatcher",
    "NameTokenMatcher",
    "NameTrigramMatcher",
    "NamePathMatcher",
    "DataTypeMatcher",
    "ThesaurusMatcher",
    "ValueOverlapMatcher",
    "NumericStatisticsMatcher",
    "PatternMatcher",
]


class ComponentMatcher(Protocol):
    """Interface of a COMA component matcher."""

    name: str

    def similarity(self, source: Column, target: Column) -> float:
        """Similarity of two columns in [0, 1]."""
        ...  # pragma: no cover - protocol definition

    def prepare(self, column: Column) -> object:
        """Precompute this component's per-column features."""
        ...  # pragma: no cover - protocol definition

    def similarity_prepared(self, source: object, target: object) -> float:
        """Similarity of two prepared feature bundles in [0, 1]."""
        ...  # pragma: no cover - protocol definition


class _PreparableComponent:
    """Base for components: ``similarity`` is prepare-both-then-compare."""

    def prepare(self, column: Column) -> object:
        raise NotImplementedError

    def similarity_prepared(self, source: object, target: object) -> float:
        raise NotImplementedError

    def similarity(self, source: Column, target: Column) -> float:
        return self.similarity_prepared(self.prepare(source), self.prepare(target))


class NameTokenMatcher(_PreparableComponent):
    """Token-level name similarity with abbreviation expansion."""

    name = "name_tokens"

    def prepare(self, column: Column) -> list[str]:
        return tokenize_identifier(column.name)

    def similarity_prepared(self, source: list[str], target: list[str]) -> float:
        if not source or not target:
            return 0.0

        def inner(a: str, b: str) -> float:
            return max(jaro_winkler_similarity(a, b), normalized_levenshtein(a, b))

        forward = monge_elkan(source, target, inner=inner)
        backward = monge_elkan(target, source, inner=inner)
        return (forward + backward) / 2.0


class NameTrigramMatcher(_PreparableComponent):
    """Character-trigram Dice similarity of raw attribute names."""

    name = "name_trigrams"

    def prepare(self, column: Column) -> set[str]:
        return set(character_ngrams(column.name.lower(), n=3))

    def similarity_prepared(self, source: set[str], target: set[str]) -> float:
        return dice_coefficient(source, target)


class NamePathMatcher(_PreparableComponent):
    """Similarity of the qualified ``table.column`` name paths.

    Fabricated datasets frequently prefix column names with the table name;
    comparing full paths recovers signal in that case.
    """

    name = "name_path"

    def prepare(self, column: Column) -> tuple[set[str], str]:
        path = f"{column.table_name}.{column.name}".lower()
        return (set(character_ngrams(path, n=3)), column.name.lower())

    def similarity_prepared(
        self, source: tuple[set[str], str], target: tuple[set[str], str]
    ) -> float:
        trigram = dice_coefficient(source[0], target[0])
        # The unqualified tail often carries the real signal; blend both.
        tail = normalized_levenshtein(source[1], target[1])
        return 0.5 * trigram + 0.5 * tail


class DataTypeMatcher(_PreparableComponent):
    """Compatibility of the two columns' inferred data types."""

    name = "data_type"

    def prepare(self, column: Column):
        return column.data_type

    def similarity_prepared(self, source, target) -> float:
        return type_compatibility(source, target)


class ThesaurusMatcher(_PreparableComponent):
    """Synonym/hypernym relation score of the attribute names."""

    name = "thesaurus"

    def __init__(self, thesaurus: Thesaurus | None = None) -> None:
        self._thesaurus = thesaurus or default_thesaurus()

    def prepare(self, column: Column) -> list[str]:
        return tokenize_identifier(column.name)

    def similarity_prepared(self, source: list[str], target: list[str]) -> float:
        if not source or not target:
            return 0.0
        best = 0.0
        for token_a in source:
            for token_b in target:
                best = max(best, self._thesaurus.relation_score(token_a, token_b))
        return best


class ValueOverlapMatcher(_PreparableComponent):
    """Jaccard overlap of the distinct (normalised) value sets."""

    name = "value_overlap"

    def __init__(self, sample_size: int = 2000) -> None:
        self.sample_size = sample_size

    def prepare(self, column: Column) -> set[str]:
        return {str(v).strip().lower() for v in column.non_missing()[: self.sample_size]}

    def similarity_prepared(self, source: set[str], target: set[str]) -> float:
        return jaccard_similarity(source, target)


class NumericStatisticsMatcher(_PreparableComponent):
    """Similarity of numeric summary statistics (mean, std, range).

    Non-numeric columns score 0.  Statistics are compared with a bounded
    relative-difference measure so the result stays in [0, 1].
    """

    name = "numeric_statistics"

    @staticmethod
    def _relative_similarity(a: float, b: float) -> float:
        if a == b:
            return 1.0
        denominator = max(abs(a), abs(b))
        if denominator == 0:
            return 1.0
        return max(0.0, 1.0 - abs(a - b) / denominator)

    def prepare(self, column: Column):
        if not column.data_type.is_numeric:
            return None
        return profile_column(column)

    def similarity_prepared(self, source, target) -> float:
        if source is None or target is None:
            return 0.0
        if source.mean is None or target.mean is None:
            return 0.0
        parts = [
            self._relative_similarity(source.mean, target.mean),
            self._relative_similarity(source.std or 0.0, target.std or 0.0),
            self._relative_similarity(source.minimum or 0.0, target.minimum or 0.0),
            self._relative_similarity(source.maximum or 0.0, target.maximum or 0.0),
        ]
        return sum(parts) / len(parts)


class PatternMatcher(_PreparableComponent):
    """Similarity of value "shape" patterns.

    Every value is abstracted into a pattern of character classes
    (``9`` digits, ``A`` letters, ``#`` other) collapsed by run-length; the
    similarity is the Jaccard overlap of the two columns' pattern sets,
    blended with the similarity of average value lengths.
    """

    name = "pattern"

    def __init__(self, sample_size: int = 500) -> None:
        self.sample_size = sample_size

    @staticmethod
    def _pattern(value: str) -> str:
        classes = []
        for char in value:
            if char.isdigit():
                classes.append("9")
            elif char.isalpha():
                classes.append("A")
            elif char.isspace():
                classes.append("_")
            else:
                classes.append("#")
        collapsed = []
        for symbol in classes:
            if not collapsed or collapsed[-1] != symbol:
                collapsed.append(symbol)
        return "".join(collapsed)

    def prepare(self, column: Column) -> Optional[tuple[set[str], float]]:
        values = column.as_strings()[: self.sample_size]
        if not values:
            return None
        patterns = {self._pattern(v) for v in values}
        avg_len = sum(len(v) for v in values) / len(values)
        return (patterns, avg_len)

    def similarity_prepared(
        self,
        source: Optional[tuple[set[str], float]],
        target: Optional[tuple[set[str], float]],
    ) -> float:
        if source is None or target is None:
            return 0.0
        patterns_a, avg_len_a = source
        patterns_b, avg_len_b = target
        pattern_overlap = jaccard_similarity(patterns_a, patterns_b)
        longest = max(avg_len_a, avg_len_b)
        length_similarity = 1.0 - abs(avg_len_a - avg_len_b) / longest if longest else 1.0
        return 0.6 * pattern_overlap + 0.4 * length_similarity
