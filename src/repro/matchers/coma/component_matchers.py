"""COMA's constituent ("component") matchers.

COMA (Do & Rahm, VLDB 2002) is a *composite* matcher: it runs a library of
simple matchers over every element pair and combines their similarity values.
This module implements the component matchers used by the default strategies
of COMA 3.0 Community Edition as described in the literature:

Schema-level components
    * ``NameTokenMatcher`` — token-set similarity of attribute names with
      abbreviation expansion (a combination of trigram and edit similarity).
    * ``NameTrigramMatcher`` — character-trigram Dice similarity of raw names.
    * ``NamePathMatcher`` — similarity of the full ``table.column`` paths.
    * ``DataTypeMatcher`` — compatibility of inferred data types.
    * ``ThesaurusMatcher`` — synonym/hypernym lookups in the bundled lexicon.

Instance-level components (from the COMA++ instance extension)
    * ``ValueOverlapMatcher`` — Jaccard overlap of distinct value sets.
    * ``NumericStatisticsMatcher`` — similarity of numeric summary statistics.
    * ``PatternMatcher`` — similarity of simple value "shape" patterns
      (character classes and lengths).

Each component exposes ``similarity(source_column, target_column) -> float``.
"""

from __future__ import annotations

import math
from typing import Protocol

from repro.data.profiling import profile_column
from repro.data.table import Column
from repro.data.types import type_compatibility
from repro.text.distance import (
    dice_coefficient,
    jaccard_similarity,
    jaro_winkler_similarity,
    monge_elkan,
    normalized_levenshtein,
)
from repro.text.thesaurus import Thesaurus, default_thesaurus
from repro.text.tokenize import character_ngrams, tokenize_identifier

__all__ = [
    "ComponentMatcher",
    "NameTokenMatcher",
    "NameTrigramMatcher",
    "NamePathMatcher",
    "DataTypeMatcher",
    "ThesaurusMatcher",
    "ValueOverlapMatcher",
    "NumericStatisticsMatcher",
    "PatternMatcher",
]


class ComponentMatcher(Protocol):
    """Interface of a COMA component matcher."""

    name: str

    def similarity(self, source: Column, target: Column) -> float:
        """Similarity of two columns in [0, 1]."""
        ...  # pragma: no cover - protocol definition


class NameTokenMatcher:
    """Token-level name similarity with abbreviation expansion."""

    name = "name_tokens"

    def similarity(self, source: Column, target: Column) -> float:
        tokens_a = tokenize_identifier(source.name)
        tokens_b = tokenize_identifier(target.name)
        if not tokens_a or not tokens_b:
            return 0.0

        def inner(a: str, b: str) -> float:
            return max(jaro_winkler_similarity(a, b), normalized_levenshtein(a, b))

        forward = monge_elkan(tokens_a, tokens_b, inner=inner)
        backward = monge_elkan(tokens_b, tokens_a, inner=inner)
        return (forward + backward) / 2.0


class NameTrigramMatcher:
    """Character-trigram Dice similarity of raw attribute names."""

    name = "name_trigrams"

    def similarity(self, source: Column, target: Column) -> float:
        grams_a = character_ngrams(source.name.lower(), n=3)
        grams_b = character_ngrams(target.name.lower(), n=3)
        return dice_coefficient(grams_a, grams_b)


class NamePathMatcher:
    """Similarity of the qualified ``table.column`` name paths.

    Fabricated datasets frequently prefix column names with the table name;
    comparing full paths recovers signal in that case.
    """

    name = "name_path"

    def similarity(self, source: Column, target: Column) -> float:
        path_a = f"{source.table_name}.{source.name}".lower()
        path_b = f"{target.table_name}.{target.name}".lower()
        grams_a = character_ngrams(path_a, n=3)
        grams_b = character_ngrams(path_b, n=3)
        trigram = dice_coefficient(grams_a, grams_b)
        # The unqualified tail often carries the real signal; blend both.
        tail = normalized_levenshtein(source.name.lower(), target.name.lower())
        return 0.5 * trigram + 0.5 * tail


class DataTypeMatcher:
    """Compatibility of the two columns' inferred data types."""

    name = "data_type"

    def similarity(self, source: Column, target: Column) -> float:
        return type_compatibility(source.data_type, target.data_type)


class ThesaurusMatcher:
    """Synonym/hypernym relation score of the attribute names."""

    name = "thesaurus"

    def __init__(self, thesaurus: Thesaurus | None = None) -> None:
        self._thesaurus = thesaurus or default_thesaurus()

    def similarity(self, source: Column, target: Column) -> float:
        tokens_a = tokenize_identifier(source.name)
        tokens_b = tokenize_identifier(target.name)
        if not tokens_a or not tokens_b:
            return 0.0
        best = 0.0
        for token_a in tokens_a:
            for token_b in tokens_b:
                best = max(best, self._thesaurus.relation_score(token_a, token_b))
        return best


class ValueOverlapMatcher:
    """Jaccard overlap of the distinct (normalised) value sets."""

    name = "value_overlap"

    def __init__(self, sample_size: int = 2000) -> None:
        self.sample_size = sample_size

    def similarity(self, source: Column, target: Column) -> float:
        values_a = {str(v).strip().lower() for v in source.non_missing()[: self.sample_size]}
        values_b = {str(v).strip().lower() for v in target.non_missing()[: self.sample_size]}
        return jaccard_similarity(values_a, values_b)


class NumericStatisticsMatcher:
    """Similarity of numeric summary statistics (mean, std, range).

    Non-numeric columns score 0.  Statistics are compared with a bounded
    relative-difference measure so the result stays in [0, 1].
    """

    name = "numeric_statistics"

    @staticmethod
    def _relative_similarity(a: float, b: float) -> float:
        if a == b:
            return 1.0
        denominator = max(abs(a), abs(b))
        if denominator == 0:
            return 1.0
        return max(0.0, 1.0 - abs(a - b) / denominator)

    def similarity(self, source: Column, target: Column) -> float:
        if not (source.data_type.is_numeric and target.data_type.is_numeric):
            return 0.0
        profile_a = profile_column(source)
        profile_b = profile_column(target)
        if profile_a.mean is None or profile_b.mean is None:
            return 0.0
        parts = [
            self._relative_similarity(profile_a.mean, profile_b.mean),
            self._relative_similarity(profile_a.std or 0.0, profile_b.std or 0.0),
            self._relative_similarity(profile_a.minimum or 0.0, profile_b.minimum or 0.0),
            self._relative_similarity(profile_a.maximum or 0.0, profile_b.maximum or 0.0),
        ]
        return sum(parts) / len(parts)


class PatternMatcher:
    """Similarity of value "shape" patterns.

    Every value is abstracted into a pattern of character classes
    (``9`` digits, ``A`` letters, ``#`` other) collapsed by run-length; the
    similarity is the Jaccard overlap of the two columns' pattern sets,
    blended with the similarity of average value lengths.
    """

    name = "pattern"

    def __init__(self, sample_size: int = 500) -> None:
        self.sample_size = sample_size

    @staticmethod
    def _pattern(value: str) -> str:
        classes = []
        for char in value:
            if char.isdigit():
                classes.append("9")
            elif char.isalpha():
                classes.append("A")
            elif char.isspace():
                classes.append("_")
            else:
                classes.append("#")
        collapsed = []
        for symbol in classes:
            if not collapsed or collapsed[-1] != symbol:
                collapsed.append(symbol)
        return "".join(collapsed)

    def similarity(self, source: Column, target: Column) -> float:
        values_a = source.as_strings()[: self.sample_size]
        values_b = target.as_strings()[: self.sample_size]
        if not values_a or not values_b:
            return 0.0
        patterns_a = {self._pattern(v) for v in values_a}
        patterns_b = {self._pattern(v) for v in values_b}
        pattern_overlap = jaccard_similarity(patterns_a, patterns_b)
        avg_len_a = sum(len(v) for v in values_a) / len(values_a)
        avg_len_b = sum(len(v) for v in values_b) / len(values_b)
        longest = max(avg_len_a, avg_len_b)
        length_similarity = 1.0 - abs(avg_len_a - avg_len_b) / longest if longest else 1.0
        return 0.6 * pattern_overlap + 0.4 * length_similarity
