"""EmbDI matcher package."""

from repro.matchers.embdi.graph import DataGraph, build_data_graph, cid_token
from repro.matchers.embdi.matcher import EmbDIMatcher
from repro.matchers.embdi.walks import WalkConfig, generate_walks

__all__ = ["EmbDIMatcher", "DataGraph", "build_data_graph", "cid_token", "WalkConfig", "generate_walks"]
