"""Random-walk sentence generation for EmbDI.

Sentences are sequences of node tokens produced by uniform random walks over
the tripartite data graph.  Following EmbDI, a configurable number of walks
starts from every node (the original biases walk starts towards value and CID
nodes; we start from all nodes and let the caller set ``walks_per_node``).
The paper identifies this walk generation as EmbDI's runtime bottleneck —
which this reproduction faithfully retains.
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.matchers.embdi.graph import DataGraph

__all__ = ["WalkConfig", "generate_walks"]


@dataclass(frozen=True)
class WalkConfig:
    """Random walk generation parameters.

    Attributes
    ----------
    sentence_length:
        Number of tokens per walk (Table II: 60; scaled down by default for
        laptop-scale runs).
    walks_per_node:
        Number of walks started from every graph node.
    seed:
        Seed of the pseudo-random generator (determinism for experiments).
    """

    sentence_length: int = 60
    walks_per_node: int = 5
    seed: int = 42

    def __post_init__(self) -> None:
        if self.sentence_length < 2:
            raise ValueError("sentence_length must be at least 2")
        if self.walks_per_node < 1:
            raise ValueError("walks_per_node must be at least 1")


def generate_walks(graph: DataGraph, config: WalkConfig | None = None) -> list[list[str]]:
    """Generate random-walk sentences over *graph*.

    Isolated nodes yield no sentences.  The walk restarts from the start node
    whenever it reaches a dead end (which cannot happen on well-formed data
    graphs but keeps the generator total).
    """
    config = config or WalkConfig()
    rng = random.Random(config.seed)
    sentences: list[list[str]] = []
    for start in graph.all_nodes():
        if not graph.neighbours(start):
            continue
        for _ in range(config.walks_per_node):
            sentence = [start]
            current = start
            while len(sentence) < config.sentence_length:
                neighbours = graph.neighbours(current)
                if not neighbours:
                    current = start
                    continue
                current = rng.choice(neighbours)
                sentence.append(current)
            sentences.append(sentence)
    return sentences
