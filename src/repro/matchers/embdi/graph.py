"""EmbDI's tripartite data graph.

EmbDI (Cappuzzo, Papotti, Thirumuruganathan — SIGMOD 2020) represents the two
relations as a heterogeneous graph with three kinds of nodes:

* **RID nodes** — one per row (record identifier);
* **CID nodes** — one per column (attribute identifier);
* **value nodes** — one per distinct cell value.

Edges connect every value node to the RID of the row it appears in and to the
CID of the column it belongs to.  Random walks over this graph produce the
"sentences" used to train local embeddings.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.data.table import Table
from repro.data.types import is_missing

__all__ = ["DataGraph", "build_data_graph"]

RID_PREFIX = "idx__"
CID_PREFIX = "cid__"
VALUE_PREFIX = "tt__"


@dataclass
class DataGraph:
    """Adjacency-list representation of the tripartite EmbDI graph.

    Attributes
    ----------
    adjacency:
        ``{node token: [neighbour tokens]}``; neighbours may repeat, which
        makes frequent co-occurrences proportionally more likely targets of a
        uniform random step (mirroring edge weights).
    rid_nodes / cid_nodes / value_nodes:
        The node tokens of each kind.
    """

    adjacency: dict[str, list[str]] = field(default_factory=dict)
    rid_nodes: list[str] = field(default_factory=list)
    cid_nodes: list[str] = field(default_factory=list)
    value_nodes: list[str] = field(default_factory=list)

    def add_edge(self, node_a: str, node_b: str) -> None:
        """Add an undirected edge between two node tokens."""
        self.adjacency.setdefault(node_a, []).append(node_b)
        self.adjacency.setdefault(node_b, []).append(node_a)

    def neighbours(self, node: str) -> list[str]:
        """Neighbour tokens of *node* (empty when isolated/unknown)."""
        return self.adjacency.get(node, [])

    @property
    def num_nodes(self) -> int:
        return len(self.adjacency)

    @property
    def num_edges(self) -> int:
        return sum(len(neighbours) for neighbours in self.adjacency.values()) // 2

    def all_nodes(self) -> list[str]:
        """All node tokens (RID + CID + value)."""
        return list(self.adjacency)


def _value_token(value: object) -> str:
    return VALUE_PREFIX + str(value).strip().lower().replace(" ", "_")


def cid_token(table_name: str, column_name: str) -> str:
    """The CID node token of a column (used by the matcher for lookups)."""
    return f"{CID_PREFIX}{table_name}__{column_name}"


def build_data_graph(
    tables: Iterable[Table],
    max_rows_per_table: int | None = None,
) -> DataGraph:
    """Build the joint tripartite graph of one or more tables.

    EmbDI trains a single embedding space over *both* input relations so that
    shared values tie the two schemas together; hence the graph is built over
    the union of the tables.

    Parameters
    ----------
    tables:
        The input relations.
    max_rows_per_table:
        Optional row cap per table (keeps the benchmark-scale runs tractable).
    """
    graph = DataGraph()
    for table in tables:
        row_limit = table.num_rows if max_rows_per_table is None else min(
            table.num_rows, max_rows_per_table
        )
        for column in table.columns:
            column_token = cid_token(table.name, column.name)
            if column_token not in graph.adjacency:
                graph.adjacency.setdefault(column_token, [])
                graph.cid_nodes.append(column_token)
        for row_index in range(row_limit):
            rid_token = f"{RID_PREFIX}{table.name}__{row_index}"
            graph.adjacency.setdefault(rid_token, [])
            graph.rid_nodes.append(rid_token)
            for column in table.columns:
                value = column.values[row_index]
                if is_missing(value):
                    continue
                value_token = _value_token(value)
                if value_token not in graph.adjacency:
                    graph.value_nodes.append(value_token)
                graph.add_edge(rid_token, value_token)
                graph.add_edge(cid_token(table.name, column.name), value_token)
    return graph
