"""The EmbDI matcher (Cappuzzo, Papotti, Thirumuruganathan — SIGMOD 2020).

EmbDI builds *local* relational embeddings: the two relations are merged into
a tripartite graph (rows, columns, values), random walks over the graph form
sentences, and a word2vec skip-gram model is trained on those sentences so
that every row, column and value token receives an embedding.  For schema
matching, the columns of the two tables are compared by the cosine
similarity of their CID-token embeddings.

As the paper observes, the method depends on overlapping instance values to
tie the two relations together (shared value nodes are the only bridges
between the tables in the graph) and on the randomness of walk generation —
both properties are preserved here and explain the inconsistent effectiveness
reported in Figure 6.
"""

from __future__ import annotations

from repro.data.table import Table
from repro.embeddings.word2vec import Word2VecConfig, train_word2vec
from repro.matchers.base import BaseMatcher, MatchResult, MatchType, PreparedTable
from repro.matchers.embdi.graph import build_data_graph, cid_token
from repro.matchers.embdi.walks import WalkConfig, generate_walks
from repro.matchers.registry import register_matcher

__all__ = ["EmbDIMatcher"]


@register_matcher
class EmbDIMatcher(BaseMatcher):
    """EmbDI: locally trained relational embeddings for schema matching.

    Parameters
    ----------
    dimensions:
        Embedding dimensionality (Table II: 300; default scaled down for
        laptop-scale runs — the experiment suite can override it).
    sentence_length:
        Tokens per random walk (Table II: 60).
    window_size:
        Skip-gram window (Table II: 3).
    walks_per_node:
        Walks started from every graph node.
    epochs:
        Word2vec training epochs.
    max_rows:
        Row cap per table when building the data graph.
    seed:
        Seed controlling walk generation and embedding initialisation.
    """

    name = "EmbDI"
    code = "EDI"
    match_types = (MatchType.VALUE_OVERLAP, MatchType.EMBEDDINGS)
    uses_instances = True
    uses_schema = True

    def __init__(
        self,
        dimensions: int = 64,
        sentence_length: int = 20,
        window_size: int = 3,
        walks_per_node: int = 3,
        epochs: int = 1,
        max_rows: int = 200,
        seed: int = 42,
    ) -> None:
        if dimensions <= 0:
            raise ValueError("dimensions must be positive")
        self.dimensions = dimensions
        self.sentence_length = sentence_length
        self.window_size = window_size
        self.walks_per_node = walks_per_node
        self.epochs = epochs
        self.max_rows = max_rows
        self.seed = seed

    def match_prepared(self, source: PreparedTable, target: PreparedTable) -> MatchResult:
        """Train local embeddings over both tables and compare CID embeddings.

        EmbDI is the one method whose expensive work is genuinely *pairwise*:
        the tripartite graph, the walks and the word2vec model are trained
        jointly over both relations (shared value nodes are the only bridges
        between them), so :meth:`prepare` stays the no-op default and the
        whole pipeline runs here.
        """
        source_table = self._ensure_prepared(source).table
        target_table = self._ensure_prepared(target).table
        return self._match_tables(source_table, target_table)

    def _match_tables(self, source: Table, target: Table) -> MatchResult:
        graph = build_data_graph([source, target], max_rows_per_table=self.max_rows)
        walk_config = WalkConfig(
            sentence_length=self.sentence_length,
            walks_per_node=self.walks_per_node,
            seed=self.seed,
        )
        sentences = generate_walks(graph, walk_config)
        model = train_word2vec(
            sentences,
            Word2VecConfig(
                dimensions=self.dimensions,
                window_size=self.window_size,
                epochs=self.epochs,
                seed=self.seed,
            ),
        )

        scores = {}
        for source_column in source.columns:
            source_token = cid_token(source.name, source_column.name)
            for target_column in target.columns:
                target_token = cid_token(target.name, target_column.name)
                similarity = model.similarity(source_token, target_token)
                # Cosine similarity lives in [-1, 1]; shift to [0, 1] so the
                # ranking scores compose with the rest of the suite.
                scores[(source_column.ref, target_column.ref)] = (similarity + 1.0) / 2.0
        return MatchResult.from_scores(scores, keep_zero=True)
