"""Similarity Flooding matcher package."""

from repro.matchers.similarity_flooding.matcher import SimilarityFloodingMatcher

__all__ = ["SimilarityFloodingMatcher"]
