"""Similarity Flooding matcher (Melnik, Garcia-Molina, Rahm — ICDE 2002).

The schemata of the two tables are encoded as directed labelled graphs (see
:mod:`repro.graphmodel.schema_graph`), combined into a pairwise connectivity
graph and run through the similarity-propagation fixpoint.  Initial
similarities come from a string comparison of node labels; as the paper
notes, the original string-matching function is unspecified, so this
reproduction uses normalised Levenshtein similarity.

Configuration follows Table II of the paper: ``inverse_average`` propagation
coefficients and fixpoint formula "C".  The matcher extracts column↔column
map pairs from the fixpoint and ranks them by their final similarity.
"""

from __future__ import annotations

from repro.data.table import Table
from repro.graphmodel.propagation import PropagationConfig, similarity_flood
from repro.graphmodel.schema_graph import (
    NodeKind,
    SchemaNode,
    build_schema_graph,
    pairwise_connectivity_graph,
)
from repro.matchers.base import BaseMatcher, MatchResult, MatchType, PreparedTable
from repro.matchers.registry import register_matcher
from repro.text.distance import normalized_levenshtein
from repro.text.tokenize import normalize_identifier

__all__ = ["SimilarityFloodingMatcher"]


def _node_label(node: SchemaNode) -> str:
    """Textual label of a schema-graph node used for initial similarity."""
    if node.kind in (NodeKind.NAME, NodeKind.TYPE):
        return node.identifier
    # Table / column nodes: use the unqualified name.
    return node.identifier.split(".")[-1]


@register_matcher
class SimilarityFloodingMatcher(BaseMatcher):
    """Similarity Flooding: graph-based fixpoint propagation of similarities.

    Parameters
    ----------
    coefficient_policy:
        Propagation coefficient policy (``"inverse_average"`` per Table II).
    fixpoint_formula:
        Fixpoint variant (``"c"`` per Table II).
    max_iterations / residual_threshold:
        Fixpoint convergence controls.
    """

    name = "SimilarityFlooding"
    code = "SF"
    match_types = (MatchType.ATTRIBUTE_OVERLAP, MatchType.DATA_TYPE)
    uses_instances = False
    uses_schema = True

    def __init__(
        self,
        coefficient_policy: str = "inverse_average",
        fixpoint_formula: str = "c",
        max_iterations: int = 200,
        residual_threshold: float = 1e-3,
    ) -> None:
        self.coefficient_policy = coefficient_policy
        self.fixpoint_formula = fixpoint_formula
        self.max_iterations = max_iterations
        self.residual_threshold = residual_threshold
        # Validate eagerly so constructor errors are raised where the user is.
        self._config = PropagationConfig(
            coefficient_policy=coefficient_policy,
            fixpoint_formula=fixpoint_formula,
            max_iterations=max_iterations,
            residual_threshold=residual_threshold,
        )

    def prepare_parameters(self) -> dict[str, object]:
        """The schema graph depends on the table alone.

        Every constructor parameter steers the flooding fixpoint in
        :meth:`match_prepared`, so all configurations share prepared graphs.
        """
        return {}

    def prepare(self, table: Table) -> PreparedTable:
        """Build the table's directed labelled schema graph once."""
        return PreparedTable(
            table=table,
            fingerprint=self.fingerprint(),
            payload={"graph": build_schema_graph(table)},
        )

    def match_prepared(self, source: PreparedTable, target: PreparedTable) -> MatchResult:
        """Run the flooding fixpoint and rank column↔column map pairs."""
        source = self._ensure_prepared(source)
        target = self._ensure_prepared(target)
        graph_source = source.payload["graph"]
        graph_target = target.payload["graph"]
        pcg = pairwise_connectivity_graph(graph_source, graph_target)

        initial = {}
        for node_pair in pcg.nodes():
            node_a, node_b = node_pair
            label_a = normalize_identifier(_node_label(node_a))
            label_b = normalize_identifier(_node_label(node_b))
            initial[node_pair] = normalized_levenshtein(label_a, label_b)

        final = similarity_flood(pcg, initial, config=self._config)

        scores = {}
        for (node_a, node_b), similarity in final.items():
            if node_a.kind is not NodeKind.COLUMN or node_b.kind is not NodeKind.COLUMN:
                continue
            column_a = node_a.identifier.split(".", 1)[1]
            column_b = node_b.identifier.split(".", 1)[1]
            scores[
                (source.table.column(column_a).ref, target.table.column(column_b).ref)
            ] = similarity
        # Columns that never co-occur in the PCG get a zero score so the
        # ranking is complete (Valentine evaluates rankings, not thresholds).
        for source_column in source.table.columns:
            for target_column in target.table.columns:
                scores.setdefault((source_column.ref, target_column.ref), 0.0)
        return MatchResult.from_scores(scores, keep_zero=True)
