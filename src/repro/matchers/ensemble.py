"""Ensemble matcher: rank aggregation over multiple matching methods.

The paper's first "lesson learned" (Section IX) is that no single method wins
everywhere and that "composing state-of-the-art matching methods ... should
be the preferred way in dataset discovery pipelines".  This module provides
that composition as a first-class matcher: an :class:`EnsembleMatcher` runs
several base matchers and aggregates their rankings.

Three aggregation strategies are provided:

* ``"score_average"`` — per pair, the (optionally weighted) mean of the base
  matchers' scores (each base ranking is min-max normalised first so methods
  with different score scales combine fairly);
* ``"score_max"`` — per pair, the best normalised score any base matcher
  assigns;
* ``"borda"`` — classic Borda-count rank aggregation over the base rankings.
"""

from __future__ import annotations

import math
from typing import Mapping, Sequence

from repro.data.table import ColumnRef, Table
from repro.matchers.base import BaseMatcher, MatchResult, MatchType, PreparedTable
from repro.matchers.registry import register_matcher

__all__ = ["EnsembleMatcher"]

PairKey = tuple[ColumnRef, ColumnRef]


def _normalised_scores(result: MatchResult) -> dict[PairKey, float]:
    """Min-max normalise a ranking's scores into [0, 1] (constant → 1.0)."""
    pairs = result.ranked_ref_pairs()
    if not pairs:
        return {}
    scores = [match.score for match in result]
    low, high = min(scores), max(scores)
    if high == low:
        return {pair: 1.0 for pair in pairs}
    normalised: dict[PairKey, float] = {}
    for match in result:
        key = (match.source, match.target)
        value = (match.score - low) / (high - low)
        normalised[key] = max(normalised.get(key, 0.0), value)
    return normalised


def _borda_points(result: MatchResult) -> dict[PairKey, float]:
    """Borda points: the best rank gets n-1 points, the worst gets 0."""
    pairs = result.ranked_ref_pairs()
    total = len(pairs)
    points: dict[PairKey, float] = {}
    for position, pair in enumerate(pairs):
        points.setdefault(pair, float(total - 1 - position))
    return points


class EnsembleMatcher(BaseMatcher):
    """Combine several base matchers into one ranked output.

    Parameters
    ----------
    matchers:
        The base matching methods (at least one).
    aggregation:
        ``"score_average"``, ``"score_max"`` or ``"borda"``.
    weights:
        Optional per-matcher weights (keyed by matcher name) for the
        ``"score_average"`` strategy.
    """

    name = "Ensemble"
    code = "ENS"
    match_types = tuple(MatchType)
    uses_instances = True
    uses_schema = True

    def __init__(
        self,
        matchers: Sequence[BaseMatcher],
        aggregation: str = "score_average",
        weights: Mapping[str, float] | None = None,
    ) -> None:
        if not matchers:
            raise ValueError("an ensemble needs at least one base matcher")
        if aggregation not in ("score_average", "score_max", "borda"):
            raise ValueError(f"unknown aggregation {aggregation!r}")
        self.aggregation = aggregation
        self.weights = dict(weights or {})
        self._matchers = list(matchers)

    @property
    def base_matchers(self) -> list[BaseMatcher]:
        """The wrapped base matchers."""
        return list(self._matchers)

    def parameters(self) -> dict[str, object]:
        """Ensemble configuration plus the names of the base matchers."""
        return {
            "aggregation": self.aggregation,
            "weights": dict(self.weights),
            "base_matchers": [matcher.name for matcher in self._matchers],
        }

    def fingerprint(self) -> str:
        """Ensemble identity: own config plus every member's fingerprint.

        Two ensembles whose members merely share *names* but differ in
        configuration must not share prepared tables.
        """
        members = "; ".join(matcher.fingerprint() for matcher in self._matchers)
        return f"{super().fingerprint()}[{members}]"

    def prepare(self, table: Table) -> PreparedTable:
        """Prepare *table* once per member matcher.

        The payload holds one member-specific :class:`PreparedTable` per base
        matcher (keyed by position), so a discovery query prepared once is
        reused by every member across every candidate.
        """
        members = tuple(matcher.prepare(table) for matcher in self._matchers)
        return PreparedTable(
            table=table,
            fingerprint=self.fingerprint(),
            payload={"members": members},
        )

    def score_bound(self, prepared_query: PreparedTable, signals) -> float:
        """Scheduling estimate only — ``bounds_admissible()`` stays False.

        Member bounds do not compose through the ensemble's aggregation:
        both Borda and score averaging min-max-normalise each member's
        *ranking* first, so even a member pair scoring near zero can
        normalise to 1.0 within its own ranking.  The pass-through maximum
        of the members' bounds (computed against each member's prepared
        query slice) is still the best available ordering signal.
        """
        members = prepared_query.payload.get("members")
        if not members:
            return math.inf
        return max(
            matcher.score_bound(prepared, signals)
            for matcher, prepared in zip(self._matchers, members)
        )

    def match_prepared(self, source: PreparedTable, target: PreparedTable) -> MatchResult:
        """Run every base matcher on its prepared pair and aggregate rankings."""
        source = self._ensure_prepared(source)
        target = self._ensure_prepared(target)
        source_members = source.payload["members"]
        target_members = target.payload["members"]
        base_results = []
        for matcher, prepared_source, prepared_target in zip(
            self._matchers, source_members, target_members
        ):
            if matcher.prefers_legacy_get_matches():
                # A member subclass overrode get_matches below the prepared
                # pipeline: honour its override instead of bypassing it.
                result = matcher.get_matches(prepared_source.table, prepared_target.table)
            else:
                result = matcher.match_prepared(prepared_source, prepared_target)
            base_results.append((matcher, result))

        combined: dict[PairKey, float] = {}
        if self.aggregation == "borda":
            for _, result in base_results:
                for pair, points in _borda_points(result).items():
                    combined[pair] = combined.get(pair, 0.0) + points
            maximum = max(combined.values(), default=0.0)
            if maximum > 0:
                combined = {pair: value / maximum for pair, value in combined.items()}
        else:
            totals: dict[PairKey, float] = {}
            weight_sums: dict[PairKey, float] = {}
            for matcher, result in base_results:
                weight = self.weights.get(matcher.name, 1.0)
                for pair, score in _normalised_scores(result).items():
                    if self.aggregation == "score_max":
                        totals[pair] = max(totals.get(pair, 0.0), score)
                        weight_sums[pair] = 1.0
                    else:
                        totals[pair] = totals.get(pair, 0.0) + weight * score
                        weight_sums[pair] = weight_sums.get(pair, 0.0) + weight
            combined = {
                pair: totals[pair] / weight_sums[pair] if weight_sums[pair] else 0.0
                for pair in totals
            }

        return MatchResult.from_scores(combined, keep_zero=True)
