"""Registry of the matching methods bundled with the suite.

The registry backs two things: the CLI / experiment runner, which looks up
matchers by name, and the Table I coverage report, which lists the match
types each method provides.

Registered matchers participate in the two-phase prepare/match protocol of
:class:`~repro.matchers.base.BaseMatcher`; legacy classes that only override
``get_matches`` still register and run (the protocol's defaults bridge
them), they just forgo prepared-table reuse in discovery.
"""

from __future__ import annotations

from typing import Callable, Iterable, Type

from repro.matchers.base import BaseMatcher, MatchType

__all__ = [
    "register_matcher",
    "matcher_class",
    "create_matcher",
    "available_matchers",
    "coverage_table",
]

_REGISTRY: dict[str, Type[BaseMatcher]] = {}


def register_matcher(cls: Type[BaseMatcher]) -> Type[BaseMatcher]:
    """Class decorator registering a matcher under its ``name`` attribute."""
    key = cls.name.lower()
    _REGISTRY[key] = cls
    return cls


def matcher_class(name: str) -> Type[BaseMatcher]:
    """Look up a matcher class by (case-insensitive) name.

    Raises
    ------
    KeyError
        When no matcher with that name is registered.
    """
    key = name.lower()
    if key not in _REGISTRY:
        known = ", ".join(sorted(_REGISTRY))
        raise KeyError(f"unknown matcher {name!r}; known matchers: {known}")
    return _REGISTRY[key]


def create_matcher(name: str, **parameters: object) -> BaseMatcher:
    """Instantiate a registered matcher by name with keyword parameters.

    Convenience over ``matcher_class(name)(**parameters)`` for the CLI and
    scripts; raises the same ``KeyError`` for unknown names.
    """
    return matcher_class(name)(**parameters)


def available_matchers() -> dict[str, Type[BaseMatcher]]:
    """All registered matchers keyed by lowercase name."""
    return dict(_REGISTRY)


def coverage_table() -> list[dict[str, object]]:
    """Reproduce Table I: per method, which match types it covers.

    Returns a list of records ``{"method": ..., "code": ..., <match type>: bool}``.
    """
    rows = []
    for key in sorted(_REGISTRY):
        cls = _REGISTRY[key]
        row: dict[str, object] = {"method": cls.name, "code": cls.code}
        for match_type in MatchType:
            row[match_type.value] = match_type in cls.match_types
        rows.append(row)
    return rows
