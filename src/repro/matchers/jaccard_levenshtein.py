"""The Jaccard–Levenshtein baseline matcher.

The paper's own baseline (Section VI-A): a naive instance-based matcher that
computes, for every pair of columns, the Jaccard similarity of their value
sets where two values are considered identical when their (normalised)
Levenshtein distance is below a threshold.  The method outputs a complete
ranked list of column pairs with their similarity scores.
"""

from __future__ import annotations

from typing import AbstractSet, Sequence

from repro.data.table import Table
from repro.matchers.base import BaseMatcher, MatchResult, MatchType, PreparedTable
from repro.matchers.registry import register_matcher
from repro.text.distance import levenshtein_distance

__all__ = ["JaccardLevenshteinMatcher"]


def _normalised_value_set(values: Sequence[str]) -> frozenset[str]:
    """The distinct stripped/lowercased values — the per-column preparation."""
    return frozenset(str(v).strip().lower() for v in values)


def _fuzzy_jaccard(
    values_a: Sequence[str],
    values_b: Sequence[str],
    threshold: float,
    sample_size: int,
) -> float:
    """Jaccard similarity with fuzzy (Levenshtein-tolerant) value equality.

    Two values are "equal" when ``1 - levenshtein / max_len >= threshold``.
    Exact matches are counted first on sets (cheap); only the residue goes
    through the quadratic fuzzy pass, capped at *sample_size* values per side.
    """
    return _fuzzy_jaccard_sets(
        _normalised_value_set(values_a),
        _normalised_value_set(values_b),
        threshold=threshold,
        sample_size=sample_size,
    )


def _fuzzy_jaccard_sets(
    set_a: AbstractSet[str],
    set_b: AbstractSet[str],
    threshold: float,
    sample_size: int,
) -> float:
    """:func:`_fuzzy_jaccard` over already-normalised value sets."""
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0

    exact = set_a & set_b
    rest_a = sorted(set_a - exact)[:sample_size]
    rest_b = sorted(set_b - exact)[:sample_size]

    fuzzy_matches = 0
    matched_b: set[str] = set()
    for value_a in rest_a:
        for value_b in rest_b:
            if value_b in matched_b:
                continue
            # sim >= threshold iff distance <= (1 - threshold) * max_len, so
            # the DP can stop at a cutoff (one unit of float slack keeps the
            # accept decision identical to the uncut similarity comparison).
            longest = max(len(value_a), len(value_b))
            if longest == 0:
                similarity = 1.0
            else:
                cutoff = int((1.0 - threshold) * longest) + 1
                distance = levenshtein_distance(value_a, value_b, max_distance=cutoff)
                if distance > cutoff:
                    continue
                similarity = 1.0 - distance / longest
            if similarity >= threshold:
                fuzzy_matches += 1
                matched_b.add(value_b)
                break

    intersection = len(exact) + fuzzy_matches
    union = len(set_a | set_b) - fuzzy_matches
    if union <= 0:
        return 1.0
    return intersection / union


@register_matcher
class JaccardLevenshteinMatcher(BaseMatcher):
    """Naive fuzzy-Jaccard instance matcher (the paper's baseline).

    Parameters
    ----------
    threshold:
        Normalised Levenshtein similarity above which two values are treated
        as identical (paper grid: 0.4–0.8).
    sample_size:
        Number of distinct values per column considered in the quadratic
        fuzzy-matching pass (exact matches are always counted in full).
    """

    name = "JaccardLevenshtein"
    code = "JL"
    match_types = (MatchType.VALUE_OVERLAP,)
    uses_instances = True
    uses_schema = False

    def __init__(self, threshold: float = 0.8, sample_size: int = 200) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        if sample_size < 0:
            raise ValueError("sample_size must be non-negative")
        self.threshold = threshold
        self.sample_size = sample_size

    def prepare_parameters(self) -> dict[str, object]:
        """Prepare only normalises value sets — no parameter shapes it.

        ``threshold`` and ``sample_size`` are applied pairwise in
        :meth:`match_prepared`, so every configuration shares one prepared
        payload per table.
        """
        return {}

    def prepare(self, table: Table) -> PreparedTable:
        """Normalise every column's value set once."""
        value_sets = {
            column.name: _normalised_value_set(column.as_strings())
            for column in table.columns
        }
        return PreparedTable(
            table=table,
            fingerprint=self.fingerprint(),
            payload={"value_sets": value_sets},
        )

    def score_bound(self, prepared_query: PreparedTable, signals) -> float:
        """Scheduling estimate only — ``bounds_admissible()`` stays False.

        The Levenshtein tolerance can lift the fuzzy Jaccard arbitrarily
        far above the sketch-level *exact* set Jaccard (two disjoint value
        sets of near-identical strings estimate ~0 but fuzzy-match ~1), so
        no sound bound exists from the signals.  The padded estimate still
        orders the rerank best-first and lets the anytime budget spend its
        deadline on the most promising candidates.
        """
        return min(1.0, signals.max_jaccard + 0.25)

    def match_prepared(self, source: PreparedTable, target: PreparedTable) -> MatchResult:
        """Score every source/target column pair with fuzzy Jaccard similarity."""
        source = self._ensure_prepared(source)
        target = self._ensure_prepared(target)
        source_sets = source.payload["value_sets"]
        target_sets = target.payload["value_sets"]
        scores = {}
        for source_column in source.table.columns:
            for target_column in target.table.columns:
                score = _fuzzy_jaccard_sets(
                    source_sets[source_column.name],
                    target_sets[target_column.name],
                    threshold=self.threshold,
                    sample_size=self.sample_size,
                )
                scores[(source_column.ref, target_column.ref)] = score
        return MatchResult.from_scores(scores, keep_zero=True)
