"""The Jaccard–Levenshtein baseline matcher.

The paper's own baseline (Section VI-A): a naive instance-based matcher that
computes, for every pair of columns, the Jaccard similarity of their value
sets where two values are considered identical when their (normalised)
Levenshtein distance is below a threshold.  The method outputs a complete
ranked list of column pairs with their similarity scores.
"""

from __future__ import annotations

from typing import Sequence

from repro.data.table import Table
from repro.matchers.base import BaseMatcher, MatchResult, MatchType
from repro.matchers.registry import register_matcher
from repro.text.distance import normalized_levenshtein

__all__ = ["JaccardLevenshteinMatcher"]


def _fuzzy_jaccard(
    values_a: Sequence[str],
    values_b: Sequence[str],
    threshold: float,
    sample_size: int,
) -> float:
    """Jaccard similarity with fuzzy (Levenshtein-tolerant) value equality.

    Two values are "equal" when ``1 - levenshtein / max_len >= threshold``.
    Exact matches are counted first on sets (cheap); only the residue goes
    through the quadratic fuzzy pass, capped at *sample_size* values per side.
    """
    set_a = {str(v).strip().lower() for v in values_a}
    set_b = {str(v).strip().lower() for v in values_b}
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0

    exact = set_a & set_b
    rest_a = sorted(set_a - exact)[:sample_size]
    rest_b = sorted(set_b - exact)[:sample_size]

    fuzzy_matches = 0
    matched_b: set[str] = set()
    for value_a in rest_a:
        for value_b in rest_b:
            if value_b in matched_b:
                continue
            if normalized_levenshtein(value_a, value_b) >= threshold:
                fuzzy_matches += 1
                matched_b.add(value_b)
                break

    intersection = len(exact) + fuzzy_matches
    union = len(set_a | set_b) - fuzzy_matches
    if union <= 0:
        return 1.0
    return intersection / union


@register_matcher
class JaccardLevenshteinMatcher(BaseMatcher):
    """Naive fuzzy-Jaccard instance matcher (the paper's baseline).

    Parameters
    ----------
    threshold:
        Normalised Levenshtein similarity above which two values are treated
        as identical (paper grid: 0.4–0.8).
    sample_size:
        Number of distinct values per column considered in the quadratic
        fuzzy-matching pass (exact matches are always counted in full).
    """

    name = "JaccardLevenshtein"
    code = "JL"
    match_types = (MatchType.VALUE_OVERLAP,)
    uses_instances = True
    uses_schema = False

    def __init__(self, threshold: float = 0.8, sample_size: int = 200) -> None:
        if not 0.0 <= threshold <= 1.0:
            raise ValueError("threshold must be in [0, 1]")
        if sample_size < 0:
            raise ValueError("sample_size must be non-negative")
        self.threshold = threshold
        self.sample_size = sample_size

    def get_matches(self, source: Table, target: Table) -> MatchResult:
        """Score every source/target column pair with fuzzy Jaccard similarity."""
        scores = {}
        source_values = {
            column.name: column.as_strings() for column in source.columns
        }
        target_values = {
            column.name: column.as_strings() for column in target.columns
        }
        for source_column in source.columns:
            for target_column in target.columns:
                score = _fuzzy_jaccard(
                    source_values[source_column.name],
                    target_values[target_column.name],
                    threshold=self.threshold,
                    sample_size=self.sample_size,
                )
                scores[(source_column.ref, target_column.ref)] = score
        return MatchResult.from_scores(scores, keep_zero=True)
