"""Schema matching methods (the core contribution of the suite).

Importing this package registers all seven bundled matching methods with the
registry, so ``available_matchers()`` and the experiment runner see them.
"""

from repro.matchers.base import BaseMatcher, Match, MatchResult, MatchType
from repro.matchers.coma import ComaInstanceMatcher, ComaSchemaMatcher
from repro.matchers.cupid import CupidMatcher
from repro.matchers.distribution_based import DistributionBasedMatcher
from repro.matchers.embdi import EmbDIMatcher
from repro.matchers.ensemble import EnsembleMatcher
from repro.matchers.jaccard_levenshtein import JaccardLevenshteinMatcher
from repro.matchers.registry import available_matchers, coverage_table, matcher_class
from repro.matchers.semprop import SemPropMatcher
from repro.matchers.similarity_flooding import SimilarityFloodingMatcher

__all__ = [
    "BaseMatcher",
    "Match",
    "MatchResult",
    "MatchType",
    "CupidMatcher",
    "SimilarityFloodingMatcher",
    "ComaSchemaMatcher",
    "ComaInstanceMatcher",
    "DistributionBasedMatcher",
    "SemPropMatcher",
    "EmbDIMatcher",
    "JaccardLevenshteinMatcher",
    "EnsembleMatcher",
    "available_matchers",
    "matcher_class",
    "coverage_table",
]
