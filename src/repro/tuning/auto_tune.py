"""eTuner-style automatic parameter tuning of matching methods.

Two of the paper's observations motivate this module: (i) its own grid search
"exploited the ground truth", which is not available in the wild, and (ii)
eTuner showed that tuning matchers on *synthetically fabricated* scenarios
transfers to real data.  :class:`AutoTuner` implements exactly that loop:

1. fabricate dataset pairs (with known ground truth) from a seed table the
   user *does* have — e.g. one of the tables they are about to match;
2. grid-search a method's parameters on those fabricated pairs;
3. return the configuration with the best mean Recall@ground-truth, ready to
   be applied to the user's real matching problem.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass, field
from typing import Optional, Sequence

from repro.data.table import Table
from repro.experiments.parameters import ParameterGrid
from repro.experiments.runner import run_single_experiment
from repro.fabrication.fabricator import FabricationConfig, Fabricator
from repro.fabrication.pairs import DatasetPair, Scenario

__all__ = ["TuningOutcome", "AutoTuner"]


@dataclass(frozen=True)
class TuningOutcome:
    """Result of one auto-tuning run.

    Attributes
    ----------
    method:
        Display name of the tuned method.
    best_parameters:
        The winning configuration.
    best_mean_recall:
        Mean Recall@ground-truth the winner achieved on the fabricated pairs.
    leaderboard:
        Every evaluated configuration with its mean recall, best first.
    """

    method: str
    best_parameters: dict[str, object]
    best_mean_recall: float
    leaderboard: list[tuple[dict[str, object], float]] = field(default_factory=list)

    def build_matcher(self, grid: ParameterGrid):
        """Instantiate the tuned matcher from the winning configuration."""
        return grid.factory(**self.best_parameters)


class AutoTuner:
    """Tune a matcher's parameters on fabricated scenarios (eTuner-style).

    Parameters
    ----------
    fabrication_config:
        Controls the synthetic workload; defaults to a small grid.
    scenarios:
        The relatedness scenarios to fabricate; defaults to unionable +
        joinable, the two cases dataset discovery methods care about most.
    pairs_per_scenario:
        Cap on the number of fabricated pairs used per scenario (keeps the
        tuning loop cheap).
    """

    def __init__(
        self,
        fabrication_config: Optional[FabricationConfig] = None,
        scenarios: Sequence[Scenario] = (Scenario.UNIONABLE, Scenario.JOINABLE),
        pairs_per_scenario: int = 4,
    ) -> None:
        if pairs_per_scenario < 1:
            raise ValueError("pairs_per_scenario must be at least 1")
        self.fabrication_config = fabrication_config or FabricationConfig(seed=99)
        self.scenarios = tuple(scenarios)
        self.pairs_per_scenario = pairs_per_scenario

    def fabricate_workload(self, seed_table: Table) -> list[DatasetPair]:
        """Fabricate the synthetic tuning workload from *seed_table*."""
        fabricator = Fabricator(self.fabrication_config)
        pairs: list[DatasetPair] = []
        for scenario in self.scenarios:
            scenario_pairs = fabricator.fabricate(seed_table, scenarios=[scenario])
            pairs.extend(scenario_pairs[: self.pairs_per_scenario])
        return pairs

    def evaluate_configuration(
        self,
        grid: ParameterGrid,
        parameters: dict[str, object],
        pairs: Sequence[DatasetPair],
    ) -> float:
        """Mean Recall@ground-truth of one configuration over the workload."""
        matcher = grid.factory(**parameters)
        recalls = [
            run_single_experiment(matcher, pair, method_name=grid.method, parameters=parameters).recall_at_ground_truth
            for pair in pairs
        ]
        return statistics.fmean(recalls) if recalls else 0.0

    def tune(self, grid: ParameterGrid, seed_table: Table) -> TuningOutcome:
        """Grid-search *grid* on pairs fabricated from *seed_table*.

        Raises
        ------
        ValueError
            If the grid has no configurations at all.
        """
        pairs = self.fabricate_workload(seed_table)
        leaderboard: list[tuple[dict[str, object], float]] = []
        for parameters in grid.configurations():
            mean_recall = self.evaluate_configuration(grid, parameters, pairs)
            leaderboard.append((dict(parameters), mean_recall))
        if not leaderboard:
            raise ValueError(f"grid for {grid.method!r} has no configurations")
        leaderboard.sort(key=lambda item: -item[1])
        best_parameters, best_mean_recall = leaderboard[0]
        return TuningOutcome(
            method=grid.method,
            best_parameters=best_parameters,
            best_mean_recall=best_mean_recall,
            leaderboard=leaderboard,
        )
