"""Automatic (eTuner-style) parameter tuning for matching methods."""

from repro.tuning.auto_tune import AutoTuner, TuningOutcome

__all__ = ["AutoTuner", "TuningOutcome"]
