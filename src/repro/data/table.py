"""In-memory tabular data model.

This is the relational substrate used throughout the suite: every matcher,
fabricator and dataset generator produces or consumes :class:`Table` and
:class:`Column` objects.  The model is deliberately small — column-ordered,
row-addressable, type-annotated tables — because schema matching only needs
schema metadata (names, types) and column value sets.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Mapping, Optional, Sequence

from repro.data.types import (
    DataType,
    coerce_value,
    infer_column_type,
    is_missing,
    parse_numeric_values,
)

__all__ = ["Column", "Table", "ColumnRef"]


@dataclass(frozen=True, order=True)
class ColumnRef:
    """A fully qualified reference to a column of a table.

    Match results refer to columns through ``ColumnRef`` so that matches stay
    meaningful independently of any in-memory :class:`Table` object.
    """

    table: str
    column: str

    def __str__(self) -> str:  # pragma: no cover - trivial
        return f"{self.table}.{self.column}"


class Column:
    """A named, typed column with its cell values.

    Parameters
    ----------
    name:
        Attribute name of the column.
    values:
        Cell values; missing cells may be ``None`` or conventional NA tokens.
    data_type:
        Optional explicit data type; inferred from values when omitted.
    table_name:
        Name of the owning table (set by :class:`Table`).
    """

    __slots__ = ("name", "values", "data_type", "table_name", "_unique_cache")

    def __init__(
        self,
        name: str,
        values: Sequence[object],
        data_type: Optional[DataType] = None,
        table_name: str = "",
    ) -> None:
        self.name = str(name)
        self.values = list(values)
        self.data_type = data_type or infer_column_type(self.values)
        self.table_name = table_name
        self._unique_cache: Optional[set] = None

    def __len__(self) -> int:
        return len(self.values)

    def __iter__(self) -> Iterator[object]:
        return iter(self.values)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Column({self.name!r}, type={self.data_type.value}, n={len(self)})"

    @property
    def ref(self) -> ColumnRef:
        """The :class:`ColumnRef` of this column."""
        return ColumnRef(self.table_name, self.name)

    def non_missing(self) -> list[object]:
        """Return the list of non-missing cell values."""
        return [v for v in self.values if not is_missing(v)]

    def unique_values(self) -> set:
        """Return the set of distinct non-missing values (cached)."""
        if self._unique_cache is None:
            self._unique_cache = set(self.non_missing())
        return self._unique_cache

    def as_strings(self) -> list[str]:
        """Return non-missing values rendered as stripped strings."""
        return [str(v).strip() for v in self.non_missing()]

    def numeric_values(self) -> list[float]:
        """Return the values of a numeric column as floats.

        Non-convertible cells are skipped, which makes the method safe on
        noisy fabricated data.
        """
        return parse_numeric_values(self.non_missing())

    def missing_count(self) -> int:
        """Number of missing cells."""
        return sum(1 for v in self.values if is_missing(v))

    def rename(self, new_name: str) -> "Column":
        """Return a copy of the column under a new attribute name."""
        return Column(new_name, list(self.values), self.data_type, self.table_name)

    def map_values(self, transform: Callable[[object], object]) -> "Column":
        """Return a copy with *transform* applied to every non-missing cell."""
        new_values = [None if is_missing(v) else transform(v) for v in self.values]
        return Column(self.name, new_values, None, self.table_name)

    def head(self, n: int) -> "Column":
        """Return a copy containing only the first *n* cells."""
        return Column(self.name, self.values[:n], self.data_type, self.table_name)

    def coerced(self) -> "Column":
        """Return a copy whose values are coerced to the column data type."""
        coerced_values = [coerce_value(v, self.data_type) for v in self.values]
        return Column(self.name, coerced_values, self.data_type, self.table_name)


class Table:
    """A named relational table: an ordered collection of equally long columns.

    The class offers the relational operations the fabricator and the
    matchers need: projection, row selection, horizontal/vertical slicing,
    union, join and simple statistics.  Tables are immutable by convention —
    operations return new tables.
    """

    def __init__(
        self,
        name: str,
        columns: Sequence[Column] | Mapping[str, Sequence[object]],
    ) -> None:
        self.name = str(name)
        if isinstance(columns, Mapping):
            prepared = [Column(col_name, values) for col_name, values in columns.items()]
        else:
            prepared = [
                Column(col.name, list(col.values), col.data_type) for col in columns
            ]
        lengths = {len(col) for col in prepared}
        if len(lengths) > 1:
            raise ValueError(
                f"all columns of table {name!r} must have the same length, got {sorted(lengths)}"
            )
        names = [col.name for col in prepared]
        if len(set(names)) != len(names):
            raise ValueError(f"duplicate column names in table {name!r}: {names}")
        for col in prepared:
            col.table_name = self.name
        self._columns: list[Column] = prepared
        self._index: dict[str, int] = {col.name: i for i, col in enumerate(prepared)}

    # ------------------------------------------------------------------ #
    # basic accessors
    # ------------------------------------------------------------------ #
    @property
    def columns(self) -> list[Column]:
        """The ordered list of columns."""
        return list(self._columns)

    @property
    def column_names(self) -> list[str]:
        """The ordered list of column names."""
        return [col.name for col in self._columns]

    @property
    def num_rows(self) -> int:
        """Number of rows (0 for a table without columns)."""
        return len(self._columns[0]) if self._columns else 0

    @property
    def num_columns(self) -> int:
        """Number of columns."""
        return len(self._columns)

    @property
    def shape(self) -> tuple[int, int]:
        """``(num_rows, num_columns)``."""
        return (self.num_rows, self.num_columns)

    def __len__(self) -> int:
        return self.num_rows

    def __contains__(self, column_name: str) -> bool:
        return column_name in self._index

    def __getitem__(self, column_name: str) -> Column:
        return self.column(column_name)

    def __repr__(self) -> str:  # pragma: no cover - debugging aid
        return f"Table({self.name!r}, shape={self.shape})"

    def column(self, name: str) -> Column:
        """Return the column called *name*.

        Raises
        ------
        KeyError
            If no column with that name exists.
        """
        try:
            return self._columns[self._index[name]]
        except KeyError as exc:
            raise KeyError(f"table {self.name!r} has no column {name!r}") from exc

    def rows(self) -> Iterator[tuple]:
        """Iterate over rows as tuples, in column order."""
        for i in range(self.num_rows):
            yield tuple(col.values[i] for col in self._columns)

    def row(self, index: int) -> tuple:
        """Return row *index* as a tuple."""
        if not 0 <= index < self.num_rows:
            raise IndexError(f"row index {index} out of range for table {self.name!r}")
        return tuple(col.values[index] for col in self._columns)

    def to_dict(self) -> dict[str, list[object]]:
        """Return a ``{column name: values}`` dictionary copy of the table."""
        return {col.name: list(col.values) for col in self._columns}

    # ------------------------------------------------------------------ #
    # relational operations
    # ------------------------------------------------------------------ #
    def rename(self, new_name: str) -> "Table":
        """Return a copy of the table under a new table name."""
        return Table(new_name, self._columns)

    def rename_columns(self, mapping: Mapping[str, str]) -> "Table":
        """Return a copy with columns renamed according to *mapping*.

        Column names absent from *mapping* are kept unchanged.
        """
        renamed = [
            Column(mapping.get(col.name, col.name), list(col.values), col.data_type)
            for col in self._columns
        ]
        return Table(self.name, renamed)

    def project(self, column_names: Sequence[str], name: Optional[str] = None) -> "Table":
        """Relational projection: keep only *column_names*, in the given order."""
        selected = [self.column(col_name) for col_name in column_names]
        return Table(name or self.name, selected)

    def drop_columns(self, column_names: Iterable[str], name: Optional[str] = None) -> "Table":
        """Return a copy without the given columns."""
        dropped = set(column_names)
        kept = [col.name for col in self._columns if col.name not in dropped]
        return self.project(kept, name=name)

    def select_rows(self, indices: Sequence[int], name: Optional[str] = None) -> "Table":
        """Return a copy containing only the rows at *indices* (in order)."""
        new_columns = [
            Column(col.name, [col.values[i] for i in indices], col.data_type)
            for col in self._columns
        ]
        return Table(name or self.name, new_columns)

    def filter_rows(
        self, predicate: Callable[[Mapping[str, object]], bool], name: Optional[str] = None
    ) -> "Table":
        """Return the rows for which *predicate* holds.

        The predicate receives each row as a ``{column: value}`` mapping.
        """
        keep: list[int] = []
        names = self.column_names
        for i, row in enumerate(self.rows()):
            if predicate(dict(zip(names, row))):
                keep.append(i)
        return self.select_rows(keep, name=name)

    def head(self, n: int, name: Optional[str] = None) -> "Table":
        """Return the first *n* rows."""
        return self.select_rows(range(min(n, self.num_rows)), name=name)

    def slice_rows(self, start: int, stop: int, name: Optional[str] = None) -> "Table":
        """Return rows in ``[start, stop)``."""
        stop = min(stop, self.num_rows)
        start = max(start, 0)
        return self.select_rows(range(start, stop), name=name)

    def union(self, other: "Table", name: Optional[str] = None) -> "Table":
        """Union-compatible concatenation of rows (bag semantics).

        Raises
        ------
        ValueError
            If the two tables do not have identical column name lists.
        """
        if self.column_names != other.column_names:
            raise ValueError(
                "tables are not union compatible: "
                f"{self.column_names} vs {other.column_names}"
            )
        merged = [
            Column(col.name, list(col.values) + list(other.column(col.name).values))
            for col in self._columns
        ]
        return Table(name or self.name, merged)

    def join(
        self,
        other: "Table",
        left_on: str,
        right_on: str,
        name: Optional[str] = None,
    ) -> "Table":
        """Equi-join on ``self.left_on == other.right_on`` (inner join).

        Columns of *other* that clash with columns of *self* are prefixed with
        the other table's name.
        """
        right_index: dict[object, list[int]] = {}
        right_key = other.column(right_on)
        for i, value in enumerate(right_key.values):
            if is_missing(value):
                continue
            right_index.setdefault(value, []).append(i)

        left_rows: list[int] = []
        right_rows: list[int] = []
        left_key = self.column(left_on)
        for i, value in enumerate(left_key.values):
            if is_missing(value):
                continue
            for j in right_index.get(value, ()):
                left_rows.append(i)
                right_rows.append(j)

        new_columns: list[Column] = [
            Column(col.name, [col.values[i] for i in left_rows], col.data_type)
            for col in self._columns
        ]
        existing = set(self.column_names)
        for col in other.columns:
            out_name = col.name if col.name not in existing else f"{other.name}_{col.name}"
            new_columns.append(
                Column(out_name, [col.values[j] for j in right_rows], col.data_type)
            )
        return Table(name or f"{self.name}_join_{other.name}", new_columns)

    def sample_rows(self, n: int, rng, name: Optional[str] = None) -> "Table":
        """Return *n* rows sampled without replacement using *rng*.

        Parameters
        ----------
        rng:
            A ``random.Random`` instance (determinism is the caller's duty).
        """
        n = min(n, self.num_rows)
        indices = sorted(rng.sample(range(self.num_rows), n))
        return self.select_rows(indices, name=name)

    def with_column(self, column: Column) -> "Table":
        """Return a copy with *column* appended (or replaced when the name exists)."""
        new_columns = [c for c in self._columns if c.name != column.name]
        new_columns.append(Column(column.name, list(column.values), column.data_type))
        return Table(self.name, new_columns)

    # ------------------------------------------------------------------ #
    # summaries
    # ------------------------------------------------------------------ #
    def schema(self) -> dict[str, DataType]:
        """Return ``{column name: data type}``."""
        return {col.name: col.data_type for col in self._columns}

    def describe(self) -> str:
        """Return a short human-readable summary of the table."""
        lines = [f"Table {self.name!r}: {self.num_rows} rows x {self.num_columns} columns"]
        for col in self._columns:
            distinct = len(col.unique_values())
            lines.append(
                f"  - {col.name} ({col.data_type.value}): {distinct} distinct, "
                f"{col.missing_count()} missing"
            )
        return "\n".join(lines)

    def equals(self, other: "Table") -> bool:
        """Structural equality: same column names, order and cell values."""
        if self.column_names != other.column_names or self.num_rows != other.num_rows:
            return False
        return all(
            col.values == other.column(col.name).values for col in self._columns
        )
