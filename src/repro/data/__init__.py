"""Tabular data substrate: tables, columns, types, CSV I/O and profiling."""

from repro.data.csv_io import read_csv, table_from_csv_text, table_to_csv_text, write_csv
from repro.data.profiling import ColumnProfile, profile_column, profile_table
from repro.data.table import Column, ColumnRef, Table
from repro.data.types import (
    DataType,
    coerce_value,
    infer_column_type,
    infer_value_type,
    is_missing,
    type_compatibility,
)

__all__ = [
    "Column",
    "ColumnRef",
    "Table",
    "DataType",
    "coerce_value",
    "infer_column_type",
    "infer_value_type",
    "is_missing",
    "type_compatibility",
    "read_csv",
    "write_csv",
    "table_from_csv_text",
    "table_to_csv_text",
    "ColumnProfile",
    "profile_column",
    "profile_table",
]
