"""Data type model and type inference for tabular columns.

The Valentine experiment suite operates on denormalised tabular datasets
(CSV files, spreadsheets, database relations).  Matching methods such as
COMA's data-type matcher or Cupid's data-type compatibility component need a
small but well-defined type system together with a way to infer a column's
type from its observed values.  This module provides both.
"""

from __future__ import annotations

import math
import re
from dataclasses import dataclass
from enum import Enum
from typing import Iterable, Optional, Sequence

__all__ = [
    "DataType",
    "TYPE_COMPATIBILITY",
    "infer_value_type",
    "infer_column_type",
    "coerce_value",
    "is_missing",
    "parse_numeric_values",
    "type_compatibility",
]


def parse_numeric_values(values: Iterable[object]) -> list[float]:
    """Float-convertible values of a collection; non-convertible are skipped.

    The single implementation behind ``Column.numeric_values`` and the
    profiler's precomputed-scan path, so their skipping rules can never
    drift apart.
    """
    result: list[float] = []
    for value in values:
        try:
            result.append(float(str(value)))
        except (TypeError, ValueError):
            continue
    return result


class DataType(str, Enum):
    """Logical data types recognised by the suite.

    The set mirrors what the matchers in the paper care about: numeric
    columns (integer / float), free text, dates, booleans and an ``UNKNOWN``
    catch-all for empty columns.
    """

    INTEGER = "integer"
    FLOAT = "float"
    STRING = "string"
    DATE = "date"
    BOOLEAN = "boolean"
    UNKNOWN = "unknown"

    @property
    def is_numeric(self) -> bool:
        """Return True for integer and float columns."""
        return self in (DataType.INTEGER, DataType.FLOAT)

    @property
    def is_textual(self) -> bool:
        """Return True for string-like columns."""
        return self is DataType.STRING


#: Pairwise compatibility scores between data types, used by schema-based
#: matchers (Cupid's data-type compatibility factor and COMA's type matcher).
#: The table is symmetric; values are in [0, 1].
TYPE_COMPATIBILITY: dict[tuple[DataType, DataType], float] = {}


def _register_compatibility(a: DataType, b: DataType, score: float) -> None:
    TYPE_COMPATIBILITY[(a, b)] = score
    TYPE_COMPATIBILITY[(b, a)] = score


for _t in DataType:
    _register_compatibility(_t, _t, 1.0)

_register_compatibility(DataType.INTEGER, DataType.FLOAT, 0.9)
_register_compatibility(DataType.INTEGER, DataType.STRING, 0.3)
_register_compatibility(DataType.FLOAT, DataType.STRING, 0.3)
_register_compatibility(DataType.INTEGER, DataType.BOOLEAN, 0.4)
_register_compatibility(DataType.FLOAT, DataType.BOOLEAN, 0.2)
_register_compatibility(DataType.STRING, DataType.BOOLEAN, 0.3)
_register_compatibility(DataType.STRING, DataType.DATE, 0.4)
_register_compatibility(DataType.INTEGER, DataType.DATE, 0.2)
_register_compatibility(DataType.FLOAT, DataType.DATE, 0.1)
_register_compatibility(DataType.BOOLEAN, DataType.DATE, 0.05)

for _t in DataType:
    if _t is not DataType.UNKNOWN:
        _register_compatibility(DataType.UNKNOWN, _t, 0.5)


def type_compatibility(a: DataType, b: DataType) -> float:
    """Return the compatibility score of two data types in ``[0, 1]``."""
    return TYPE_COMPATIBILITY.get((a, b), 0.0)


_MISSING_TOKENS = frozenset({"", "na", "n/a", "nan", "null", "none", "-", "?"})

_INT_RE = re.compile(r"^[+-]?\d+$")
_FLOAT_RE = re.compile(r"^[+-]?(\d+\.\d*|\.\d+|\d+)([eE][+-]?\d+)?$")
_BOOL_TOKENS = frozenset({"true", "false", "yes", "no", "t", "f", "y", "n"})
_DATE_RES = (
    re.compile(r"^\d{4}-\d{1,2}-\d{1,2}([ T]\d{1,2}:\d{2}(:\d{2})?)?$"),
    re.compile(r"^\d{1,2}/\d{1,2}/\d{2,4}$"),
    re.compile(r"^\d{1,2}-[A-Za-z]{3}-\d{2,4}$"),
)


def is_missing(value: object) -> bool:
    """Return True when *value* denotes a missing cell.

    Missing cells are ``None``, floating point NaN and a small set of
    conventional placeholder strings (empty string, ``NA``, ``NULL``, ...).
    """
    if value is None:
        return True
    if isinstance(value, float) and math.isnan(value):
        return True
    if isinstance(value, str):
        return value.strip().lower() in _MISSING_TOKENS
    return False


def infer_value_type(value: object) -> DataType:
    """Infer the :class:`DataType` of a single cell value.

    Missing cells map to :attr:`DataType.UNKNOWN`.
    """
    if is_missing(value):
        return DataType.UNKNOWN
    if isinstance(value, bool):
        return DataType.BOOLEAN
    if isinstance(value, int):
        return DataType.INTEGER
    if isinstance(value, float):
        return DataType.FLOAT if not value.is_integer() else DataType.FLOAT
    text = str(value).strip()
    lowered = text.lower()
    if lowered in _BOOL_TOKENS:
        return DataType.BOOLEAN
    if _INT_RE.match(text):
        return DataType.INTEGER
    if _FLOAT_RE.match(text):
        return DataType.FLOAT
    for pattern in _DATE_RES:
        if pattern.match(text):
            return DataType.DATE
    return DataType.STRING


def infer_column_type(values: Iterable[object], sample_limit: int = 1000) -> DataType:
    """Infer the dominant :class:`DataType` of a column.

    The inference looks at up to *sample_limit* non-missing values and applies
    a simple promotion lattice: a column with both integers and floats is a
    float column, a column mixing numerics and text is a string column.

    Parameters
    ----------
    values:
        The cell values of the column.
    sample_limit:
        Maximum number of non-missing cells examined.
    """
    seen: set[DataType] = set()
    examined = 0
    for value in values:
        if is_missing(value):
            continue
        seen.add(infer_value_type(value))
        examined += 1
        if examined >= sample_limit:
            break

    if not seen:
        return DataType.UNKNOWN
    if seen == {DataType.BOOLEAN}:
        return DataType.BOOLEAN
    if seen <= {DataType.INTEGER}:
        return DataType.INTEGER
    if seen <= {DataType.INTEGER, DataType.FLOAT}:
        return DataType.FLOAT
    if seen <= {DataType.DATE}:
        return DataType.DATE
    return DataType.STRING


def coerce_value(value: object, data_type: DataType) -> object:
    """Coerce *value* into the Python representation of *data_type*.

    Values that cannot be coerced are returned unchanged; missing cells are
    returned as ``None``.  The function never raises for malformed input,
    which keeps ingestion of noisy fabricated datasets simple.
    """
    if is_missing(value):
        return None
    text = str(value).strip()
    if data_type is DataType.INTEGER:
        try:
            return int(float(text))
        except ValueError:
            return value
    if data_type is DataType.FLOAT:
        try:
            return float(text)
        except ValueError:
            return value
    if data_type is DataType.BOOLEAN:
        lowered = text.lower()
        if lowered in ("true", "t", "yes", "y", "1"):
            return True
        if lowered in ("false", "f", "no", "n", "0"):
            return False
        return value
    if data_type in (DataType.STRING, DataType.DATE):
        return text
    return value


@dataclass(frozen=True)
class TypeProfile:
    """Summary of the type composition of a column.

    Attributes
    ----------
    dominant:
        The inferred dominant data type.
    counts:
        Number of non-missing values observed per type.
    missing:
        Number of missing cells.
    total:
        Total number of cells examined.
    """

    dominant: DataType
    counts: dict[str, int]
    missing: int
    total: int

    @property
    def missing_ratio(self) -> float:
        """Fraction of cells that are missing."""
        return self.missing / self.total if self.total else 0.0


def profile_types(values: Sequence[object], sample_limit: Optional[int] = None) -> TypeProfile:
    """Build a :class:`TypeProfile` for a sequence of cell values."""
    limit = len(values) if sample_limit is None else min(sample_limit, len(values))
    counts: dict[str, int] = {}
    missing = 0
    for value in values[:limit]:
        if is_missing(value):
            missing += 1
            continue
        kind = infer_value_type(value).value
        counts[kind] = counts.get(kind, 0) + 1
    dominant = infer_column_type(values[:limit])
    return TypeProfile(dominant=dominant, counts=counts, missing=missing, total=limit)
