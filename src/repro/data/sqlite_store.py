"""Shared per-process SQLite connection machinery for the on-disk stores.

:class:`~repro.lake.store.SketchStore` and
:class:`~repro.discovery.prepared.PreparedStore` are both single-file
SQLite stores that parallel-rerank workers open concurrently with a
writing parent.  The concurrency rules are identical and subtle, so they
live exactly once, here:

* **WAL journal mode** (file-backed stores only) — readers never block the
  writer and vice versa; requires a local filesystem with working POSIX
  locks and shared memory, not NFS.
* **One connection per process** — :meth:`_ensure_connection` is keyed by
  PID, so a store object that crosses a ``fork()`` lazily opens its own
  connection instead of sharing the parent's (sharing SQLite connections
  across processes is undefined behaviour).  In-memory stores cannot cross
  processes and refuse with ``RuntimeError``.
* **Read-only opens** (``mode=ro`` URI) for pure reader processes, which
  skip schema creation and must find an initialised store.
* **Busy timeout** on every connection, so occasional concurrent writers
  serialize on SQLite's write lock instead of failing.
* **Closed means closed** — :meth:`close` marks the store unusable in this
  process (later calls raise ``sqlite3.ProgrammingError``) rather than
  letting the per-PID lookup silently reopen a leaked connection.

Subclasses declare what their store looks like (``_STORE_KIND``,
``_REQUIRED_TABLES``, ``_SCHEMA_SCRIPT``, ``_FOREIGN_KEYS``), call
:meth:`_init_connections` from ``__init__``, and may override
:meth:`_close_hook` for flush-on-close work.
"""

from __future__ import annotations

import os
import sqlite3
from pathlib import Path
from typing import Union

__all__ = ["PerProcessSqliteStore"]

#: Milliseconds a connection waits on SQLite's write lock before giving up.
#: Generous on purpose: concurrent writers (e.g. parallel-rerank workers
#: writing through misses) serialize on one lock under WAL.
_BUSY_TIMEOUT_MS = 10_000

#: Names per ``IN (...)`` clause in batched lookups — comfortably below
#: SQLite's historical 999-variable limit.
_MAX_IN_VARS = 500


class PerProcessSqliteStore:
    """Mixin holding the per-PID WAL connection lifecycle of a SQLite store."""

    #: Human-readable store kind used in error messages ("sketch store"...).
    _STORE_KIND = "store"
    #: Tables that must be present for an existing SQLite file to be
    #: adopted as this kind of store (refusing somebody else's database).
    _REQUIRED_TABLES: frozenset = frozenset({"meta"})
    #: ``executescript`` DDL creating the store's tables (writable opens).
    _SCHEMA_SCRIPT = ""
    #: Whether connections enable ``PRAGMA foreign_keys``.
    _FOREIGN_KEYS = False

    def _init_connections(
        self, path: Union[str, Path], read_only: bool
    ) -> sqlite3.Connection:
        """Open the founding connection; called once from subclass __init__."""
        self.path = str(path)
        self.read_only = read_only
        self._connections: dict[int, sqlite3.Connection] = {}
        self._closed = False
        connection = self._open_connection()
        self._connections[os.getpid()] = connection
        return connection

    def _open_connection(self) -> sqlite3.Connection:
        """Open, pragma-configure and validate one connection to the store."""
        in_memory = self.path == ":memory:"
        connection = None
        try:
            if self.read_only:
                connection = sqlite3.connect(f"file:{self.path}?mode=ro", uri=True)
            else:
                connection = sqlite3.connect(self.path)
            if self._FOREIGN_KEYS:
                connection.execute("PRAGMA foreign_keys = ON")
            connection.execute(f"PRAGMA busy_timeout = {_BUSY_TIMEOUT_MS}")
            if not in_memory and not self.read_only:
                # WAL lets N reader processes (parallel-rerank workers) pull
                # rows while a writer commits; NORMAL sync is the standard
                # WAL pairing (the WAL survives process crashes, only an OS
                # crash can lose the tail).  Converting the journal mode is
                # the writer's job: on a read-only connection the pragma
                # would fail against a legacy (pre-WAL) store file, and
                # *reading* a WAL database needs no pragma at all.
                connection.execute("PRAGMA journal_mode = WAL")
                connection.execute("PRAGMA synchronous = NORMAL")
            existing = {
                row[0]
                for row in connection.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
            }
            if existing and not self._REQUIRED_TABLES <= existing:
                # A valid SQLite database, but somebody else's: refuse to
                # adopt it rather than writing our tables into it.
                connection.close()
                raise ValueError(
                    f"{self.path!r} is a SQLite database but not a {self._STORE_KIND}"
                )
            if not self.read_only:
                connection.executescript(self._SCHEMA_SCRIPT)
        except sqlite3.Error as exc:
            if connection is not None:
                connection.close()
            raise ValueError(
                f"cannot open {self.path!r} as a {self._STORE_KIND} (SQLite) "
                f"file: {exc}"
            ) from exc
        return connection

    def _ensure_connection(self) -> sqlite3.Connection:
        """The calling process's connection, opened on first use per PID."""
        if self._closed:
            raise sqlite3.ProgrammingError(
                f"cannot operate on a closed {self._STORE_KIND}"
            )
        pid = os.getpid()
        connection = self._connections.get(pid)
        if connection is None:
            if self.path == ":memory:":
                raise RuntimeError(
                    f"an in-memory {self._STORE_KIND} cannot be shared across "
                    "processes; use a file-backed store"
                )
            connection = self._open_connection()
            self._connections[pid] = connection
        return connection

    @property
    def _connection(self) -> sqlite3.Connection:
        return self._ensure_connection()

    def _close_hook(self, connection: sqlite3.Connection) -> None:
        """Last-chance work on the closing connection (e.g. flush batches)."""

    def integrity_check(self) -> list[str]:
        """Run ``PRAGMA integrity_check``; ``[]`` means the file is sound.

        Returns SQLite's complaint strings on corruption (page damage,
        broken indexes).  An empty list is the all-clear — the single
        row ``ok`` SQLite reports for a healthy database is elided.
        """
        try:
            rows = self._connection.execute("PRAGMA integrity_check").fetchall()
        except sqlite3.Error as exc:
            # A database too damaged to even run the pragma is its own
            # finding, not an exception the caller has to special-case.
            return [f"integrity_check failed to run: {exc}"]
        findings = [str(row[0]) for row in rows]
        if findings == ["ok"]:
            return []
        return findings

    def close(self) -> None:
        """Close this process's connection and mark the store unusable.

        Later calls raise ``sqlite3.ProgrammingError``.  Connections opened
        by forked processes belong to — and are closed by — those processes
        (the closed flag is per process too: each side of a fork has its own
        copy of it).
        """
        pid = os.getpid()
        connection = self._connections.get(pid)
        if connection is not None:
            try:
                self._close_hook(connection)
            except sqlite3.Error:  # pragma: no cover - defensive on teardown
                pass
            self._connections.pop(pid, None)
            connection.close()
        self._closed = True
