"""CSV persistence for :class:`~repro.data.table.Table` objects.

Valentine stores fabricated dataset pairs on disk as CSV files; this module
provides the read/write round trip used by the fabricator, the example
scripts and the experiment runner.
"""

from __future__ import annotations

import csv
import io
from pathlib import Path
from typing import Optional, Union

from repro.data.table import Column, Table
from repro.data.types import DataType, coerce_value

__all__ = ["read_csv", "write_csv", "table_from_csv_text", "table_to_csv_text"]

PathLike = Union[str, Path]


def table_from_csv_text(text: str, name: str = "table", infer_types: bool = True) -> Table:
    """Parse CSV *text* (with a header row) into a :class:`Table`.

    Parameters
    ----------
    text:
        CSV content; the first row is the header.
    name:
        Name given to the resulting table.
    infer_types:
        When True (default) cell values are coerced to the inferred column
        type; otherwise all cells stay strings.
    """
    reader = csv.reader(io.StringIO(text))
    rows = [row for row in reader if row]
    if not rows:
        return Table(name, [])
    header = [h.strip() for h in rows[0]]
    data_rows = rows[1:]
    columns: list[Column] = []
    for i, col_name in enumerate(header):
        values: list[object] = [row[i] if i < len(row) else None for row in data_rows]
        column = Column(col_name, values)
        if infer_types and column.data_type is not DataType.STRING:
            column = column.coerced()
        columns.append(column)
    return Table(name, columns)


def table_to_csv_text(table: Table) -> str:
    """Serialise *table* to CSV text (header + rows)."""
    buffer = io.StringIO()
    writer = csv.writer(buffer, lineterminator="\n")
    writer.writerow(table.column_names)
    for row in table.rows():
        writer.writerow(["" if value is None else value for value in row])
    return buffer.getvalue()


def read_csv(path: PathLike, name: Optional[str] = None, infer_types: bool = True) -> Table:
    """Read a CSV file into a :class:`Table`.

    The table name defaults to the file stem.
    """
    path = Path(path)
    with path.open("r", newline="", encoding="utf-8") as handle:
        text = handle.read()
    return table_from_csv_text(text, name=name or path.stem, infer_types=infer_types)


def write_csv(table: Table, path: PathLike) -> Path:
    """Write *table* to *path* as CSV and return the path."""
    path = Path(path)
    path.parent.mkdir(parents=True, exist_ok=True)
    with path.open("w", newline="", encoding="utf-8") as handle:
        handle.write(table_to_csv_text(table))
    return path
