"""Content fingerprints of tables.

A single deterministic digest identifies a table's full schema + cell
content.  Two subsystems key caches on it:

* the :class:`~repro.lake.store.SketchStore` uses it for cache invalidation
  (re-adding an unchanged table is a no-op);
* the :class:`~repro.discovery.prepared.PreparedTableCache` combines it with
  a matcher fingerprint to reuse prepared tables across discovery queries.

The function lives here (rather than in ``repro.lake``) because the
discovery layer must not depend on the lake subsystem.
"""

from __future__ import annotations

import hashlib

from repro.data.table import Table

__all__ = ["table_content_hash"]


def table_content_hash(table: Table) -> str:
    """Deterministic digest of a table's schema and cell values.

    Caches key invalidation on this hash: re-adding a table whose content is
    unchanged is a cache hit, while any cell/schema change produces a
    different digest.
    """
    hasher = hashlib.blake2b(digest_size=16)

    def _update(payload: bytes) -> None:
        # Length-prefix every field so adjacent values can never be confused
        # with one longer value (or a None with a literal sentinel string).
        hasher.update(len(payload).to_bytes(8, "little"))
        hasher.update(payload)

    # Encode the shape too: without the column/row counts a 1x4 table and a
    # 2x1 table with the same flat value stream would collide.
    hasher.update(table.num_columns.to_bytes(8, "little"))
    for column in table.columns:
        _update(column.name.encode("utf-8"))
        _update(column.data_type.value.encode("utf-8"))
        hasher.update(len(column.values).to_bytes(8, "little"))
        for value in column.values:
            if value is None:
                hasher.update(b"\xff" * 8)  # length no real payload can have
            else:
                _update(str(value).encode("utf-8"))
    return hasher.hexdigest()
