"""Column profiling utilities.

Several matchers need lightweight statistics about columns — distinctness,
value-length statistics, numeric summaries — and the experiment reports print
dataset profiles.  This module centralises those computations so matchers do
not each re-derive them.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Optional

from repro.data.table import Column, Table
from repro.data.types import DataType, parse_numeric_values

__all__ = ["ColumnProfile", "profile_column", "profile_table"]


@dataclass(frozen=True)
class ColumnProfile:
    """Summary statistics of a single column.

    Attributes
    ----------
    name:
        Column name.
    data_type:
        Inferred data type.
    row_count:
        Total number of cells.
    distinct_count:
        Number of distinct non-missing values.
    missing_count:
        Number of missing cells.
    mean / std / minimum / maximum:
        Numeric summaries (``None`` for non-numeric columns).
    avg_length:
        Average rendered string length of non-missing values.
    """

    name: str
    data_type: DataType
    row_count: int
    distinct_count: int
    missing_count: int
    mean: Optional[float]
    std: Optional[float]
    minimum: Optional[float]
    maximum: Optional[float]
    avg_length: float

    @property
    def uniqueness(self) -> float:
        """Distinct values divided by non-missing cells (0 for empty columns)."""
        non_missing = self.row_count - self.missing_count
        return self.distinct_count / non_missing if non_missing else 0.0

    @property
    def completeness(self) -> float:
        """Fraction of cells that are present."""
        return 1.0 - (self.missing_count / self.row_count) if self.row_count else 0.0


def profile_column(
    column: Column,
    *,
    non_missing: Optional[list] = None,
    distinct_count: Optional[int] = None,
) -> ColumnProfile:
    """Compute a :class:`ColumnProfile` for *column*.

    Parameters
    ----------
    column:
        The column to profile.
    non_missing / distinct_count:
        Optionally pass the precomputed non-missing values and distinct
        count so callers that already scanned the column (e.g.
        :func:`repro.lake.profiles.sketch_table`, which also feeds the same
        scan to the MinHash and histogram passes) don't trigger another
        traversal.  Results are identical either way.
    """
    if non_missing is None:
        non_missing = column.non_missing()
    distinct = len(column.unique_values()) if distinct_count is None else distinct_count
    missing = len(column) - len(non_missing)
    mean = std = minimum = maximum = None
    if column.data_type.is_numeric:
        numbers = parse_numeric_values(non_missing)
        if numbers:
            mean = sum(numbers) / len(numbers)
            variance = sum((x - mean) ** 2 for x in numbers) / len(numbers)
            std = math.sqrt(variance)
            minimum = min(numbers)
            maximum = max(numbers)
    lengths = [len(str(v)) for v in non_missing]
    avg_length = sum(lengths) / len(lengths) if lengths else 0.0
    return ColumnProfile(
        name=column.name,
        data_type=column.data_type,
        row_count=len(column),
        distinct_count=distinct,
        missing_count=missing,
        mean=mean,
        std=std,
        minimum=minimum,
        maximum=maximum,
        avg_length=avg_length,
    )


def profile_table(table: Table) -> dict[str, ColumnProfile]:
    """Profile every column of *table*; keyed by column name."""
    return {column.name: profile_column(column) for column in table.columns}
