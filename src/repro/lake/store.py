"""Versioned on-disk store of table sketches.

The store is the persistent half of the lake index: sketches are computed
once when a table is added and survive process restarts, so a discovery
query against a 10k-table lake never re-profiles the lake.  SQLite is used
as the storage engine (stdlib, single file, transactional); sketches are
stored as JSON payloads keyed by ``(table, column)``.

Consistency properties:

* **Cache invalidation** — :meth:`SketchStore.add_table` hashes the table's
  content and skips re-sketching when the stored hash matches, so repeated
  builds over an unchanged lake are cheap.
* **Versioning** — every mutation bumps a monotone store version, letting an
  in-memory :class:`~repro.lake.index.LakeIndex` detect staleness cheaply.
* **Config pinning** — the sketch parameters are persisted on creation;
  reopening with a conflicting :class:`SketchConfig` raises instead of
  silently mixing incomparable signatures.
* **Concurrent readers** — file-backed stores run in WAL journal mode with
  one connection per process (:meth:`SketchStore._ensure_connection` is
  keyed by PID), so parallel-rerank workers resolve candidate metadata
  concurrently with a writing parent.  ``read_only=True`` opens an existing
  store without ever writing (safe for any number of reader processes).
"""

from __future__ import annotations

import json
import logging
import sqlite3
from pathlib import Path
from typing import Callable, Iterator, NamedTuple, Optional, Sequence, Union

from repro.data.sqlite_store import _MAX_IN_VARS, PerProcessSqliteStore
from repro.data.table import Table
from repro.lake.profiles import (
    ColumnSketch,
    SketchConfig,
    TableSketch,
    sketch_table,
    table_content_hash,
)
from repro.telemetry import recorder as telemetry

logger = logging.getLogger(__name__)

__all__ = ["SketchStore", "TableMeta", "store_generation"]


class TableMeta(NamedTuple):
    """One table's batch-resolved metadata plus (optionally) its sketches.

    The return unit of :meth:`SketchStore.table_meta` with
    ``include_sketches=True``: identity metadata and the decoded
    :class:`~repro.lake.profiles.ColumnSketch` objects, all pulled in one
    ``IN (...)`` round trip per ~500 names — what the rerank cascade's
    stage 1 scores candidates with, without per-candidate point queries.
    """

    content_hash: str
    source_path: Optional[str]
    columns: tuple[ColumnSketch, ...]

#: The generation of a store file: identity of the inode plus the monotone
#: store version inside it.
StoreGeneration = tuple[int, int, int]


def store_generation(path: Union[str, Path]) -> Optional[StoreGeneration]:
    """The ``(st_dev, st_ino, version)`` generation of the store at *path*.

    A long-lived reader (the serve daemon) polls this to detect writer
    cycles: a rebuilt store is a **new file** (build tools write then
    rename, changing the inode) and an in-place update bumps the monotone
    ``version`` row — either way the tuple changes.  The check opens a
    transient read-only connection so it never interferes with the store's
    own per-process connection cache, and returns ``None`` when *path* does
    not exist or is not (yet) a readable sketch/prepared store — e.g. a
    writer mid-rename.
    """
    resolved = Path(path)
    try:
        stat = resolved.stat()
    except OSError:
        return None
    try:
        connection = sqlite3.connect(f"file:{resolved}?mode=ro", uri=True)
    except sqlite3.Error:
        return None
    try:
        row = connection.execute(
            "SELECT value FROM meta WHERE key = 'version'"
        ).fetchone()
    except sqlite3.Error:
        return None
    finally:
        connection.close()
    return (stat.st_dev, stat.st_ino, int(row[0]) if row else 0)

_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS tables (
    name TEXT PRIMARY KEY,
    content_hash TEXT NOT NULL,
    num_rows INTEGER NOT NULL,
    source_path TEXT,
    updated_version INTEGER NOT NULL
);
CREATE TABLE IF NOT EXISTS columns (
    table_name TEXT NOT NULL,
    column_name TEXT NOT NULL,
    payload TEXT NOT NULL,
    PRIMARY KEY (table_name, column_name),
    FOREIGN KEY (table_name) REFERENCES tables(name) ON DELETE CASCADE
);
"""


class SketchStore(PerProcessSqliteStore):
    """A persistent, incrementally updatable collection of table sketches.

    Parameters
    ----------
    path:
        SQLite database path; ``":memory:"`` gives an ephemeral store.
    config:
        Sketch parameters.  For an existing store the persisted config wins;
        passing a different explicit config raises ``ValueError``.
    read_only:
        Open an *existing* store for reading only (SQLite ``mode=ro``) —
        what parallel-rerank workers use to resolve candidate metadata
        while the parent may still be writing.
    """

    _STORE_KIND = "sketch store"
    _REQUIRED_TABLES = frozenset({"meta"})
    _SCHEMA_SCRIPT = _SCHEMA
    _FOREIGN_KEYS = True

    def __init__(
        self,
        path: Union[str, Path] = ":memory:",
        config: Optional[SketchConfig] = None,
        read_only: bool = False,
    ) -> None:
        #: Callbacks fired with the table name after a successful
        #: :meth:`remove_table` commit — how derived in-memory structures
        #: (the engine's LSH index) invalidate a deleted table immediately
        #: instead of waiting for their next version probe.
        self._removal_listeners: list[Callable[[str], None]] = []
        connection = self._init_connections(path, read_only)
        stored = self._read_meta("sketch_config")
        if stored is None:
            if read_only:
                self.close()
                raise ValueError(
                    f"cannot open {self.path!r} read-only: not an initialised "
                    "sketch store"
                )
            self.config = config or SketchConfig()
            with connection:
                self._write_meta("schema_version", str(_SCHEMA_VERSION))
                self._write_meta("sketch_config", json.dumps(self.config.as_dict()))
                self._write_meta("version", "0")
        else:
            schema_version = int(self._read_meta("schema_version") or 0)
            if schema_version != _SCHEMA_VERSION:
                self.close()
                raise ValueError(
                    f"store at {self.path!r} has schema version {schema_version}, "
                    f"this code reads version {_SCHEMA_VERSION}"
                )
            persisted = SketchConfig.from_dict(json.loads(stored))
            if config is not None and config != persisted:
                self.close()
                raise ValueError(
                    f"store at {self.path!r} was built with {persisted}, "
                    f"cannot reopen with {config}"
                )
            self.config = persisted

    # ------------------------------------------------------------------ #
    # lifecycle (connection machinery inherited from PerProcessSqliteStore)
    # ------------------------------------------------------------------ #
    def __enter__(self) -> "SketchStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # meta helpers
    # ------------------------------------------------------------------ #
    def _read_meta(self, key: str) -> Optional[str]:
        row = self._connection.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row else None

    def _write_meta(self, key: str, value: str) -> None:
        self._connection.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, value),
        )

    @property
    def version(self) -> int:
        """Monotone counter bumped by every mutating operation."""
        return int(self._read_meta("version") or 0)

    def _bump_version(self) -> int:
        version = self.version + 1
        self._write_meta("version", str(version))
        return version

    # ------------------------------------------------------------------ #
    # mutations
    # ------------------------------------------------------------------ #
    def add_table(
        self, table: Table, source_path: Optional[Union[str, Path]] = None
    ) -> bool:
        """Sketch *table* and persist it; returns whether re-sketching ran.

        If a sketch for ``table.name`` already exists with the same content
        hash the call is a cache hit and nothing is recomputed (though a
        changed *source_path* is still refreshed, so moved lakes keep
        resolving).  A changed hash (or a new name) re-sketches and replaces
        atomically.
        """
        content_hash = table_content_hash(table)
        if self._is_unchanged(table.name, content_hash, source_path):
            telemetry.count("sketch_store.unchanged")
            return False
        with telemetry.span("sketch_store.sketch", table=table.name):
            sketch = sketch_table(table, self.config, content_hash=content_hash)
        self._write_sketch(sketch, source_path)
        telemetry.count("sketch_store.sketch_writes")
        return True

    def add_sketch(
        self, sketch: TableSketch, source_path: Optional[Union[str, Path]] = None
    ) -> bool:
        """Persist an already-computed sketch; returns whether it was written.

        The single-writer half of the parallel lake build: worker processes
        read and sketch CSVs, the owning process commits their results here.
        Cache-hit semantics match :meth:`add_table` (an identical stored
        content hash only refreshes a moved path).
        """
        if self._is_unchanged(sketch.name, sketch.content_hash, source_path):
            return False
        self._write_sketch(sketch, source_path)
        return True

    def _is_unchanged(
        self,
        name: str,
        content_hash: str,
        source_path: Optional[Union[str, Path]],
    ) -> bool:
        """True when *name* is stored with *content_hash* (refreshing the path)."""
        row = self._connection.execute(
            "SELECT content_hash FROM tables WHERE name = ?",
            (name,),
        ).fetchone()
        if row is None or row[0] != content_hash:
            return False
        if source_path is not None:
            self.refresh_source_path(name, source_path)
        return True

    def refresh_source_path(self, name: str, source_path: Union[str, Path]) -> None:
        """Record a (possibly moved) source path for an existing table.

        A no-op for unknown names and unchanged paths; never *clears* a
        recorded path — callers that add in-memory tables (no source_path)
        must not null the recorded one.
        """
        resolved_path = str(source_path)
        row = self._connection.execute(
            "SELECT source_path FROM tables WHERE name = ?", (name,)
        ).fetchone()
        if row is None or row[0] == resolved_path:
            return
        with self._connection:
            self._connection.execute(
                "UPDATE tables SET source_path = ? WHERE name = ?",
                (resolved_path, name),
            )

    def _write_sketch(
        self, sketch: TableSketch, source_path: Optional[Union[str, Path]]
    ) -> None:
        resolved_path = None if source_path is None else str(source_path)
        with self._connection:
            self._connection.execute(
                "DELETE FROM columns WHERE table_name = ?", (sketch.name,)
            )
            self._connection.execute(
                "INSERT INTO tables (name, content_hash, num_rows, source_path, updated_version) "
                "VALUES (?, ?, ?, ?, ?) "
                "ON CONFLICT(name) DO UPDATE SET content_hash = excluded.content_hash, "
                "num_rows = excluded.num_rows, source_path = excluded.source_path, "
                "updated_version = excluded.updated_version",
                (
                    sketch.name,
                    sketch.content_hash,
                    sketch.num_rows,
                    resolved_path,
                    self.version + 1,
                ),
            )
            self._connection.executemany(
                "INSERT INTO columns (table_name, column_name, payload) VALUES (?, ?, ?)",
                [
                    (sketch.name, column.column_name, json.dumps(column.to_dict()))
                    for column in sketch.columns
                ],
            )
            self._bump_version()

    def remove_table(self, name: str) -> bool:
        """Drop the sketch of *name*; returns whether it existed.

        Registered removal listeners (see :meth:`add_removal_listener`) are
        notified after the delete commits, so anything derived from the
        store can retire the table before its next read.
        """
        with self._connection:
            cursor = self._connection.execute(
                "DELETE FROM tables WHERE name = ?", (name,)
            )
            if cursor.rowcount == 0:
                return False
            self._bump_version()
        for listener in list(self._removal_listeners):
            listener(name)
        return True

    def add_removal_listener(self, listener: Callable[[str], None]) -> None:
        """Call *listener(name)* after every committed :meth:`remove_table`."""
        self._removal_listeners.append(listener)

    def remove_removal_listener(self, listener: Callable[[str], None]) -> None:
        """Unregister a listener added with :meth:`add_removal_listener`."""
        try:
            self._removal_listeners.remove(listener)
        except ValueError:
            pass

    # ------------------------------------------------------------------ #
    # reads
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._connection.execute("SELECT COUNT(*) FROM tables").fetchone()[0]

    def __contains__(self, name: str) -> bool:
        row = self._connection.execute(
            "SELECT 1 FROM tables WHERE name = ?", (name,)
        ).fetchone()
        return row is not None

    @property
    def table_names(self) -> list[str]:
        """Registered table names in insertion (rowid) order."""
        rows = self._connection.execute(
            "SELECT name FROM tables ORDER BY rowid"
        ).fetchall()
        return [row[0] for row in rows]

    def updated_since(self, version: int) -> list[str]:
        """Names of tables (re)sketched after store version *version*.

        Removals are not reported — diff :attr:`table_names` for those.  This
        is the delta query behind incremental index refresh.
        """
        rows = self._connection.execute(
            "SELECT name FROM tables WHERE updated_version > ? ORDER BY rowid",
            (version,),
        ).fetchall()
        return [row[0] for row in rows]

    def content_hash(self, name: str) -> Optional[str]:
        """The stored content hash of *name* (``None`` for unknown tables).

        One indexed lookup — the warm discovery path uses it to key into the
        prepared-candidate store without loading (or re-hashing) the table.
        """
        row = self._connection.execute(
            "SELECT content_hash FROM tables WHERE name = ?", (name,)
        ).fetchone()
        return row[0] if row else None

    def table_meta(
        self, names: Sequence[str], include_sketches: bool = False
    ) -> dict[str, Union[tuple[str, Optional[str]], TableMeta]]:
        """Batch ``{name: (content hash, source path)}`` lookup.

        One ``IN (...)`` query per ~500 names instead of two point lookups
        per name — how a discovery shortlist (or a rerank worker's name
        chunk) resolves its candidates' build-time hashes and CSV paths in
        a single store round trip.  Unknown names are absent from the
        result.

        With ``include_sketches=True`` each entry is a :class:`TableMeta`
        whose ``columns`` carry the decoded column sketches, joined in via
        one extra batched ``IN (...)`` query over the columns table — the
        rerank cascade's stage-1 signal source (histograms + MinHash for a
        whole shortlist, no per-candidate round trips).  Column payloads
        that fail to decode leave that table's ``columns`` empty rather
        than failing the batch (the cascade then scores it exactly).
        """
        names = list(names)
        out: dict[str, Union[tuple[str, Optional[str]], TableMeta]] = {}
        sketches: dict[str, list[ColumnSketch]] = {}
        corrupt: set[str] = set()
        for start in range(0, len(names), _MAX_IN_VARS):
            chunk = names[start : start + _MAX_IN_VARS]
            placeholders = ", ".join("?" * len(chunk))
            rows = self._connection.execute(
                "SELECT name, content_hash, source_path FROM tables "
                f"WHERE name IN ({placeholders})",
                chunk,
            ).fetchall()
            for name, content_hash, source_path in rows:
                out[name] = (content_hash, source_path)
            if include_sketches:
                column_rows = self._connection.execute(
                    "SELECT table_name, payload FROM columns "
                    f"WHERE table_name IN ({placeholders}) ORDER BY rowid",
                    chunk,
                ).fetchall()
                for table_name, payload in column_rows:
                    if table_name in corrupt:
                        continue
                    try:
                        sketch = ColumnSketch.from_dict(json.loads(payload))
                    except (ValueError, KeyError, TypeError):
                        corrupt.add(table_name)
                        sketches.pop(table_name, None)
                        logger.warning(
                            "column sketch of table %r does not decode; "
                            "stage-1 signals unavailable for it",
                            table_name,
                        )
                        continue
                    sketches.setdefault(table_name, []).append(sketch)
        if include_sketches:
            out = {
                name: TableMeta(
                    content_hash=entry[0],
                    source_path=entry[1],
                    columns=tuple(sketches.get(name, ())),
                )
                for name, entry in out.items()
            }
        telemetry.count("sketch_store.meta_lookups", len(names))
        telemetry.count("sketch_store.meta_hits", len(out))
        if len(out) < len(set(names)):
            telemetry.count("sketch_store.meta_misses", len(set(names)) - len(out))
        return out

    def source_path(self, name: str) -> Optional[str]:
        """The recorded source path of *name* (``None`` when not recorded)."""
        row = self._connection.execute(
            "SELECT source_path FROM tables WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            raise KeyError(f"store has no table {name!r}")
        return row[0]

    def stats(self) -> dict:
        """Store-level counters for ``lake stats``: row counts, version, config."""
        tables, total_rows = self._connection.execute(
            "SELECT COUNT(*), COALESCE(SUM(num_rows), 0) FROM tables"
        ).fetchone()
        columns = self._connection.execute("SELECT COUNT(*) FROM columns").fetchone()[0]
        return {
            "tables": tables,
            "columns": columns,
            "total_table_rows": total_rows,
            "version": self.version,
            "config": self.config.as_dict(),
        }

    def get(self, name: str) -> Optional[TableSketch]:
        """Return the :class:`TableSketch` of *name* or ``None``.

        Raises ``ValueError`` naming the table when its stored column
        payloads do not decode (row-level corruption that SQLite's own
        ``integrity_check`` cannot see) — the granularity ``lake verify``
        repairs at.
        """
        telemetry.count("sketch_store.sketch_reads")
        row = self._connection.execute(
            "SELECT content_hash, num_rows FROM tables WHERE name = ?", (name,)
        ).fetchone()
        if row is None:
            return None
        payloads = self._connection.execute(
            "SELECT payload FROM columns WHERE table_name = ? ORDER BY rowid",
            (name,),
        ).fetchall()
        try:
            columns = tuple(ColumnSketch.from_dict(json.loads(p[0])) for p in payloads)
        except (ValueError, KeyError, TypeError) as exc:
            raise ValueError(
                f"sketch for table {name!r} is corrupt: column payload does "
                f"not decode ({exc})"
            ) from exc
        return TableSketch(
            name=name, content_hash=row[0], num_rows=row[1], columns=columns
        )

    def __iter__(self) -> Iterator[TableSketch]:
        """Iterate over all table sketches in insertion order.

        Reads the whole store in two bulk queries (not 2N point lookups), so
        full-index rebuilds stay cheap on large lakes.
        """
        metadata = self._connection.execute(
            "SELECT name, content_hash, num_rows FROM tables ORDER BY rowid"
        ).fetchall()
        payloads = self._connection.execute(
            "SELECT c.table_name, c.payload FROM columns c "
            "JOIN tables t ON t.name = c.table_name ORDER BY t.rowid, c.rowid"
        ).fetchall()
        columns_of: dict[str, list[ColumnSketch]] = {}
        for table_name, payload in payloads:
            columns_of.setdefault(table_name, []).append(
                ColumnSketch.from_dict(json.loads(payload))
            )
        for name, content_hash, num_rows in metadata:
            yield TableSketch(
                name=name,
                content_hash=content_hash,
                num_rows=num_rows,
                columns=tuple(columns_of.get(name, ())),
            )

