"""MinHash LSH banding index over column sketches.

Classic banding scheme (used by LSH Ensemble and Aurum's value-overlap
graph): a signature of ``bands x rows`` hashes is split into ``bands``
fragments; two columns land in the same bucket of band *i* when their
*i*-th fragments are identical.  A pair with Jaccard similarity *s* collides
in at least one band with probability ``1 - (1 - s^rows)^bands`` — an
S-curve that passes near-certainly above the similarity threshold and
near-never below it, which is what makes candidate generation sublinear in
lake size.

Bucket collisions are then refined with cheap sketch-level checks (full
signature Jaccard, data-type compatibility, hash-space histogram distance)
before any expensive matcher sees the pair.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Optional

from repro.data.table import Table
from repro.lake.profiles import ColumnSketch, SketchConfig, TableSketch, sketch_table
from repro.telemetry import recorder as telemetry

__all__ = ["LSHParams", "CandidateTable", "LakeIndex"]


@dataclass(frozen=True)
class LSHParams:
    """Tunable banding parameters plus candidate refinement thresholds.

    Attributes
    ----------
    bands / rows:
        Banding shape; ``bands * rows`` must not exceed the signature length.
        More bands (fewer rows) lowers the similarity threshold of the
        S-curve — higher recall, more candidates.
    min_jaccard:
        Colliding column pairs below this estimated Jaccard are discarded.
    min_type_compatibility:
        Pre-filter: colliding pairs whose data types score below this are
        discarded (e.g. integer vs date) before the Jaccard estimate.
    max_histogram_distance:
        Pre-filter: pairs whose fixed-domain histograms differ by more than
        this L1 distance (max 2.0) are discarded.  The default is permissive
        on purpose — the filter exists to drop egregious mismatches, not to
        second-guess the matcher.
    name_match_score:
        Candidate score granted to columns whose *normalised names* are
        identical, independent of value overlap.  This is the schema-evidence
        channel: without it, a perfectly unionable table whose values are
        disjoint from the query (e.g. another time partition of the same
        schema) could never enter the shortlist.  Set 0 to disable.
    """

    bands: int = 32
    rows: int = 4
    min_jaccard: float = 0.05
    min_type_compatibility: float = 0.3
    max_histogram_distance: float = 1.95
    name_match_score: float = 0.5

    def validate(self, num_permutations: int) -> None:
        if self.bands <= 0 or self.rows <= 0:
            raise ValueError("bands and rows must be positive")
        if self.bands * self.rows > num_permutations:
            raise ValueError(
                f"bands * rows = {self.bands * self.rows} exceeds the "
                f"signature length {num_permutations}"
            )


@dataclass(frozen=True)
class CandidateTable:
    """One table surfaced by the index for a query, with its pruning score."""

    table_name: str
    score: float
    column_pairs: tuple[tuple[str, str, float], ...] = ()

    @property
    def best_pair(self) -> Optional[tuple[str, str, float]]:
        return self.column_pairs[0] if self.column_pairs else None


class LakeIndex:
    """In-memory LSH banding index over the column sketches of a lake.

    The index is cheap to (re)build from a :class:`SketchStore` — buckets are
    plain dict lookups over already-persisted signatures — and supports
    incremental :meth:`add` / :meth:`remove` mirroring store mutations.
    """

    def __init__(
        self,
        config: SketchConfig = SketchConfig(),
        params: LSHParams = LSHParams(),
    ) -> None:
        params.validate(config.num_permutations)
        self.config = config
        self.params = params
        self._buckets: dict[tuple[int, tuple[int, ...]], set[tuple[str, str]]] = {}
        self._columns: dict[tuple[str, str], ColumnSketch] = {}
        # table name -> its column keys, so removal is O(columns of table).
        self._tables: dict[str, list[tuple[str, str]]] = {}
        # normalised column name -> keys; the schema-evidence channel.
        self._name_buckets: dict[str, set[tuple[str, str]]] = {}

    @classmethod
    def from_store(cls, store, params: LSHParams = LSHParams()) -> "LakeIndex":
        """Build an index over every sketch currently in *store*."""
        index = cls(config=store.config, params=params)
        for sketch in store:
            index.add(sketch)
        return index

    # ------------------------------------------------------------------ #
    # maintenance
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return len(self._tables)

    @property
    def table_names(self) -> set[str]:
        """Names of the tables currently indexed."""
        return set(self._tables)

    @property
    def num_columns(self) -> int:
        return len(self._columns)

    def _band_keys(self, sketch: ColumnSketch) -> Iterable[tuple[int, tuple[int, ...]]]:
        values = sketch.minhash.values
        rows = self.params.rows
        for band in range(self.params.bands):
            yield (band, values[band * rows : (band + 1) * rows])

    @staticmethod
    def _name_key(column_name: str) -> str:
        return column_name.strip().lower()

    def add(self, table_sketch: TableSketch) -> None:
        """Insert (or replace) a table's column sketches into the buckets."""
        if table_sketch.name in self._tables:
            self.remove(table_sketch.name)
        keys = self._tables[table_sketch.name] = []
        for column in table_sketch.columns:
            if column.minhash.set_size == 0:
                continue  # empty columns collide with everything trivially
            keys.append(column.key)
            self._columns[column.key] = column
            for key in self._band_keys(column):
                self._buckets.setdefault(key, set()).add(column.key)
            self._name_buckets.setdefault(
                self._name_key(column.column_name), set()
            ).add(column.key)

    def remove(self, table_name: str) -> None:
        """Drop every column of *table_name* from the buckets."""
        doomed = self._tables.pop(table_name, [])
        for column_key in doomed:
            column = self._columns.pop(column_key)
            for bucket_key in self._band_keys(column):
                bucket = self._buckets.get(bucket_key)
                if bucket is not None:
                    bucket.discard(column_key)
                    if not bucket:
                        del self._buckets[bucket_key]
            name_key = self._name_key(column.column_name)
            names = self._name_buckets.get(name_key)
            if names is not None:
                names.discard(column_key)
                if not names:
                    del self._name_buckets[name_key]

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def candidate_columns(
        self, query: ColumnSketch, exclude_table: Optional[str] = None
    ) -> list[tuple[ColumnSketch, float]]:
        """Columns sharing ≥1 LSH band or a normalised name, refined and scored.

        Value evidence scores by estimated Jaccard; name-equal columns score
        at least ``params.name_match_score`` regardless of value overlap (so
        disjoint partitions of one schema stay discoverable).  Results are
        sorted by descending score, ties broken by column key.
        """
        seen: set[tuple[str, str]] = set()
        for bucket_key in self._band_keys(query):
            seen.update(self._buckets.get(bucket_key, ()))
        params = self.params
        name_matches: set[tuple[str, str]] = set()
        if params.name_match_score > 0:
            name_matches = self._name_buckets.get(
                self._name_key(query.column_name), set()
            )
            seen |= name_matches
        scored: list[tuple[ColumnSketch, float]] = []
        # Pre-filter rejections are tallied locally and emitted as one batch
        # of counters per call — the loop body stays telemetry-free.
        type_rejected = histogram_rejected = jaccard_rejected = 0
        for column_key in seen:
            if column_key == query.key or column_key[0] == exclude_table:
                continue
            candidate = self._columns[column_key]
            if query.type_compatibility(candidate) < params.min_type_compatibility:
                type_rejected += 1
                continue
            name_match = column_key in name_matches
            if (
                not name_match
                and query.histogram_distance(candidate) > params.max_histogram_distance
            ):
                histogram_rejected += 1
                continue
            similarity = query.jaccard(candidate)
            if name_match:
                similarity = max(similarity, params.name_match_score)
            if similarity < params.min_jaccard:
                jaccard_rejected += 1
                continue
            scored.append((candidate, similarity))
        scored.sort(key=lambda item: (-item[1], item[0].key))
        telemetry.count("lsh.bands_probed", params.bands)
        telemetry.count("lsh.bucket_candidates", len(seen))
        if type_rejected:
            telemetry.count("lsh.type_rejected", type_rejected)
        if histogram_rejected:
            telemetry.count("lsh.histogram_rejected", histogram_rejected)
        if jaccard_rejected:
            telemetry.count("lsh.jaccard_rejected", jaccard_rejected)
        telemetry.count("lsh.columns_accepted", len(scored))
        return scored

    def candidate_tables(
        self,
        query: TableSketch,
        top_k: Optional[int] = None,
        exclude_self: bool = True,
    ) -> list[CandidateTable]:
        """Rank lake tables by sketch-level evidence against *query*.

        Each query column votes for the best-matching column per candidate
        table; a table's score is the mean of those votes over the query's
        columns (so a table matching all query columns outranks one matching
        a single column equally well).
        """
        exclude = query.name if exclude_self else None
        per_table: dict[str, dict[str, tuple[str, float]]] = {}
        for query_column in query.columns:
            for candidate, similarity in self.candidate_columns(
                query_column, exclude_table=exclude
            ):
                best = per_table.setdefault(candidate.table_name, {})
                current = best.get(query_column.column_name)
                if current is None or similarity > current[1]:
                    best[query_column.column_name] = (candidate.column_name, similarity)
        num_query_columns = max(1, query.num_columns)
        candidates = []
        for table_name, votes in per_table.items():
            pairs = tuple(
                sorted(
                    (
                        (query_column, target_column, similarity)
                        for query_column, (target_column, similarity) in votes.items()
                    ),
                    key=lambda pair: (-pair[2], pair[0], pair[1]),
                )
            )
            score = sum(similarity for _, _, similarity in pairs) / num_query_columns
            candidates.append(
                CandidateTable(table_name=table_name, score=score, column_pairs=pairs)
            )
        candidates.sort(key=lambda c: (-c.score, c.table_name))
        return candidates[:top_k] if top_k is not None else candidates

    def shortlist(self, query: Table, limit: Optional[int] = None) -> list[str]:
        """Candidate table names for a raw query table (sketched on the fly).

        This is the duck-typed hook :meth:`DiscoveryEngine.discover
        <repro.discovery.search.DiscoveryEngine.discover>` calls for its
        ``index=`` fast path.
        """
        # Transient query sketch: identity is never consulted, skip the
        # O(cells) content hash.
        sketch = sketch_table(query, self.config, content_hash="")
        return [c.table_name for c in self.candidate_tables(sketch, top_k=limit)]
