"""Per-column sketches: the unit of storage of the lake index.

A :class:`ColumnSketch` condenses a column into a few hundred bytes — a
MinHash signature for value-overlap estimation, a histogram of the value
multiset over a *fixed* hashed rank domain (so any two sketches are directly
comparable without re-ranking the pair's value union), and the type/stats
profile of :mod:`repro.data.profiling`.  Sketches are computed once per
column when a table enters the :class:`~repro.lake.store.SketchStore` and
reused by every subsequent query, which is what turns discovery from
"re-profile the lake per query" into an index lookup.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Optional

import numpy as np

from repro.data.fingerprint import table_content_hash
from repro.data.profiling import ColumnProfile, profile_column
from repro.data.table import Column, Table
from repro.data.types import DataType, type_compatibility
from repro.distributions.histograms import build_histogram
from repro.sketches.minhash import (
    MinHashSignature,
    _stable_hash,
    hash_normalized_values,
    minhash_signatures_from_hashes,
)

__all__ = [
    "SketchConfig",
    "ColumnSketch",
    "TableSketch",
    "sketch_table",
    "table_content_hash",
]

#: Size of the fixed hashed rank domain histograms are built over.  All
#: sketches share this domain, so histograms are comparable across columns
#: without building a per-pair value union.
_HASH_RANK_DOMAIN = 8192


@dataclass(frozen=True)
class SketchConfig:
    """Parameters shared by every sketch in one store/index.

    Signatures with different parameters are not comparable, so the store
    persists its config and queries must be sketched with the same one.
    """

    num_permutations: int = 128
    seed: int = 7
    num_buckets: int = 16

    def as_dict(self) -> dict[str, int]:
        return {
            "num_permutations": self.num_permutations,
            "seed": self.seed,
            "num_buckets": self.num_buckets,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "SketchConfig":
        return cls(
            num_permutations=int(data["num_permutations"]),
            seed=int(data["seed"]),
            num_buckets=int(data["num_buckets"]),
        )


def _hash_rank(value: object) -> int:
    """Rank of a value in the fixed hashed domain (stable across processes).

    Uses the same normalisation and stable hash as the MinHash sketches, so
    both summaries agree on value identity.
    """
    return _stable_hash(str(value).strip().lower()) % _HASH_RANK_DOMAIN


def _hash_space_histogram(
    values: list, ranks: Mapping[object, int], num_buckets: int
) -> tuple[float, ...]:
    """Histogram of a value multiset over the hashed rank domain.

    *values* are the column's non-missing cells and *ranks* their
    value→rank mapping — passed in so the caller's single column scan (and
    single hashing pass, shared with MinHash) is reused here.
    """
    histogram = build_histogram(
        values, ranks, num_buckets=num_buckets, max_rank=_HASH_RANK_DOMAIN - 1
    )
    return histogram.weights


@dataclass(frozen=True)
class ColumnSketch:
    """A compact, serialisable summary of one column of one lake table."""

    table_name: str
    column_name: str
    data_type: DataType
    minhash: MinHashSignature
    histogram: tuple[float, ...]
    row_count: int
    distinct_count: int
    missing_count: int
    mean: Optional[float]
    std: Optional[float]
    minimum: Optional[float]
    maximum: Optional[float]
    avg_length: float

    @property
    def key(self) -> tuple[str, str]:
        """``(table name, column name)`` — unique within one lake."""
        return (self.table_name, self.column_name)

    def jaccard(self, other: "ColumnSketch") -> float:
        """Estimated value-set Jaccard similarity with another sketch."""
        return self.minhash.jaccard(other.minhash)

    def containment(self, other: "ColumnSketch") -> float:
        """Estimated containment of this column's values in *other*'s."""
        return self.minhash.containment(other.minhash)

    def type_compatibility(self, other: "ColumnSketch") -> float:
        """Data-type compatibility score in [0, 1]."""
        return type_compatibility(self.data_type, other.data_type)

    def histogram_distance(self, other: "ColumnSketch") -> float:
        """L1 distance between the hash-space histograms (in [0, 2]).

        Both histograms live on the same fixed domain, so the distance is
        meaningful without re-bucketing; empty histograms compare as 0.
        """
        if not self.histogram or not other.histogram:
            return 0.0
        if len(self.histogram) != len(other.histogram):
            raise ValueError("histograms must use the same number of buckets")
        return sum(abs(a - b) for a, b in zip(self.histogram, other.histogram))

    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation (inverse of :meth:`from_dict`)."""
        return {
            "table_name": self.table_name,
            "column_name": self.column_name,
            "data_type": self.data_type.value,
            "signature": list(self.minhash.values),
            "set_size": self.minhash.set_size,
            "histogram": list(self.histogram),
            "row_count": self.row_count,
            "distinct_count": self.distinct_count,
            "missing_count": self.missing_count,
            "mean": self.mean,
            "std": self.std,
            "minimum": self.minimum,
            "maximum": self.maximum,
            "avg_length": self.avg_length,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "ColumnSketch":
        return cls(
            table_name=str(data["table_name"]),
            column_name=str(data["column_name"]),
            data_type=DataType(data["data_type"]),
            minhash=MinHashSignature(
                tuple(int(x) for x in data["signature"]), int(data["set_size"])
            ),
            histogram=tuple(float(x) for x in data["histogram"]),
            row_count=int(data["row_count"]),
            distinct_count=int(data["distinct_count"]),
            missing_count=int(data["missing_count"]),
            mean=None if data["mean"] is None else float(data["mean"]),
            std=None if data["std"] is None else float(data["std"]),
            minimum=None if data["minimum"] is None else float(data["minimum"]),
            maximum=None if data["maximum"] is None else float(data["maximum"]),
            avg_length=float(data["avg_length"]),
        )

    @classmethod
    def from_profile(
        cls,
        profile: ColumnProfile,
        table_name: str,
        minhash: MinHashSignature,
        histogram: tuple[float, ...],
    ) -> "ColumnSketch":
        return cls(
            table_name=table_name,
            column_name=profile.name,
            data_type=profile.data_type,
            minhash=minhash,
            histogram=histogram,
            row_count=profile.row_count,
            distinct_count=profile.distinct_count,
            missing_count=profile.missing_count,
            mean=profile.mean,
            std=profile.std,
            minimum=profile.minimum,
            maximum=profile.maximum,
            avg_length=profile.avg_length,
        )


@dataclass(frozen=True)
class TableSketch:
    """All column sketches of one table plus identity metadata."""

    name: str
    content_hash: str
    num_rows: int
    columns: tuple[ColumnSketch, ...]

    @property
    def num_columns(self) -> int:
        return len(self.columns)

    def column(self, name: str) -> ColumnSketch:
        for sketch in self.columns:
            if sketch.column_name == name:
                return sketch
        raise KeyError(f"table sketch {self.name!r} has no column {name!r}")


def sketch_table(
    table: Table,
    config: SketchConfig = SketchConfig(),
    content_hash: Optional[str] = None,
) -> TableSketch:
    """Sketch every column of *table* in one batched hashing pass.

    Parameters
    ----------
    table / config:
        What to sketch and with which parameters.
    content_hash:
        Pass a precomputed :func:`table_content_hash` to avoid re-hashing
        every cell (the store already computed it for cache invalidation),
        or ``""`` for transient query-side sketches where identity is never
        consulted.  Computed on demand when omitted.
    """
    columns = table.columns
    # One non-missing/distinct scan AND one hashing pass per column, shared
    # by all three passes (minhash, profile, histogram) — previously minhash
    # and the hashed-rank histogram each digested the distinct values.
    scans = []
    hash_arrays = []
    rank_maps = []
    for column in columns:
        values = column.non_missing()
        distinct = set(values)
        scans.append((values, distinct))
        # Normalise once; distinct raw values can collapse onto one
        # normalised string, so hashes are computed over the normalised set.
        normalized_of = {raw: str(raw).strip().lower() for raw in distinct}
        normalized = list(dict.fromkeys(normalized_of.values()))
        hashes = hash_normalized_values(normalized)
        hash_arrays.append(hashes)
        rank_of_normalized = dict(
            zip(normalized, (hashes % np.uint64(_HASH_RANK_DOMAIN)).tolist())
        )
        rank_maps.append(
            {raw: rank_of_normalized[norm] for raw, norm in normalized_of.items()}
        )
    signatures = minhash_signatures_from_hashes(
        hash_arrays,
        num_permutations=config.num_permutations,
        seed=config.seed,
    )
    sketches = []
    for column, (values, distinct), ranks, signature in zip(
        columns, scans, rank_maps, signatures
    ):
        profile = profile_column(
            column, non_missing=values, distinct_count=len(distinct)
        )
        histogram = _hash_space_histogram(values, ranks, config.num_buckets)
        sketches.append(
            ColumnSketch.from_profile(profile, table.name, signature, histogram)
        )
    return TableSketch(
        name=table.name,
        content_hash=table_content_hash(table) if content_hash is None else content_hash,
        num_rows=table.num_rows,
        columns=tuple(sketches),
    )
