"""Lake-scale dataset discovery: persistent column sketches + LSH pruning.

The discovery systems the paper surveys (Aurum, LSH Ensemble) do not brute
force a matcher over every table in the lake; they prune candidates with
compact per-column sketches first.  This package provides that layer:

* :mod:`repro.lake.profiles` — :class:`ColumnSketch` / :class:`TableSketch`,
  compact serialisable summaries (MinHash signature, hash-space histogram,
  type/stats profile) computed once per column;
* :mod:`repro.lake.store` — :class:`SketchStore`, a versioned on-disk SQLite
  store with incremental add/remove and content-hash cache invalidation;
* :mod:`repro.lake.index` — :class:`LakeIndex`, a MinHash LSH banding index
  with type/histogram pre-filters returning top-k candidate tables;
* :mod:`repro.lake.engine` — :class:`LakeDiscoveryEngine`, prune with the
  index then rerank only the survivors with any registered matcher;
* :mod:`repro.lake.build` — parallel (process-pool) lake construction and
  prepared-store pre-warming with a single-writer commit.
"""

from repro.lake.build import BuildReport, PrepareReport, build_from_paths, prepare_lake
from repro.lake.engine import BatchQueryResult, LakeDiscoveryEngine
from repro.lake.index import CandidateTable, LakeIndex, LSHParams
from repro.lake.profiles import (
    ColumnSketch,
    SketchConfig,
    TableSketch,
    sketch_table,
    table_content_hash,
)
from repro.lake.store import SketchStore, store_generation

__all__ = [
    "ColumnSketch",
    "TableSketch",
    "SketchConfig",
    "sketch_table",
    "table_content_hash",
    "SketchStore",
    "store_generation",
    "LSHParams",
    "CandidateTable",
    "LakeIndex",
    "LakeDiscoveryEngine",
    "BatchQueryResult",
    "BuildReport",
    "PrepareReport",
    "build_from_paths",
    "prepare_lake",
]
