"""Discovery engine that prunes with the lake index before matching.

``DiscoveryEngine`` is O(lake size x matcher cost) per query.  The
:class:`LakeDiscoveryEngine` replaces the scan with a two-stage plan:

1. **Prune** — sketch the query table (a few ms) and ask the
   :class:`~repro.lake.index.LakeIndex` for the top candidate tables by
   sketch-level evidence; everything else in the lake is never touched.
2. **Rerank** — run the configured :class:`BaseMatcher` only on the
   survivors and derive the usual joinability/unionability scores, exactly
   as the brute-force engine would.  Reranking is embarrassingly parallel,
   so a process-pool path is provided for expensive matchers.

The candidate tables' *values* come either from an in-memory
:class:`DatasetRepository` or lazily from the CSV paths recorded in the
store at build time — only shortlisted tables are ever loaded from disk.

Both stages execute through the shared
:func:`~repro.discovery.search.prune_then_rerank` core: this engine merely
injects its LSH shortlist as the pruning strategy and its lazy CSV loading
as the resolution strategy.  The query table is prepared once per query
(:meth:`BaseMatcher.prepare`) and — on the parallel path — shipped once per
worker via the pool initializer rather than pickled per candidate.
"""

from __future__ import annotations

import csv
from dataclasses import dataclass, field
from typing import Iterable, Optional, Union

from repro.data.csv_io import read_csv
from repro.data.table import Table
from repro.discovery.prepared import PreparedStore, PreparedTableCache
from repro.discovery.search import (
    DEFAULT_CANDIDATE_MULTIPLIER,
    DEFAULT_MIN_CANDIDATES,
    DEFAULT_UNION_THRESHOLD,
    DatasetRepository,
    PairScorer,
    DiscoveryResult,
    prune_then_rerank,
)
from repro.lake.index import CandidateTable, LakeIndex, LSHParams
from repro.lake.profiles import sketch_table
from repro.lake.store import SketchStore
from repro.matchers.base import BaseMatcher, PreparedTable

__all__ = ["LakeDiscoveryEngine"]


@dataclass
class LakeDiscoveryEngine:
    """Index-accelerated dataset discovery over a persistent sketch store.

    Attributes
    ----------
    matcher:
        Any :class:`BaseMatcher`; only shortlisted candidates see it.
    store:
        The persistent sketch store backing the index.
    params:
        LSH banding / pre-filter parameters.
    union_threshold:
        Column-score threshold of the unionability measure.
    candidate_multiplier / min_candidates:
        Shortlist size for a ``top_k`` query is
        ``max(min_candidates, candidate_multiplier * top_k)`` — the slack is
        what lets the exact matcher repair sketch-level ranking mistakes.
    prepared_cache:
        Optional :class:`~repro.discovery.prepared.PreparedTableCache`
        reusing prepared query tables across :meth:`query` calls.
    prepared_store:
        Optional :class:`~repro.discovery.prepared.PreparedStore` — the
        persistent prepared-candidate store, conventionally living next to
        the sketch store.  When set, shortlisted candidates whose prepared
        payload is stored (keyed by this matcher's fingerprint and the
        content hash recorded at build time) are served straight from disk
        — no CSV read, no prepare — and cold candidates are written through
        after their first prepare, so one query warms the next.  When a
        ``prepared_cache`` is also set it fronts the store as the in-memory
        tier (its ``backing`` is wired to the store).
    """

    matcher: BaseMatcher
    store: SketchStore
    params: LSHParams = field(default_factory=LSHParams)
    union_threshold: float = DEFAULT_UNION_THRESHOLD
    candidate_multiplier: int = DEFAULT_CANDIDATE_MULTIPLIER
    min_candidates: int = DEFAULT_MIN_CANDIDATES
    prepared_cache: Optional[PreparedTableCache] = None
    prepared_store: Optional[PreparedStore] = None
    #: How many candidates the matcher actually reranked in the last
    #: :meth:`query` (before top-k truncation) — the pruning statistic.
    last_rerank_count: int = field(default=0, repr=False, init=False)
    #: How many of the last :meth:`query`'s candidates were served straight
    #: from the prepared store (no CSV read, no prepare) — the warm-path
    #: statistic.
    last_store_hits: int = field(default=0, repr=False, init=False)
    _index: Optional[LakeIndex] = field(default=None, repr=False, init=False)
    _index_version: int = field(default=-1, repr=False, init=False)

    # ------------------------------------------------------------------ #
    # build / maintenance
    # ------------------------------------------------------------------ #
    def build(
        self,
        tables: Union[DatasetRepository, Iterable[Table]],
        source_paths: Optional[dict[str, str]] = None,
    ) -> int:
        """Add every table to the store; returns how many (re)sketches ran.

        Unchanged tables (same content hash) are cache hits and cost one
        hash, not a re-profile.
        """
        changed = 0
        for table in tables:
            path = (source_paths or {}).get(table.name)
            if self.store.add_table(table, source_path=path):
                changed += 1
        return changed

    @property
    def index(self) -> LakeIndex:
        """The LSH index, kept in sync with the store.

        Built once from the whole store, then refreshed *incrementally* when
        the store version moves on: only tables sketched after the index's
        version are (re)added and vanished tables removed, so one mutation
        on a large lake does not trigger an O(lake) rebuild.
        """
        store_version = self.store.version
        if self._index is None:
            self._index = LakeIndex.from_store(self.store, params=self.params)
        elif self._index_version != store_version:
            current = set(self.store.table_names)
            for name in self._index.table_names - current:
                self._index.remove(name)
            for name in self.store.updated_since(self._index_version):
                sketch = self.store.get(name)
                if sketch is not None:
                    self._index.add(sketch)
        self._index_version = store_version
        return self._index

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def shortlist(
        self, query: Table, top_k: Optional[int] = None
    ) -> list[CandidateTable]:
        """Sketch *query* and return the index's candidate tables."""
        limit = None
        if top_k is not None:
            limit = max(self.min_candidates, self.candidate_multiplier * top_k)
        sketch = sketch_table(query, self.store.config, content_hash="")
        return self.index.candidate_tables(sketch, top_k=limit)

    def _prepared_provider(self) -> Optional[Union[PreparedTableCache, PreparedStore]]:
        """The write-through prepared provider for this engine's reranks.

        The in-memory cache (when present) fronts the persistent store: a
        miss falls through to SQLite, a store miss computes and persists.
        """
        if self.prepared_cache is not None:
            if self.prepared_store is not None:
                self.prepared_cache.backing = self.prepared_store
            return self.prepared_cache
        return self.prepared_store

    def _resolve_candidate(
        self,
        name: str,
        repository: Optional[DatasetRepository],
        fingerprint: Optional[str] = None,
    ) -> Optional[Union[Table, PreparedTable]]:
        if repository is not None:
            table = repository.get(name)
            if table is not None:
                return table
        if fingerprint is not None and self.prepared_store is not None:
            # Warm path: the stored payload embeds the table, so a hit
            # skips the CSV read AND the prepare for this candidate.  Keyed
            # by the content hash recorded at build time, so the warm rerank
            # is consistent with the sketch shortlist: both answer as of the
            # last `lake build`.  A CSV edited on disk keeps serving its
            # build-time payload until the lake is rebuilt (the rebuild
            # moves the stored hash, which invalidates this lookup).
            stored_hash = self.store.content_hash(name)
            if stored_hash:
                prepared = self.prepared_store.get(fingerprint, name, stored_hash)
                if prepared is not None:
                    self.last_store_hits += 1
                    return prepared
        path = self.store.source_path(name) if name in self.store else None
        if path is not None:
            try:
                return read_csv(path, name=name)
            except (OSError, ValueError, csv.Error):
                # Stale store entry: the CSV moved, or was overwritten with
                # something unreadable, since `build`. Skip the candidate.
                return None
        return None

    def query(
        self,
        query: Table,
        repository: Optional[DatasetRepository] = None,
        mode: str = "joinable",
        top_k: Optional[int] = None,
        parallel: bool = False,
        max_workers: Optional[int] = None,
    ) -> list[DiscoveryResult]:
        """Rank lake tables against *query*: prune with the index, rerank.

        Parameters
        ----------
        query:
            The input table (does not need to be in the store).
        repository:
            Where candidate values live.  When omitted, candidates are read
            lazily from the CSV paths recorded at build time; candidates
            available neither in the repository nor on disk cannot be
            matched and are excluded from the ranking.
        mode:
            ``"joinable"``, ``"unionable"`` or ``"combined"`` (same
            semantics as :meth:`DiscoveryEngine.discover`).
        top_k:
            Truncate the final ranking (also bounds the shortlist).
        parallel:
            Rerank candidates in a process pool instead of serially.
        max_workers:
            Pool size for the parallel path (default: executor's choice).
        """
        shortlist = self.shortlist(query, top_k=top_k)
        self.last_store_hits = 0
        # The prepared-store fast path hands fully prepared candidates to the
        # rerank; matchers that insist on their legacy get_matches override
        # consume raw tables, so the fast path is skipped for them.
        fingerprint = (
            self.matcher.fingerprint()
            if self.prepared_store is not None
            and not self.matcher.prefers_legacy_get_matches()
            else None
        )
        results, rerank_count = prune_then_rerank(
            query,
            [entry.table_name for entry in shortlist],
            lambda name: self._resolve_candidate(name, repository, fingerprint),
            PairScorer(matcher=self.matcher, union_threshold=self.union_threshold),
            mode=mode,
            top_k=top_k,
            parallel=parallel,
            max_workers=max_workers,
            prepared_cache=self._prepared_provider(),
        )
        self.last_rerank_count = rerank_count
        return results
