"""Discovery engine that prunes with the lake index before matching.

``DiscoveryEngine`` is O(lake size x matcher cost) per query.  The
:class:`LakeDiscoveryEngine` replaces the scan with a two-stage plan:

1. **Prune** — sketch the query table (a few ms) and ask the
   :class:`~repro.lake.index.LakeIndex` for the top candidate tables by
   sketch-level evidence; everything else in the lake is never touched.
2. **Rerank** — run the configured :class:`BaseMatcher` only on the
   survivors and derive the usual joinability/unionability scores, exactly
   as the brute-force engine would.  Reranking is embarrassingly parallel,
   so a process-pool path is provided for expensive matchers.

The candidate tables' *values* come either from an in-memory
:class:`DatasetRepository` or lazily from the CSV paths recorded in the
store at build time — only shortlisted tables are ever loaded from disk.

Both stages execute through the shared
:func:`~repro.discovery.search.prune_then_rerank` core: this engine merely
injects its LSH shortlist as the pruning strategy and its lazy CSV loading
as the resolution strategy.  The query table is prepared once per query
(:meth:`BaseMatcher.prepare`) and shipped to each rerank worker once.

The *warm* parallel path is parallel end to end: for a file-backed lake the
engine hands the rerank a :class:`~repro.discovery.search.WorkerCandidateSource`
— workers receive batched name-chunks and pull prepared payloads straight
from the WAL-mode stores themselves, so nothing candidate-sized flows
through this process.  Repeated :meth:`LakeDiscoveryEngine.query` calls
reuse one persistent :class:`~repro.discovery.search.RerankPool` of warm
workers (created lazily on the first parallel query; release it with
:meth:`LakeDiscoveryEngine.close` or a ``with`` block).
"""

from __future__ import annotations

import csv
import logging
import time
from dataclasses import dataclass, field
from typing import Iterable, Optional, Sequence, Union

from repro.data.csv_io import read_csv
from repro.data.table import Table
from repro.discovery.cascade import CandidateSignals, RerankCascade, candidate_signals
from repro.discovery.prepared import PreparedStore, PreparedTableCache
from repro.discovery.search import (
    DEFAULT_CANDIDATE_MULTIPLIER,
    DEFAULT_MIN_CANDIDATES,
    DEFAULT_UNION_THRESHOLD,
    MIN_FAN_OUT,
    DatasetRepository,
    PairScorer,
    DiscoveryResult,
    RerankJob,
    RerankPool,
    WorkerCandidateSource,
    fan_out_names,
    prune_then_rerank,
    rerank_jobs,
    sort_discovery_results,
)
from repro.lake.index import CandidateTable, LakeIndex, LSHParams
from repro.lake.profiles import sketch_table
from repro.lake.store import SketchStore, TableMeta
from repro.matchers.base import BaseMatcher, PreparedTable
from repro.telemetry import recorder as telemetry
from repro.telemetry.recorder import TelemetryRecorder
from repro.telemetry.stats import QueryStats

__all__ = ["LakeDiscoveryEngine", "BatchQueryResult"]

logger = logging.getLogger(__name__)


@dataclass
class BatchQueryResult:
    """One query's outcome within a :meth:`LakeDiscoveryEngine.query_many` batch."""

    results: list[DiscoveryResult]
    stats: QueryStats


class _LazyPreparedShortlist:
    """Prepared-payload lookup that loads one candidate per first access.

    Duck-typed stand-in for the eager prefetch dict
    (:meth:`LakeDiscoveryEngine._prefetch_prepared`) on cascaded reranks:
    the cascade's bounds skip most of the shortlist before it is ever
    resolved, so decoding every stored payload up front would spend the
    very time the skips save.  Lookups are keyed by the same build-time
    content hashes, so hit semantics (and staleness behaviour) match the
    eager path exactly; misses are cached as ``None`` so a candidate never
    pays the store round trip twice.
    """

    def __init__(
        self,
        prepared_store: Optional[PreparedStore],
        fingerprint: str,
        hashes: dict[str, str],
    ) -> None:
        self._store = prepared_store
        self._fingerprint = fingerprint
        self._hashes = hashes
        self._cache: dict[str, Optional[PreparedTable]] = {}

    def get(self, name: str) -> Optional[PreparedTable]:
        if name in self._cache:
            return self._cache[name]
        prepared: Optional[PreparedTable] = None
        content_hash = self._hashes.get(name)
        if self._store is not None and content_hash:
            prepared = self._store.get_many(
                self._fingerprint, [(name, content_hash)]
            ).get(name)
        self._cache[name] = prepared
        return prepared


@dataclass
class LakeDiscoveryEngine:
    """Index-accelerated dataset discovery over a persistent sketch store.

    Attributes
    ----------
    matcher:
        Any :class:`BaseMatcher`; only shortlisted candidates see it.
    store:
        The persistent sketch store backing the index.
    params:
        LSH banding / pre-filter parameters.
    union_threshold:
        Column-score threshold of the unionability measure.
    candidate_multiplier / min_candidates:
        Shortlist size for a ``top_k`` query is
        ``max(min_candidates, candidate_multiplier * top_k)`` — the slack is
        what lets the exact matcher repair sketch-level ranking mistakes.
    prepared_cache:
        Optional :class:`~repro.discovery.prepared.PreparedTableCache`
        reusing prepared query tables across :meth:`query` calls.
    prepared_store:
        Optional :class:`~repro.discovery.prepared.PreparedStore` — the
        persistent prepared-candidate store, conventionally living next to
        the sketch store.  When set, shortlisted candidates whose prepared
        payload is stored (keyed by this matcher's fingerprint and the
        content hash recorded at build time) are served straight from disk
        — no CSV read, no prepare — and cold candidates are written through
        after their first prepare, so one query warms the next.  When a
        ``prepared_cache`` is also set it fronts the store as the in-memory
        tier (its ``backing`` is wired to the store).
    rerank_pool:
        Optional persistent :class:`~repro.discovery.search.RerankPool`
        shared across queries (and possibly across engines).  When left
        ``None``, the engine lazily creates its own on the first
        ``parallel=True`` query and keeps it warm for later queries —
        release it with :meth:`close` (engines never close pools that were
        handed to them).
    owns_stores:
        When True, :meth:`close` also closes :attr:`store` and
        :attr:`prepared_store`.  Off by default (stores usually belong to
        whoever constructed them); the serving daemon turns it on so a
        store-generation swap can retire the whole engine in one call.
    """

    matcher: BaseMatcher
    store: SketchStore
    params: LSHParams = field(default_factory=LSHParams)
    union_threshold: float = DEFAULT_UNION_THRESHOLD
    candidate_multiplier: int = DEFAULT_CANDIDATE_MULTIPLIER
    min_candidates: int = DEFAULT_MIN_CANDIDATES
    prepared_cache: Optional[PreparedTableCache] = None
    prepared_store: Optional[PreparedStore] = None
    rerank_pool: Optional[RerankPool] = None
    owns_stores: bool = False
    #: How many candidates the matcher actually reranked in the last
    #: :meth:`query` (before top-k truncation) — the pruning statistic.
    last_rerank_count: int = field(default=0, repr=False, init=False)
    #: Structured statistics of the last :meth:`query` — stage durations,
    #: shortlist/rerank sizes, store hits, and (when a telemetry recorder is
    #: active) the full counter/span snapshot of that query.
    last_query_stats: Optional[QueryStats] = field(default=None, repr=False, init=False)
    _store_hits: int = field(default=0, repr=False, init=False)
    _index: Optional[LakeIndex] = field(default=None, repr=False, init=False)
    _index_version: int = field(default=-1, repr=False, init=False)
    _owns_pool: bool = field(default=False, repr=False, init=False)
    _closed: bool = field(default=False, repr=False, init=False)

    def __post_init__(self) -> None:
        # Immediate invalidation: the store tells us about every committed
        # remove_table, so a deletion can never leave a dangling candidate
        # name in a shortlist — even one built before the index's next
        # store-version probe would have noticed.
        self.store.add_removal_listener(self._on_table_removed)

    def _on_table_removed(self, name: str) -> None:
        if self._index is not None:
            self._index.remove(name)

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Release the engine-owned rerank pool (and owned stores).

        Idempotent: a second :meth:`close` — including the implicit one from
        ``__exit__`` after an explicit close inside the ``with`` block — is
        a no-op, so teardown paths can never trip the stores' closed-store
        guard.  A pool passed in by the caller is left running (it may serve
        other engines); only a pool this engine lazily created is shut down.
        Stores are closed only when :attr:`owns_stores` is set — by default
        they belong to whoever constructed them.
        """
        if self._closed:
            return
        self._closed = True
        self.store.remove_removal_listener(self._on_table_removed)
        if self.rerank_pool is not None and self._owns_pool:
            self.rerank_pool.close()
            self.rerank_pool = None
            self._owns_pool = False
        if self.owns_stores:
            if self.prepared_store is not None:
                self.prepared_store.close()
            self.store.close()

    def __enter__(self) -> "LakeDiscoveryEngine":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    def _ensure_rerank_pool(self, max_workers: Optional[int]) -> RerankPool:
        """The persistent pool for parallel reranks, created on first use.

        The pool's size is fixed when it is created; a different
        ``max_workers`` on a later query reuses the existing warm pool
        rather than respawning.
        """
        if self.rerank_pool is None:
            self.rerank_pool = RerankPool(max_workers=max_workers)
            self._owns_pool = True
            # Querying again after close() revives the engine: the fresh
            # pool must be released by the *next* close, not skipped by the
            # idempotence guard.
            self._closed = False
        return self.rerank_pool

    # ------------------------------------------------------------------ #
    # build / maintenance
    # ------------------------------------------------------------------ #
    def build(
        self,
        tables: Union[DatasetRepository, Iterable[Table]],
        source_paths: Optional[dict[str, str]] = None,
    ) -> int:
        """Add every table to the store; returns how many (re)sketches ran.

        Unchanged tables (same content hash) are cache hits and cost one
        hash, not a re-profile.
        """
        changed = 0
        for table in tables:
            path = (source_paths or {}).get(table.name)
            if self.store.add_table(table, source_path=path):
                changed += 1
        return changed

    @property
    def index(self) -> LakeIndex:
        """The LSH index, kept in sync with the store.

        Built once from the whole store, then refreshed *incrementally* when
        the store version moves on: only tables sketched after the index's
        version are (re)added and vanished tables removed, so one mutation
        on a large lake does not trigger an O(lake) rebuild.
        """
        store_version = self.store.version
        if self._index is None:
            self._index = LakeIndex.from_store(self.store, params=self.params)
        elif self._index_version != store_version:
            current = set(self.store.table_names)
            for name in self._index.table_names - current:
                self._index.remove(name)
            for name in self.store.updated_since(self._index_version):
                sketch = self.store.get(name)
                if sketch is not None:
                    self._index.add(sketch)
        self._index_version = store_version
        return self._index

    def refresh_index(self) -> LakeIndex:
        """Discard the cached LSH index and rebuild it from the store.

        The incremental refresh in :attr:`index` (plus the store's removal
        listener) keeps the index correct on its own; this is the explicit
        big hammer for callers that mutated the store out-of-band — e.g. a
        replica that just applied a large :func:`~repro.artifacts.sync.
        pull_snapshot` — and want the rebuild cost paid now, not on the
        next query.
        """
        self._index = None
        self._index_version = -1
        return self.index

    # ------------------------------------------------------------------ #
    # queries
    # ------------------------------------------------------------------ #
    def shortlist(
        self, query: Table, top_k: Optional[int] = None
    ) -> list[CandidateTable]:
        """Sketch *query* and return the index's candidate tables."""
        return self._shortlist_with_sketch(query, top_k)[0]

    def _shortlist_with_sketch(
        self, query: Table, top_k: Optional[int] = None
    ) -> tuple[list[CandidateTable], "object"]:
        """:meth:`shortlist` plus the query sketch it was probed with.

        The cascade's stage-1 signals compare candidate sketches against the
        *same* query sketch the LSH shortlist used, so stage 1 never pays a
        second sketching pass.
        """
        limit = None
        if top_k is not None:
            limit = max(self.min_candidates, self.candidate_multiplier * top_k)
        sketch = sketch_table(query, self.store.config, content_hash="")
        return self.index.candidate_tables(sketch, top_k=limit), sketch

    def _cascade_spec(
        self,
        query_sketch: "object",
        names: list[str],
        query_name: str,
        cascade: bool,
        budget_ms: Optional[float],
    ) -> tuple[Optional[RerankCascade], Optional[dict[str, TableMeta]]]:
        """Build the rerank's :class:`RerankCascade`, or ``None`` when off.

        With ``cascade=True`` the shortlist's stored column sketches are
        batch-loaded (one extra ``IN (...)`` query via
        :meth:`SketchStore.table_meta`) and condensed into per-candidate
        stage-1 signals; the rich meta is returned alongside the spec so
        the caller can reuse its build-time content hashes instead of
        re-querying :meth:`SketchStore.table_meta`.  A budget without the
        cascade still arms the spec — empty signals give every candidate a
        ``+inf`` bound, so nothing is skipped or re-ordered and only the
        deadline applies (and no meta is fetched).
        """
        if not cascade and budget_ms is None:
            return None, None
        signals: dict[str, CandidateSignals] = {}
        meta: Optional[dict[str, TableMeta]] = None
        if cascade:
            wanted = [name for name in names if name != query_name]
            meta = self.store.table_meta(wanted, include_sketches=True)
            for name in wanted:
                entry = meta.get(name)
                if entry is None or not entry.columns:
                    continue
                signals[name] = candidate_signals(
                    query_sketch, entry.columns, seed=self.store.config.seed
                )
        return RerankCascade(signals=signals, budget_ms=budget_ms), meta

    def _prepared_provider(self) -> Optional[Union[PreparedTableCache, PreparedStore]]:
        """The write-through prepared provider for this engine's reranks.

        The in-memory cache (when present) fronts the persistent store: a
        miss falls through to SQLite, a store miss computes and persists.
        """
        if self.prepared_cache is not None:
            if self.prepared_store is not None:
                self.prepared_cache.backing = self.prepared_store
            return self.prepared_cache
        return self.prepared_store

    def _prefetch_prepared(
        self,
        names: list[str],
        query_name: str,
        repository: Optional[DatasetRepository],
        fingerprint: str,
    ) -> dict[str, PreparedTable]:
        """Batch-load the shortlist's stored payloads in one round trip.

        One :meth:`SketchStore.table_meta` query for the build-time content
        hashes plus one :meth:`PreparedStore.get_many` for the payloads —
        instead of two point queries per candidate.  Names the repository
        will serve anyway are skipped (the in-memory table wins, as in
        :meth:`_resolve_candidate`).
        """
        wanted = [
            name
            for name in names
            if name != query_name
            and (repository is None or repository.get(name) is None)
        ]
        if not wanted:
            return {}
        meta = self.store.table_meta(wanted)
        keys = [
            (name, meta[name][0]) for name in wanted if name in meta and meta[name][0]
        ]
        if not keys:
            return {}
        return self.prepared_store.get_many(fingerprint, keys)

    def _resolve_candidate(
        self,
        name: str,
        repository: Optional[DatasetRepository],
        prefetched: Union[dict[str, PreparedTable], _LazyPreparedShortlist],
    ) -> Optional[Union[Table, PreparedTable]]:
        if repository is not None:
            table = repository.get(name)
            if table is not None:
                return table
        # Warm path: the prefetched payload embeds the table, so a hit
        # skips the CSV read AND the prepare for this candidate.  Keyed by
        # the content hash recorded at build time, so the warm rerank is
        # consistent with the sketch shortlist: both answer as of the last
        # `lake build`.  A CSV edited on disk keeps serving its build-time
        # payload until the lake is rebuilt (the rebuild moves the stored
        # hash, which invalidates the prefetch lookup).
        prepared = prefetched.get(name)
        if prepared is not None:
            self._store_hits += 1
            return prepared
        path = self.store.source_path(name) if name in self.store else None
        if path is not None:
            try:
                return read_csv(path, name=name)
            except (OSError, ValueError, csv.Error) as exc:
                # Stale store entry: the CSV moved, or was overwritten with
                # something unreadable, since `build`. Skip the candidate.
                logger.warning(
                    "skipping candidate %r: stored CSV path %s is unreadable (%s)",
                    name,
                    path,
                    exc,
                )
                return None
        return None

    def query(
        self,
        query: Table,
        repository: Optional[DatasetRepository] = None,
        mode: str = "joinable",
        top_k: Optional[int] = None,
        parallel: bool = False,
        max_workers: Optional[int] = None,
        cascade: bool = False,
        budget_ms: Optional[float] = None,
    ) -> list[DiscoveryResult]:
        """Rank lake tables against *query*: prune with the index, rerank.

        Parameters
        ----------
        query:
            The input table (does not need to be in the store).
        repository:
            Where candidate values live.  When omitted, candidates are read
            lazily from the CSV paths recorded at build time; candidates
            available neither in the repository nor on disk cannot be
            matched and are excluded from the ranking.
        mode:
            ``"joinable"``, ``"unionable"`` or ``"combined"`` (same
            semantics as :meth:`DiscoveryEngine.discover`).
        top_k:
            Truncate the final ranking (also bounds the shortlist).
        parallel:
            Rerank candidates in a process pool instead of serially.  For a
            file-backed lake the workers resolve candidates themselves —
            batched name-chunks, payloads read straight from the WAL
            stores, CSV-prepare write-through on cold candidates — and the
            (persistent) :attr:`rerank_pool` keeps them warm across
            queries.
        max_workers:
            Pool size for the parallel path (fixed when the persistent
            pool is first created; default: executor's choice).
        cascade:
            Arm the two-stage rerank cascade: stage 1 derives per-candidate
            score bounds from the stored sketches, stage 2 runs the matcher
            best-bound-first and — when the matcher declares its bounds
            admissible — skips candidates proven unable to reach the top-k.
            Without a budget the ranking is identical to ``cascade=False``.
        budget_ms:
            Anytime budget for the rerank stage, in milliseconds.  When the
            deadline passes, scoring stops and the current best-effort top-k
            is returned with ``last_query_stats.partial`` set.  Works with
            or without ``cascade``.

        Afterwards :attr:`last_query_stats` holds the structured statistics
        of this query (stage durations, shortlist/rerank sizes, store hits).
        When a :class:`~repro.telemetry.TelemetryRecorder` is active (via
        ``telemetry.use(...)`` or ``set_default_recorder``), this query runs
        under a private child recorder whose counter/span snapshot is merged
        back into the active recorder *and* attached to the stats — so
        per-query attribution survives even on a shared recorder.
        """
        parent = telemetry.get_recorder()
        child = TelemetryRecorder() if parent.enabled else None
        start = time.perf_counter()
        if child is not None:
            with telemetry.use(child):
                results, stage_seconds, shortlist_size, spec = self._run_query(
                    query, repository, mode, top_k, parallel, max_workers,
                    cascade, budget_ms,
                )
        else:
            results, stage_seconds, shortlist_size, spec = self._run_query(
                query, repository, mode, top_k, parallel, max_workers,
                cascade, budget_ms,
            )
        total_seconds = time.perf_counter() - start
        snapshot = None
        if child is not None:
            snapshot = child.snapshot()
            parent.merge(snapshot)
        self.last_query_stats = QueryStats(
            query_name=query.name,
            mode=mode,
            parallel=parallel,
            shortlist_size=shortlist_size,
            rerank_count=self.last_rerank_count,
            store_hits=self._store_hits,
            total_seconds=total_seconds,
            shortlist_seconds=stage_seconds[0],
            rerank_seconds=stage_seconds[1],
            partial=spec.partial if spec is not None else False,
            cascade_skipped=spec.skipped if spec is not None else 0,
            cascade_exact=spec.exact_scored if spec is not None else 0,
            snapshot=snapshot,
        )
        return results

    def _prepared_fingerprint(self) -> Optional[str]:
        """The matcher fingerprint for prepared-store lookups, or ``None``.

        The prepared-store fast path hands fully prepared candidates to the
        rerank; matchers that insist on their legacy get_matches override
        consume raw tables, so the fast path is skipped for them.
        """
        if self.prepared_store is not None and not self.matcher.prefers_legacy_get_matches():
            return self.matcher.fingerprint()
        return None

    def _worker_source_for(
        self,
        query_name: str,
        names: list[str],
        repository: Optional[DatasetRepository],
        parallel: bool,
        fingerprint: Optional[str],
    ) -> Optional[WorkerCandidateSource]:
        """Arm the fully parallel warm path for one query, when eligible.

        Workers pull payloads from the stores themselves.  Needs file-backed
        stores (in-memory SQLite cannot cross processes), no repository
        (workers cannot see it), and a shortlist the rerank will actually
        fan out — otherwise the caller falls back to the serial resolver,
        which must keep its prefetch.  The fan-out decision is
        `prune_then_rerank`'s; both sides evaluate the one shared predicate.
        """
        if (
            parallel
            and fingerprint is not None
            and repository is None
            and len(fan_out_names(query_name, names)) >= MIN_FAN_OUT
            and self.store.path != ":memory:"
            and self.prepared_store.path != ":memory:"
        ):
            return WorkerCandidateSource(
                sketch_store_path=self.store.path,
                prepared_store_path=self.prepared_store.path,
                fingerprint=fingerprint,
                max_entries=self.prepared_store.max_entries,
                max_bytes=self.prepared_store.max_bytes,
            )
        return None

    def _run_query(
        self,
        query: Table,
        repository: Optional[DatasetRepository],
        mode: str,
        top_k: Optional[int],
        parallel: bool,
        max_workers: Optional[int],
        cascade: bool = False,
        budget_ms: Optional[float] = None,
    ) -> tuple[
        list[DiscoveryResult], tuple[float, float], int, Optional[RerankCascade]
    ]:
        """The two-stage plan itself.

        Returns ``(results, stage seconds, shortlist size, cascade spec)`` —
        the spec is ``None`` unless the cascade or a budget was armed.
        """
        shortlist_start = time.perf_counter()
        with telemetry.span("query.shortlist", table=query.name):
            shortlist, query_sketch = self._shortlist_with_sketch(query, top_k)
        shortlist_seconds = time.perf_counter() - shortlist_start
        names = [entry.table_name for entry in shortlist]
        self._store_hits = 0
        fingerprint = self._prepared_fingerprint()
        worker_source = self._worker_source_for(
            query.name, names, repository, parallel, fingerprint
        )
        spec, rich_meta = self._cascade_spec(
            query_sketch, names, query.name, cascade, budget_ms
        )
        prefetched: Union[dict[str, PreparedTable], _LazyPreparedShortlist] = {}
        if fingerprint is not None and worker_source is None:
            if rich_meta is not None:
                # The cascade skips most of the shortlist, so eagerly
                # decoding every stored payload would waste the very work
                # the bounds save.  Reuse the content hashes the stage-1
                # fetch already paid for and load payloads one scored
                # candidate at a time.
                hashes = {
                    name: entry.content_hash
                    for name, entry in rich_meta.items()
                    if entry.content_hash
                    and (repository is None or repository.get(name) is None)
                }
                prefetched = _LazyPreparedShortlist(
                    self.prepared_store, fingerprint, hashes
                )
            else:
                prefetched = self._prefetch_prepared(
                    names, query.name, repository, fingerprint
                )
        pool = self._ensure_rerank_pool(max_workers) if parallel else None
        rerank_start = time.perf_counter()
        results, rerank_count = prune_then_rerank(
            query,
            names,
            lambda name: self._resolve_candidate(name, repository, prefetched),
            PairScorer(matcher=self.matcher, union_threshold=self.union_threshold),
            mode=mode,
            top_k=top_k,
            parallel=parallel,
            max_workers=max_workers,
            prepared_cache=self._prepared_provider(),
            worker_source=worker_source,
            pool=pool,
            cascade=spec,
        )
        rerank_seconds = time.perf_counter() - rerank_start
        if worker_source is not None:
            self._store_hits = worker_source.store_hits
        self.last_rerank_count = rerank_count
        return results, (shortlist_seconds, rerank_seconds), len(names), spec

    def query_many(
        self,
        queries: Sequence[Table],
        repository: Optional[DatasetRepository] = None,
        mode: str = "joinable",
        top_k: Optional[int] = None,
        parallel: bool = False,
        max_workers: Optional[int] = None,
        cascade: bool = False,
        budget_ms: Optional[float] = None,
    ) -> list[BatchQueryResult]:
        """Run several queries as one batch, sharing the rerank fan-out.

        The serving primitive behind ``lake serve``'s micro-batcher: each
        query is shortlisted and prepared as :meth:`query` would, but every
        query eligible for the fully parallel warm path contributes its
        chunk tasks to **one** :func:`~repro.discovery.search.rerank_jobs`
        submission, so the shared :class:`RerankPool` stays saturated across
        query boundaries.  Queries that cannot fan out (tiny shortlists,
        in-memory stores, legacy matchers, ``parallel=False``) run serially
        inside the batch, through the exact same
        :func:`~repro.discovery.search.prune_then_rerank` core as
        :meth:`query` — rankings can never differ between the two entry
        points.

        Returns one :class:`BatchQueryResult` (results + stats) per query,
        in input order.  Per-query stats of pooled queries report the shared
        fan-out wall clock as their rerank time (the batch reranks as one
        unit); unlike :meth:`query`, no per-query child recorder is created
        — callers serving traffic keep one long-lived recorder active and
        read merged counters from it.

        When ``cascade`` or ``budget_ms`` is armed, each query runs through
        :meth:`_run_query` individually instead of contributing to the
        shared :func:`~repro.discovery.search.rerank_jobs` fan-out: the
        cascade's top-k cutoff is per-query state, and an anytime budget is
        a per-request deadline — neither survives being fused into one batch
        submission.  The cascade's own streaming dispatcher keeps the shared
        pool busy within each query.
        """
        if cascade or budget_ms is not None:
            outcomes = []
            for query in queries:
                query_start = time.perf_counter()
                results, stage_seconds, shortlist_size, spec = self._run_query(
                    query, repository, mode, top_k, parallel, max_workers,
                    cascade, budget_ms,
                )
                outcomes.append(
                    BatchQueryResult(
                        results=results,
                        stats=QueryStats(
                            query_name=query.name,
                            mode=mode,
                            parallel=parallel,
                            shortlist_size=shortlist_size,
                            rerank_count=self.last_rerank_count,
                            store_hits=self._store_hits,
                            total_seconds=time.perf_counter() - query_start,
                            shortlist_seconds=stage_seconds[0],
                            rerank_seconds=stage_seconds[1],
                            partial=spec.partial if spec is not None else False,
                            cascade_skipped=spec.skipped if spec is not None else 0,
                            cascade_exact=(
                                spec.exact_scored if spec is not None else 0
                            ),
                        ),
                    )
                )
            if outcomes:
                self.last_query_stats = outcomes[-1].stats
            return outcomes
        scorer = PairScorer(matcher=self.matcher, union_threshold=self.union_threshold)
        outcomes: list[Optional[BatchQueryResult]] = [None] * len(queries)
        jobs: list[RerankJob] = []
        job_meta: list[tuple[int, float, int]] = []
        for position, query in enumerate(queries):
            shortlist_start = time.perf_counter()
            with telemetry.span("query.shortlist", table=query.name):
                shortlist = self.shortlist(query, top_k=top_k)
            shortlist_seconds = time.perf_counter() - shortlist_start
            names = [entry.table_name for entry in shortlist]
            fingerprint = self._prepared_fingerprint()
            worker_source = self._worker_source_for(
                query.name, names, repository, parallel, fingerprint
            )
            if worker_source is not None:
                with telemetry.span("discovery.prepare_query", table=query.name):
                    provider = self._prepared_provider()
                    if provider is not None:
                        query_prepared = provider.prepare(self.matcher, query)
                    else:
                        query_prepared = self.matcher.prepare(query)
                jobs.append(
                    RerankJob(
                        scorer,
                        query_prepared,
                        fan_out_names(query.name, names),
                        worker_source,
                    )
                )
                job_meta.append((position, shortlist_seconds, len(names)))
                continue
            # Serial fallback inside the batch: identical to the one-query
            # serial path (prefetch included), so results cannot drift.
            self._store_hits = 0
            prefetched: dict[str, PreparedTable] = {}
            if fingerprint is not None:
                prefetched = self._prefetch_prepared(
                    names, query.name, repository, fingerprint
                )
            rerank_start = time.perf_counter()
            results, rerank_count = prune_then_rerank(
                query,
                names,
                lambda name: self._resolve_candidate(name, repository, prefetched),
                scorer,
                mode=mode,
                top_k=top_k,
                parallel=False,
                prepared_cache=self._prepared_provider(),
            )
            rerank_seconds = time.perf_counter() - rerank_start
            outcomes[position] = BatchQueryResult(
                results=results,
                stats=QueryStats(
                    query_name=query.name,
                    mode=mode,
                    parallel=False,
                    shortlist_size=len(names),
                    rerank_count=rerank_count,
                    store_hits=self._store_hits,
                    total_seconds=shortlist_seconds + rerank_seconds,
                    shortlist_seconds=shortlist_seconds,
                    rerank_seconds=rerank_seconds,
                ),
            )
        if jobs:
            pool = self._ensure_rerank_pool(max_workers)
            rerank_start = time.perf_counter()
            with telemetry.span("discovery.batch_score", queries=len(jobs)):
                job_outcomes = rerank_jobs(jobs, pool=pool)
            batch_rerank_seconds = time.perf_counter() - rerank_start
            for (position, shortlist_seconds, shortlist_size), (
                results,
                store_hits,
            ) in zip(job_meta, job_outcomes):
                sort_discovery_results(results, mode)
                rerank_count = len(results)
                truncated = results[:top_k] if top_k is not None else results
                outcomes[position] = BatchQueryResult(
                    results=truncated,
                    stats=QueryStats(
                        query_name=queries[position].name,
                        mode=mode,
                        parallel=True,
                        shortlist_size=shortlist_size,
                        rerank_count=rerank_count,
                        store_hits=store_hits,
                        total_seconds=shortlist_seconds + batch_rerank_seconds,
                        shortlist_seconds=shortlist_seconds,
                        rerank_seconds=batch_rerank_seconds,
                    ),
                )
        completed = [outcome for outcome in outcomes if outcome is not None]
        if completed:
            self.last_query_stats = completed[-1].stats
            self.last_rerank_count = completed[-1].stats.rerank_count
            self._store_hits = completed[-1].stats.store_hits
        return completed
