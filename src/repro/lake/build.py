"""Parallel lake construction and prepared-store pre-warming.

``lake build`` spends its time in two embarrassingly parallel per-table
steps — reading a CSV and sketching its columns — while the SQLite store
itself wants exactly one writer.  :func:`build_from_paths` splits the work
accordingly: a process pool reads + sketches in batches, and the owning
process is the **single writer** committing finished
:class:`~repro.lake.profiles.TableSketch` payloads via
:meth:`SketchStore.add_sketch <repro.lake.store.SketchStore.add_sketch>`.

Cache-invalidation semantics are identical to the serial path: each worker
hashes the table it read and compares against the hash recorded in the
store (shipped with the task), so unchanged tables cost one read + hash and
are never re-sketched — and never re-enter the writer.

:func:`prepare_lake` is the analogous fan-out for the *prepared-candidate*
store: it pre-computes one matcher's
:meth:`~repro.matchers.base.BaseMatcher.prepare` payload for every lake
table (workers prepare, the owner writes), so the very first discovery
query runs warm.
"""

from __future__ import annotations

import csv
import logging
from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Sequence, Union

from repro.data.csv_io import read_csv
from repro.data.fingerprint import table_content_hash
from repro.discovery.prepared import PreparedStore
from repro.lake.profiles import SketchConfig, TableSketch, sketch_table
from repro.lake.store import SketchStore
from repro.matchers.base import BaseMatcher, PreparedTable

__all__ = ["BuildReport", "PrepareReport", "build_from_paths", "prepare_lake"]

logger = logging.getLogger(__name__)


@dataclass
class BuildReport:
    """Outcome of one :func:`build_from_paths` run."""

    sketched: int = 0
    unchanged: int = 0
    unreadable: list[str] = field(default_factory=list)
    #: Stale tables dropped because their CSV is gone (``remove_missing``).
    removed: list[str] = field(default_factory=list)

    @property
    def total(self) -> int:
        return self.sketched + self.unchanged + len(self.unreadable)


@dataclass
class PrepareReport:
    """Outcome of one :func:`prepare_lake` run."""

    prepared: int = 0
    already_stored: int = 0
    missing: list[str] = field(default_factory=list)
    #: Tables whose current CSV content no longer matches the hash recorded
    #: at build time; they were prepared and stored under their *current*
    #: hash, but warm lookups keyed on the stale build hash will miss until
    #: the lake is rebuilt.
    stale: list[str] = field(default_factory=list)
    #: Stored payloads dropped because their build-time content hash no
    #: longer matches the sketch store (table re-sketched or removed).
    stale_pruned: int = 0


def _effective_workers(workers: Optional[int], num_tasks: int) -> int:
    if workers is None or workers <= 1 or num_tasks <= 1:
        return 1
    return min(workers, num_tasks)


# ---------------------------------------------------------------------- #
# sketch build
# ---------------------------------------------------------------------- #

#: Worker task/result for the parallel build.  Results are one of
#: ``("sketched", name, sketch, path, None)``,
#: ``("unchanged", name, None, path, None)`` or
#: ``("unreadable", stem, None, path, error message)``.
_BuildTask = tuple[str, Optional[str], SketchConfig]
_BuildOutcome = tuple[str, str, Optional[TableSketch], str, Optional[str]]


def _read_and_sketch(task: _BuildTask) -> _BuildOutcome:
    """Read one CSV and sketch it unless the stored hash says it is unchanged."""
    path, known_hash, config = task
    try:
        table = read_csv(path)
    except (OSError, ValueError, csv.Error) as exc:
        return ("unreadable", Path(path).stem, None, path, str(exc))
    content_hash = table_content_hash(table)
    if known_hash is not None and content_hash == known_hash:
        return ("unchanged", table.name, None, path, None)
    sketch = sketch_table(table, config, content_hash=content_hash)
    return ("sketched", table.name, sketch, path, None)


def build_from_paths(
    store: SketchStore,
    csv_paths: Sequence[Union[str, Path]],
    workers: Optional[int] = None,
    on_unreadable: Optional[Callable[[str], None]] = None,
    remove_missing: bool = False,
) -> BuildReport:
    """(Re)build *store* from CSV files, optionally with a process pool.

    Parameters
    ----------
    store:
        The sketch store to populate; opened (and written) only in the
        calling process — workers never touch SQLite.
    csv_paths:
        CSV files, one table each (the table name is the file stem).
    workers:
        Process-pool size.  ``None``/``0``/``1`` runs serially in-process;
        results are identical either way.
    on_unreadable:
        Optional callback invoked with a human-readable message for every
        CSV that could not be parsed (the table is skipped).
    remove_missing:
        Also drop stored tables that no longer appear in *csv_paths* —
        ``lake build --prune`` semantics.  Tables whose CSV is present but
        currently unreadable are kept (a transient parse error should not
        destroy a good sketch).
    """
    report = BuildReport()
    # One batched store round trip for the known hashes, not one per CSV.
    known = store.table_meta([Path(path).stem for path in csv_paths])
    tasks: list[_BuildTask] = [
        (str(path), known.get(Path(path).stem, (None, None))[0], store.config)
        for path in csv_paths
    ]
    effective = _effective_workers(workers, len(tasks))
    if effective == 1:
        outcomes = map(_read_and_sketch, tasks)
        _commit_build(store, outcomes, report, on_unreadable)
    else:
        # Batched map keeps per-task pickling overhead low: each worker
        # receives a slice of paths and returns a slice of sketches.
        chunksize = max(1, len(tasks) // (effective * 4))
        with ProcessPoolExecutor(max_workers=effective) as pool:
            outcomes = pool.map(_read_and_sketch, tasks, chunksize=chunksize)
            _commit_build(store, outcomes, report, on_unreadable)
    if remove_missing:
        _remove_missing(store, csv_paths, report)
    return report


def _remove_missing(
    store: SketchStore,
    csv_paths: Sequence[Union[str, Path]],
    report: BuildReport,
) -> None:
    current = {Path(path).stem for path in csv_paths}
    for name in store.table_names:
        if name in current:
            continue  # present (even if unreadable this run)
        if store.remove_table(name):
            report.removed.append(name)
            logger.info("pruned stale table %r (source CSV gone)", name)


def _commit_build(
    store: SketchStore,
    outcomes,
    report: BuildReport,
    on_unreadable: Optional[Callable[[str], None]],
) -> BuildReport:
    for status, name, sketch, path, error in outcomes:
        # Absolute paths so later `lake query` calls resolve candidates
        # from any working directory.
        resolved = str(Path(path).resolve())
        if status == "unreadable":
            report.unreadable.append(name)
            logger.warning("skipping unreadable %s: %s", path, error)
            if on_unreadable is not None:
                on_unreadable(f"skipping unreadable {path}: {error}")
        elif status == "unchanged":
            # Single hash, no re-sketch; still refresh a moved source path.
            store.refresh_source_path(name, resolved)
            report.unchanged += 1
        else:
            store.add_sketch(sketch, source_path=resolved)
            report.sketched += 1
    return report


# ---------------------------------------------------------------------- #
# prepared-store pre-warming
# ---------------------------------------------------------------------- #

_PREPARE_MATCHER: Optional[BaseMatcher] = None


def _prepare_worker_init(matcher: BaseMatcher) -> None:
    global _PREPARE_MATCHER
    _PREPARE_MATCHER = matcher


def _prepare_one(
    task: tuple[str, str, Optional[str]],
) -> tuple[str, Optional[str], Optional[PreparedTable]]:
    """Read + prepare one lake table; returns (name, content hash, payload)."""
    assert _PREPARE_MATCHER is not None
    name, path, _expected_hash = task
    try:
        table = read_csv(path, name=name)
    except (OSError, ValueError, csv.Error):
        return (name, None, None)
    content_hash = table_content_hash(table)
    return (name, content_hash, _PREPARE_MATCHER.prepare(table))


def prepare_lake(
    store: SketchStore,
    prepared_store: PreparedStore,
    matcher: BaseMatcher,
    workers: Optional[int] = None,
) -> PrepareReport:
    """Pre-compute *matcher*'s prepared payload for every table in the lake.

    Tables whose payload is already stored under ``(matcher fingerprint,
    name, build-time content hash)`` are skipped; the rest are loaded from
    their recorded source CSVs, prepared (in a process pool when *workers*
    > 1) and written by the calling process — the same single-writer rule
    as :func:`build_from_paths`.  Tables with no readable source CSV are
    reported as missing.
    """
    fingerprint = matcher.fingerprint()
    report = PrepareReport()
    # Two batched round trips — (hash, path) metadata from the sketch store
    # and an existence probe against the prepared store — instead of three
    # point queries per lake table.  The probe never unpickles payloads.
    names = store.table_names
    meta = store.table_meta(names)
    # Drop this matcher's payloads whose build-time content hash no longer
    # matches the sketch store (table re-sketched or removed) *before*
    # preparing, so rows written below can never be collateral damage.
    report.stale_pruned = prepared_store.prune_stale(
        fingerprint,
        {name: content_hash for name, (content_hash, _) in meta.items() if content_hash},
    )
    stored = prepared_store.contains_many(
        fingerprint,
        [(name, meta[name][0]) for name in names if name in meta and meta[name][0]],
    )
    tasks: list[tuple[str, str, Optional[str]]] = []
    for name in names:
        stored_hash, path = meta.get(name, (None, None))
        if name in stored:
            report.already_stored += 1
            continue
        if path is None:
            report.missing.append(name)
            continue
        tasks.append((name, path, stored_hash))

    def _commit(outcome: tuple[str, Optional[str], Optional[PreparedTable]]) -> None:
        name, content_hash, prepared = outcome
        if prepared is None:
            logger.warning(
                "prepare_lake: table %r has no readable source CSV; skipping", name
            )
            report.missing.append(name)
            return
        prepared_store.put(prepared, content_hash=content_hash)
        report.prepared += 1
        expected = meta.get(name, (None, None))[0]
        if expected is not None and expected != content_hash:
            report.stale.append(name)

    effective = _effective_workers(workers, len(tasks))
    if effective == 1:
        _prepare_worker_init(matcher)
        try:
            for task in tasks:
                _commit(_prepare_one(task))
        finally:
            _prepare_worker_init(None)  # type: ignore[arg-type]
        return report
    with ProcessPoolExecutor(
        max_workers=effective,
        initializer=_prepare_worker_init,
        initargs=(matcher,),
    ) as pool:
        for outcome in pool.map(_prepare_one, tasks):
            _commit(outcome)
    return report
