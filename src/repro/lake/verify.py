"""`lake verify`: cross-check manifest ↔ blobs ↔ sketch/prepared stores.

Replication multiplies the places state can rot: the artifact's blobs, its
manifest, the replica's SQLite files, and the rows inside them.  Verify
walks all four levels and — with ``repair=True`` — fixes what it can by
the cheapest sufficient means:

* **SQLite file soundness** — ``PRAGMA integrity_check`` on both stores
  (page corruption; not repairable in place, only reportable);
* **sketch row decode** — every table's column payloads are decoded; a
  row that no longer parses is repaired by re-sketching from its recorded
  ``source_path`` CSV (publisher) or by a targeted re-pull (replica with
  an artifact);
* **prepared consistency** — prepared rows whose ``(table, content hash)``
  no longer matches the sketch store are dead weight (warm lookups key on
  the build hash); repair prunes them;
* **artifact cross-check** — every blob the manifest references is
  re-hashed (absent/corrupt blobs are a *publisher-side* finding: pullers
  already refuse them), and every manifest key is checked against the
  local stores; missing keys are repaired with a targeted
  :func:`~repro.artifacts.sync.pull_snapshot` (delta reconciliation makes
  the pull fetch exactly the missing blobs).

Verification only *reads* through the ordinary store APIs; repair writes
through the same single-writer paths as build and pull, so a serving
daemon's generation probe sees repairs as ordinary writer cycles.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.artifacts.blobs import blob_digest
from repro.artifacts.manifest import Manifest
from repro.artifacts.sync import pull_snapshot
from repro.artifacts.transport import (
    ArtifactTransport,
    LocalTransport,
    RetryPolicy,
    TransportError,
)
from repro.data.csv_io import read_csv
from repro.discovery.prepared import PreparedStore
from repro.lake.store import SketchStore
from repro.telemetry import recorder as telemetry

__all__ = ["VerifyReport", "verify_lake"]

logger = logging.getLogger(__name__)


@dataclass
class VerifyReport:
    """Findings (and repairs) of one :func:`verify_lake` run."""

    #: ``PRAGMA integrity_check`` complaints keyed by store label.
    sqlite_findings: dict = field(default_factory=dict)
    #: Tables whose stored sketch no longer decodes.
    bad_sketches: list[str] = field(default_factory=list)
    #: Prepared rows keyed to a table/hash the sketch store no longer has.
    stale_prepared: int = 0
    #: Artifact-side findings: referenced blobs absent or failing their
    #: digest, and manifest keys missing from the local stores.
    missing_blobs: list[str] = field(default_factory=list)
    corrupt_blobs: list[str] = field(default_factory=list)
    missing_entries: list[str] = field(default_factory=list)
    #: Repair outcomes (zero unless ``repair=True``).
    resketched: int = 0
    pruned_prepared: int = 0
    repulled: int = 0
    #: Findings repair could not fix (still broken after the attempt).
    unrepaired: list[str] = field(default_factory=list)

    @property
    def clean(self) -> bool:
        """True when nothing is (or remains) wrong."""
        return not (
            self.sqlite_findings
            or self.bad_sketches
            or self.stale_prepared
            or self.missing_blobs
            or self.corrupt_blobs
            or self.missing_entries
        )

    @property
    def healthy_after_repair(self) -> bool:
        """True when every finding was repaired (or there were none)."""
        return self.clean or (
            not self.sqlite_findings
            and not self.missing_blobs
            and not self.corrupt_blobs
            and not self.unrepaired
        )


def verify_lake(
    store: SketchStore,
    prepared_store: Optional[PreparedStore] = None,
    source: Union[str, Path, ArtifactTransport, None] = None,
    repair: bool = False,
    retry: Optional[RetryPolicy] = None,
) -> VerifyReport:
    """Inspect (and optionally repair) a lake's stores.

    Parameters
    ----------
    store / prepared_store:
        The stores to check.  Repairs write through their ordinary APIs,
        so *store* must be opened writable when ``repair=True``.
    source:
        Optional snapshot artifact (path or transport) to cross-check
        against — and to re-pull missing/broken entries from on repair.
    repair:
        Attempt fixes: re-sketch undecodable tables from their recorded
        CSVs, prune stale prepared rows, re-pull entries the artifact has
        but the stores lack.
    retry:
        Forwarded to the repair pull.
    """
    report = VerifyReport()
    with telemetry.span("lake.verify", store=store.path):
        _check_sqlite(store, prepared_store, report)
        _check_sketches(store, report)
        if prepared_store is not None:
            _check_prepared(store, prepared_store, report)
        transport: Optional[ArtifactTransport] = None
        if source is not None:
            transport = (
                source
                if isinstance(source, ArtifactTransport)
                else LocalTransport(source)
            )
            _check_artifact(transport, store, prepared_store, report)
        if repair:
            _repair(store, prepared_store, transport, retry, report)
    telemetry.count("verify.runs")
    telemetry.count("verify.bad_sketches", len(report.bad_sketches))
    telemetry.count("verify.stale_prepared", report.stale_prepared)
    return report


# ---------------------------------------------------------------------- #
# checks
# ---------------------------------------------------------------------- #


def _check_sqlite(
    store: SketchStore, prepared_store: Optional[PreparedStore], report: VerifyReport
) -> None:
    findings = store.integrity_check()
    if findings:
        report.sqlite_findings["sketch_store"] = findings
    if prepared_store is not None:
        findings = prepared_store.integrity_check()
        if findings:
            report.sqlite_findings["prepared_store"] = findings


def _check_sketches(store: SketchStore, report: VerifyReport) -> None:
    # Point reads, not __iter__: one undecodable row must not mask the rest.
    for name in store.table_names:
        try:
            store.get(name)
        except ValueError as exc:
            logger.warning("verify: %s", exc)
            report.bad_sketches.append(name)


def _check_prepared(
    store: SketchStore, prepared_store: PreparedStore, report: VerifyReport
) -> None:
    current = {
        name: content_hash
        for name, (content_hash, _path) in store.table_meta(store.table_names).items()
    }
    for _fingerprint, name, content_hash, _fmt in prepared_store.raw_keys():
        if current.get(name) != content_hash:
            report.stale_prepared += 1


def _check_artifact(
    transport: ArtifactTransport,
    store: SketchStore,
    prepared_store: Optional[PreparedStore],
    report: VerifyReport,
) -> None:
    manifest = Manifest.from_bytes(transport.read_manifest(), transport.describe())
    for entry in manifest.tables + manifest.prepared:
        try:
            data = transport.read_blob(entry.digest)
        except KeyError:
            report.missing_blobs.append(entry.digest)
            continue
        except (TransportError, OSError) as exc:
            logger.warning("verify: blob %s unreadable (%s)", entry.digest[:12], exc)
            report.missing_blobs.append(entry.digest)
            continue
        if blob_digest(data) != entry.digest:
            report.corrupt_blobs.append(entry.digest)
    local_table_keys = {
        f"t|{name}|{content_hash}"
        for name, (content_hash, _path) in store.table_meta(store.table_names).items()
    }
    for entry in manifest.tables:
        if entry.key not in local_table_keys:
            report.missing_entries.append(entry.key)
    if prepared_store is not None:
        local_prepared_keys = {
            f"p|{fingerprint}|{name}|{content_hash}|{fmt}"
            for fingerprint, name, content_hash, fmt in prepared_store.raw_keys()
        }
        for entry in manifest.prepared:
            if entry.key not in local_prepared_keys:
                report.missing_entries.append(entry.key)


# ---------------------------------------------------------------------- #
# repair
# ---------------------------------------------------------------------- #


def _repair(
    store: SketchStore,
    prepared_store: Optional[PreparedStore],
    transport: Optional[ArtifactTransport],
    retry: Optional[RetryPolicy],
    report: VerifyReport,
) -> None:
    for name in report.bad_sketches:
        source_path = store.source_path(name)
        resketched = False
        if source_path is not None and Path(source_path).is_file():
            try:
                table = read_csv(source_path, name=name)
            except (OSError, ValueError) as exc:
                logger.warning(
                    "verify: cannot re-sketch %r from %s (%s)", name, source_path, exc
                )
            else:
                # The stored hash still matches the CSV, so add_table would
                # cache-hit on the broken row; drop it first.
                store.remove_table(name)
                store.add_table(table, source_path=source_path)
                report.resketched += 1
                resketched = True
        if not resketched:
            if transport is not None:
                # No readable CSV: retire the broken row and let the pull
                # below re-fetch the table from the artifact (the pull's
                # key reconciliation sees the gap and refetches exactly it).
                store.remove_table(name)
            else:
                report.unrepaired.append(name)
    if prepared_store is not None and report.stale_prepared:
        current = {
            name: content_hash
            for name, (content_hash, _path) in store.table_meta(
                store.table_names
            ).items()
        }
        for fingerprint, name, content_hash, _fmt in prepared_store.raw_keys():
            if current.get(name) != content_hash:
                if prepared_store.remove_raw(fingerprint, name, content_hash):
                    report.pruned_prepared += 1
    if transport is not None and (report.missing_entries or report.bad_sketches):
        # Targeted re-pull: reconciliation fetches exactly what's missing.
        # keep local extras — verify repairs, it does not retire tables
        pulled = pull_snapshot(
            transport,
            store,
            prepared_store=prepared_store,
            remove_missing=False,
            retry=retry,
        )
        report.repulled = pulled.tables_added + pulled.prepared_added
        if pulled.corrupt:
            report.unrepaired.extend(pulled.corrupt)
    telemetry.count("verify.repairs", report.resketched + report.repulled)
