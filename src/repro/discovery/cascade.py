"""Stage-1 signals and score bounds for the cascaded rerank.

The rerank cascade (PR 10) splits :func:`~repro.discovery.search.
prune_then_rerank` into two stages.  Stage 1 scores every shortlisted
candidate with *cheap* store-resident evidence — the sketch-level MinHash
Jaccard and the hash-space histogram distance every
:class:`~repro.lake.profiles.ColumnSketch` already carries — condensed into
one :class:`CandidateSignals` per candidate.  Each matcher turns those
signals into an **upper bound** on any column-pair score it could produce
(:meth:`~repro.matchers.base.BaseMatcher.score_bound`); stage 2 then runs
the expensive ``match_prepared`` only on candidates whose bound still
overlaps the current top-k cutoff.

Bounds are trusted for skipping only when the matcher declares them
*admissible* (:meth:`~repro.matchers.base.BaseMatcher.bounds_admissible`);
otherwise they merely order the work best-bound-first, and every candidate
is still scored exactly — which is what keeps cascaded rankings
byte-identical to the uncascaded path.

This module deliberately avoids importing :mod:`repro.lake` (the lake
package imports the discovery core); the sketch arguments are duck-typed
against :class:`~repro.lake.profiles.ColumnSketch`'s attributes.
"""

from __future__ import annotations

import math
import time
from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping, Optional, Sequence

import numpy as np

from repro.sketches.minhash import jaccard_matrix

if TYPE_CHECKING:  # pragma: no cover - import cycle guard (repro.lake -> here)
    from repro.lake.profiles import ColumnSketch
    from repro.matchers.base import BaseMatcher, PreparedTable

__all__ = [
    "CandidateSignals",
    "RerankCascade",
    "candidate_signals",
    "mode_bound",
    "compute_ranking_bounds",
    "order_by_bound",
]


@dataclass(frozen=True)
class CandidateSignals:
    """Cheap store-resident evidence about one shortlisted candidate.

    Everything here is computed from sketches alone — no CSV read, no
    matcher ``prepare`` — and is what :meth:`BaseMatcher.score_bound`
    receives to derive its upper bound.

    Attributes
    ----------
    table_name:
        The candidate.
    max_jaccard:
        Maximum sketch-estimated value-set Jaccard over all (query column,
        candidate column) pairs.
    min_histogram_distance:
        Minimum L1 distance between hash-space histograms over all pairs
        (in ``[0, 2]``; ``0.0`` when no comparable histograms exist).
    num_columns:
        Candidate column count.
    num_permutations:
        Signature width of the candidate's stored MinHash sketches.
    seed:
        MinHash permutation seed the candidate was sketched with.
    max_values:
        Maximum non-missing cell count over the candidate's columns — lets
        a matcher detect that its own value sampling would truncate.
    """

    table_name: str
    max_jaccard: float
    min_histogram_distance: float
    num_columns: int
    num_permutations: int
    seed: int
    max_values: int


def _min_histogram_distance(query_columns, columns) -> float:
    """Minimum pairwise L1 histogram distance, vectorised per bucket width.

    Stage 1 runs once per shortlisted candidate, so this is on the per-query
    hot path; broadcasting over all (query column, candidate column) pairs
    of the same histogram length beats the naive double loop by an order of
    magnitude on wide shortlists.  Only equal-length, non-empty histograms
    are comparable — mismatched widths contribute nothing, as before.
    """
    query_by_len: dict[int, list] = {}
    for q in query_columns:
        if q.histogram:
            query_by_len.setdefault(len(q.histogram), []).append(q.histogram)
    best = math.inf
    if not query_by_len:
        return best
    candidate_by_len: dict[int, list] = {}
    for c in columns:
        if c.histogram:
            candidate_by_len.setdefault(len(c.histogram), []).append(c.histogram)
    for length, query_hists in query_by_len.items():
        candidate_hists = candidate_by_len.get(length)
        if not candidate_hists:
            continue
        q = np.asarray(query_hists, dtype=np.float64)
        c = np.asarray(candidate_hists, dtype=np.float64)
        distances = np.abs(q[:, None, :] - c[None, :, :]).sum(axis=2)
        best = min(best, float(distances.min()))
    return best


def candidate_signals(
    query_sketch, columns: Sequence["ColumnSketch"], seed: int = 7
) -> CandidateSignals:
    """Condense one candidate's column sketches against the query sketch.

    *query_sketch* is the query's :class:`~repro.lake.profiles.TableSketch`
    (the same object the LSH shortlist was probed with, so stage 1 adds no
    extra sketching pass); *columns* are the candidate's stored
    :class:`~repro.lake.profiles.ColumnSketch` objects and *seed* the store
    config's MinHash seed.
    """
    name = columns[0].table_name if columns else ""
    max_jaccard = 0.0
    query_columns = list(query_sketch.columns)
    if query_columns and columns:
        matrix = jaccard_matrix(
            [sketch.minhash for sketch in query_columns],
            [sketch.minhash for sketch in columns],
        )
        max_jaccard = float(matrix.max())
    min_histogram = _min_histogram_distance(query_columns, columns)
    num_permutations = len(columns[0].minhash.values) if columns else 0
    max_values = 0
    for c in columns:
        non_missing = max(0, c.row_count - c.missing_count)
        if non_missing > max_values:
            max_values = non_missing
    return CandidateSignals(
        table_name=name,
        max_jaccard=max_jaccard,
        min_histogram_distance=0.0 if math.isinf(min_histogram) else min_histogram,
        num_columns=len(columns),
        num_permutations=num_permutations,
        seed=seed,
        max_values=max_values,
    )


@dataclass
class RerankCascade:
    """One rerank's cascade configuration plus its outcome counters.

    Built by the caller (the lake engine, or a test) with the stage-1
    ``signals`` and an optional anytime ``budget_ms``; filled in by
    :func:`~repro.discovery.search.prune_then_rerank` after the rerank —
    the same mutable-result-channel idiom as
    :class:`~repro.discovery.search.WorkerCandidateSource.store_hits`.

    ``partial`` means the budget expired before every surviving candidate
    was scored: the returned ranking is the best-effort top-k over the
    candidates scored so far (possibly empty), never a wrong ordering of
    the scored ones.
    """

    #: Stage-1 evidence per candidate name; names absent here get a ``+inf``
    #: bound (always scored exactly).
    signals: Mapping[str, CandidateSignals] = field(default_factory=dict)
    #: Anytime budget for the whole rerank stage, in milliseconds; ``None``
    #: disables the deadline.
    budget_ms: Optional[float] = None
    # ------ outcome (filled by prune_then_rerank) ------
    #: Candidates the matcher actually scored.
    exact_scored: int = field(default=0, compare=False)
    #: Candidates whose admissible bound fell below the top-k cutoff.
    skipped: int = field(default=0, compare=False)
    #: Times the shared top-k cutoff tightened as exact scores streamed in.
    cutoff_updates: int = field(default=0, compare=False)
    #: Whether the budget deadline stopped the cascade early.
    partial: bool = field(default=False, compare=False)

    def start_deadline(self) -> Optional[float]:
        """Absolute ``perf_counter`` deadline for this rerank, or ``None``."""
        if self.budget_ms is None:
            return None
        return time.perf_counter() + self.budget_ms / 1000.0


def mode_bound(pair_bound: float, mode: str, union_threshold: float) -> float:
    """Lift a column-pair score bound to a ranking-score bound for *mode*.

    Joinability is the best pair score, so the pair bound carries over
    directly.  Unionability counts pairs at or above *union_threshold*: a
    pair bound strictly below the threshold proves unionability is exactly
    ``0.0``, otherwise the conservative bound is ``1.0``.  Combined is the
    engines' fixed 0.5/0.5 blend of the two.
    """
    if not math.isfinite(pair_bound):
        return math.inf
    union = 0.0 if pair_bound < union_threshold else 1.0
    if mode == "joinable":
        return pair_bound
    if mode == "unionable":
        return union
    return 0.5 * pair_bound + 0.5 * union


def compute_ranking_bounds(
    matcher: "BaseMatcher",
    prepared_query: "PreparedTable",
    signals: Mapping[str, CandidateSignals],
    mode: str,
    union_threshold: float,
) -> tuple[dict[str, float], bool]:
    """Per-candidate ranking-score bounds, plus whether they may skip work.

    Returns ``(bounds, trusted)``: *bounds* maps candidate name to an upper
    bound on its final ranking score under *mode*, and *trusted* is the
    matcher's :meth:`~repro.matchers.base.BaseMatcher.bounds_admissible`
    declaration — only a trusted bound may drop a candidate below the
    cutoff; untrusted bounds are used purely to order scoring
    best-bound-first.
    """
    bounds = {
        name: mode_bound(
            matcher.score_bound(prepared_query, signal), mode, union_threshold
        )
        for name, signal in signals.items()
    }
    return bounds, matcher.bounds_admissible()


def order_by_bound(
    names: Sequence[str],
    bounds: Mapping[str, float],
    signals: Mapping[str, CandidateSignals],
) -> list[str]:
    """Order candidates best-bound-first so the top-k cutoff rises early.

    Unknown bounds (``+inf``) come first — they must be scored regardless,
    and scoring them early costs nothing.  Ties fall back to the stage-1
    ``max_jaccard`` signal, then to the input (shortlist) order — the sort
    is stable, so a budget-only cascade with no signals preserves the
    shortlist's evidence ordering.
    """

    def sort_key(name: str) -> tuple[float, float]:
        signal = signals.get(name)
        priority = signal.max_jaccard if signal is not None else 0.0
        return (-bounds.get(name, math.inf), -priority)

    return sorted(names, key=sort_key)
