"""Human-in-the-loop feedback over ranked matches.

One of the paper's "lessons learned" (Section IX) is that matching methods
should accept feedback from humans "in the form of positive/negative
examples" rather than parameters, and should treat matching as a *search*
problem whose ranked results are refined interactively.  This module provides
that loop:

* a :class:`FeedbackSession` wraps a :class:`MatchResult`, records accept /
  reject decisions on individual column pairs, and re-ranks the remaining
  candidates;
* re-ranking combines the matcher's original scores with similarity to the
  accepted examples and dissimilarity to the rejected ones (a lightweight
  Rocchio-style update over name-token features).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable

from repro.matchers.base import Match, MatchResult
from repro.text.distance import jaro_winkler_similarity, monge_elkan
from repro.text.tokenize import tokenize_identifier

__all__ = ["FeedbackDecision", "FeedbackSession"]


@dataclass(frozen=True)
class FeedbackDecision:
    """One user decision about a candidate column pair."""

    source_column: str
    target_column: str
    accepted: bool


def _pair_affinity(pair_a: tuple[str, str], pair_b: tuple[str, str]) -> float:
    """Similarity between two column *pairs* based on their name tokens.

    Two pairs are similar when their source names resemble each other and
    their target names resemble each other — the signal used to generalise a
    user's decision to similar candidates.
    """
    source_sim = monge_elkan(
        tokenize_identifier(pair_a[0]), tokenize_identifier(pair_b[0]), inner=jaro_winkler_similarity
    )
    target_sim = monge_elkan(
        tokenize_identifier(pair_a[1]), tokenize_identifier(pair_b[1]), inner=jaro_winkler_similarity
    )
    return (source_sim + target_sim) / 2.0


class FeedbackSession:
    """Interactive refinement of a ranked match list.

    Parameters
    ----------
    result:
        The matcher's original ranking.
    feedback_weight:
        How strongly accepted/rejected examples shift the scores of the
        remaining candidates (0 disables generalisation; decisions about a
        specific pair always pin that pair to the top/bottom).
    """

    def __init__(self, result: MatchResult, feedback_weight: float = 0.3) -> None:
        if not 0.0 <= feedback_weight <= 1.0:
            raise ValueError("feedback_weight must be in [0, 1]")
        self._original = result
        self.feedback_weight = feedback_weight
        self._decisions: dict[tuple[str, str], bool] = {}

    # ------------------------------------------------------------------ #
    # recording decisions
    # ------------------------------------------------------------------ #
    def accept(self, source_column: str, target_column: str) -> None:
        """Mark a candidate pair as a correct match."""
        self._decisions[(source_column, target_column)] = True

    def reject(self, source_column: str, target_column: str) -> None:
        """Mark a candidate pair as incorrect."""
        self._decisions[(source_column, target_column)] = False

    def record(self, decisions: Iterable[FeedbackDecision]) -> None:
        """Record a batch of decisions."""
        for decision in decisions:
            self._decisions[(decision.source_column, decision.target_column)] = decision.accepted

    @property
    def decisions(self) -> list[FeedbackDecision]:
        """All recorded decisions."""
        return [
            FeedbackDecision(source_column=pair[0], target_column=pair[1], accepted=accepted)
            for pair, accepted in self._decisions.items()
        ]

    @property
    def accepted_pairs(self) -> list[tuple[str, str]]:
        """Pairs the user confirmed."""
        return [pair for pair, accepted in self._decisions.items() if accepted]

    @property
    def rejected_pairs(self) -> list[tuple[str, str]]:
        """Pairs the user rejected."""
        return [pair for pair, accepted in self._decisions.items() if not accepted]

    # ------------------------------------------------------------------ #
    # re-ranking
    # ------------------------------------------------------------------ #
    def _adjusted_score(self, match: Match) -> float:
        pair = match.as_pair()
        decision = self._decisions.get(pair)
        if decision is True:
            return 1.0
        if decision is False:
            return 0.0
        if not self._decisions or self.feedback_weight == 0.0:
            return match.score
        boost = 0.0
        if self.accepted_pairs:
            boost += max(_pair_affinity(pair, accepted) for accepted in self.accepted_pairs)
        if self.rejected_pairs:
            boost -= max(_pair_affinity(pair, rejected) for rejected in self.rejected_pairs)
        adjusted = (1.0 - self.feedback_weight) * match.score + self.feedback_weight * (
            (boost + 1.0) / 2.0
        )
        return min(1.0, max(0.0, adjusted))

    def reranked(self) -> MatchResult:
        """Return the ranking updated with the recorded feedback.

        Accepted pairs move to the top (score 1), rejected pairs to the
        bottom (score 0), and undecided pairs are shifted towards or away
        from the confirmed examples according to name-token affinity.
        """
        adjusted = [
            Match(self._adjusted_score(match), match.source, match.target)
            for match in self._original
        ]
        return MatchResult(adjusted)

    def next_candidates(self, k: int = 5) -> list[Match]:
        """The *k* highest-ranked pairs the user has not decided on yet."""
        pending = [
            match for match in self.reranked() if match.as_pair() not in self._decisions
        ]
        return pending[:k]
