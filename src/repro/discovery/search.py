"""Dataset discovery over a repository of tables.

This is "Valentine as a Discovery Component" (Section II-B) turned into an
API: a :class:`DatasetRepository` holds candidate tables, and
:class:`DiscoveryEngine` ranks them against a query table by joinability or
unionability using any bundled matcher.

Every discovery query — brute force, index-pruned, or lake-scale — runs
through one shared **prune-then-rerank core**, :func:`prune_then_rerank`:

1. *prune* — the caller supplies candidate table names (the whole repository,
   or an index shortlist) and an injectable ``resolve`` strategy that turns a
   name into a :class:`~repro.data.table.Table` (in-memory lookup, or lazy
   CSV loading);
2. *rerank* — the query table is **prepared exactly once**
   (:meth:`BaseMatcher.prepare <repro.matchers.base.BaseMatcher.prepare>`)
   and streamed through
   :meth:`~repro.matchers.base.BaseMatcher.match_prepared` against every
   resolved candidate, serially or in a process pool whose workers receive
   the prepared query once via the pool initializer (not once per
   candidate).

:class:`DiscoveryEngine` and
:class:`~repro.lake.engine.LakeDiscoveryEngine` are thin parameterisations
of this core, so their rankings can never drift apart.
"""

from __future__ import annotations

from concurrent.futures import ProcessPoolExecutor
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional, Union

from repro.data.table import Table
from repro.discovery.prepared import PreparedTableCache
from repro.discovery.relatedness import RelatednessScores, relatedness
from repro.matchers.base import BaseMatcher, MatchResult, PreparedTable

__all__ = [
    "DatasetRepository",
    "DiscoveryResult",
    "DiscoveryEngine",
    "PairScorer",
    "prune_then_rerank",
    "sort_discovery_results",
    "DEFAULT_MIN_CANDIDATES",
    "DEFAULT_CANDIDATE_MULTIPLIER",
    "DEFAULT_UNION_THRESHOLD",
]

#: Default shortlist slack for index-pruned discovery: an exact top-k query
#: reranks ``max(DEFAULT_MIN_CANDIDATES, DEFAULT_CANDIDATE_MULTIPLIER * k)``
#: sketch-level candidates so the matcher can repair sketch ranking mistakes.
#: Shared by :meth:`DiscoveryEngine.discover` and
#: :class:`~repro.lake.engine.LakeDiscoveryEngine`.
DEFAULT_MIN_CANDIDATES = 20
DEFAULT_CANDIDATE_MULTIPLIER = 5

#: Default column-score threshold of the unionability measure, shared by
#: :class:`PairScorer` and both discovery engines so the three defaults can
#: never drift apart.
DEFAULT_UNION_THRESHOLD = 0.55


class DatasetRepository:
    """A named collection of candidate tables (an in-memory "data lake").

    Iteration order is deterministic: tables are yielded in insertion order
    (re-adding an existing name keeps its original position).
    """

    def __init__(self, tables: Iterable[Table] = ()) -> None:
        self._tables: dict[str, Table] = {}
        for table in tables:
            self.add(table)

    def add(self, table: Table, overwrite: bool = True) -> None:
        """Register a table under its own name.

        Parameters
        ----------
        table:
            The table to register.
        overwrite:
            When True (default) a table with the same name is silently
            replaced (keeping its position in the iteration order).  When
            False a name collision raises ``ValueError`` instead — use this
            to catch accidental double-registration in lake builds.
        """
        if not overwrite and table.name in self._tables:
            raise ValueError(f"repository already contains a table named {table.name!r}")
        self._tables[table.name] = table

    def remove(self, name: str) -> None:
        """Remove a table; missing names are ignored."""
        self._tables.pop(name, None)

    def get(self, name: str) -> Optional[Table]:
        """Return the table called *name* or ``None``."""
        return self._tables.get(name)

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> list[str]:
        """Names of all registered tables."""
        return list(self._tables)


@dataclass(frozen=True)
class DiscoveryResult:
    """One candidate table scored against the query."""

    table_name: str
    scores: RelatednessScores
    matches: MatchResult

    @property
    def joinability(self) -> float:
        return self.scores.joinability

    @property
    def unionability(self) -> float:
        return self.scores.unionability


def sort_discovery_results(results: list[DiscoveryResult], mode: str) -> None:
    """Sort *results* in place by the ranking criterion of *mode*.

    Shared by the brute-force and the index-accelerated engines so both
    produce identical orderings (descending score, ties broken by name).
    """
    if mode == "joinable":
        results.sort(key=lambda r: (-r.joinability, r.table_name))
    elif mode == "unionable":
        results.sort(key=lambda r: (-r.unionability, r.table_name))
    elif mode == "combined":
        results.sort(key=lambda r: (-r.scores.combined(), r.table_name))
    else:
        raise ValueError(f"unknown discovery mode {mode!r}")


@dataclass
class PairScorer:
    """Scores one (query, candidate) pair; the shared rerank unit.

    Both discovery engines delegate pair scoring here so their rankings can
    never drift.  The scorer is picklable (matcher configs are plain
    attributes), which is what lets the parallel rerank ship it to worker
    processes through the pool initializer.
    """

    matcher: BaseMatcher
    union_threshold: float = DEFAULT_UNION_THRESHOLD

    def score_prepared(
        self, query: PreparedTable, candidate: Union[Table, PreparedTable]
    ) -> DiscoveryResult:
        """Match a *prepared* query against one candidate table."""
        if self.matcher.prefers_legacy_get_matches():
            # A subclass overrode get_matches below the prepared pipeline
            # (e.g. to post-process scores): honour it rather than silently
            # bypassing the override through match_prepared.
            candidate_table = (
                candidate.table if isinstance(candidate, PreparedTable) else candidate
            )
            matches = self.matcher.get_matches(query.table, candidate_table)
            scores = relatedness(matches, query.table, threshold=self.union_threshold)
            return DiscoveryResult(
                table_name=candidate_table.name, scores=scores, matches=matches
            )
        candidate_prepared = self.matcher._ensure_prepared(candidate)
        matches = self.matcher.match_prepared(query, candidate_prepared)
        scores = relatedness(matches, query.table, threshold=self.union_threshold)
        return DiscoveryResult(
            table_name=candidate_prepared.table.name, scores=scores, matches=matches
        )

    def score_pair(self, query: Table, candidate: Table) -> DiscoveryResult:
        """Match a raw query against one candidate (prepares the query too)."""
        return self.score_prepared(self.matcher.prepare(query), candidate)


# Per-worker state of the parallel rerank: the scorer and the prepared query
# are shipped ONCE per worker through the pool initializer instead of being
# pickled into every task (``pool.map`` used to re-send the query table once
# per candidate).
_WORKER_SCORER: Optional[PairScorer] = None
_WORKER_QUERY: Optional[PreparedTable] = None


def _rerank_worker_init(scorer: PairScorer, query: PreparedTable) -> None:
    global _WORKER_SCORER, _WORKER_QUERY
    _WORKER_SCORER = scorer
    _WORKER_QUERY = query


def _rerank_worker_score(candidate: Union[Table, PreparedTable]) -> DiscoveryResult:
    assert _WORKER_SCORER is not None and _WORKER_QUERY is not None
    return _WORKER_SCORER.score_prepared(_WORKER_QUERY, candidate)


def prune_then_rerank(
    query: Table,
    candidate_names: Iterable[str],
    resolve: Callable[[str], Optional[Union[Table, PreparedTable]]],
    scorer: PairScorer,
    mode: str = "joinable",
    top_k: Optional[int] = None,
    *,
    parallel: bool = False,
    max_workers: Optional[int] = None,
    prepared_cache: Optional[PreparedTableCache] = None,
) -> tuple[list[DiscoveryResult], int]:
    """The discovery core shared by every engine: resolve, rerank, sort.

    Parameters
    ----------
    query:
        The input table (prepared exactly once for the whole rerank).
    candidate_names:
        Pruned candidate table names — the whole repository for brute-force
        search, an LSH shortlist for indexed search.  The query's own name
        is always skipped.
    resolve:
        Injectable resolution strategy turning a name into a table
        (repository lookup, lazy CSV read...) or directly into a
        :class:`PreparedTable` (e.g. the lake engine's persistent
        prepared-candidate store), which skips the prepare stage entirely
        for that candidate.  Returning ``None`` drops the candidate (it
        cannot be ranked without values).
    scorer:
        The pair scorer (matcher + unionability threshold).
    mode:
        ``"joinable"``, ``"unionable"`` or ``"combined"``.
    top_k:
        Optionally truncate the final ranking.
    parallel / max_workers:
        Rerank in a process pool.  Workers receive the scorer and the
        prepared query once each via the pool initializer.
    prepared_cache:
        Optional prepared provider — a
        :class:`~repro.discovery.prepared.PreparedTableCache`, a
        :class:`~repro.discovery.prepared.PreparedStore`, or anything else
        with their ``prepare(matcher, table, content_hash=...)`` contract.
        When given, the query's prepared table — and, on the serial path,
        every candidate's — is served from / written through it.  (Parallel
        reranks prepare candidates inside worker processes, which cannot
        see the parent's provider.)

    Returns
    -------
    ``(ranked results, rerank count)`` where the count is the number of
    candidates the matcher actually scored (the pruning statistic, before
    top-k truncation).
    """
    if mode not in ("joinable", "unionable", "combined"):
        raise ValueError(f"unknown discovery mode {mode!r}")
    candidates: list[Union[Table, PreparedTable]] = []
    for name in candidate_names:
        if name == query.name:
            continue
        table = resolve(name)
        if table is not None:
            candidates.append(table)
    if prepared_cache is not None:
        query_prepared = prepared_cache.prepare(scorer.matcher, query)
    else:
        query_prepared = scorer.matcher.prepare(query)
    if parallel and len(candidates) > 1:
        # Candidates are prepared inside the workers; the (parent-process)
        # prepared cache only serves the query on this path.  Candidates the
        # resolver already delivered as PreparedTable ship their payload to
        # the worker and skip the prepare there too.
        with ProcessPoolExecutor(
            max_workers=max_workers,
            initializer=_rerank_worker_init,
            initargs=(scorer, query_prepared),
        ) as pool:
            results = list(pool.map(_rerank_worker_score, candidates))
    else:
        # Candidate-side caching only pays off when the matcher actually
        # consumes prepared payloads; a legacy get_matches override discards
        # them, so skip the per-candidate content hashing for those.
        # Candidates resolved straight to a PreparedTable bypass the cache —
        # they already are the thing the cache would produce.
        cache_candidates = (
            prepared_cache is not None
            and not scorer.matcher.prefers_legacy_get_matches()
        )
        results = [
            scorer.score_prepared(
                query_prepared,
                prepared_cache.prepare(scorer.matcher, candidate)
                if cache_candidates and not isinstance(candidate, PreparedTable)
                else candidate,
            )
            for candidate in candidates
        ]
    sort_discovery_results(results, mode)
    truncated = results[:top_k] if top_k is not None else results
    return truncated, len(candidates)


@dataclass
class DiscoveryEngine:
    """Ranks repository tables against a query table using a column matcher.

    Attributes
    ----------
    matcher:
        Any :class:`~repro.matchers.base.BaseMatcher`.
    union_threshold:
        Column-score threshold used by the unionability measure.
    prepared_cache:
        Optional :class:`~repro.discovery.prepared.PreparedTableCache`
        reusing prepared query tables across :meth:`discover` calls.
    """

    matcher: BaseMatcher
    union_threshold: float = DEFAULT_UNION_THRESHOLD
    prepared_cache: Optional[PreparedTableCache] = None

    def _scorer(self) -> PairScorer:
        return PairScorer(matcher=self.matcher, union_threshold=self.union_threshold)

    def score_pair(self, query: Table, candidate: Table) -> DiscoveryResult:
        """Match *query* against one *candidate* and derive table-level scores."""
        return self._scorer().score_pair(query, candidate)

    def discover(
        self,
        query: Table,
        repository: DatasetRepository,
        mode: str = "joinable",
        top_k: Optional[int] = None,
        index: Optional[object] = None,
        candidate_limit: Optional[int] = None,
        parallel: bool = False,
        max_workers: Optional[int] = None,
    ) -> list[DiscoveryResult]:
        """Rank repository tables against *query*.

        Parameters
        ----------
        query:
            The input table.
        repository:
            Candidate tables.
        mode:
            ``"joinable"`` (rank by joinability), ``"unionable"`` (rank by
            unionability) or ``"combined"``.
        top_k:
            Optionally truncate the ranking.
        index:
            Optional fast path: any object with a
            ``shortlist(query, limit) -> list[str]`` method (e.g. a
            :class:`~repro.lake.index.LakeIndex`).  When given, only the
            shortlisted tables are matched instead of the whole repository —
            O(candidates) instead of O(lake).
        candidate_limit:
            Shortlist size for the fast path; defaults to
            ``max(DEFAULT_MIN_CANDIDATES, DEFAULT_CANDIDATE_MULTIPLIER *
            top_k)`` so the exact matcher has slack to repair sketch-level
            ranking mistakes (unbounded when neither is set).
        parallel / max_workers:
            Rerank candidates in a process pool (workers receive the
            prepared query once each).
        """
        if index is not None:
            limit = candidate_limit
            if limit is None and top_k is not None:
                limit = max(
                    DEFAULT_MIN_CANDIDATES, DEFAULT_CANDIDATE_MULTIPLIER * top_k
                )
            names: Iterable[str] = index.shortlist(query, limit)
        else:
            names = repository.table_names
        results, _ = prune_then_rerank(
            query,
            names,
            repository.get,
            self._scorer(),
            mode=mode,
            top_k=top_k,
            parallel=parallel,
            max_workers=max_workers,
            prepared_cache=self.prepared_cache,
        )
        return results
