"""Dataset discovery over a repository of tables.

This is "Valentine as a Discovery Component" (Section II-B) turned into an
API: a :class:`DatasetRepository` holds candidate tables, and
:class:`DiscoveryEngine` ranks them against a query table by joinability or
unionability using any bundled matcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.data.table import Table
from repro.discovery.relatedness import RelatednessScores, relatedness
from repro.matchers.base import BaseMatcher, MatchResult

__all__ = [
    "DatasetRepository",
    "DiscoveryResult",
    "DiscoveryEngine",
    "sort_discovery_results",
    "DEFAULT_MIN_CANDIDATES",
    "DEFAULT_CANDIDATE_MULTIPLIER",
]

#: Default shortlist slack for index-pruned discovery: an exact top-k query
#: reranks ``max(DEFAULT_MIN_CANDIDATES, DEFAULT_CANDIDATE_MULTIPLIER * k)``
#: sketch-level candidates so the matcher can repair sketch ranking mistakes.
#: Shared by :meth:`DiscoveryEngine.discover` and
#: :class:`~repro.lake.engine.LakeDiscoveryEngine`.
DEFAULT_MIN_CANDIDATES = 20
DEFAULT_CANDIDATE_MULTIPLIER = 5


class DatasetRepository:
    """A named collection of candidate tables (an in-memory "data lake").

    Iteration order is deterministic: tables are yielded in insertion order
    (re-adding an existing name keeps its original position).
    """

    def __init__(self, tables: Iterable[Table] = ()) -> None:
        self._tables: dict[str, Table] = {}
        for table in tables:
            self.add(table)

    def add(self, table: Table, overwrite: bool = True) -> None:
        """Register a table under its own name.

        Parameters
        ----------
        table:
            The table to register.
        overwrite:
            When True (default) a table with the same name is silently
            replaced (keeping its position in the iteration order).  When
            False a name collision raises ``ValueError`` instead — use this
            to catch accidental double-registration in lake builds.
        """
        if not overwrite and table.name in self._tables:
            raise ValueError(f"repository already contains a table named {table.name!r}")
        self._tables[table.name] = table

    def remove(self, name: str) -> None:
        """Remove a table; missing names are ignored."""
        self._tables.pop(name, None)

    def get(self, name: str) -> Optional[Table]:
        """Return the table called *name* or ``None``."""
        return self._tables.get(name)

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> list[str]:
        """Names of all registered tables."""
        return list(self._tables)


@dataclass(frozen=True)
class DiscoveryResult:
    """One candidate table scored against the query."""

    table_name: str
    scores: RelatednessScores
    matches: MatchResult

    @property
    def joinability(self) -> float:
        return self.scores.joinability

    @property
    def unionability(self) -> float:
        return self.scores.unionability


def sort_discovery_results(results: list[DiscoveryResult], mode: str) -> None:
    """Sort *results* in place by the ranking criterion of *mode*.

    Shared by the brute-force and the index-accelerated engines so both
    produce identical orderings (descending score, ties broken by name).
    """
    if mode == "joinable":
        results.sort(key=lambda r: (-r.joinability, r.table_name))
    elif mode == "unionable":
        results.sort(key=lambda r: (-r.unionability, r.table_name))
    elif mode == "combined":
        results.sort(key=lambda r: (-r.scores.combined(), r.table_name))
    else:
        raise ValueError(f"unknown discovery mode {mode!r}")


@dataclass
class DiscoveryEngine:
    """Ranks repository tables against a query table using a column matcher.

    Attributes
    ----------
    matcher:
        Any :class:`~repro.matchers.base.BaseMatcher`.
    union_threshold:
        Column-score threshold used by the unionability measure.
    """

    matcher: BaseMatcher
    union_threshold: float = 0.55

    def score_pair(self, query: Table, candidate: Table) -> DiscoveryResult:
        """Match *query* against one *candidate* and derive table-level scores."""
        matches = self.matcher.get_matches(query, candidate)
        scores = relatedness(matches, query, threshold=self.union_threshold)
        return DiscoveryResult(table_name=candidate.name, scores=scores, matches=matches)

    def discover(
        self,
        query: Table,
        repository: DatasetRepository,
        mode: str = "joinable",
        top_k: Optional[int] = None,
        index: Optional[object] = None,
        candidate_limit: Optional[int] = None,
    ) -> list[DiscoveryResult]:
        """Rank repository tables against *query*.

        Parameters
        ----------
        query:
            The input table.
        repository:
            Candidate tables.
        mode:
            ``"joinable"`` (rank by joinability), ``"unionable"`` (rank by
            unionability) or ``"combined"``.
        top_k:
            Optionally truncate the ranking.
        index:
            Optional fast path: any object with a
            ``shortlist(query, limit) -> list[str]`` method (e.g. a
            :class:`~repro.lake.index.LakeIndex`).  When given, only the
            shortlisted tables are matched instead of the whole repository —
            O(candidates) instead of O(lake).
        candidate_limit:
            Shortlist size for the fast path; defaults to
            ``max(DEFAULT_MIN_CANDIDATES, DEFAULT_CANDIDATE_MULTIPLIER *
            top_k)`` so the exact matcher has slack to repair sketch-level
            ranking mistakes (unbounded when neither is set).
        """
        if mode not in ("joinable", "unionable", "combined"):
            raise ValueError(f"unknown discovery mode {mode!r}")
        if index is not None:
            limit = candidate_limit
            if limit is None and top_k is not None:
                limit = max(
                    DEFAULT_MIN_CANDIDATES, DEFAULT_CANDIDATE_MULTIPLIER * top_k
                )
            names = index.shortlist(query, limit)
            candidates = [
                table
                for table in (repository.get(name) for name in names)
                if table is not None and table.name != query.name
            ]
        else:
            candidates = [c for c in repository if c.name != query.name]
        results = [self.score_pair(query, candidate) for candidate in candidates]
        sort_discovery_results(results, mode)
        return results[:top_k] if top_k is not None else results
