"""Dataset discovery over a repository of tables.

This is "Valentine as a Discovery Component" (Section II-B) turned into an
API: a :class:`DatasetRepository` holds candidate tables, and
:class:`DiscoveryEngine` ranks them against a query table by joinability or
unionability using any bundled matcher.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

from repro.data.table import Table
from repro.discovery.relatedness import RelatednessScores, relatedness
from repro.matchers.base import BaseMatcher, MatchResult

__all__ = ["DatasetRepository", "DiscoveryResult", "DiscoveryEngine"]


class DatasetRepository:
    """A named collection of candidate tables (an in-memory "data lake")."""

    def __init__(self, tables: Iterable[Table] = ()) -> None:
        self._tables: dict[str, Table] = {}
        for table in tables:
            self.add(table)

    def add(self, table: Table) -> None:
        """Register a table under its own name (replacing any previous one)."""
        self._tables[table.name] = table

    def remove(self, name: str) -> None:
        """Remove a table; missing names are ignored."""
        self._tables.pop(name, None)

    def get(self, name: str) -> Optional[Table]:
        """Return the table called *name* or ``None``."""
        return self._tables.get(name)

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> list[str]:
        """Names of all registered tables."""
        return list(self._tables)


@dataclass(frozen=True)
class DiscoveryResult:
    """One candidate table scored against the query."""

    table_name: str
    scores: RelatednessScores
    matches: MatchResult

    @property
    def joinability(self) -> float:
        return self.scores.joinability

    @property
    def unionability(self) -> float:
        return self.scores.unionability


@dataclass
class DiscoveryEngine:
    """Ranks repository tables against a query table using a column matcher.

    Attributes
    ----------
    matcher:
        Any :class:`~repro.matchers.base.BaseMatcher`.
    union_threshold:
        Column-score threshold used by the unionability measure.
    """

    matcher: BaseMatcher
    union_threshold: float = 0.55

    def score_pair(self, query: Table, candidate: Table) -> DiscoveryResult:
        """Match *query* against one *candidate* and derive table-level scores."""
        matches = self.matcher.get_matches(query, candidate)
        scores = relatedness(matches, query, threshold=self.union_threshold)
        return DiscoveryResult(table_name=candidate.name, scores=scores, matches=matches)

    def discover(
        self,
        query: Table,
        repository: DatasetRepository,
        mode: str = "joinable",
        top_k: Optional[int] = None,
    ) -> list[DiscoveryResult]:
        """Rank every repository table against *query*.

        Parameters
        ----------
        query:
            The input table.
        repository:
            Candidate tables.
        mode:
            ``"joinable"`` (rank by joinability), ``"unionable"`` (rank by
            unionability) or ``"combined"``.
        top_k:
            Optionally truncate the ranking.
        """
        if mode not in ("joinable", "unionable", "combined"):
            raise ValueError(f"unknown discovery mode {mode!r}")
        results = [
            self.score_pair(query, candidate)
            for candidate in repository
            if candidate.name != query.name
        ]
        if mode == "joinable":
            results.sort(key=lambda r: (-r.joinability, r.table_name))
        elif mode == "unionable":
            results.sort(key=lambda r: (-r.unionability, r.table_name))
        else:
            results.sort(key=lambda r: (-r.scores.combined(), r.table_name))
        return results[:top_k] if top_k is not None else results
