"""Dataset discovery over a repository of tables.

This is "Valentine as a Discovery Component" (Section II-B) turned into an
API: a :class:`DatasetRepository` holds candidate tables, and
:class:`DiscoveryEngine` ranks them against a query table by joinability or
unionability using any bundled matcher.

Every discovery query — brute force, index-pruned, or lake-scale — runs
through one shared **prune-then-rerank core**, :func:`prune_then_rerank`:

1. *prune* — the caller supplies candidate table names (the whole repository,
   or an index shortlist) and an injectable ``resolve`` strategy that turns a
   name into a :class:`~repro.data.table.Table` (in-memory lookup, or lazy
   CSV loading);
2. *rerank* — the query table is **prepared exactly once**
   (:meth:`BaseMatcher.prepare <repro.matchers.base.BaseMatcher.prepare>`)
   and streamed through
   :meth:`~repro.matchers.base.BaseMatcher.match_prepared` against every
   resolved candidate, serially or in a process pool.

The parallel rerank is fully parallel end to end: tasks are **batched
name-chunks**, and — when the caller supplies a
:class:`WorkerCandidateSource` — each worker resolves its chunk *itself*,
reading candidate metadata from the (WAL-mode) sketch store and pickled
prepared payloads from the prepared store in one ``IN (...)`` query per
chunk, with a CSV-prepare write-through fallback on cold candidates.
Nothing candidate-sized is ever pickled through the parent.  The scorer and
the prepared query ship to each worker exactly once per query (a worker-side
token cache), so a persistent :class:`RerankPool` can serve many queries
from the same warm workers without re-paying pool spawn or query shipping.

:class:`DiscoveryEngine` and
:class:`~repro.lake.engine.LakeDiscoveryEngine` are thin parameterisations
of this core, so their rankings can never drift apart.
"""

from __future__ import annotations

import csv
import heapq
import itertools
import logging
import math
import multiprocessing
import os
import pickle
import sqlite3
import time
from collections import OrderedDict
from concurrent.futures import FIRST_COMPLETED, Future, ProcessPoolExecutor, wait
from concurrent.futures.process import BrokenProcessPool
from dataclasses import dataclass, field
from typing import Callable, Iterable, Iterator, Optional, Sequence, Union

from repro.data.table import Table
from repro.discovery.cascade import (
    CandidateSignals,
    RerankCascade,
    candidate_signals,
    compute_ranking_bounds,
    order_by_bound,
)
from repro.discovery.prepared import PreparedTableCache
from repro.discovery.relatedness import RelatednessScores, relatedness
from repro.matchers.base import BaseMatcher, MatchResult, PreparedTable
from repro.telemetry import recorder as telemetry

logger = logging.getLogger(__name__)

__all__ = [
    "DatasetRepository",
    "DiscoveryResult",
    "DiscoveryEngine",
    "PairScorer",
    "RerankPool",
    "RerankJob",
    "WorkerCandidateSource",
    "prune_then_rerank",
    "rerank_jobs",
    "fan_out_names",
    "MIN_FAN_OUT",
    "mode_score",
    "sort_discovery_results",
    "DEFAULT_MIN_CANDIDATES",
    "DEFAULT_CANDIDATE_MULTIPLIER",
    "DEFAULT_UNION_THRESHOLD",
]

#: Default shortlist slack for index-pruned discovery: an exact top-k query
#: reranks ``max(DEFAULT_MIN_CANDIDATES, DEFAULT_CANDIDATE_MULTIPLIER * k)``
#: sketch-level candidates so the matcher can repair sketch ranking mistakes.
#: Shared by :meth:`DiscoveryEngine.discover` and
#: :class:`~repro.lake.engine.LakeDiscoveryEngine`.
DEFAULT_MIN_CANDIDATES = 20
DEFAULT_CANDIDATE_MULTIPLIER = 5

#: Default column-score threshold of the unionability measure, shared by
#: :class:`PairScorer` and both discovery engines so the three defaults can
#: never drift apart.
DEFAULT_UNION_THRESHOLD = 0.55


class DatasetRepository:
    """A named collection of candidate tables (an in-memory "data lake").

    Iteration order is deterministic: tables are yielded in insertion order
    (re-adding an existing name keeps its original position).
    """

    def __init__(self, tables: Iterable[Table] = ()) -> None:
        self._tables: dict[str, Table] = {}
        for table in tables:
            self.add(table)

    def add(self, table: Table, overwrite: bool = True) -> None:
        """Register a table under its own name.

        Parameters
        ----------
        table:
            The table to register.
        overwrite:
            When True (default) a table with the same name is silently
            replaced (keeping its position in the iteration order).  When
            False a name collision raises ``ValueError`` instead — use this
            to catch accidental double-registration in lake builds.
        """
        if not overwrite and table.name in self._tables:
            raise ValueError(f"repository already contains a table named {table.name!r}")
        self._tables[table.name] = table

    def remove(self, name: str) -> None:
        """Remove a table; missing names are ignored."""
        self._tables.pop(name, None)

    def get(self, name: str) -> Optional[Table]:
        """Return the table called *name* or ``None``."""
        return self._tables.get(name)

    def __len__(self) -> int:
        return len(self._tables)

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    @property
    def table_names(self) -> list[str]:
        """Names of all registered tables."""
        return list(self._tables)


@dataclass(frozen=True)
class DiscoveryResult:
    """One candidate table scored against the query."""

    table_name: str
    scores: RelatednessScores
    matches: MatchResult

    @property
    def joinability(self) -> float:
        return self.scores.joinability

    @property
    def unionability(self) -> float:
        return self.scores.unionability


def mode_score(result: DiscoveryResult, mode: str) -> float:
    """The scalar a *mode* ranks by — the value the cascade cutoff tracks."""
    if mode == "joinable":
        return result.joinability
    if mode == "unionable":
        return result.unionability
    if mode == "combined":
        return result.scores.combined()
    raise ValueError(f"unknown discovery mode {mode!r}")


class _TopKCutoff:
    """Min-heap of the k best exact mode-scores seen so far.

    Once *k* scores are in, :attr:`value` is the running k-th best: any
    candidate whose admissible bound is **strictly** below it cannot enter
    the top k (its true score would rank strictly below k already-scored
    candidates, regardless of name tie-breaks).  The k-th best of any
    subset of the exact scores is a lower bound of the final k-th best —
    scoring more candidates can only raise it — so a stale cutoff is
    always safe, merely less aggressive.
    """

    __slots__ = ("k", "_heap")

    def __init__(self, k: Optional[int]) -> None:
        self.k = k
        self._heap: list[float] = []

    @property
    def value(self) -> Optional[float]:
        if self.k is not None and len(self._heap) >= self.k:
            return self._heap[0]
        return None

    def observe(self, score: float) -> bool:
        """Fold one exact score in; True when the cutoff value tightened."""
        if self.k is None:
            return False
        before = self.value
        if len(self._heap) < self.k:
            heapq.heappush(self._heap, score)
        elif score > self._heap[0]:
            heapq.heapreplace(self._heap, score)
        else:
            return False
        after = self.value
        return after is not None and (before is None or after > before)


def sort_discovery_results(results: list[DiscoveryResult], mode: str) -> None:
    """Sort *results* in place by the ranking criterion of *mode*.

    Shared by the brute-force and the index-accelerated engines so both
    produce identical orderings (descending score, ties broken by name).
    """
    if mode == "joinable":
        results.sort(key=lambda r: (-r.joinability, r.table_name))
    elif mode == "unionable":
        results.sort(key=lambda r: (-r.unionability, r.table_name))
    elif mode == "combined":
        results.sort(key=lambda r: (-r.scores.combined(), r.table_name))
    else:
        raise ValueError(f"unknown discovery mode {mode!r}")


@dataclass
class PairScorer:
    """Scores one (query, candidate) pair; the shared rerank unit.

    Both discovery engines delegate pair scoring here so their rankings can
    never drift.  The scorer is picklable (matcher configs are plain
    attributes), which is what lets the parallel rerank ship it to worker
    processes through the pool initializer.
    """

    matcher: BaseMatcher
    union_threshold: float = DEFAULT_UNION_THRESHOLD

    def score_prepared(
        self, query: PreparedTable, candidate: Union[Table, PreparedTable]
    ) -> DiscoveryResult:
        """Match a *prepared* query against one candidate table."""
        if self.matcher.prefers_legacy_get_matches():
            # A subclass overrode get_matches below the prepared pipeline
            # (e.g. to post-process scores): honour it rather than silently
            # bypassing the override through match_prepared.
            candidate_table = (
                candidate.table if isinstance(candidate, PreparedTable) else candidate
            )
            matches = self.matcher.get_matches(query.table, candidate_table)
            scores = relatedness(matches, query.table, threshold=self.union_threshold)
            return DiscoveryResult(
                table_name=candidate_table.name, scores=scores, matches=matches
            )
        candidate_prepared = self.matcher._ensure_prepared(candidate)
        matches = self.matcher.match_prepared(query, candidate_prepared)
        scores = relatedness(matches, query.table, threshold=self.union_threshold)
        return DiscoveryResult(
            table_name=candidate_prepared.table.name, scores=scores, matches=matches
        )

    def score_pair(self, query: Table, candidate: Table) -> DiscoveryResult:
        """Match a raw query against one candidate (prepares the query too)."""
        return self.score_prepared(self.matcher.prepare(query), candidate)


@dataclass
class WorkerCandidateSource:
    """A picklable recipe that lets rerank workers resolve candidates themselves.

    Shipped (with each chunk task — it is a couple hundred bytes) to worker
    processes, which open their own per-PID connections to the two WAL
    stores and pull candidate payloads straight from SQLite: the sketch
    store answers ``name -> (build-time content hash, source CSV path)`` in
    one batched query, the prepared store answers ``(fingerprint, name,
    hash) -> pickled PreparedTable`` in another.  A candidate missing from
    the prepared store falls back to reading its CSV and preparing in the
    worker, writing the payload through for the next query (WAL serializes
    the occasional concurrent writer).

    Attributes
    ----------
    sketch_store_path / prepared_store_path:
        File paths of the two stores (in-memory stores cannot cross
        processes, so callers only build a source for file-backed lakes).
    fingerprint:
        The matcher fingerprint candidates are stored under.
    write_through:
        Whether cold candidates prepared in a worker are persisted.
    max_entries / max_bytes:
        Eviction caps the workers' write-through store handles apply —
        mirrored from the parent's store so budgets hold regardless of who
        writes.
    store_hits:
        Filled by :func:`prune_then_rerank` after a parallel rerank: how
        many candidates (summed over all workers) were served straight from
        the prepared store.
    """

    sketch_store_path: str
    prepared_store_path: str
    fingerprint: str
    write_through: bool = True
    max_entries: int = 4096
    max_bytes: Optional[int] = None
    store_hits: int = field(default=0, compare=False)


class RerankPool:
    """A persistent process pool for chunked rerank (and experiment) tasks.

    ``ProcessPoolExecutor`` costs a spawn per pool plus an initializer run
    per worker; paying that on every :meth:`LakeDiscoveryEngine.query
    <repro.lake.engine.LakeDiscoveryEngine.query>` dwarfs the rerank itself
    in a heavy-traffic serving scenario.  A ``RerankPool`` keeps one
    executor alive across queries — workers stay warm, and per-query state
    travels inside the tasks (with a worker-side cache so the query payload
    is unpickled once per worker, not once per chunk).

    The pool is lazy (no processes until the first :meth:`map`) and
    self-healing: a :class:`BrokenProcessPool` (a worker died) discards the
    executor and retries the batch once on a fresh one.

    Workers are **spawned, not forked**: rerank workers open their own
    SQLite connections to the lake's stores, and SQLite database state must
    never cross a ``fork()`` — a forked child inherits the parent
    connections' file descriptors and in-process lock bookkeeping, which
    silently corrupts any connection the child then opens to the same
    files.  Spawn start-up is exactly the cost this pool exists to amortise.
    """

    def __init__(self, max_workers: Optional[int] = None) -> None:
        self.max_workers = max_workers
        #: How many executors this pool has spawned (observability: a
        #: serving loop should see this stay at 1).
        self.spawn_count = 0
        self._executor: Optional[ProcessPoolExecutor] = None

    @property
    def workers(self) -> int:
        """The resolved worker count (used to size task chunks)."""
        return self.max_workers or os.cpu_count() or 1

    def _ensure_executor(self) -> ProcessPoolExecutor:
        if self._executor is None:
            self._executor = ProcessPoolExecutor(
                max_workers=self.max_workers,
                mp_context=multiprocessing.get_context("spawn"),
            )
            self.spawn_count += 1
        return self._executor

    def map(self, fn: Callable, tasks: Sequence) -> list:
        """Run *fn* over *tasks* on the warm workers, in order."""
        tasks = list(tasks)
        try:
            return list(self._ensure_executor().map(fn, tasks))
        except BrokenProcessPool:
            # A worker crashed (OOM, hard kill): heal the pool and give the
            # batch one more chance before surfacing the failure.
            logger.warning(
                "rerank pool broke (a worker died); respawning and retrying the batch"
            )
            telemetry.count("rerank_pool.respawns")
            self.close()
            return list(self._ensure_executor().map(fn, tasks))

    def submit(self, fn: Callable, task: object) -> Future:
        """Submit one task to the warm workers; returns its future.

        The streaming primitive behind the cascade dispatcher: unlike
        :meth:`map`, per-future failures (including ``BrokenProcessPool``)
        surface to the caller, who owns the retry decision for the whole
        streamed batch.
        """
        return self._ensure_executor().submit(fn, task)

    def close(self) -> None:
        """Shut the executor down; the next :meth:`map` spawns a fresh one."""
        if self._executor is not None:
            self._executor.shutdown(wait=True)
            self._executor = None

    def __enter__(self) -> "RerankPool":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()


# --------------------------------------------------------------------- #
# worker-side machinery of the parallel rerank
# --------------------------------------------------------------------- #

#: Tokens distinguishing one query's shipped state from the next, so a
#: persistent pool's workers know when to re-unpickle.
_QUERY_TOKENS = itertools.count()

#: How many queries' shipped state one worker keeps unpickled.  A serving
#: batch interleaves chunks from several concurrent queries on the same
#: warm workers; a single-slot cache would thrash (one unpickle per chunk
#: instead of one per query), so the cache is a small per-worker LRU.
_WORKER_STATE_SLOTS = 8

# Per-worker LRU cache for query state (scorer + prepared query), keyed by
# token: every chunk task carries the pickled state, but a worker unpickles
# each query's state at most once while it stays in the cache.
_WORKER_QUERY_STATES: "OrderedDict[str, tuple[PairScorer, PreparedTable]]" = (
    OrderedDict()
)


def _load_query_state(token: str, blob: bytes) -> tuple[PairScorer, PreparedTable]:
    state = _WORKER_QUERY_STATES.get(token)
    if state is not None:
        _WORKER_QUERY_STATES.move_to_end(token)
        return state
    scorer, query_prepared = pickle.loads(blob)
    _WORKER_QUERY_STATES[token] = (scorer, query_prepared)
    while len(_WORKER_QUERY_STATES) > _WORKER_STATE_SLOTS:
        _WORKER_QUERY_STATES.popitem(last=False)
    return scorer, query_prepared


def _resolve_chunk_in_worker(
    source: WorkerCandidateSource, names: Sequence[str], scorer: PairScorer
) -> tuple[list[Union[Table, PreparedTable]], int]:
    """Resolve one name-chunk inside a worker; returns (candidates, store hits).

    Store connections are opened per *chunk*, never cached for the worker's
    lifetime: when the last lock-holding connection to a WAL database
    closes, SQLite checkpoints and deletes the ``-wal``/``-shm`` files, and
    an idle connection in another process is left frozen on its old mmap —
    it would silently serve a stale snapshot forever.  A fresh open per
    chunk (two ~100µs connects amortised over the whole chunk) always sees
    the latest committed state.

    The imports are lazy because ``repro.lake`` imports this module — a
    top-level import would be circular.
    """
    from repro.data.csv_io import read_csv
    from repro.data.fingerprint import table_content_hash
    from repro.discovery.prepared import PreparedStore
    from repro.lake.store import SketchStore

    # Sketches are touched read-only; the prepared store stays writable for
    # the cold-candidate write-through (with the parent's eviction caps).
    sketch_store = SketchStore(source.sketch_store_path, read_only=True)
    prepared_store = PreparedStore(
        source.prepared_store_path,
        max_entries=source.max_entries,
        max_bytes=source.max_bytes,
    )
    try:
        meta = sketch_store.table_meta(names)
        keys = [(name, meta[name][0]) for name in names if name in meta]
        found = prepared_store.get_many(source.fingerprint, keys)
        resolved: list[Union[Table, PreparedTable]] = []
        hits = 0
        dropped = 0
        for name in names:
            prepared = found.get(name)
            if prepared is not None:
                hits += 1
                resolved.append(prepared)
                continue
            _build_hash, path = meta.get(name, (None, None))
            if path is None:
                dropped += 1
                logger.debug("candidate %r has no stored payload and no CSV; dropped", name)
                continue  # neither stored nor on disk: cannot be ranked
            try:
                with telemetry.span("rerank.csv_read", table=name):
                    table = read_csv(path, name=name)
            except (OSError, ValueError, csv.Error) as exc:
                dropped += 1
                logger.warning("skipping candidate %r: unreadable CSV %s (%s)", name, path, exc)
                continue  # stale store entry (CSV moved/corrupted since build)
            # Mirror the serial provider for CSVs edited since `lake build`:
            # the batch lookup above keys on the build-time hash, but a
            # previous query may already have written this table through
            # under its *current* content — probe that before re-preparing.
            current_hash = table_content_hash(table)
            prepared = prepared_store.get(source.fingerprint, name, current_hash)
            if prepared is None:
                telemetry.count("prepared_store.misses")
                with telemetry.span("rerank.prepare_candidate", table=name):
                    prepared = scorer.matcher.prepare(table)
                if source.write_through:
                    try:
                        prepared_store.put(prepared, content_hash=current_hash)
                    except sqlite3.Error:  # pragma: no cover - lock contention
                        # The payload still serves this query; only reuse is lost.
                        logger.warning(
                            "write-through of %r lost to store contention", name
                        )
                        telemetry.count("prepared_store.write_contention")
            resolved.append(prepared)
        if dropped:
            telemetry.count("discovery.candidates_dropped", dropped)
        return resolved, hits
    finally:
        prepared_store.close()
        sketch_store.close()


#: One parallel-rerank task: ``(query token, pickled (scorer, prepared
#: query), optional worker-side candidate source, chunk, stats epoch)``.
#: The chunk is a list of table *names* when a source is given (workers
#: resolve), else a list of parent-resolved ``Table``/``PreparedTable``
#: candidates.  ``stats epoch`` is ``None`` when telemetry is disabled,
#: else the parent's ``perf_counter`` at submit time — the worker measures
#: queue wait against it (on Linux ``perf_counter`` is ``CLOCK_MONOTONIC``,
#: shared machine-wide, so the cross-process delta is meaningful).
_RerankChunk = tuple[str, bytes, Optional[WorkerCandidateSource], list, Optional[float]]


def _score_chunk(
    task: _RerankChunk,
) -> tuple[list[DiscoveryResult], int]:
    """Resolve (if worker-sourced) and score one chunk; the task's core."""
    token, state_blob, source, items, _epoch = task
    scorer, query_prepared = _load_query_state(token, state_blob)
    store_hits = 0
    if source is not None:
        with telemetry.span("rerank.resolve_chunk", size=len(items)):
            candidates, store_hits = _resolve_chunk_in_worker(source, items, scorer)
    else:
        candidates = items
    with telemetry.span("rerank.score_chunk", size=len(candidates)):
        results = [
            scorer.score_prepared(query_prepared, candidate)
            for candidate in candidates
        ]
    telemetry.count("discovery.candidates_scored", len(results))
    return results, store_hits


def _rerank_worker_chunk(
    task: _RerankChunk,
) -> tuple[list[DiscoveryResult], int, Optional["telemetry.TelemetrySnapshot"]]:
    """One chunk task, run inside a (spawned) rerank worker.

    With telemetry enabled (``stats epoch`` set), the worker records into
    its own :class:`~repro.telemetry.recorder.TelemetryRecorder` and ships
    the picklable snapshot back piggybacked on the result tuple — the
    parent merges every chunk's snapshot into its active recorder, giving
    one coherent cross-process trace per query.
    """
    epoch = task[4]
    if epoch is None:
        results, store_hits = _score_chunk(task)
        return results, store_hits, None
    recorder = telemetry.TelemetryRecorder()
    with telemetry.use(recorder):
        recorder.observe(
            "rerank.queue_wait", max(0.0, time.perf_counter() - epoch)
        )
        with recorder.span("rerank.chunk", size=len(task[3])):
            results, store_hits = _score_chunk(task)
    return results, store_hits, recorder.snapshot()


#: Target chunks per worker: >1 smooths uneven chunk costs, while each chunk
#: still amortises its two SQLite round trips over many candidates.
_CHUNKS_PER_WORKER = 2

#: Minimum candidate count for a parallel rerank to actually fan out;
#: below it the serial path is used.  Callers that prepare state for one
#: path or the other (e.g. the lake engine arming a worker source vs
#: building a serial prefetch) must consult :func:`fan_out_names` with this
#: threshold — the decision is defined once, here.
MIN_FAN_OUT = 2


def fan_out_names(query_name: str, candidate_names: Iterable[str]) -> list[str]:
    """The candidate names a parallel rerank would fan out over.

    The single definition of the "will it fan out" input: the shortlist
    minus the query's own name.  ``len(fan_out_names(...)) >= MIN_FAN_OUT``
    is the exact predicate :func:`prune_then_rerank` applies before taking
    the worker-resolved path.
    """
    return [name for name in candidate_names if name != query_name]


def _chunked(items: Sequence, workers: int) -> Iterator[list]:
    """Lazily yield contiguous chunks of *items* sized for *workers*.

    A generator (not a materialised list of lists) so consumers that
    interleave chunk dispatch with other work — the cascade's streaming
    dispatcher tightening its cutoff between submissions — never pay for
    slicing chunks they may decide not to submit (budget exhausted).
    """
    if not items:
        return
    chunk_count = max(1, min(len(items), workers * _CHUNKS_PER_WORKER))
    size = math.ceil(len(items) / chunk_count)
    for start in range(0, len(items), size):
        yield list(items[start : start + size])


@dataclass
class RerankJob:
    """One query's rerank work, ready to fan out over pool workers.

    The unit of :func:`rerank_jobs`: the picklable pair state (scorer +
    prepared query) plus the items to score — table *names* when ``source``
    is set (workers resolve the chunk themselves from the WAL stores), else
    parent-resolved ``Table``/``PreparedTable`` candidates.
    """

    scorer: PairScorer
    query_prepared: PreparedTable
    items: list
    source: Optional[WorkerCandidateSource] = None


def rerank_jobs(
    jobs: Sequence[RerankJob],
    pool: Optional[RerankPool] = None,
    max_workers: Optional[int] = None,
) -> list[tuple[list[DiscoveryResult], int]]:
    """Fan several queries' reranks out over one pool *together*.

    This is the micro-batching primitive behind ``lake serve``: every job's
    chunk tasks are submitted in a single batch, so the pool's workers stay
    saturated across query boundaries instead of draining between one
    query's last chunk and the next query's first.  Per job the semantics
    match the single-query parallel rerank exactly — its own query token,
    its own state blob (unpickled at most once per worker via the
    worker-side LRU), its own optional :class:`WorkerCandidateSource`.

    Chunk sizing splits the pool across jobs (``workers / len(jobs)``
    chunks-per-worker per job, at least one chunk each) so a batch of B
    queries produces about as many tasks as one query would alone.

    Returns ``(results, store hits)`` per job, in job order; each job's
    ``source.store_hits`` (when it has a source) is also updated.  When a
    real telemetry recorder is active, tasks carry submit timestamps and
    worker snapshots are merged back, exactly as in the single-query path.
    """
    recorder = telemetry.get_recorder()
    workers = pool.workers if pool is not None else (max_workers or os.cpu_count() or 1)
    per_job_workers = max(1, math.ceil(workers / max(1, len(jobs))))
    epoch = time.perf_counter() if recorder.enabled else None
    tasks: list[_RerankChunk] = []
    spans: list[tuple[int, int]] = []
    for job in jobs:
        state_blob = pickle.dumps((job.scorer, job.query_prepared), protocol=4)
        token = f"{os.getpid()}-{next(_QUERY_TOKENS)}"
        start = len(tasks)
        tasks.extend(
            (token, state_blob, job.source, chunk, epoch)
            for chunk in _chunked(job.items, per_job_workers)
        )
        spans.append((start, len(tasks)))
    if pool is not None:
        outcomes = pool.map(_rerank_worker_chunk, tasks)
    else:
        # Transient pool: same spawn start method as RerankPool (workers
        # touching SQLite must not inherit forked connection state).
        with ProcessPoolExecutor(
            max_workers=max_workers,
            mp_context=multiprocessing.get_context("spawn"),
        ) as executor:
            outcomes = list(executor.map(_rerank_worker_chunk, tasks))
    telemetry.count("rerank_pool.chunks", len(tasks))
    if len(jobs) > 1:
        telemetry.count("rerank_pool.batched_jobs", len(jobs))
    per_job: list[tuple[list[DiscoveryResult], int]] = []
    for job, (start, end) in zip(jobs, spans):
        results: list[DiscoveryResult] = []
        store_hits = 0
        for chunk_results, chunk_hits, chunk_snapshot in outcomes[start:end]:
            results.extend(chunk_results)
            store_hits += chunk_hits
            if chunk_snapshot is not None:
                recorder.merge(chunk_snapshot)
        if job.source is not None:
            job.source.store_hits = store_hits
        per_job.append((results, store_hits))
    return per_job


def _parallel_rerank(
    scorer: PairScorer,
    query_prepared: PreparedTable,
    items: list,
    source: Optional[WorkerCandidateSource],
    pool: Optional[RerankPool],
    max_workers: Optional[int],
) -> tuple[list[DiscoveryResult], int]:
    """Fan one rerank out over batched chunks; returns (results, store hits).

    The single-query parameterisation of :func:`rerank_jobs`.
    """
    return rerank_jobs(
        [RerankJob(scorer, query_prepared, items, source)],
        pool=pool,
        max_workers=max_workers,
    )[0]


# --------------------------------------------------------------------- #
# cascaded rerank (stage-2 skip + streaming dispatch)
# --------------------------------------------------------------------- #


@dataclass(frozen=True)
class _CascadeState:
    """Per-chunk cascade parameters, piggybacked on chunk dispatch.

    ``cutoff`` is the parent's top-k cutoff at submit time — stale by the
    time the worker runs, but a stale cutoff only under-skips, never
    mis-skips (see :class:`_TopKCutoff`).  Workers tighten it further with
    their own chunk-local heap.  ``deadline`` is an absolute
    ``perf_counter`` value (``CLOCK_MONOTONIC`` on Linux, shared machine
    wide, the same convention as the chunk stats epoch).
    """

    cutoff: Optional[float]
    k: Optional[int]
    mode: str
    deadline: Optional[float]
    trusted: bool


#: One cascade chunk task: the ``_RerankChunk`` layout with per-name bounds
#: in the items (``[(name, ranking bound), ...]``) and the cascade state
#: appended.  Cascade chunks always carry a worker source — the streaming
#: path only runs worker-resolved.
_CascadeChunk = tuple[
    str, bytes, WorkerCandidateSource, list, Optional[float], _CascadeState
]


def _score_cascade_chunk(
    task: _CascadeChunk,
) -> tuple[list[DiscoveryResult], int, int, int, bool]:
    """Skip, resolve, then score one cascade chunk inside a worker.

    Returns ``(results, store hits, skipped, scored, budget stopped)``.
    Names whose dispatched bound undercuts the cutoff are dropped *before*
    resolution — a skipped candidate costs neither a store read nor a CSV
    load.  Survivors are scored in bound order against the tighter of the
    dispatched cutoff and the worker's own running top-k.
    """
    token, state_blob, source, items, _epoch, cstate = task
    scorer, query_prepared = _load_query_state(token, state_blob)
    cutoff = cstate.cutoff
    skipped = 0
    survivors: list[tuple[str, float]] = []
    if cstate.trusted and cutoff is not None:
        for name, bound in items:
            if bound < cutoff:
                skipped += 1
            else:
                survivors.append((name, bound))
    else:
        survivors = list(items)
    results: list[DiscoveryResult] = []
    store_hits = 0
    scored = 0
    stopped = False
    expired = cstate.deadline is not None and time.perf_counter() >= cstate.deadline
    if survivors and expired:
        stopped = True
    elif survivors:
        with telemetry.span("rerank.resolve_chunk", size=len(survivors)):
            candidates, store_hits = _resolve_chunk_in_worker(
                source, [name for name, _ in survivors], scorer
            )
        bound_of = dict(survivors)
        local = _TopKCutoff(cstate.k)
        with telemetry.span("rerank.score_chunk", size=len(candidates)):
            for candidate in candidates:
                if (
                    cstate.deadline is not None
                    and time.perf_counter() >= cstate.deadline
                ):
                    stopped = True
                    break
                if cstate.trusted:
                    effective = cutoff
                    local_value = local.value
                    if local_value is not None and (
                        effective is None or local_value > effective
                    ):
                        effective = local_value
                    if (
                        effective is not None
                        and bound_of.get(candidate.name, math.inf) < effective
                    ):
                        skipped += 1
                        continue
                result = scorer.score_prepared(query_prepared, candidate)
                results.append(result)
                scored += 1
                local.observe(mode_score(result, cstate.mode))
    telemetry.count("discovery.candidates_scored", scored)
    return results, store_hits, skipped, scored, stopped


def _cascade_worker_chunk(
    task: _CascadeChunk,
) -> tuple[
    list[DiscoveryResult], int, int, int, bool, Optional["telemetry.TelemetrySnapshot"]
]:
    """One cascade chunk task with the usual telemetry piggyback."""
    epoch = task[4]
    if epoch is None:
        return (*_score_cascade_chunk(task), None)
    recorder = telemetry.TelemetryRecorder()
    with telemetry.use(recorder):
        recorder.observe("rerank.queue_wait", max(0.0, time.perf_counter() - epoch))
        with recorder.span("rerank.chunk", size=len(task[3])):
            outcome = _score_cascade_chunk(task)
    return (*outcome, recorder.snapshot())


def _cascade_dispatch(
    scorer: PairScorer,
    query_prepared: PreparedTable,
    ordered_names: Sequence[str],
    bounds: dict[str, float],
    trusted: bool,
    source: WorkerCandidateSource,
    executor: ProcessPoolExecutor,
    workers: int,
    mode: str,
    top_k: Optional[int],
    deadline: Optional[float],
) -> tuple[list[DiscoveryResult], int, int, int, int, bool]:
    """Stream bound-ordered chunks through *executor*, tightening the cutoff.

    Unlike :func:`rerank_jobs`' single batched submission, chunks are kept
    at most ``workers`` in flight and every new submission piggybacks the
    *current* top-k cutoff — the first wave (the best bounds, which seed
    the cutoff) informs every later wave, which is where the skips come
    from.  Returns ``(results, store hits, skipped, scored, cutoff
    updates, budget stopped)``; per-future errors (``BrokenProcessPool``)
    propagate to the caller, which owns the retry.
    """
    recorder = telemetry.get_recorder()
    epoch = time.perf_counter() if recorder.enabled else None
    state_blob = pickle.dumps((scorer, query_prepared), protocol=4)
    token = f"{os.getpid()}-{next(_QUERY_TOKENS)}"
    chunks = _chunked(ordered_names, workers)
    cutoff = _TopKCutoff(top_k)
    results: list[DiscoveryResult] = []
    store_hits = 0
    skipped = 0
    scored = 0
    cutoff_updates = 0
    budget_stopped = False
    submitted = 0
    exhausted = False
    pending: set[Future] = set()

    def submit_one() -> bool:
        nonlocal submitted, exhausted, budget_stopped
        if exhausted:
            return False
        if deadline is not None and time.perf_counter() >= deadline:
            # Budget spent: stop dispatching.  Partial only if work remained.
            if next(chunks, None) is not None:
                budget_stopped = True
            exhausted = True
            return False
        chunk = next(chunks, None)
        if chunk is None:
            exhausted = True
            return False
        items = [(name, bounds.get(name, math.inf)) for name in chunk]
        state = _CascadeState(
            cutoff=cutoff.value,
            k=top_k,
            mode=mode,
            deadline=deadline,
            trusted=trusted,
        )
        pending.add(
            executor.submit(
                _cascade_worker_chunk,
                (token, state_blob, source, items, epoch, state),
            )
        )
        submitted += 1
        return True

    while len(pending) < workers and submit_one():
        pass
    while pending:
        done, pending = wait(pending, return_when=FIRST_COMPLETED)
        for future in done:
            (
                chunk_results,
                chunk_hits,
                chunk_skipped,
                chunk_scored,
                chunk_stopped,
                snapshot,
            ) = future.result()
            results.extend(chunk_results)
            store_hits += chunk_hits
            skipped += chunk_skipped
            scored += chunk_scored
            budget_stopped = budget_stopped or chunk_stopped
            if snapshot is not None:
                recorder.merge(snapshot)
            for result in chunk_results:
                if cutoff.observe(mode_score(result, mode)):
                    cutoff_updates += 1
        while len(pending) < workers and submit_one():
            pass
    telemetry.count("rerank_pool.chunks", submitted)
    return results, store_hits, skipped, scored, cutoff_updates, budget_stopped


def _cascade_parallel_rerank(
    scorer: PairScorer,
    query_prepared: PreparedTable,
    ordered_names: Sequence[str],
    bounds: dict[str, float],
    trusted: bool,
    source: WorkerCandidateSource,
    pool: Optional[RerankPool],
    max_workers: Optional[int],
    mode: str,
    top_k: Optional[int],
    deadline: Optional[float],
) -> tuple[list[DiscoveryResult], int, int, int, int, bool]:
    """The streaming counterpart of :func:`_parallel_rerank` for cascades.

    Mirrors :meth:`RerankPool.map`'s healing: a ``BrokenProcessPool`` on
    the persistent pool respawns it and replays the whole stream once
    (chunk results from the broken attempt are discarded — cascade
    counters must describe exactly one coherent pass).
    """
    workers = pool.workers if pool is not None else (max_workers or os.cpu_count() or 1)
    args = (scorer, query_prepared, ordered_names, bounds, trusted, source)
    if pool is not None:
        try:
            return _cascade_dispatch(
                *args, pool._ensure_executor(), workers, mode, top_k, deadline
            )
        except BrokenProcessPool:
            logger.warning(
                "rerank pool broke mid-cascade; respawning and retrying the stream"
            )
            telemetry.count("rerank_pool.respawns")
            pool.close()
            return _cascade_dispatch(
                *args, pool._ensure_executor(), workers, mode, top_k, deadline
            )
    with ProcessPoolExecutor(
        max_workers=max_workers,
        mp_context=multiprocessing.get_context("spawn"),
    ) as executor:
        return _cascade_dispatch(*args, executor, workers, mode, top_k, deadline)


def _finish_cascade(
    cascade: RerankCascade,
    skipped: int,
    scored: int,
    cutoff_updates: int,
    stopped: bool,
) -> None:
    """Record a finished cascade's outcome on the spec and in telemetry."""
    cascade.skipped = skipped
    cascade.exact_scored = scored
    cascade.cutoff_updates = cutoff_updates
    cascade.partial = stopped
    telemetry.count("rerank.cascade.skipped", skipped)
    telemetry.count("rerank.cascade.exact", scored)
    if cutoff_updates:
        telemetry.count("rerank.cutoff_updates", cutoff_updates)
    if stopped:
        telemetry.count("rerank.budget_stops")


def prune_then_rerank(
    query: Table,
    candidate_names: Iterable[str],
    resolve: Callable[[str], Optional[Union[Table, PreparedTable]]],
    scorer: PairScorer,
    mode: str = "joinable",
    top_k: Optional[int] = None,
    *,
    parallel: bool = False,
    max_workers: Optional[int] = None,
    prepared_cache: Optional[PreparedTableCache] = None,
    worker_source: Optional[WorkerCandidateSource] = None,
    pool: Optional[RerankPool] = None,
    cascade: Optional[RerankCascade] = None,
) -> tuple[list[DiscoveryResult], int]:
    """The discovery core shared by every engine: resolve, rerank, sort.

    Parameters
    ----------
    query:
        The input table (prepared exactly once for the whole rerank).
    candidate_names:
        Pruned candidate table names — the whole repository for brute-force
        search, an LSH shortlist for indexed search.  The query's own name
        is always skipped.
    resolve:
        Injectable resolution strategy turning a name into a table
        (repository lookup, lazy CSV read...) or directly into a
        :class:`PreparedTable` (e.g. the lake engine's persistent
        prepared-candidate store), which skips the prepare stage entirely
        for that candidate.  Returning ``None`` drops the candidate (it
        cannot be ranked without values).
    scorer:
        The pair scorer (matcher + unionability threshold).
    mode:
        ``"joinable"``, ``"unionable"`` or ``"combined"``.
    top_k:
        Optionally truncate the final ranking.
    parallel / max_workers:
        Rerank in a process pool.  Tasks are batched chunks (not
        per-candidate futures); the scorer and the prepared query ship to
        each worker once per query via a worker-side token cache.
    prepared_cache:
        Optional prepared provider — a
        :class:`~repro.discovery.prepared.PreparedTableCache`, a
        :class:`~repro.discovery.prepared.PreparedStore`, or anything else
        with their ``prepare(matcher, table, content_hash=...)`` contract.
        When given, the query's prepared table — and, on the serial path,
        every candidate's — is served from / written through it.
        (Parent-resolved parallel reranks ship whatever ``resolve``
        returned; raw tables are prepared inside the workers, which cannot
        see the parent's provider.)
    worker_source:
        Optional :class:`WorkerCandidateSource`.  When given together with
        ``parallel=True``, ``resolve`` is bypassed entirely: workers
        receive name chunks and pull candidate payloads straight from the
        WAL stores themselves — the fully parallel warm path.  After the
        call, ``worker_source.store_hits`` holds the summed prepared-store
        hits.
    pool:
        Optional persistent :class:`RerankPool`.  Without one, each
        parallel call spawns (and tears down) a transient pool.
    cascade:
        Optional :class:`~repro.discovery.cascade.RerankCascade` arming the
        two-stage cascade: candidates are scored best-bound-first and —
        when the matcher declares its bounds admissible — skipped outright
        once their bound falls below the running top-k cutoff.  An optional
        anytime ``budget_ms`` stops scoring at the deadline and flags the
        spec ``partial``.  Outcome counters are written back onto the spec.
        Without a budget, cascaded rankings are identical to uncascaded
        ones (admissibility guarantees skips cannot evict a true top-k
        member; re-ordering cannot change the final sort).

    Returns
    -------
    ``(ranked results, rerank count)`` where the count is the number of
    candidates the matcher actually scored (the pruning statistic, before
    top-k truncation).
    """
    if mode not in ("joinable", "unionable", "combined"):
        raise ValueError(f"unknown discovery mode {mode!r}")
    if parallel and worker_source is not None:
        names = fan_out_names(query.name, candidate_names)
        if len(names) >= MIN_FAN_OUT:
            with telemetry.span("discovery.prepare_query", table=query.name):
                if prepared_cache is not None:
                    query_prepared = prepared_cache.prepare(scorer.matcher, query)
                else:
                    query_prepared = scorer.matcher.prepare(query)
            if cascade is None:
                with telemetry.span("discovery.score", candidates=len(names)):
                    results, store_hits = _parallel_rerank(
                        scorer, query_prepared, names, worker_source, pool, max_workers
                    )
                worker_source.store_hits = store_hits
                with telemetry.span("discovery.sort"):
                    sort_discovery_results(results, mode)
                truncated = results[:top_k] if top_k is not None else results
                return truncated, len(results)
            with telemetry.span("rerank.cascade", candidates=len(names)):
                bound_of, trusted = compute_ranking_bounds(
                    scorer.matcher,
                    query_prepared,
                    cascade.signals,
                    mode,
                    scorer.union_threshold,
                )
                ordered = order_by_bound(names, bound_of, cascade.signals)
            deadline = cascade.start_deadline()
            with telemetry.span("discovery.score", candidates=len(ordered)):
                (
                    results,
                    store_hits,
                    skipped,
                    scored,
                    cutoff_updates,
                    stopped,
                ) = _cascade_parallel_rerank(
                    scorer,
                    query_prepared,
                    ordered,
                    bound_of,
                    trusted,
                    worker_source,
                    pool,
                    max_workers,
                    mode,
                    top_k,
                    deadline,
                )
            worker_source.store_hits = store_hits
            _finish_cascade(cascade, skipped, scored, cutoff_updates, stopped)
            with telemetry.span("discovery.sort"):
                sort_discovery_results(results, mode)
            truncated = results[:top_k] if top_k is not None else results
            return truncated, scored
        candidate_names = names
    if cascade is not None:
        # Streamed cascade without worker-side resolution.  This also covers
        # ``parallel=True`` with a parent-side resolver: the cutoff needs
        # exact-score feedback between candidates, and without a worker
        # source every candidate payload would ship to the pool anyway.
        with telemetry.span("discovery.prepare_query", table=query.name):
            if prepared_cache is not None:
                query_prepared = prepared_cache.prepare(scorer.matcher, query)
            else:
                query_prepared = scorer.matcher.prepare(query)
        with telemetry.span("rerank.cascade", candidates=len(cascade.signals)):
            bound_of, trusted = compute_ranking_bounds(
                scorer.matcher,
                query_prepared,
                cascade.signals,
                mode,
                scorer.union_threshold,
            )
            names = [name for name in candidate_names if name != query.name]
            names = order_by_bound(names, bound_of, cascade.signals)
        deadline = cascade.start_deadline()
        cutoff = _TopKCutoff(top_k)
        cache_candidates = (
            prepared_cache is not None
            and not scorer.matcher.prefers_legacy_get_matches()
        )
        results = []
        dropped = skipped = scored = cutoff_updates = 0
        stopped = False
        with telemetry.span("discovery.score", candidates=len(names)):
            for name in names:
                if deadline is not None and time.perf_counter() >= deadline:
                    stopped = True
                    break
                if (
                    trusted
                    and cutoff.value is not None
                    and bound_of.get(name, math.inf) < cutoff.value
                ):
                    skipped += 1
                    continue
                candidate = resolve(name)
                if candidate is None:
                    dropped += 1
                    continue
                if cache_candidates and not isinstance(candidate, PreparedTable):
                    candidate = prepared_cache.prepare(scorer.matcher, candidate)
                result = scorer.score_prepared(query_prepared, candidate)
                results.append(result)
                scored += 1
                if cutoff.observe(mode_score(result, mode)):
                    cutoff_updates += 1
        if dropped:
            telemetry.count("discovery.candidates_dropped", dropped)
            logger.debug("%d shortlisted candidates could not be resolved", dropped)
        telemetry.count("discovery.candidates_scored", scored)
        _finish_cascade(cascade, skipped, scored, cutoff_updates, stopped)
        with telemetry.span("discovery.sort"):
            sort_discovery_results(results, mode)
        truncated = results[:top_k] if top_k is not None else results
        return truncated, scored
    candidates: list[Union[Table, PreparedTable]] = []
    dropped = 0
    with telemetry.span("discovery.resolve"):
        for name in candidate_names:
            if name == query.name:
                continue
            table = resolve(name)
            if table is not None:
                candidates.append(table)
            else:
                dropped += 1
    if dropped:
        telemetry.count("discovery.candidates_dropped", dropped)
        logger.debug("%d shortlisted candidates could not be resolved", dropped)
    with telemetry.span("discovery.prepare_query", table=query.name):
        if prepared_cache is not None:
            query_prepared = prepared_cache.prepare(scorer.matcher, query)
        else:
            query_prepared = scorer.matcher.prepare(query)
    if parallel and len(candidates) > 1:
        # Parent-resolved parallel path (in-memory repositories / stores):
        # candidates the resolver delivered as PreparedTable ship their
        # payload to the worker; raw tables are prepared in-worker.
        with telemetry.span("discovery.score", candidates=len(candidates)):
            results, _ = _parallel_rerank(
                scorer, query_prepared, candidates, None, pool, max_workers
            )
    else:
        # Candidate-side caching only pays off when the matcher actually
        # consumes prepared payloads; a legacy get_matches override discards
        # them, so skip the per-candidate content hashing for those.
        # Candidates resolved straight to a PreparedTable bypass the cache —
        # they already are the thing the cache would produce.
        cache_candidates = (
            prepared_cache is not None
            and not scorer.matcher.prefers_legacy_get_matches()
        )
        with telemetry.span("discovery.score", candidates=len(candidates)):
            results = [
                scorer.score_prepared(
                    query_prepared,
                    prepared_cache.prepare(scorer.matcher, candidate)
                    if cache_candidates and not isinstance(candidate, PreparedTable)
                    else candidate,
                )
                for candidate in candidates
            ]
        telemetry.count("discovery.candidates_scored", len(results))
    with telemetry.span("discovery.sort"):
        sort_discovery_results(results, mode)
    truncated = results[:top_k] if top_k is not None else results
    return truncated, len(candidates)


@dataclass
class DiscoveryEngine:
    """Ranks repository tables against a query table using a column matcher.

    Attributes
    ----------
    matcher:
        Any :class:`~repro.matchers.base.BaseMatcher`.
    union_threshold:
        Column-score threshold used by the unionability measure.
    prepared_cache:
        Optional :class:`~repro.discovery.prepared.PreparedTableCache`
        reusing prepared query tables across :meth:`discover` calls.
    """

    matcher: BaseMatcher
    union_threshold: float = DEFAULT_UNION_THRESHOLD
    prepared_cache: Optional[PreparedTableCache] = None
    #: The :class:`~repro.discovery.cascade.RerankCascade` spec of the last
    #: :meth:`discover` call (outcome counters filled in), or ``None`` when
    #: the cascade was off — the brute-force counterpart of the lake
    #: engine's ``last_query_stats`` cascade fields.
    last_cascade: Optional[RerankCascade] = field(default=None, repr=False, init=False)

    def _scorer(self) -> PairScorer:
        return PairScorer(matcher=self.matcher, union_threshold=self.union_threshold)

    def score_pair(self, query: Table, candidate: Table) -> DiscoveryResult:
        """Match *query* against one *candidate* and derive table-level scores."""
        return self._scorer().score_pair(query, candidate)

    def discover(
        self,
        query: Table,
        repository: DatasetRepository,
        mode: str = "joinable",
        top_k: Optional[int] = None,
        index: Optional[object] = None,
        candidate_limit: Optional[int] = None,
        parallel: bool = False,
        max_workers: Optional[int] = None,
        cascade: bool = False,
        budget_ms: Optional[float] = None,
    ) -> list[DiscoveryResult]:
        """Rank repository tables against *query*.

        Parameters
        ----------
        query:
            The input table.
        repository:
            Candidate tables.
        mode:
            ``"joinable"`` (rank by joinability), ``"unionable"`` (rank by
            unionability) or ``"combined"``.
        top_k:
            Optionally truncate the ranking.
        index:
            Optional fast path: any object with a
            ``shortlist(query, limit) -> list[str]`` method (e.g. a
            :class:`~repro.lake.index.LakeIndex`).  When given, only the
            shortlisted tables are matched instead of the whole repository —
            O(candidates) instead of O(lake).
        candidate_limit:
            Shortlist size for the fast path; defaults to
            ``max(DEFAULT_MIN_CANDIDATES, DEFAULT_CANDIDATE_MULTIPLIER *
            top_k)`` so the exact matcher has slack to repair sketch-level
            ranking mistakes (unbounded when neither is set).
        parallel / max_workers:
            Rerank candidates in a process pool (workers receive the
            prepared query once each).
        cascade / budget_ms:
            Arm the two-stage rerank cascade and/or an anytime budget, with
            the same semantics as :meth:`LakeDiscoveryEngine.query
            <repro.lake.engine.LakeDiscoveryEngine.query>`.  With no
            persistent sketch store, stage-1 signals are sketched from the
            repository on the fly (cheap relative to the matchers the
            cascade exists to skip).  The spec — outcome counters included —
            is left on :attr:`last_cascade`.
        """
        if index is not None:
            limit = candidate_limit
            if limit is None and top_k is not None:
                limit = max(
                    DEFAULT_MIN_CANDIDATES, DEFAULT_CANDIDATE_MULTIPLIER * top_k
                )
            names: Iterable[str] = index.shortlist(query, limit)
        else:
            names = repository.table_names
        spec: Optional[RerankCascade] = None
        if cascade or budget_ms is not None:
            names = list(names)
            signals: dict[str, CandidateSignals] = {}
            if cascade:
                # Imported lazily: repro.lake imports this module at package
                # import time (cycle guard); by the time a query runs, both
                # sides are fully initialised.
                from repro.lake.profiles import SketchConfig, sketch_table

                config = SketchConfig()
                query_sketch = sketch_table(query, config, content_hash="")
                for name in names:
                    if name == query.name:
                        continue
                    table = repository.get(name)
                    if table is None or not table.columns:
                        continue
                    candidate = sketch_table(table, config, content_hash="")
                    signals[name] = candidate_signals(
                        query_sketch, candidate.columns, seed=config.seed
                    )
            spec = RerankCascade(signals=signals, budget_ms=budget_ms)
        self.last_cascade = spec
        results, _ = prune_then_rerank(
            query,
            names,
            repository.get,
            self._scorer(),
            mode=mode,
            top_k=top_k,
            parallel=parallel,
            max_workers=max_workers,
            prepared_cache=self.prepared_cache,
            cascade=spec,
        )
        return results
