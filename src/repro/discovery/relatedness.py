"""Table-level relatedness scores built on top of column matchers.

Section II-B of the paper describes how dataset discovery systems consume a
schema matcher: they need column-pair similarities and rankings in order to
decide "the degree to which two tables can be unioned or joined".  This
module provides those table-level derivations:

* :func:`joinability` — strength of the best column correspondence, i.e. how
  confident we are that a join key exists;
* :func:`unionability` — fraction of the query table's columns that find a
  sufficiently strong partner, i.e. how close the pair is to being
  union-compatible;
* :class:`RelatednessScores` bundling both.

They operate on :class:`~repro.matchers.base.MatchResult` rankings, so any of
the bundled matching methods (or an ensemble) can be plugged in.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.data.table import Table
from repro.matchers.base import MatchResult

__all__ = ["RelatednessScores", "joinability", "unionability", "relatedness"]


@dataclass(frozen=True)
class RelatednessScores:
    """Joinability and unionability of one (query, candidate) table pair."""

    joinability: float
    unionability: float
    best_pair: tuple[str, str] | None

    def combined(self, join_weight: float = 0.5) -> float:
        """Weighted combination used for single-score rankings."""
        return join_weight * self.joinability + (1.0 - join_weight) * self.unionability


def joinability(result: MatchResult) -> float:
    """Joinability: the score of the strongest column correspondence.

    A high value means at least one column pair is very likely to be a join
    key (value overlap / semantic equivalence), regardless of the rest of the
    schema.
    """
    return result[0].score if len(result) else 0.0


def unionability(result: MatchResult, query: Table, threshold: float = 0.55) -> float:
    """Unionability: fraction of query columns with a partner above *threshold*.

    Union compatibility requires a 1-1 mapping over *all* attributes
    (Section III-A), so the score is normalised by the query's column count.
    The 1-1 constraint is respected by greedily consuming the ranking.
    """
    if query.num_columns == 0:
        return 0.0
    one_to_one = result.one_to_one()
    strong = sum(1 for match in one_to_one if match.score >= threshold)
    return min(1.0, strong / query.num_columns)


def relatedness(result: MatchResult, query: Table, threshold: float = 0.55) -> RelatednessScores:
    """Compute both table-level scores from one ranking."""
    best = result[0].as_pair() if len(result) else None
    return RelatednessScores(
        joinability=joinability(result),
        unionability=unionability(result, query, threshold=threshold),
        best_pair=best,
    )
