"""Dataset discovery layer: table-level relatedness, repository search, feedback."""

from repro.discovery.feedback import FeedbackDecision, FeedbackSession
from repro.discovery.prepared import (
    PREPARED_PAYLOAD_FORMAT,
    PreparedStore,
    PreparedTableCache,
)
from repro.discovery.relatedness import RelatednessScores, joinability, relatedness, unionability
from repro.discovery.search import (
    DatasetRepository,
    DiscoveryEngine,
    DiscoveryResult,
    PairScorer,
    RerankPool,
    WorkerCandidateSource,
    prune_then_rerank,
)

__all__ = [
    "RelatednessScores",
    "joinability",
    "unionability",
    "relatedness",
    "DatasetRepository",
    "DiscoveryEngine",
    "DiscoveryResult",
    "PairScorer",
    "RerankPool",
    "WorkerCandidateSource",
    "PreparedTableCache",
    "PreparedStore",
    "PREPARED_PAYLOAD_FORMAT",
    "prune_then_rerank",
    "FeedbackDecision",
    "FeedbackSession",
]
