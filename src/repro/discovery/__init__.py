"""Dataset discovery layer: table-level relatedness, repository search, feedback."""

from repro.discovery.feedback import FeedbackDecision, FeedbackSession
from repro.discovery.relatedness import RelatednessScores, joinability, relatedness, unionability
from repro.discovery.search import DatasetRepository, DiscoveryEngine, DiscoveryResult

__all__ = [
    "RelatednessScores",
    "joinability",
    "unionability",
    "relatedness",
    "DatasetRepository",
    "DiscoveryEngine",
    "DiscoveryResult",
    "FeedbackDecision",
    "FeedbackSession",
]
