"""Prepared-table reuse: an in-process LRU cache and a persistent store.

:meth:`BaseMatcher.prepare <repro.matchers.base.BaseMatcher.prepare>` is the
per-table half of matching — tokenised names, value sets, sketches, schema
trees.  Within one discovery query the engines already prepare the query
exactly once; the two classes here extend the amortisation further:

* :class:`PreparedTableCache` — a bounded in-memory LRU.  Repository tables
  that appear in many shortlists, or a dashboard that re-runs similar
  queries, hit the cache instead of re-preparing.
* :class:`PreparedStore` — the same mapping persisted to SQLite, so a *warm*
  lake query reranks without preparing any candidate at all, across process
  restarts.  :class:`~repro.lake.engine.LakeDiscoveryEngine` keeps one next
  to its sketch store and serves shortlisted candidates straight from it.

Entries are keyed by ``(matcher fingerprint, table name, content hash)``:

* the **matcher fingerprint** (:meth:`BaseMatcher.fingerprint`) ties a
  payload to the matcher class and every configuration parameter its
  ``prepare`` consumes — changing a prepare-relevant parameter yields a
  different fingerprint and a cache miss (parameters that only shape the
  pairwise stage are excluded via
  :meth:`BaseMatcher.prepare_parameters`, so sweeping them reuses entries);
* the **table name** keeps same-content tables distinct — lakes routinely
  hold identical copies under different names, and match results carry the
  table name in their column refs;
* the **content hash** (:func:`repro.data.fingerprint.table_content_hash`)
  ties the entry to the table's full schema + cell content, so mutated
  tables can never serve stale artifacts.

Persistence format: payloads are pickled :class:`PreparedTable` bundles
(table included, so a warm rerank does not even re-read the CSV).  Every row
records the payload format version; opening a store whose schema version is
newer than this code raises, while rows with a *different payload format*
(or rows that fail to unpickle) are treated as misses and replaced — the
versioning policy is "re-prepare on any format change", never "best-effort
decode".  Bump ``PREPARED_PAYLOAD_FORMAT`` whenever the pickled layout of
``PreparedTable`` or any matcher payload changes shape.

Concurrency: file-backed stores run in SQLite WAL journal mode, so any
number of processes can *read* payloads while one writes — the parallel
rerank opens one connection per worker process
(:meth:`PreparedStore._ensure_connection` is keyed by PID) and pulls
shortlist payloads straight from disk with :meth:`PreparedStore.get_many`,
with zero pickling through the parent.  Occasional concurrent write-through
from workers serializes on SQLite's write lock (a generous busy timeout is
set on every connection).  WAL requires a filesystem with working POSIX
locks and shared memory — keep stores on a local disk, not NFS.
"""

from __future__ import annotations

import logging
import pickle
import sqlite3
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Iterator, Optional, Sequence, Union

from repro.data.fingerprint import table_content_hash
from repro.data.sqlite_store import _MAX_IN_VARS, PerProcessSqliteStore
from repro.data.table import Table
from repro.matchers.base import BaseMatcher, PreparedTable
from repro.telemetry import recorder as telemetry

logger = logging.getLogger(__name__)

__all__ = ["PreparedTableCache", "PreparedStore", "PREPARED_PAYLOAD_FORMAT"]

#: Version of the pickled payload layout.  Readers only trust rows carrying
#: exactly this format; anything else is re-prepared and overwritten.
PREPARED_PAYLOAD_FORMAT = 1

#: Pickle protocol used for stored payloads.  Pinned (not HIGHEST_PROTOCOL)
#: so stores written by a newer Python remain readable by older ones.
_PICKLE_PROTOCOL = 4

_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS prepared (
    matcher_fingerprint TEXT NOT NULL,
    table_name TEXT NOT NULL,
    content_hash TEXT NOT NULL,
    payload_format INTEGER NOT NULL,
    payload BLOB NOT NULL,
    last_used INTEGER NOT NULL,
    PRIMARY KEY (matcher_fingerprint, table_name, content_hash)
);
CREATE INDEX IF NOT EXISTS prepared_lru ON prepared (last_used);
"""


@dataclass
class PreparedTableCache:
    """Bounded LRU cache of :class:`PreparedTable` bundles.

    Attributes
    ----------
    max_entries:
        Maximum number of prepared tables kept (least recently used entries
        are evicted first).  Payload sizes vary wildly across matchers, so
        the bound is on entry count, not bytes.
    backing:
        Optional second tier consulted on a miss — anything with the same
        ``prepare(matcher, table, content_hash=...)`` contract, typically a
        :class:`PreparedStore`.  Entries fetched (or computed) by the
        backing tier are promoted into this in-memory cache.
    """

    max_entries: int = 128
    backing: Optional["PreparedStore"] = None
    hits: int = field(default=0, init=False)
    misses: int = field(default=0, init=False)
    _entries: "OrderedDict[tuple[str, str, str], PreparedTable]" = field(
        default_factory=OrderedDict, repr=False, init=False
    )

    def __post_init__(self) -> None:
        if self.max_entries <= 0:
            raise ValueError("max_entries must be positive")

    def prepare(
        self,
        matcher: BaseMatcher,
        table: Table,
        content_hash: Optional[str] = None,
    ) -> PreparedTable:
        """Return ``matcher.prepare(table)``, served from cache when possible."""
        if content_hash is None:
            content_hash = table_content_hash(table)
        key = (matcher.fingerprint(), table.name, content_hash)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            telemetry.count("prepared_cache.hits")
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        telemetry.count("prepared_cache.misses")
        if self.backing is not None:
            prepared = self.backing.prepare(matcher, table, content_hash=content_hash)
        else:
            prepared = matcher.prepare(table)
        self._entries[key] = prepared
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
            telemetry.count("prepared_cache.evictions")
        return prepared

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of :meth:`prepare` calls served from cache (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PreparedStore(PerProcessSqliteStore):
    """A persistent, bounded collection of prepared tables (SQLite-backed).

    The on-disk half of prepared-table reuse: payloads survive process
    restarts, so a warm :meth:`LakeDiscoveryEngine.query
    <repro.lake.engine.LakeDiscoveryEngine.query>` reranks its shortlist
    without preparing — or even loading — any candidate table.

    Parameters
    ----------
    path:
        SQLite database path; ``":memory:"`` gives an ephemeral store.
        Conventionally ``<sketch store path>.prepared``, next to the lake's
        sketch store.
    max_entries:
        LRU size cap.  Prepared payloads embed their table, so the cap
        bounds disk usage; least-recently-*used* rows are evicted when an
        insert overflows it.
    max_bytes:
        Optional byte budget on the summed pickled payload sizes
        (``length(payload)`` per row).  When an insert overflows it,
        least-recently-used rows are evicted until the total fits again;
        the row just inserted is never its own victim, so a single payload
        larger than the budget is kept (and everything else evicted).
        ``max_entries`` stays as a secondary cap — whichever bound is hit
        first evicts.
    read_only:
        Open an *existing* store for reading only (SQLite ``mode=ro``).
        Reads work as usual but nothing is ever written — not even LRU
        recency, which is deliberately dropped on this path.  Safe for any
        number of concurrent reader processes over a WAL store.
    """

    _STORE_KIND = "prepared store"
    _REQUIRED_TABLES = frozenset({"meta", "prepared"})
    _SCHEMA_SCRIPT = _SCHEMA

    def __init__(
        self,
        path: Union[str, Path] = ":memory:",
        max_entries: int = 4096,
        max_bytes: Optional[int] = None,
        read_only: bool = False,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        if max_bytes is not None and max_bytes <= 0:
            raise ValueError("max_bytes must be positive (or None for unbounded)")
        self.max_entries = max_entries
        self.max_bytes = max_bytes
        self.hits = 0
        self.misses = 0
        # LRU bookkeeping is deferred: hits record their key here and the
        # batch is flushed in one transaction (on write, threshold or close)
        # so the warm read path never pays a per-get commit.
        self._pending_touches: "OrderedDict[tuple[str, str, str], None]" = OrderedDict()
        connection = self._init_connections(path, read_only)
        stored = self._read_meta("schema_version")
        if stored is None:
            if self.read_only:
                self.close()
                raise ValueError(
                    f"cannot open {self.path!r} read-only: not an initialised "
                    "prepared store"
                )
            with connection:
                self._write_meta("schema_version", str(_SCHEMA_VERSION))
                self._write_meta("payload_format", str(PREPARED_PAYLOAD_FORMAT))
                self._write_meta("clock", "0")
        elif int(stored) != _SCHEMA_VERSION:
            self.close()
            raise ValueError(
                f"prepared store at {self.path!r} has schema version {stored}, "
                f"this code reads version {_SCHEMA_VERSION}"
            )

    # ------------------------------------------------------------------ #
    # lifecycle (connection machinery inherited from PerProcessSqliteStore)
    # ------------------------------------------------------------------ #
    def _close_hook(self, connection: sqlite3.Connection) -> None:
        """Flush deferred recency before :meth:`close` drops the connection,
        so LRU order survives process exit."""
        self._flush_touches(connection)

    def __enter__(self) -> "PreparedStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # meta helpers
    # ------------------------------------------------------------------ #
    def _read_meta(self, key: str) -> Optional[str]:
        row = self._connection.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row else None

    def _write_meta(self, key: str, value: str) -> None:
        self._connection.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, value),
        )

    def _tick(self) -> int:
        """Advance and return the monotone LRU clock (wall-clock free).

        The increment is a single UPDATE, so it runs under SQLite's write
        lock *before* the value is read back: concurrent worker
        write-throughs serialize on the lock and can never mint duplicate
        ticks (a read-modify-write in Python would race across processes).
        """
        connection = self._connection
        connection.execute(
            "UPDATE meta SET value = CAST(value AS INTEGER) + 1 WHERE key = 'clock'"
        )
        return int(self._read_meta("clock") or 0)

    #: Deferred LRU touches are flushed once this many keys accumulate.
    _TOUCH_FLUSH_THRESHOLD = 1024

    def _flush_touches(self, connection: Optional[sqlite3.Connection] = None) -> None:
        """Write the deferred ``last_used`` updates in one transaction.

        Runs on every write, on the accumulation threshold and on
        :meth:`close` — the close-time flush is what makes LRU order survive
        process exit (a batch of warm hits with no subsequent write would
        otherwise be forgotten, and the next eviction would victimise the
        wrong rows).
        """
        if not self._pending_touches or self.read_only:
            self._pending_touches.clear()
            return
        if connection is None:
            connection = self._connection
        with connection:
            for fingerprint, table_name, content_hash in self._pending_touches:
                connection.execute(
                    "UPDATE prepared SET last_used = ? WHERE matcher_fingerprint = ? "
                    "AND table_name = ? AND content_hash = ?",
                    (self._tick(), fingerprint, table_name, content_hash),
                )
        self._pending_touches.clear()

    def _record_touch(self, key: tuple[str, str, str]) -> None:
        """Queue one LRU recency update (dropped entirely on read-only stores)."""
        if self.read_only:
            return
        self._pending_touches.pop(key, None)
        self._pending_touches[key] = None
        if len(self._pending_touches) >= self._TOUCH_FLUSH_THRESHOLD:
            self._flush_touches()

    # ------------------------------------------------------------------ #
    # core operations
    # ------------------------------------------------------------------ #
    def _decode(
        self, payload_format: int, blob: bytes, fingerprint: str, table_name: str
    ) -> Optional[PreparedTable]:
        """Decode one stored row, or ``None`` when it must not be trusted."""
        if payload_format != PREPARED_PAYLOAD_FORMAT:
            return None
        try:
            decoded = pickle.loads(blob)
        except Exception:
            decoded = None
        if (
            isinstance(decoded, PreparedTable)
            and decoded.fingerprint == fingerprint
            and decoded.table.name == table_name
        ):
            return decoded
        return None

    def _discard(self, fingerprint: str, table_name: str, content_hash: str) -> None:
        """Delete one untrustworthy row (no-op on read-only stores)."""
        logger.warning(
            "discarding corrupt or foreign prepared row (table=%r, fingerprint=%s...)",
            table_name,
            fingerprint[:12],
        )
        telemetry.count("prepared_store.discarded_rows")
        if self.read_only:
            return
        with self._connection:
            self._connection.execute(
                "DELETE FROM prepared WHERE matcher_fingerprint = ? "
                "AND table_name = ? AND content_hash = ?",
                (fingerprint, table_name, content_hash),
            )

    def get(
        self, fingerprint: str, table_name: str, content_hash: str
    ) -> Optional[PreparedTable]:
        """Load the stored :class:`PreparedTable` for a key, or ``None``.

        Rows carrying a foreign payload format, rows that fail to unpickle,
        and rows whose decoded fingerprint does not match are discarded (and
        deleted) rather than trusted — the caller re-prepares.  A successful
        load counts as a hit; probes that find nothing are not counted (the
        eventual :meth:`prepare` records the miss exactly once).
        """
        row = self._connection.execute(
            "SELECT payload_format, payload FROM prepared "
            "WHERE matcher_fingerprint = ? AND table_name = ? AND content_hash = ?",
            (fingerprint, table_name, content_hash),
        ).fetchone()
        if row is None:
            return None
        prepared = self._decode(row[0], row[1], fingerprint, table_name)
        if prepared is None:
            self._discard(fingerprint, table_name, content_hash)
            return None
        self._record_touch((fingerprint, table_name, content_hash))
        self.hits += 1
        telemetry.count("prepared_store.hits")
        telemetry.count("prepared_store.bytes_read", len(row[1]))
        return prepared

    def get_raw(
        self, fingerprint: str, table_name: str, content_hash: str
    ) -> Optional[bytes]:
        """The pickled payload blob for a key, skipping the unpickle.

        For callers that ship payloads elsewhere (another process decodes):
        only the payload format is checked — no unpickling, no fingerprint
        validation, no deletion of bad rows.  Counts as a hit and records
        recency like :meth:`get`.
        """
        row = self._connection.execute(
            "SELECT payload_format, payload FROM prepared "
            "WHERE matcher_fingerprint = ? AND table_name = ? AND content_hash = ?",
            (fingerprint, table_name, content_hash),
        ).fetchone()
        if row is None or row[0] != PREPARED_PAYLOAD_FORMAT:
            return None
        self._record_touch((fingerprint, table_name, content_hash))
        self.hits += 1
        telemetry.count("prepared_store.hits")
        telemetry.count("prepared_store.bytes_read", len(row[1]))
        return row[1]

    def get_many(
        self, fingerprint: str, keys: Sequence[tuple[str, str]]
    ) -> dict[str, PreparedTable]:
        """Batch-load prepared tables: one ``IN (...)`` query per shortlist.

        Parameters
        ----------
        fingerprint:
            The matcher fingerprint all keys share.
        keys:
            ``(table name, content hash)`` pairs, e.g. a discovery
            shortlist against the hashes recorded at lake-build time.

        Returns the found entries as ``{table name: PreparedTable}``;
        missing names are simply absent (the caller falls back to
        CSV-prepare for those).  Validation, hit counting and LRU recency
        match :meth:`get` row for row — only the number of round trips
        changes (one per ~500 names instead of one per name).
        """
        wanted = dict(keys)
        names = list(wanted)
        found: dict[str, PreparedTable] = {}
        for start in range(0, len(names), _MAX_IN_VARS):
            chunk = names[start : start + _MAX_IN_VARS]
            placeholders = ", ".join("?" * len(chunk))
            rows = self._connection.execute(
                "SELECT table_name, content_hash, payload_format, payload "
                f"FROM prepared WHERE matcher_fingerprint = ? "
                f"AND table_name IN ({placeholders})",
                (fingerprint, *chunk),
            ).fetchall()
            for table_name, content_hash, payload_format, blob in rows:
                if content_hash != wanted.get(table_name):
                    continue  # a different build generation; not ours to judge
                prepared = self._decode(payload_format, blob, fingerprint, table_name)
                if prepared is None:
                    self._discard(fingerprint, table_name, content_hash)
                    continue
                found[table_name] = prepared
                self._record_touch((fingerprint, table_name, content_hash))
                self.hits += 1
                telemetry.count("prepared_store.hits")
                telemetry.count("prepared_store.bytes_read", len(blob))
        return found

    def contains_many(
        self, fingerprint: str, keys: Sequence[tuple[str, str]]
    ) -> set[str]:
        """Batch existence probe: the subset of key names present in the store.

        Like ``key in store`` (current payload format only, no decode, no
        LRU touch) but one ``IN (...)`` query per ~500 names.
        """
        wanted = dict(keys)
        names = list(wanted)
        present: set[str] = set()
        for start in range(0, len(names), _MAX_IN_VARS):
            chunk = names[start : start + _MAX_IN_VARS]
            placeholders = ", ".join("?" * len(chunk))
            rows = self._connection.execute(
                "SELECT table_name, content_hash FROM prepared "
                f"WHERE matcher_fingerprint = ? AND payload_format = ? "
                f"AND table_name IN ({placeholders})",
                (fingerprint, PREPARED_PAYLOAD_FORMAT, *chunk),
            ).fetchall()
            present.update(
                name for name, content_hash in rows if content_hash == wanted.get(name)
            )
        return present

    def put(self, prepared: PreparedTable, content_hash: Optional[str] = None) -> None:
        """Persist one prepared table (replacing any entry under its key)."""
        if content_hash is None:
            content_hash = table_content_hash(prepared.table)
        blob = pickle.dumps(prepared, protocol=_PICKLE_PROTOCOL)
        self.put_raw(
            prepared.fingerprint,
            prepared.table.name,
            content_hash,
            PREPARED_PAYLOAD_FORMAT,
            blob,
        )

    def put_raw(
        self,
        fingerprint: str,
        table_name: str,
        content_hash: str,
        payload_format: int,
        blob: bytes,
    ) -> None:
        """Persist one already-pickled payload under an explicit key.

        The import half of snapshot distribution: a puller ships payload
        blobs verbatim from a published artifact into a replica store
        without unpickling them (validation happens lazily on first
        :meth:`get`, exactly as for any other stored row).  LRU recency,
        entry-count and byte-budget eviction behave as for :meth:`put`.
        """
        # Settle deferred hit recency first so LRU eviction below never
        # victimises a row that was just served.
        self._flush_touches()
        connection = self._connection
        with connection:
            connection.execute(
                "INSERT INTO prepared (matcher_fingerprint, table_name, content_hash, "
                "payload_format, payload, last_used) VALUES (?, ?, ?, ?, ?, ?) "
                "ON CONFLICT(matcher_fingerprint, table_name, content_hash) DO UPDATE "
                "SET payload_format = excluded.payload_format, "
                "payload = excluded.payload, last_used = excluded.last_used",
                (
                    fingerprint,
                    table_name,
                    content_hash,
                    payload_format,
                    blob,
                    self._tick(),
                ),
            )
            overflow = len(self) - self.max_entries
            if overflow > 0:
                connection.execute(
                    "DELETE FROM prepared WHERE rowid IN ("
                    "SELECT rowid FROM prepared ORDER BY last_used, rowid LIMIT ?)",
                    (overflow,),
                )
                telemetry.count("prepared_store.evictions", overflow)
            self._evict_over_byte_budget(connection)
        telemetry.count("prepared_store.writes")
        telemetry.count("prepared_store.bytes_written", len(blob))

    def remove_raw(self, fingerprint: str, table_name: str, content_hash: str) -> bool:
        """Delete one stored payload by key; returns whether it existed.

        The removal half of snapshot sync — a pulled snapshot that no
        longer carries a payload retires the local row.
        """
        self._pending_touches.pop((fingerprint, table_name, content_hash), None)
        with self._connection:
            cursor = self._connection.execute(
                "DELETE FROM prepared WHERE matcher_fingerprint = ? "
                "AND table_name = ? AND content_hash = ?",
                (fingerprint, table_name, content_hash),
            )
        return cursor.rowcount > 0

    def iter_raw(
        self, fingerprint: Optional[str] = None
    ) -> Iterator[tuple[str, str, str, int, bytes]]:
        """Iterate stored rows as raw ``(fingerprint, name, hash, format,
        blob)`` tuples — the export hook behind ``lake publish``.

        Only rows carrying the *current* payload format are yielded: a row
        :meth:`get` would refuse to decode must not be replicated to other
        nodes.  No LRU recency is recorded (export is not "use").
        """
        query = (
            "SELECT matcher_fingerprint, table_name, content_hash, "
            "payload_format, payload FROM prepared WHERE payload_format = ?"
        )
        parameters: tuple = (PREPARED_PAYLOAD_FORMAT,)
        if fingerprint is not None:
            query += " AND matcher_fingerprint = ?"
            parameters = (PREPARED_PAYLOAD_FORMAT, fingerprint)
        for row in self._connection.execute(query + " ORDER BY rowid", parameters):
            yield (row[0], row[1], row[2], int(row[3]), row[4])

    def raw_keys(self) -> list[tuple[str, str, str, int]]:
        """Keys of every current-format row (no payloads loaded).

        What snapshot pull reconciles against the published manifest: one
        metadata-only query even for very large stores.
        """
        rows = self._connection.execute(
            "SELECT matcher_fingerprint, table_name, content_hash, payload_format "
            "FROM prepared WHERE payload_format = ? ORDER BY rowid",
            (PREPARED_PAYLOAD_FORMAT,),
        ).fetchall()
        return [(r[0], r[1], r[2], int(r[3])) for r in rows]

    def prune_stale(self, fingerprint: str, current: dict[str, str]) -> int:
        """Drop this matcher's rows whose table is gone or whose stored
        content hash disagrees with *current* ``{table name: hash}``.

        Called by :func:`~repro.lake.build.prepare_lake` with the sketch
        store's build-time hashes: payloads keyed to superseded content can
        never be served again (warm lookups key on the build hash), so they
        are dead weight — and on replicas they would survive table
        deletions forever.  Returns the number of rows deleted.
        """
        rows = self._connection.execute(
            "SELECT table_name, content_hash FROM prepared "
            "WHERE matcher_fingerprint = ?",
            (fingerprint,),
        ).fetchall()
        victims = [
            (table_name, content_hash)
            for table_name, content_hash in rows
            if current.get(table_name) != content_hash
        ]
        if not victims:
            return 0
        with self._connection:
            for table_name, content_hash in victims:
                self._pending_touches.pop(
                    (fingerprint, table_name, content_hash), None
                )
                self._connection.execute(
                    "DELETE FROM prepared WHERE matcher_fingerprint = ? "
                    "AND table_name = ? AND content_hash = ?",
                    (fingerprint, table_name, content_hash),
                )
        telemetry.count("prepared_store.stale_pruned", len(victims))
        return len(victims)

    def _evict_over_byte_budget(self, connection: sqlite3.Connection) -> None:
        """Evict LRU rows until the summed payload size fits ``max_bytes``.

        The most recently used row (the one :meth:`put` just wrote) is never
        evicted, so one oversized payload degrades to "budget holds exactly
        this row" instead of an insert/evict livelock.
        """
        if self.max_bytes is None:
            return
        total = connection.execute(
            "SELECT COALESCE(SUM(LENGTH(payload)), 0) FROM prepared"
        ).fetchone()[0]
        if total <= self.max_bytes:
            return  # one aggregate probe; no per-row scan while under budget
        rows = connection.execute(
            "SELECT LENGTH(payload) FROM prepared ORDER BY last_used, rowid"
        ).fetchall()
        victims = 0
        for (size,) in rows[:-1]:  # LRU first; never the newest row
            if total <= self.max_bytes:
                break
            victims += 1
            total -= size
        if victims:
            # Victims are exactly the first `victims` rows in LRU order, so
            # a LIMIT subquery deletes them without an unbounded IN (...)
            # placeholder list.
            connection.execute(
                "DELETE FROM prepared WHERE rowid IN ("
                "SELECT rowid FROM prepared ORDER BY last_used, rowid LIMIT ?)",
                (victims,),
            )
            telemetry.count("prepared_store.evictions", victims)
            logger.debug(
                "byte budget evicted %d prepared payloads (budget %d bytes)",
                victims,
                self.max_bytes,
            )

    @property
    def total_bytes(self) -> int:
        """Summed size of all stored payload blobs (the ``max_bytes`` metric)."""
        return self._connection.execute(
            "SELECT COALESCE(SUM(LENGTH(payload)), 0) FROM prepared"
        ).fetchone()[0]

    def prepare(
        self,
        matcher: BaseMatcher,
        table: Table,
        content_hash: Optional[str] = None,
    ) -> PreparedTable:
        """Return ``matcher.prepare(table)``, served from disk when possible.

        The write-through provider contract shared with
        :class:`PreparedTableCache`: a miss computes the payload and persists
        it, so one cold rerank warms the store for every later query.
        """
        if content_hash is None:
            content_hash = table_content_hash(table)
        prepared = self.get(matcher.fingerprint(), table.name, content_hash)
        if prepared is not None:
            return prepared
        self.misses += 1
        telemetry.count("prepared_store.misses")
        with telemetry.span("prepared_store.prepare", table=table.name):
            prepared = matcher.prepare(table)
        self.put(prepared, content_hash=content_hash)
        return prepared

    # ------------------------------------------------------------------ #
    # introspection / maintenance
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._connection.execute("SELECT COUNT(*) FROM prepared").fetchone()[0]

    def __contains__(self, key: tuple[str, str, str]) -> bool:
        """Cheap existence probe (no payload decode, no LRU touch).

        Only rows carrying the current payload format count: a row
        :meth:`get` would discard anyway must not report as present.
        """
        fingerprint, table_name, content_hash = key
        row = self._connection.execute(
            "SELECT 1 FROM prepared WHERE matcher_fingerprint = ? "
            "AND table_name = ? AND content_hash = ? AND payload_format = ?",
            (fingerprint, table_name, content_hash, PREPARED_PAYLOAD_FORMAT),
        ).fetchone()
        return row is not None

    def table_names(self, fingerprint: Optional[str] = None) -> list[str]:
        """Distinct table names with stored payloads (optionally per matcher)."""
        if fingerprint is None:
            rows = self._connection.execute(
                "SELECT DISTINCT table_name FROM prepared ORDER BY table_name"
            ).fetchall()
        else:
            rows = self._connection.execute(
                "SELECT DISTINCT table_name FROM prepared "
                "WHERE matcher_fingerprint = ? ORDER BY table_name",
                (fingerprint,),
            ).fetchall()
        return [row[0] for row in rows]

    def stats(self) -> dict:
        """Store-level counters for ``lake stats``: rows, bytes, per matcher.

        ``per_fingerprint`` maps each stored matcher fingerprint to its row
        count and summed payload bytes — the shape of the store on disk.
        The in-process ``hits``/``misses`` (and their ``hit_rate``) describe
        only this handle's session, not the store's lifetime.
        """
        rows = self._connection.execute(
            "SELECT matcher_fingerprint, COUNT(*), COALESCE(SUM(LENGTH(payload)), 0) "
            "FROM prepared GROUP BY matcher_fingerprint ORDER BY matcher_fingerprint"
        ).fetchall()
        return {
            "rows": len(self),
            "total_payload_bytes": self.total_bytes,
            "max_entries": self.max_entries,
            "max_bytes": self.max_bytes,
            "session_hits": self.hits,
            "session_misses": self.misses,
            "session_hit_rate": self.hit_rate,
            "per_fingerprint": {
                fingerprint: {"rows": count, "payload_bytes": nbytes}
                for fingerprint, count, nbytes in rows
            },
        }

    def clear(self) -> None:
        """Drop every stored payload and reset the hit/miss counters."""
        self._pending_touches.clear()
        with self._connection:
            self._connection.execute("DELETE FROM prepared")
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of :meth:`prepare` calls served from disk (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
