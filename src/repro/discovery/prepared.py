"""Prepared-table reuse: an in-process LRU cache and a persistent store.

:meth:`BaseMatcher.prepare <repro.matchers.base.BaseMatcher.prepare>` is the
per-table half of matching — tokenised names, value sets, sketches, schema
trees.  Within one discovery query the engines already prepare the query
exactly once; the two classes here extend the amortisation further:

* :class:`PreparedTableCache` — a bounded in-memory LRU.  Repository tables
  that appear in many shortlists, or a dashboard that re-runs similar
  queries, hit the cache instead of re-preparing.
* :class:`PreparedStore` — the same mapping persisted to SQLite, so a *warm*
  lake query reranks without preparing any candidate at all, across process
  restarts.  :class:`~repro.lake.engine.LakeDiscoveryEngine` keeps one next
  to its sketch store and serves shortlisted candidates straight from it.

Entries are keyed by ``(matcher fingerprint, table name, content hash)``:

* the **matcher fingerprint** (:meth:`BaseMatcher.fingerprint`) ties a
  payload to the matcher class and every configuration parameter its
  ``prepare`` consumes — changing a prepare-relevant parameter yields a
  different fingerprint and a cache miss (parameters that only shape the
  pairwise stage are excluded via
  :meth:`BaseMatcher.prepare_parameters`, so sweeping them reuses entries);
* the **table name** keeps same-content tables distinct — lakes routinely
  hold identical copies under different names, and match results carry the
  table name in their column refs;
* the **content hash** (:func:`repro.data.fingerprint.table_content_hash`)
  ties the entry to the table's full schema + cell content, so mutated
  tables can never serve stale artifacts.

Persistence format: payloads are pickled :class:`PreparedTable` bundles
(table included, so a warm rerank does not even re-read the CSV).  Every row
records the payload format version; opening a store whose schema version is
newer than this code raises, while rows with a *different payload format*
(or rows that fail to unpickle) are treated as misses and replaced — the
versioning policy is "re-prepare on any format change", never "best-effort
decode".  Bump ``PREPARED_PAYLOAD_FORMAT`` whenever the pickled layout of
``PreparedTable`` or any matcher payload changes shape.
"""

from __future__ import annotations

import pickle
import sqlite3
from collections import OrderedDict
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.data.fingerprint import table_content_hash
from repro.data.table import Table
from repro.matchers.base import BaseMatcher, PreparedTable

__all__ = ["PreparedTableCache", "PreparedStore", "PREPARED_PAYLOAD_FORMAT"]

#: Version of the pickled payload layout.  Readers only trust rows carrying
#: exactly this format; anything else is re-prepared and overwritten.
PREPARED_PAYLOAD_FORMAT = 1

#: Pickle protocol used for stored payloads.  Pinned (not HIGHEST_PROTOCOL)
#: so stores written by a newer Python remain readable by older ones.
_PICKLE_PROTOCOL = 4

_SCHEMA_VERSION = 1

_SCHEMA = """
CREATE TABLE IF NOT EXISTS meta (
    key TEXT PRIMARY KEY,
    value TEXT NOT NULL
);
CREATE TABLE IF NOT EXISTS prepared (
    matcher_fingerprint TEXT NOT NULL,
    table_name TEXT NOT NULL,
    content_hash TEXT NOT NULL,
    payload_format INTEGER NOT NULL,
    payload BLOB NOT NULL,
    last_used INTEGER NOT NULL,
    PRIMARY KEY (matcher_fingerprint, table_name, content_hash)
);
CREATE INDEX IF NOT EXISTS prepared_lru ON prepared (last_used);
"""


@dataclass
class PreparedTableCache:
    """Bounded LRU cache of :class:`PreparedTable` bundles.

    Attributes
    ----------
    max_entries:
        Maximum number of prepared tables kept (least recently used entries
        are evicted first).  Payload sizes vary wildly across matchers, so
        the bound is on entry count, not bytes.
    backing:
        Optional second tier consulted on a miss — anything with the same
        ``prepare(matcher, table, content_hash=...)`` contract, typically a
        :class:`PreparedStore`.  Entries fetched (or computed) by the
        backing tier are promoted into this in-memory cache.
    """

    max_entries: int = 128
    backing: Optional["PreparedStore"] = None
    hits: int = field(default=0, init=False)
    misses: int = field(default=0, init=False)
    _entries: "OrderedDict[tuple[str, str, str], PreparedTable]" = field(
        default_factory=OrderedDict, repr=False, init=False
    )

    def __post_init__(self) -> None:
        if self.max_entries <= 0:
            raise ValueError("max_entries must be positive")

    def prepare(
        self,
        matcher: BaseMatcher,
        table: Table,
        content_hash: Optional[str] = None,
    ) -> PreparedTable:
        """Return ``matcher.prepare(table)``, served from cache when possible."""
        if content_hash is None:
            content_hash = table_content_hash(table)
        key = (matcher.fingerprint(), table.name, content_hash)
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        if self.backing is not None:
            prepared = self.backing.prepare(matcher, table, content_hash=content_hash)
        else:
            prepared = matcher.prepare(table)
        self._entries[key] = prepared
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return prepared

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of :meth:`prepare` calls served from cache (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0


class PreparedStore:
    """A persistent, bounded collection of prepared tables (SQLite-backed).

    The on-disk half of prepared-table reuse: payloads survive process
    restarts, so a warm :meth:`LakeDiscoveryEngine.query
    <repro.lake.engine.LakeDiscoveryEngine.query>` reranks its shortlist
    without preparing — or even loading — any candidate table.

    Parameters
    ----------
    path:
        SQLite database path; ``":memory:"`` gives an ephemeral store.
        Conventionally ``<sketch store path>.prepared``, next to the lake's
        sketch store.
    max_entries:
        LRU size cap.  Prepared payloads embed their table, so the cap
        bounds disk usage; least-recently-*used* rows are evicted when an
        insert overflows it.
    """

    def __init__(
        self,
        path: Union[str, Path] = ":memory:",
        max_entries: int = 4096,
    ) -> None:
        if max_entries <= 0:
            raise ValueError("max_entries must be positive")
        self.path = str(path)
        self.max_entries = max_entries
        self.hits = 0
        self.misses = 0
        # LRU bookkeeping is deferred: hits record their key here and the
        # batch is flushed in one transaction (on write, threshold or close)
        # so the warm read path never pays a per-get commit.
        self._pending_touches: "OrderedDict[tuple[str, str, str], None]" = OrderedDict()
        self._connection = None
        try:
            self._connection = sqlite3.connect(self.path)
            existing = {
                row[0]
                for row in self._connection.execute(
                    "SELECT name FROM sqlite_master WHERE type = 'table'"
                )
            }
            if existing and not {"meta", "prepared"} <= existing:
                self._connection.close()
                raise ValueError(
                    f"{self.path!r} is a SQLite database but not a prepared store"
                )
            self._connection.executescript(_SCHEMA)
        except sqlite3.Error as exc:
            if self._connection is not None:
                self._connection.close()
            raise ValueError(
                f"cannot open {self.path!r} as a prepared store (SQLite) file: {exc}"
            ) from exc
        stored = self._read_meta("schema_version")
        if stored is None:
            with self._connection:
                self._write_meta("schema_version", str(_SCHEMA_VERSION))
                self._write_meta("payload_format", str(PREPARED_PAYLOAD_FORMAT))
                self._write_meta("clock", "0")
        elif int(stored) != _SCHEMA_VERSION:
            self._connection.close()
            raise ValueError(
                f"prepared store at {self.path!r} has schema version {stored}, "
                f"this code reads version {_SCHEMA_VERSION}"
            )

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def close(self) -> None:
        """Close the underlying connection (the store object becomes unusable)."""
        try:
            self._flush_touches()
        except sqlite3.Error:  # pragma: no cover - defensive on teardown
            pass
        self._connection.close()

    def __enter__(self) -> "PreparedStore":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # meta helpers
    # ------------------------------------------------------------------ #
    def _read_meta(self, key: str) -> Optional[str]:
        row = self._connection.execute(
            "SELECT value FROM meta WHERE key = ?", (key,)
        ).fetchone()
        return row[0] if row else None

    def _write_meta(self, key: str, value: str) -> None:
        self._connection.execute(
            "INSERT INTO meta (key, value) VALUES (?, ?) "
            "ON CONFLICT(key) DO UPDATE SET value = excluded.value",
            (key, value),
        )

    def _tick(self) -> int:
        """Advance and return the monotone LRU clock (wall-clock free)."""
        clock = int(self._read_meta("clock") or 0) + 1
        self._write_meta("clock", str(clock))
        return clock

    #: Deferred LRU touches are flushed once this many keys accumulate.
    _TOUCH_FLUSH_THRESHOLD = 1024

    def _flush_touches(self) -> None:
        """Write the deferred ``last_used`` updates in one transaction."""
        if not self._pending_touches:
            return
        with self._connection:
            for fingerprint, table_name, content_hash in self._pending_touches:
                self._connection.execute(
                    "UPDATE prepared SET last_used = ? WHERE matcher_fingerprint = ? "
                    "AND table_name = ? AND content_hash = ?",
                    (self._tick(), fingerprint, table_name, content_hash),
                )
        self._pending_touches.clear()

    # ------------------------------------------------------------------ #
    # core operations
    # ------------------------------------------------------------------ #
    def get(
        self, fingerprint: str, table_name: str, content_hash: str
    ) -> Optional[PreparedTable]:
        """Load the stored :class:`PreparedTable` for a key, or ``None``.

        Rows carrying a foreign payload format, rows that fail to unpickle,
        and rows whose decoded fingerprint does not match are discarded (and
        deleted) rather than trusted — the caller re-prepares.  A successful
        load counts as a hit; probes that find nothing are not counted (the
        eventual :meth:`prepare` records the miss exactly once).
        """
        row = self._connection.execute(
            "SELECT payload_format, payload FROM prepared "
            "WHERE matcher_fingerprint = ? AND table_name = ? AND content_hash = ?",
            (fingerprint, table_name, content_hash),
        ).fetchone()
        if row is None:
            return None
        payload_format, blob = row
        prepared: Optional[PreparedTable] = None
        if payload_format == PREPARED_PAYLOAD_FORMAT:
            try:
                decoded = pickle.loads(blob)
            except Exception:
                decoded = None
            if (
                isinstance(decoded, PreparedTable)
                and decoded.fingerprint == fingerprint
                and decoded.table.name == table_name
            ):
                prepared = decoded
        if prepared is None:
            with self._connection:
                self._connection.execute(
                    "DELETE FROM prepared WHERE matcher_fingerprint = ? "
                    "AND table_name = ? AND content_hash = ?",
                    (fingerprint, table_name, content_hash),
                )
            return None
        key = (fingerprint, table_name, content_hash)
        self._pending_touches.pop(key, None)
        self._pending_touches[key] = None
        if len(self._pending_touches) >= self._TOUCH_FLUSH_THRESHOLD:
            self._flush_touches()
        self.hits += 1
        return prepared

    def put(self, prepared: PreparedTable, content_hash: Optional[str] = None) -> None:
        """Persist one prepared table (replacing any entry under its key)."""
        if content_hash is None:
            content_hash = table_content_hash(prepared.table)
        blob = pickle.dumps(prepared, protocol=_PICKLE_PROTOCOL)
        # Settle deferred hit recency first so LRU eviction below never
        # victimises a row that was just served.
        self._flush_touches()
        with self._connection:
            self._connection.execute(
                "INSERT INTO prepared (matcher_fingerprint, table_name, content_hash, "
                "payload_format, payload, last_used) VALUES (?, ?, ?, ?, ?, ?) "
                "ON CONFLICT(matcher_fingerprint, table_name, content_hash) DO UPDATE "
                "SET payload_format = excluded.payload_format, "
                "payload = excluded.payload, last_used = excluded.last_used",
                (
                    prepared.fingerprint,
                    prepared.table.name,
                    content_hash,
                    PREPARED_PAYLOAD_FORMAT,
                    blob,
                    self._tick(),
                ),
            )
            overflow = len(self) - self.max_entries
            if overflow > 0:
                self._connection.execute(
                    "DELETE FROM prepared WHERE rowid IN ("
                    "SELECT rowid FROM prepared ORDER BY last_used LIMIT ?)",
                    (overflow,),
                )

    def prepare(
        self,
        matcher: BaseMatcher,
        table: Table,
        content_hash: Optional[str] = None,
    ) -> PreparedTable:
        """Return ``matcher.prepare(table)``, served from disk when possible.

        The write-through provider contract shared with
        :class:`PreparedTableCache`: a miss computes the payload and persists
        it, so one cold rerank warms the store for every later query.
        """
        if content_hash is None:
            content_hash = table_content_hash(table)
        prepared = self.get(matcher.fingerprint(), table.name, content_hash)
        if prepared is not None:
            return prepared
        self.misses += 1
        prepared = matcher.prepare(table)
        self.put(prepared, content_hash=content_hash)
        return prepared

    # ------------------------------------------------------------------ #
    # introspection / maintenance
    # ------------------------------------------------------------------ #
    def __len__(self) -> int:
        return self._connection.execute("SELECT COUNT(*) FROM prepared").fetchone()[0]

    def __contains__(self, key: tuple[str, str, str]) -> bool:
        """Cheap existence probe (no payload decode, no LRU touch).

        Only rows carrying the current payload format count: a row
        :meth:`get` would discard anyway must not report as present.
        """
        fingerprint, table_name, content_hash = key
        row = self._connection.execute(
            "SELECT 1 FROM prepared WHERE matcher_fingerprint = ? "
            "AND table_name = ? AND content_hash = ? AND payload_format = ?",
            (fingerprint, table_name, content_hash, PREPARED_PAYLOAD_FORMAT),
        ).fetchone()
        return row is not None

    def table_names(self, fingerprint: Optional[str] = None) -> list[str]:
        """Distinct table names with stored payloads (optionally per matcher)."""
        if fingerprint is None:
            rows = self._connection.execute(
                "SELECT DISTINCT table_name FROM prepared ORDER BY table_name"
            ).fetchall()
        else:
            rows = self._connection.execute(
                "SELECT DISTINCT table_name FROM prepared "
                "WHERE matcher_fingerprint = ? ORDER BY table_name",
                (fingerprint,),
            ).fetchall()
        return [row[0] for row in rows]

    def clear(self) -> None:
        """Drop every stored payload and reset the hit/miss counters."""
        self._pending_touches.clear()
        with self._connection:
            self._connection.execute("DELETE FROM prepared")
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of :meth:`prepare` calls served from disk (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
