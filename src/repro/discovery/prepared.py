"""LRU cache of prepared tables for the two-phase matcher protocol.

:meth:`BaseMatcher.prepare <repro.matchers.base.BaseMatcher.prepare>` is the
per-table half of matching — tokenised names, value sets, sketches, schema
trees.  Within one discovery query the engines already prepare the query
exactly once; this cache extends the amortisation *across* queries and —
on serial reranks — across repeated candidates: repository tables that
appear in many shortlists, or a dashboard that re-runs similar queries, hit
the cache instead of re-preparing.  (Parallel reranks prepare candidates in
worker processes, which cannot see this in-process cache; only the query is
served from it there.)

Entries are keyed by ``(matcher fingerprint, table name, content hash)``:

* the **matcher fingerprint** (:meth:`BaseMatcher.fingerprint`) ties a
  payload to the exact matcher class *and configuration* that produced it —
  changing a threshold yields a different fingerprint and a cache miss;
* the **table name** keeps same-content tables distinct — lakes routinely
  hold identical copies under different names, and match results carry the
  table name in their column refs;
* the **content hash** (:func:`repro.data.fingerprint.table_content_hash`)
  ties the entry to the table's full schema + cell content, so mutated
  tables can never serve stale artifacts.
"""

from __future__ import annotations

from collections import OrderedDict
from dataclasses import dataclass, field

from repro.data.fingerprint import table_content_hash
from repro.data.table import Table
from repro.matchers.base import BaseMatcher, PreparedTable

__all__ = ["PreparedTableCache"]


@dataclass
class PreparedTableCache:
    """Bounded LRU cache of :class:`PreparedTable` bundles.

    Attributes
    ----------
    max_entries:
        Maximum number of prepared tables kept (least recently used entries
        are evicted first).  Payload sizes vary wildly across matchers, so
        the bound is on entry count, not bytes.
    """

    max_entries: int = 128
    hits: int = field(default=0, init=False)
    misses: int = field(default=0, init=False)
    _entries: "OrderedDict[tuple[str, str, str], PreparedTable]" = field(
        default_factory=OrderedDict, repr=False, init=False
    )

    def __post_init__(self) -> None:
        if self.max_entries <= 0:
            raise ValueError("max_entries must be positive")

    def prepare(self, matcher: BaseMatcher, table: Table) -> PreparedTable:
        """Return ``matcher.prepare(table)``, served from cache when possible."""
        key = (matcher.fingerprint(), table.name, table_content_hash(table))
        cached = self._entries.get(key)
        if cached is not None:
            self.hits += 1
            self._entries.move_to_end(key)
            return cached
        self.misses += 1
        prepared = matcher.prepare(table)
        self._entries[key] = prepared
        while len(self._entries) > self.max_entries:
            self._entries.popitem(last=False)
        return prepared

    def __len__(self) -> int:
        return len(self._entries)

    def clear(self) -> None:
        """Drop every entry and reset the hit/miss counters."""
        self._entries.clear()
        self.hits = 0
        self.misses = 0

    @property
    def hit_rate(self) -> float:
        """Fraction of :meth:`prepare` calls served from cache (0 when unused)."""
        total = self.hits + self.misses
        return self.hits / total if total else 0.0
