"""Valentine reproduction: evaluating schema matching for dataset discovery.

This package reproduces the system and experiments of *"Valentine: Evaluating
Matching Techniques for Dataset Discovery"* (Koutras et al., ICDE 2021):

* seven schema-matching methods adapted to return ranked column matches
  (:mod:`repro.matchers`);
* the dataset-pair fabricator for the four relatedness scenarios
  (:mod:`repro.fabrication`);
* synthetic stand-ins for the paper's dataset sources (:mod:`repro.datasets`);
* the Recall@ground-truth evaluation metric (:mod:`repro.metrics`);
* the experiment suite — parameter grids, runner, aggregation, sensitivity
  and efficiency analyses (:mod:`repro.experiments`).

Quickstart
----------
>>> from repro import datasets, fabrication, matchers, metrics
>>> seed = datasets.tpcdi_prospect_table(num_rows=200)
>>> fabricator = fabrication.Fabricator()
>>> pair = fabricator.fabricate(seed, scenarios=[fabrication.Scenario.UNIONABLE])[0]
>>> matcher = matchers.ComaSchemaMatcher()
>>> result = matcher.get_matches(pair.source, pair.target)
>>> metrics.recall_at_ground_truth(result.ranked_pairs(), pair.ground_truth)  # doctest: +SKIP
1.0
"""

import logging as _logging

from repro import data, datasets, discovery, distributions, embeddings, experiments, fabrication
from repro import graphmodel, matchers, metrics, ontology, optimize, sketches, telemetry, text, tuning
from repro.data import Column, ColumnRef, DataType, Table
from repro.experiments import (
    ExperimentRunner,
    ResultSet,
    default_parameter_grids,
    run_single_experiment,
)
from repro.fabrication import DatasetPair, Fabricator, NoiseVariant, Scenario
from repro.discovery import DatasetRepository, DiscoveryEngine, FeedbackSession
from repro.matchers import (
    BaseMatcher,
    ComaInstanceMatcher,
    ComaSchemaMatcher,
    CupidMatcher,
    DistributionBasedMatcher,
    EmbDIMatcher,
    EnsembleMatcher,
    JaccardLevenshteinMatcher,
    Match,
    MatchResult,
    SemPropMatcher,
    SimilarityFloodingMatcher,
    available_matchers,
)
from repro.tuning import AutoTuner
from repro.metrics import precision_at_k, recall_at_ground_truth

# Library convention: the package never configures logging for its host
# application.  Attach a NullHandler at the root of the `repro.*` hierarchy
# so instrumented modules can log freely without "no handler" warnings; the
# CLI (and any embedding application) opts into real handlers explicitly.
_logging.getLogger(__name__).addHandler(_logging.NullHandler())

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # substrates / subpackages
    "data",
    "datasets",
    "discovery",
    "distributions",
    "embeddings",
    "experiments",
    "fabrication",
    "graphmodel",
    "matchers",
    "metrics",
    "ontology",
    "optimize",
    "sketches",
    "telemetry",
    "text",
    "tuning",
    # core data model
    "Table",
    "Column",
    "ColumnRef",
    "DataType",
    # matching API
    "BaseMatcher",
    "Match",
    "MatchResult",
    "available_matchers",
    "CupidMatcher",
    "SimilarityFloodingMatcher",
    "ComaSchemaMatcher",
    "ComaInstanceMatcher",
    "DistributionBasedMatcher",
    "SemPropMatcher",
    "EmbDIMatcher",
    "JaccardLevenshteinMatcher",
    "EnsembleMatcher",
    # discovery + tuning
    "DatasetRepository",
    "DiscoveryEngine",
    "FeedbackSession",
    "AutoTuner",
    # fabrication
    "DatasetPair",
    "Fabricator",
    "NoiseVariant",
    "Scenario",
    # metrics + experiments
    "recall_at_ground_truth",
    "precision_at_k",
    "ExperimentRunner",
    "ResultSet",
    "default_parameter_grids",
    "run_single_experiment",
]
