"""Skip-gram word2vec with negative sampling (pure numpy).

EmbDI trains local embeddings with word2vec over random-walk sentences; no
gensim is available offline, so this module implements the skip-gram /
negative-sampling training loop directly.  It is vectorised per centre word
and deterministic given a seed, which keeps the experiment suite reproducible
at laptop scale.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

from repro.embeddings.vocab import Vocabulary

__all__ = ["Word2VecConfig", "Word2VecModel", "train_word2vec"]


@dataclass(frozen=True)
class Word2VecConfig:
    """Hyper-parameters of skip-gram training.

    Defaults follow the EmbDI configuration reported in Table II of the paper
    (window 3, 300 dimensions), scaled for laptop runs via ``epochs``.
    """

    dimensions: int = 300
    window_size: int = 3
    negative_samples: int = 5
    learning_rate: float = 0.025
    min_learning_rate: float = 0.0001
    epochs: int = 3
    min_count: int = 1
    subsample_threshold: float = 1e-3
    seed: int = 13


class Word2VecModel:
    """A trained embedding table with lookup and similarity helpers."""

    def __init__(self, vocabulary: Vocabulary, vectors: np.ndarray) -> None:
        if len(vocabulary) != vectors.shape[0]:
            raise ValueError("vector count does not match vocabulary size")
        self.vocabulary = vocabulary
        self.vectors = vectors

    @property
    def dimensions(self) -> int:
        return int(self.vectors.shape[1]) if self.vectors.size else 0

    def __contains__(self, token: str) -> bool:
        return token in self.vocabulary

    def vector(self, token: str) -> np.ndarray | None:
        """Return the embedding of *token*, or ``None`` if out of vocabulary."""
        token_id = self.vocabulary.id_of(token)
        if token_id is None:
            return None
        return self.vectors[token_id]

    def similarity(self, token_a: str, token_b: str) -> float:
        """Cosine similarity between two tokens (0.0 when either is unknown)."""
        vec_a, vec_b = self.vector(token_a), self.vector(token_b)
        if vec_a is None or vec_b is None:
            return 0.0
        denom = np.linalg.norm(vec_a) * np.linalg.norm(vec_b)
        if denom == 0:
            return 0.0
        return float(np.dot(vec_a, vec_b) / denom)

    def most_similar(self, token: str, top_k: int = 10) -> list[tuple[str, float]]:
        """Return the *top_k* most cosine-similar in-vocabulary tokens."""
        vec = self.vector(token)
        if vec is None or not len(self.vocabulary):
            return []
        norms = np.linalg.norm(self.vectors, axis=1) * (np.linalg.norm(vec) or 1.0)
        norms[norms == 0] = 1.0
        scores = self.vectors @ vec / norms
        order = np.argsort(-scores)
        results = []
        for index in order:
            candidate = self.vocabulary.token_of(int(index))
            if candidate == token:
                continue
            results.append((candidate, float(scores[index])))
            if len(results) >= top_k:
                break
        return results


def _sigmoid(x: np.ndarray) -> np.ndarray:
    return 1.0 / (1.0 + np.exp(-np.clip(x, -10.0, 10.0)))


def train_word2vec(
    sentences: Sequence[Sequence[str]],
    config: Word2VecConfig | None = None,
) -> Word2VecModel:
    """Train skip-gram embeddings with negative sampling over *sentences*.

    Parameters
    ----------
    sentences:
        Token sequences (already tokenised).
    config:
        Training hyper-parameters; defaults to :class:`Word2VecConfig`.
    """
    config = config or Word2VecConfig()
    rng = np.random.default_rng(config.seed)

    vocabulary = Vocabulary(min_count=config.min_count)
    vocabulary.add_corpus(sentences)
    vocabulary.finalize()
    vocab_size = len(vocabulary)
    if vocab_size == 0:
        return Word2VecModel(vocabulary, np.zeros((0, config.dimensions)))

    input_vectors = (rng.random((vocab_size, config.dimensions)) - 0.5) / config.dimensions
    output_vectors = np.zeros((vocab_size, config.dimensions))
    negative_table = vocabulary.unigram_table()
    keep_probabilities = vocabulary.keep_probabilities(config.subsample_threshold)

    encoded_sentences = [vocabulary.encode(sentence) for sentence in sentences]
    encoded_sentences = [s for s in encoded_sentences if len(s) > 1]
    total_steps = max(1, sum(len(s) for s in encoded_sentences) * config.epochs)
    step = 0

    for _ in range(config.epochs):
        for sentence in encoded_sentences:
            kept = [
                token_id
                for token_id in sentence
                if rng.random() < keep_probabilities[token_id]
            ]
            if len(kept) < 2:
                kept = sentence
            for position, centre in enumerate(kept):
                step += 1
                progress = step / total_steps
                learning_rate = max(
                    config.min_learning_rate,
                    config.learning_rate * (1.0 - progress),
                )
                window = rng.integers(1, config.window_size + 1)
                start = max(0, position - window)
                stop = min(len(kept), position + window + 1)
                context_ids = [
                    kept[i] for i in range(start, stop) if i != position
                ]
                if not context_ids:
                    continue
                negatives = rng.choice(
                    vocab_size,
                    size=config.negative_samples * len(context_ids),
                    p=negative_table,
                )
                centre_vec = input_vectors[centre]
                gradient_centre = np.zeros_like(centre_vec)
                # Positive examples.
                for context in context_ids:
                    score = _sigmoid(np.dot(centre_vec, output_vectors[context]))
                    gradient = (1.0 - score) * learning_rate
                    gradient_centre += gradient * output_vectors[context]
                    output_vectors[context] += gradient * centre_vec
                # Negative examples.
                for negative in negatives:
                    if negative == centre:
                        continue
                    score = _sigmoid(np.dot(centre_vec, output_vectors[negative]))
                    gradient = -score * learning_rate
                    gradient_centre += gradient * output_vectors[negative]
                    output_vectors[negative] += gradient * centre_vec
                input_vectors[centre] += gradient_centre

    return Word2VecModel(vocabulary, input_vectors)
