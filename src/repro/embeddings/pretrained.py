"""Deterministic substitute for pre-trained word embeddings.

SemProp relies on large pre-trained word embeddings (word2vec / GloVe trained
on news corpora).  Those models cannot be downloaded offline, so this module
provides a deterministic character-n-gram hashing embedder: every token is
mapped to a fixed-dimensional vector by hashing its character n-grams into
buckets (the FastText trick without training).  The substitution preserves
the property the paper's evaluation hinges on — generic, corpus-agnostic
vectors carry *lexical* but not *domain* semantics, so SemProp's semantic
matcher under-performs on domain-specific data — while giving tokens with
shared sub-strings similar vectors.

A small curated list of semantic anchor groups adds mild "world knowledge"
(countries and their abbreviations, person-name variants), which is what a
general-purpose pre-trained model would know.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Sequence

import numpy as np

from repro.text.tokenize import character_ngrams, word_tokens

__all__ = ["PretrainedEmbeddings", "default_pretrained_embeddings"]

_SEMANTIC_ANCHORS: tuple[tuple[str, ...], ...] = (
    ("usa", "states", "unitedstates", "america", "us"),
    ("china", "chn", "prc"),
    ("netherlands", "nl", "holland"),
    ("germany", "deu", "de"),
    ("france", "fra", "fr"),
    ("uk", "britain", "unitedkingdom", "gb"),
    ("canada", "can", "ca"),
    ("india", "ind", "in"),
    ("spain", "esp", "es"),
    ("italy", "ita", "it"),
    ("male", "m", "man"),
    ("female", "f", "woman"),
)


class PretrainedEmbeddings:
    """Hash-based token embeddings with optional semantic anchor groups.

    Parameters
    ----------
    dimensions:
        Embedding dimensionality.
    ngram_sizes:
        Character n-gram sizes hashed into the vector.
    anchors:
        Groups of tokens forced to share an additional common component,
        mimicking the world knowledge of a real pre-trained model.
    """

    def __init__(
        self,
        dimensions: int = 50,
        ngram_sizes: Sequence[int] = (3, 4),
        anchors: Iterable[tuple[str, ...]] = _SEMANTIC_ANCHORS,
    ) -> None:
        if dimensions <= 0:
            raise ValueError("dimensions must be positive")
        self.dimensions = dimensions
        self.ngram_sizes = tuple(ngram_sizes)
        self._anchor_of: dict[str, int] = {}
        self._anchor_vectors: dict[int, np.ndarray] = {}
        for group_id, group in enumerate(anchors):
            vector = self._hash_vector(f"__anchor_{group_id}__")
            self._anchor_vectors[group_id] = vector
            for token in group:
                self._anchor_of[token.lower()] = group_id
        # Embeddings are pure functions of (config, input): memoise them.
        # SemProp re-embeds the same ontology aliases for every column of
        # every table it links, so without these caches the per-table prepare
        # cost is dominated by redundant n-gram hashing.  Bounded so a
        # long-lived process sketching arbitrary text cannot grow without
        # limit; cached arrays are frozen because callers share them.
        self._vector_cache: dict[str, np.ndarray] = {}
        self._text_cache: dict[str, np.ndarray] = {}

    #: Upper bound on entries kept per memoisation cache.
    _CACHE_LIMIT = 1 << 16

    def _hash_vector(self, text: str) -> np.ndarray:
        """Deterministic pseudo-random unit vector derived from *text*."""
        digest = hashlib.sha256(text.encode("utf-8")).digest()
        seed = int.from_bytes(digest[:8], "little")
        rng = np.random.default_rng(seed)
        vector = rng.standard_normal(self.dimensions)
        norm = np.linalg.norm(vector)
        return vector / norm if norm else vector

    def vector(self, token: str) -> np.ndarray:
        """Return the embedding of a single token (never fails; memoised)."""
        token = str(token).strip().lower()
        if not token:
            return np.zeros(self.dimensions)
        cached = self._vector_cache.get(token)
        if cached is not None:
            return cached
        pieces = [self._hash_vector(token)]
        for size in self.ngram_sizes:
            for gram in character_ngrams(token, n=size, pad=True):
                pieces.append(self._hash_vector(gram))
        vector = np.mean(pieces, axis=0)
        anchor_id = self._anchor_of.get(token)
        if anchor_id is not None:
            vector = 0.4 * vector + 0.6 * self._anchor_vectors[anchor_id]
        norm = np.linalg.norm(vector)
        vector = vector / norm if norm else vector
        if len(self._vector_cache) < self._CACHE_LIMIT:
            vector.flags.writeable = False
            self._vector_cache[token] = vector
        return vector

    def text_vector(self, text: str) -> np.ndarray:
        """Average token embedding of arbitrary text (identifier or cell value).

        Memoised: SemProp compares every column name against every ontology
        alias, so the same identifiers recur constantly.
        """
        key = str(text)
        cached = self._text_cache.get(key)
        if cached is not None:
            return cached
        tokens = word_tokens(text)
        if not tokens:
            vector = np.zeros(self.dimensions)
        else:
            vectors = [self.vector(token) for token in tokens]
            vector = np.mean(vectors, axis=0)
            norm = np.linalg.norm(vector)
            vector = vector / norm if norm else vector
        if len(self._text_cache) < self._CACHE_LIMIT:
            vector.flags.writeable = False
            self._text_cache[key] = vector
        return vector

    def fingerprint(self) -> str:
        """Short content-based digest of the embedder configuration.

        Covers dimensionality, n-gram sizes and the anchor groups — the full
        definition of the (deterministic) embedding function — so matchers
        can fold it into their configuration fingerprint.  Cached: the
        configuration is immutable after construction and matchers consult
        this on the per-candidate hot path.
        """
        cached = getattr(self, "_fingerprint_cache", None)
        if cached is None:
            payload = repr(
                (self.dimensions, self.ngram_sizes, sorted(self._anchor_of.items()))
            )
            cached = hashlib.blake2b(payload.encode("utf-8"), digest_size=8).hexdigest()
            self._fingerprint_cache = cached
        return cached

    def __getstate__(self) -> dict:
        """Drop the memoisation caches when pickling.

        The parallel rerank ships matchers (and therefore this embedder) to
        every pool worker; a warm cache can hold tens of MB of vectors the
        workers rebuild cheaply on demand.
        """
        state = self.__dict__.copy()
        state["_vector_cache"] = {}
        state["_text_cache"] = {}
        return state

    def similarity(self, text_a: str, text_b: str) -> float:
        """Cosine similarity of two texts' average embeddings, in [-1, 1]."""
        vec_a = self.text_vector(text_a)
        vec_b = self.text_vector(text_b)
        denom = np.linalg.norm(vec_a) * np.linalg.norm(vec_b)
        if denom == 0:
            return 0.0
        return float(np.dot(vec_a, vec_b) / denom)


_DEFAULT: PretrainedEmbeddings | None = None


def default_pretrained_embeddings() -> PretrainedEmbeddings:
    """Shared default instance (constructing hash tables is cheap but reusable)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = PretrainedEmbeddings()
    return _DEFAULT
