"""Embedding substrate: vocabulary, word2vec trainer and pretrained substitute."""

from repro.embeddings.pretrained import PretrainedEmbeddings, default_pretrained_embeddings
from repro.embeddings.similarity import centroid, cosine_similarity, pairwise_cosine
from repro.embeddings.vocab import Vocabulary
from repro.embeddings.word2vec import Word2VecConfig, Word2VecModel, train_word2vec

__all__ = [
    "Vocabulary",
    "Word2VecConfig",
    "Word2VecModel",
    "train_word2vec",
    "PretrainedEmbeddings",
    "default_pretrained_embeddings",
    "cosine_similarity",
    "pairwise_cosine",
    "centroid",
]
