"""Vector similarity helpers shared by the embedding-based matchers."""

from __future__ import annotations

from typing import Sequence

import numpy as np

__all__ = ["cosine_similarity", "pairwise_cosine", "centroid"]


def cosine_similarity(vector_a: np.ndarray, vector_b: np.ndarray) -> float:
    """Cosine similarity of two vectors; 0.0 when either has zero norm."""
    vector_a = np.asarray(vector_a, dtype=float)
    vector_b = np.asarray(vector_b, dtype=float)
    denom = np.linalg.norm(vector_a) * np.linalg.norm(vector_b)
    if denom == 0:
        return 0.0
    return float(np.dot(vector_a, vector_b) / denom)


def pairwise_cosine(matrix_a: np.ndarray, matrix_b: np.ndarray) -> np.ndarray:
    """Cosine similarity matrix between the rows of two matrices."""
    matrix_a = np.asarray(matrix_a, dtype=float)
    matrix_b = np.asarray(matrix_b, dtype=float)
    norms_a = np.linalg.norm(matrix_a, axis=1, keepdims=True)
    norms_b = np.linalg.norm(matrix_b, axis=1, keepdims=True)
    norms_a[norms_a == 0] = 1.0
    norms_b[norms_b == 0] = 1.0
    return (matrix_a / norms_a) @ (matrix_b / norms_b).T


def centroid(vectors: Sequence[np.ndarray], dimensions: int | None = None) -> np.ndarray:
    """Mean of a collection of vectors (zero vector when empty)."""
    vectors = [np.asarray(v, dtype=float) for v in vectors]
    if not vectors:
        if dimensions is None:
            raise ValueError("dimensions required for an empty vector collection")
        return np.zeros(dimensions)
    return np.mean(vectors, axis=0)
