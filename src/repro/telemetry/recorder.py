"""Zero-dependency, thread-safe telemetry recorder for the discovery pipeline.

The pipeline's hot paths (warm rerank, LSH probing, store lookups) run at
millisecond scale and must not pay for observability they did not ask for,
so the design splits into two halves:

* :class:`NullRecorder` — the process-wide default.  Every primitive is a
  no-op (``span`` hands back one shared context manager whose enter/exit do
  nothing), so instrumentation left in the hot loop costs a dict-free
  attribute call and nothing else.
* :class:`TelemetryRecorder` — the real thing: context-manager **spans**
  (wall-clock intervals with attributes, rendered as a Chrome trace),
  monotonic **counters**, and **duration histograms** with p50/p95/p99
  summaries.  All mutation happens under one lock, so a future ``lake
  serve`` daemon can share a recorder across request threads.

Cross-process story: the parallel rerank runs in spawn-based workers that
share nothing with the parent.  A worker therefore records into its own
:class:`TelemetryRecorder`, takes a :class:`TelemetrySnapshot` (a plain
picklable dataclass), and ships it back piggybacked on its chunk result;
the parent folds it in with :meth:`TelemetryRecorder.merge`.  Span
timestamps come from :func:`time.perf_counter`, which on Linux is
``CLOCK_MONOTONIC`` — machine-wide, so parent and worker spans line up on
one trace timeline.

The **active** recorder is resolved per thread (with a process-wide
default of :data:`NULL_RECORDER`): :func:`use` pushes a recorder for a
``with`` scope, and module-level :func:`span` / :func:`count` /
:func:`observe` in :mod:`repro.telemetry` delegate to whatever is active.
"""

from __future__ import annotations

import math
import os
import threading
import time
from contextlib import contextmanager
from dataclasses import dataclass, field
from typing import Iterator, Optional, Union

__all__ = [
    "SpanRecord",
    "TelemetrySnapshot",
    "NullRecorder",
    "TelemetryRecorder",
    "NULL_RECORDER",
    "get_recorder",
    "set_default_recorder",
    "use",
    "span",
    "count",
    "observe",
    "quantile",
]

Number = Union[int, float]


def quantile(samples: list[float], q: float) -> float:
    """The *q*-quantile (0..1) of *samples* by linear interpolation.

    Matches ``statistics.quantiles`` behaviour closely enough for latency
    reporting without pulling in edge-case handling for tiny samples: one
    sample is every quantile of itself, an empty list is 0.
    """
    if not samples:
        return 0.0
    ordered = sorted(samples)
    if len(ordered) == 1:
        return ordered[0]
    position = q * (len(ordered) - 1)
    lower = math.floor(position)
    upper = math.ceil(position)
    if lower == upper:
        return ordered[lower]
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


@dataclass(frozen=True)
class SpanRecord:
    """One finished span: a named wall-clock interval with attributes.

    ``start`` is a raw :func:`time.perf_counter` value; consumers that need
    a common origin (the Chrome-trace exporter) subtract the earliest start
    across the whole snapshot.  ``pid`` keeps spans from different worker
    processes on separate trace rows.
    """

    name: str
    start: float
    duration: float
    pid: int
    attrs: tuple[tuple[str, object], ...] = ()


@dataclass
class TelemetrySnapshot:
    """A picklable, mergeable copy of a recorder's state.

    This is the unit that crosses process boundaries: workers return one
    per chunk, the parent merges them, and the CLI renders one into the
    ``--stats`` summary / ``--trace-json`` file.
    """

    counters: dict[str, Number] = field(default_factory=dict)
    durations: dict[str, list[float]] = field(default_factory=dict)
    spans: list[SpanRecord] = field(default_factory=list)
    #: Spans discarded because the retention cap was hit (counters and
    #: histograms are never dropped — only the per-span trace detail is).
    dropped_spans: int = 0

    def merge(self, other: "TelemetrySnapshot") -> None:
        """Fold *other* into this snapshot (summing counters, extending samples)."""
        for name, value in other.counters.items():
            self.counters[name] = self.counters.get(name, 0) + value
        for name, samples in other.durations.items():
            self.durations.setdefault(name, []).extend(samples)
        self.spans.extend(other.spans)
        self.dropped_spans += other.dropped_spans

    def duration_summary(self, name: str) -> dict[str, float]:
        """``{count, total, mean, p50, p95, p99}`` (seconds) for one histogram."""
        samples = self.durations.get(name, [])
        total = sum(samples)
        return {
            "count": float(len(samples)),
            "total": total,
            "mean": total / len(samples) if samples else 0.0,
            "p50": quantile(samples, 0.50),
            "p95": quantile(samples, 0.95),
            "p99": quantile(samples, 0.99),
        }

    def stage_seconds(self) -> dict[str, float]:
        """Summed duration per histogram name — the per-stage breakdown."""
        return {name: sum(samples) for name, samples in sorted(self.durations.items())}

    def as_dict(self) -> dict:
        """A JSON-ready view: counters plus per-stage histogram summaries.

        This is what the serve daemon's ``/stats`` endpoint returns — span
        detail is deliberately omitted (it is trace-file material, not a
        stats payload) but its truncation is still visible via
        ``dropped_spans``.
        """
        return {
            "counters": dict(sorted(self.counters.items())),
            "stages": {name: self.duration_summary(name) for name in sorted(self.durations)},
            "dropped_spans": self.dropped_spans,
        }

    @property
    def empty(self) -> bool:
        return not (self.counters or self.durations or self.spans or self.dropped_spans)


class _NullSpan:
    """The shared do-nothing context manager handed out by the null recorder."""

    __slots__ = ()

    def __enter__(self) -> "_NullSpan":
        return self

    def __exit__(self, *exc_info: object) -> bool:
        return False


_NULL_SPAN = _NullSpan()


class NullRecorder:
    """The disabled recorder: every primitive is a no-op.

    One shared instance (:data:`NULL_RECORDER`) is the process-wide default,
    so instrumented code never branches on "is telemetry on" — it calls the
    same methods and the null implementations cost a method dispatch each.
    """

    enabled = False
    __slots__ = ()

    def span(self, name: str, **attrs: object) -> _NullSpan:
        return _NULL_SPAN

    def count(self, name: str, value: Number = 1) -> None:
        return None

    def observe(self, name: str, seconds: float) -> None:
        return None

    def merge(self, snapshot: TelemetrySnapshot) -> None:
        return None

    def snapshot(self) -> TelemetrySnapshot:
        return TelemetrySnapshot()


NULL_RECORDER = NullRecorder()


class _Span:
    """An open span; created by :meth:`TelemetryRecorder.span`.

    Exiting records both the :class:`SpanRecord` (trace detail, capped) and
    a duration-histogram sample under the span's name (never capped), so
    p50/p95/p99 stay exact even when the trace is truncated.
    """

    __slots__ = ("_recorder", "name", "attrs", "_start")

    def __init__(self, recorder: "TelemetryRecorder", name: str, attrs: dict) -> None:
        self._recorder = recorder
        self.name = name
        self.attrs = attrs
        self._start = 0.0

    def __enter__(self) -> "_Span":
        self._start = time.perf_counter()
        return self

    def __exit__(self, *exc_info: object) -> bool:
        self._recorder._finish_span(
            self.name, self._start, time.perf_counter() - self._start, self.attrs
        )
        return False


class TelemetryRecorder:
    """Collects spans, counters and duration histograms; thread-safe.

    Parameters
    ----------
    max_spans:
        Retention cap on per-span trace records.  Counters and histograms
        keep aggregating past it; only the span *detail* is dropped (and
        counted in :attr:`TelemetrySnapshot.dropped_spans`), so a
        long-running serving process cannot leak memory through its trace.
    max_samples:
        Sliding-window cap per duration histogram: each histogram keeps at
        most the *most recent* ``max_samples`` samples (trimming runs in
        amortised batches, so a list may transiently hold up to twice the
        cap).  Counters are unaffected.  The default is large enough that
        one-shot runs never trim; a serve daemon gets recent-window
        quantiles instead of unbounded growth.
    """

    enabled = True

    def __init__(self, max_spans: int = 10_000, max_samples: int = 100_000) -> None:
        if max_spans <= 0:
            raise ValueError("max_spans must be positive")
        if max_samples <= 0:
            raise ValueError("max_samples must be positive")
        self.max_spans = max_spans
        self.max_samples = max_samples
        self._lock = threading.Lock()
        self._counters: dict[str, Number] = {}
        self._durations: dict[str, list[float]] = {}
        self._spans: list[SpanRecord] = []
        self._dropped_spans = 0

    # ------------------------------------------------------------------ #
    # recording primitives
    # ------------------------------------------------------------------ #
    def span(self, name: str, **attrs: object) -> _Span:
        """A context manager timing one named interval (``with rec.span(...)``)."""
        return _Span(self, name, attrs)

    def _observe_locked(self, name: str, seconds: float) -> None:
        samples = self._durations.setdefault(name, [])
        samples.append(seconds)
        if len(samples) > 2 * self.max_samples:
            del samples[: -self.max_samples]

    def _finish_span(
        self, name: str, start: float, duration: float, attrs: dict
    ) -> None:
        with self._lock:
            self._observe_locked(name, duration)
            if len(self._spans) < self.max_spans:
                self._spans.append(
                    SpanRecord(
                        name=name,
                        start=start,
                        duration=duration,
                        pid=os.getpid(),
                        attrs=tuple(sorted(attrs.items())),
                    )
                )
            else:
                self._dropped_spans += 1

    def count(self, name: str, value: Number = 1) -> None:
        """Add *value* to the monotonic counter *name*."""
        with self._lock:
            self._counters[name] = self._counters.get(name, 0) + value

    def observe(self, name: str, seconds: float) -> None:
        """Record one duration sample without span detail (histogram only)."""
        with self._lock:
            self._observe_locked(name, seconds)

    # ------------------------------------------------------------------ #
    # snapshots and merging
    # ------------------------------------------------------------------ #
    def snapshot(self) -> TelemetrySnapshot:
        """A deep-enough copy of the current state (safe to pickle or mutate)."""
        with self._lock:
            return TelemetrySnapshot(
                counters=dict(self._counters),
                durations={name: list(s) for name, s in self._durations.items()},
                spans=list(self._spans),
                dropped_spans=self._dropped_spans,
            )

    def merge(self, snapshot: TelemetrySnapshot) -> None:
        """Fold a (worker's) snapshot into this recorder."""
        with self._lock:
            for name, value in snapshot.counters.items():
                self._counters[name] = self._counters.get(name, 0) + value
            for name, samples in snapshot.durations.items():
                mine = self._durations.setdefault(name, [])
                mine.extend(samples)
                if len(mine) > 2 * self.max_samples:
                    del mine[: -self.max_samples]
            room = self.max_spans - len(self._spans)
            if room >= len(snapshot.spans):
                self._spans.extend(snapshot.spans)
            else:
                self._spans.extend(snapshot.spans[:room])
                self._dropped_spans += len(snapshot.spans) - max(0, room)
            self._dropped_spans += snapshot.dropped_spans

    def reset(self) -> None:
        """Drop all recorded state (counters, histograms, spans)."""
        with self._lock:
            self._counters.clear()
            self._durations.clear()
            self._spans.clear()
            self._dropped_spans = 0


# --------------------------------------------------------------------- #
# active-recorder resolution
# --------------------------------------------------------------------- #

_ACTIVE = threading.local()
_DEFAULT: Union[NullRecorder, TelemetryRecorder] = NULL_RECORDER


def get_recorder() -> Union[NullRecorder, TelemetryRecorder]:
    """The recorder instrumentation records into: thread-local, else default."""
    stack = getattr(_ACTIVE, "stack", None)
    if stack:
        return stack[-1]
    return _DEFAULT


def set_default_recorder(
    recorder: Optional[Union[NullRecorder, TelemetryRecorder]],
) -> None:
    """Set the process-wide default recorder (``None`` restores the null one)."""
    global _DEFAULT
    _DEFAULT = recorder if recorder is not None else NULL_RECORDER


@contextmanager
def use(
    recorder: Union[NullRecorder, TelemetryRecorder],
) -> Iterator[Union[NullRecorder, TelemetryRecorder]]:
    """Make *recorder* the active recorder for this thread within the block."""
    stack = getattr(_ACTIVE, "stack", None)
    if stack is None:
        stack = _ACTIVE.stack = []
    stack.append(recorder)
    try:
        yield recorder
    finally:
        stack.pop()


def span(name: str, **attrs: object):
    """``with telemetry.span("stage", key=value):`` on the active recorder."""
    return get_recorder().span(name, **attrs)


def count(name: str, value: Number = 1) -> None:
    """Bump a counter on the active recorder (no-op when disabled)."""
    get_recorder().count(name, value)


def observe(name: str, seconds: float) -> None:
    """Record a duration sample on the active recorder (no-op when disabled)."""
    get_recorder().observe(name, seconds)
