"""Structured per-query statistics for discovery queries.

:class:`QueryStats` is what :meth:`LakeDiscoveryEngine.query
<repro.lake.engine.LakeDiscoveryEngine.query>` populates after every call
(``engine.last_query_stats``): the headline numbers (shortlist size, rerank
count, prepared-store hits, stage wall-clock) are always measured — two
``perf_counter`` reads, no recorder required — and, when a real
:class:`~repro.telemetry.recorder.TelemetryRecorder` is active during the
query, the full per-query :class:`TelemetrySnapshot` (per-stage duration
histograms, store/LSH/pool counters, trace spans) is attached.

It replaced the old ``engine.last_store_hits`` side-channel attribute
(deprecated in PR 6, removed in PR 8).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional

from repro.telemetry.recorder import TelemetrySnapshot

__all__ = ["QueryStats"]


@dataclass
class QueryStats:
    """Everything one discovery query is willing to tell you about itself."""

    query_name: str = ""
    mode: str = "joinable"
    parallel: bool = False
    #: Candidate tables surfaced by the LSH shortlist (before resolution).
    shortlist_size: int = 0
    #: Candidates the matcher actually scored (before top-k truncation).
    rerank_count: int = 0
    #: Candidates served straight from the prepared store (no CSV, no prepare).
    store_hits: int = 0
    #: Whole-query wall clock, and its two headline stages.  Always
    #: measured, even with telemetry disabled.
    total_seconds: float = 0.0
    shortlist_seconds: float = 0.0
    rerank_seconds: float = 0.0
    #: Whether an anytime budget stopped the rerank before every surviving
    #: candidate was scored — the ranking is best-effort over those scored.
    partial: bool = False
    #: Cascade outcome: candidates skipped on an admissible bound below the
    #: top-k cutoff, and candidates scored exactly (0/0 when not cascaded).
    cascade_skipped: int = 0
    cascade_exact: int = 0
    #: The per-query telemetry snapshot — ``None`` when no recorder was
    #: active (the headline numbers above still are).
    snapshot: Optional[TelemetrySnapshot] = field(default=None, repr=False)

    @property
    def counters(self) -> dict:
        """The snapshot's counters (empty when telemetry was disabled)."""
        return dict(self.snapshot.counters) if self.snapshot is not None else {}

    @property
    def stage_seconds(self) -> dict:
        """Summed seconds per instrumented stage (empty when disabled)."""
        return self.snapshot.stage_seconds() if self.snapshot is not None else {}

    @property
    def store_hit_rate(self) -> float:
        """Fraction of reranked candidates served from the prepared store."""
        return self.store_hits / self.rerank_count if self.rerank_count else 0.0

    def format_summary(self) -> str:
        """A human-readable multi-line summary (the CLI's ``--stats`` output)."""
        lines = [
            f"query stats: {self.query_name!r} mode={self.mode} "
            f"{'parallel' if self.parallel else 'serial'}",
            f"  shortlist: {self.shortlist_size} candidates "
            f"in {self.shortlist_seconds * 1e3:.1f} ms",
            f"  rerank:    {self.rerank_count} scored, {self.store_hits} "
            f"store-served ({self.store_hit_rate:.0%}) "
            f"in {self.rerank_seconds * 1e3:.1f} ms",
            f"  total:     {self.total_seconds * 1e3:.1f} ms",
        ]
        if self.cascade_skipped or self.cascade_exact or self.partial:
            lines.append(
                f"  cascade:   {self.cascade_exact} exact-scored, "
                f"{self.cascade_skipped} skipped by bound"
                + (" (PARTIAL: budget expired)" if self.partial else "")
            )
        if self.snapshot is not None:
            stage_names = sorted(
                self.snapshot.durations,
                key=lambda name: -sum(self.snapshot.durations[name]),
            )
            if stage_names:
                lines.append("  stages (count / total / p50 / p95 / p99, ms):")
                for name in stage_names:
                    summary = self.snapshot.duration_summary(name)
                    lines.append(
                        f"    {name:<28s} {int(summary['count']):>5d}  "
                        f"{summary['total'] * 1e3:>8.1f}  "
                        f"{summary['p50'] * 1e3:>7.2f}  "
                        f"{summary['p95'] * 1e3:>7.2f}  "
                        f"{summary['p99'] * 1e3:>7.2f}"
                    )
            if self.snapshot.counters:
                lines.append("  counters:")
                for name, value in sorted(self.snapshot.counters.items()):
                    lines.append(f"    {name:<36s} {value:>10g}")
            if self.snapshot.dropped_spans:
                lines.append(
                    f"  ({self.snapshot.dropped_spans} trace spans dropped "
                    "over the retention cap)"
                )
        return "\n".join(lines)
