"""Chrome trace-event export of a telemetry snapshot.

Renders the spans of a :class:`~repro.telemetry.recorder.TelemetrySnapshot`
in the Trace Event Format consumed by ``chrome://tracing`` and Perfetto
(https://ui.perfetto.dev): a JSON object with a ``traceEvents`` array of
complete ("ph": "X") events carrying microsecond ``ts``/``dur``.  Spans
recorded by rerank workers keep their own ``pid``, so the parallel warm
path renders as one timeline with a lane per process — queue waits and
chunk skew are directly visible.

Span start times are raw ``perf_counter`` readings; the exporter shifts
them so the earliest span starts at ``ts = 0`` (trace viewers expect small
positive timestamps).
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Union

from repro.telemetry.recorder import TelemetrySnapshot

__all__ = ["to_chrome_trace", "write_chrome_trace"]


def to_chrome_trace(snapshot: TelemetrySnapshot) -> dict:
    """Render *snapshot* as a Trace Event Format document (a plain dict).

    Every span becomes one complete event; counters ride along as a single
    metadata-ish instant event per trace would be noisy, so they are instead
    attached to the top-level ``otherData`` object (Perfetto shows it in
    the trace info dialog).
    """
    spans = snapshot.spans
    origin = min((span.start for span in spans), default=0.0)
    events = []
    for index, span in enumerate(spans):
        events.append(
            {
                "name": span.name,
                "cat": span.name.split(".", 1)[0],
                "ph": "X",
                "ts": (span.start - origin) * 1e6,
                "dur": span.duration * 1e6,
                "pid": span.pid,
                "tid": span.pid,
                "args": {str(key): value for key, value in span.attrs},
            }
        )
    return {
        "traceEvents": events,
        "displayTimeUnit": "ms",
        "otherData": {
            "counters": dict(sorted(snapshot.counters.items())),
            "dropped_spans": snapshot.dropped_spans,
        },
    }


def write_chrome_trace(
    snapshot: TelemetrySnapshot, path: Union[str, Path]
) -> Path:
    """Write the Chrome trace JSON for *snapshot* to *path*; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(snapshot), indent=1), encoding="utf-8")
    return path
