"""Cross-process telemetry: spans, counters and query stats for discovery.

The paper's evaluation weighs matcher *effectiveness* against *runtime
efficiency*; this package is the instrument that attributes where a query's
time actually goes.  Three pieces:

* :mod:`repro.telemetry.recorder` — the zero-dependency, thread-safe
  recorder: context-manager spans (``with telemetry.span("rerank",
  table=name):``), monotonic counters, duration histograms with
  p50/p95/p99, and picklable :class:`TelemetrySnapshot` objects that
  rerank workers ship back to the parent for merging.  The process-wide
  default is a no-op :class:`NullRecorder`, so the disabled path costs a
  method dispatch on the hot loop and nothing else.
* :mod:`repro.telemetry.stats` — :class:`QueryStats`, the structured
  per-query report ``LakeDiscoveryEngine.query`` fills in.
* :mod:`repro.telemetry.trace` — Chrome trace-event export
  (``chrome://tracing`` / Perfetto) of a snapshot's spans.

Typical usage::

    from repro import telemetry

    with telemetry.use(telemetry.TelemetryRecorder()) as recorder:
        engine.query(table, top_k=10)
    print(engine.last_query_stats.format_summary())
    telemetry.write_chrome_trace(recorder.snapshot(), "query.trace.json")
"""

from repro.telemetry.recorder import (
    NULL_RECORDER,
    NullRecorder,
    SpanRecord,
    TelemetryRecorder,
    TelemetrySnapshot,
    count,
    get_recorder,
    observe,
    quantile,
    set_default_recorder,
    span,
    use,
)
from repro.telemetry.stats import QueryStats
from repro.telemetry.trace import to_chrome_trace, write_chrome_trace

__all__ = [
    "NULL_RECORDER",
    "NullRecorder",
    "SpanRecord",
    "TelemetryRecorder",
    "TelemetrySnapshot",
    "QueryStats",
    "count",
    "get_recorder",
    "observe",
    "quantile",
    "set_default_recorder",
    "span",
    "use",
    "to_chrome_trace",
    "write_chrome_trace",
]
