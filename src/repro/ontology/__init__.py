"""Ontology substrate: class hierarchies and bundled domain ontologies."""

from repro.ontology.domain import business_ontology, chemistry_ontology
from repro.ontology.model import Ontology, OntologyClass

__all__ = ["Ontology", "OntologyClass", "chemistry_ontology", "business_ontology"]
