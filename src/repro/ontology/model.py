"""A small ontology model (classes, labels, hierarchy).

SemProp links attribute and table names to classes of a domain-specific
ontology (the paper uses EFO for ChEMBL) through embedding similarity, and
then relates schema elements transitively through the ontology.  This module
provides the ontology data structure: named classes with labels/synonyms and
an IS-A hierarchy, plus traversal helpers (ancestors, descendants, semantic
distance).
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass, field
from typing import Iterable, Iterator, Optional

__all__ = ["OntologyClass", "Ontology"]


@dataclass
class OntologyClass:
    """A class of the ontology.

    Attributes
    ----------
    name:
        Unique class identifier.
    labels:
        Human-readable labels and synonyms for the class.
    parents:
        Names of direct superclasses.
    """

    name: str
    labels: tuple[str, ...] = ()
    parents: tuple[str, ...] = ()


class Ontology:
    """A named collection of classes with an IS-A hierarchy."""

    def __init__(self, name: str, classes: Iterable[OntologyClass] = ()) -> None:
        self.name = name
        self._classes: dict[str, OntologyClass] = {}
        for cls in classes:
            self.add_class(cls)

    def add_class(self, ontology_class: OntologyClass) -> None:
        """Register a class (replacing any class with the same name)."""
        self._classes[ontology_class.name] = ontology_class
        self._fingerprint_cache: Optional[str] = None
        # Traversal memos are derived from the hierarchy: drop them on any
        # mutation, exactly like the fingerprint.
        self._ancestors_cache: dict[str, frozenset[str]] = {}
        self._related_cache: dict[tuple[str, str], bool] = {}

    def fingerprint(self) -> str:
        """Short content-based digest of the ontology (name, classes, edges).

        Stable across processes; matchers fold it into their own
        configuration fingerprint so prepared artifacts built under
        different ontologies can never be confused.  Cached between
        mutations because matchers consult it on the per-candidate hot path.
        """
        cached = getattr(self, "_fingerprint_cache", None)
        if cached is None:
            payload = repr((self.name, sorted(repr(c) for c in self._classes.values())))
            cached = hashlib.blake2b(payload.encode("utf-8"), digest_size=8).hexdigest()
            self._fingerprint_cache = cached
        return cached

    def __contains__(self, class_name: str) -> bool:
        return class_name in self._classes

    def __len__(self) -> int:
        return len(self._classes)

    def __iter__(self) -> Iterator[OntologyClass]:
        return iter(self._classes.values())

    @property
    def class_names(self) -> list[str]:
        """All class names."""
        return list(self._classes)

    def get(self, class_name: str) -> Optional[OntologyClass]:
        """Return the class called *class_name*, or ``None``."""
        return self._classes.get(class_name)

    def labels_of(self, class_name: str) -> list[str]:
        """Return the labels of a class (including its name)."""
        cls = self._classes.get(class_name)
        if cls is None:
            return []
        return [cls.name, *cls.labels]

    def parents_of(self, class_name: str) -> list[str]:
        """Direct superclasses of *class_name*."""
        cls = self._classes.get(class_name)
        return list(cls.parents) if cls else []

    def ancestors_of(self, class_name: str) -> set[str]:
        """All (transitive) superclasses of *class_name*."""
        return set(self._ancestors(class_name))

    def _ancestors(self, class_name: str) -> frozenset[str]:
        """Memoized ancestor set (coherence scoring calls this per link pair)."""
        cache = getattr(self, "_ancestors_cache", None)
        if cache is None:
            cache = self._ancestors_cache = {}
        cached = cache.get(class_name)
        if cached is not None:
            return cached
        ancestors: set[str] = set()
        frontier = list(self.parents_of(class_name))
        while frontier:
            parent = frontier.pop()
            if parent in ancestors:
                continue
            ancestors.add(parent)
            frontier.extend(self.parents_of(parent))
        result = frozenset(ancestors)
        cache[class_name] = result
        return result

    def descendants_of(self, class_name: str) -> set[str]:
        """All (transitive) subclasses of *class_name*."""
        children_of: dict[str, list[str]] = {}
        for cls in self._classes.values():
            for parent in cls.parents:
                children_of.setdefault(parent, []).append(cls.name)
        descendants: set[str] = set()
        frontier = list(children_of.get(class_name, ()))
        while frontier:
            child = frontier.pop()
            if child in descendants:
                continue
            descendants.add(child)
            frontier.extend(children_of.get(child, ()))
        return descendants

    def related(self, class_a: str, class_b: str) -> bool:
        """True when the two classes are equal or connected through IS-A."""
        if class_a == class_b:
            return True
        cache = getattr(self, "_related_cache", None)
        if cache is None:
            cache = self._related_cache = {}
        key = (class_a, class_b) if class_a <= class_b else (class_b, class_a)
        cached = cache.get(key)
        if cached is None:
            ancestors_a = self._ancestors(class_a)
            ancestors_b = self._ancestors(class_b)
            cached = (
                class_b in ancestors_a
                or class_a in ancestors_b
                or not ancestors_a.isdisjoint(ancestors_b)
            )
            cache[key] = cached
        return cached

    def semantic_distance(self, class_a: str, class_b: str) -> int:
        """Shortest IS-A path length between the classes (-1 when unrelated)."""
        if class_a == class_b:
            return 0
        # Breadth-first search over the undirected IS-A graph.
        neighbours: dict[str, set[str]] = {name: set() for name in self._classes}
        for cls in self._classes.values():
            for parent in cls.parents:
                neighbours.setdefault(cls.name, set()).add(parent)
                neighbours.setdefault(parent, set()).add(cls.name)
        if class_a not in neighbours or class_b not in neighbours:
            return -1
        visited = {class_a}
        frontier = [(class_a, 0)]
        while frontier:
            node, depth = frontier.pop(0)
            for neighbour in neighbours.get(node, ()):
                if neighbour == class_b:
                    return depth + 1
                if neighbour not in visited:
                    visited.add(neighbour)
                    frontier.append((neighbour, depth + 1))
        return -1
