"""Synthetic domain ontologies bundled with the suite.

The paper runs SemProp with the EFO ontology on ChEMBL data.  EFO is not
redistributable here, so we bundle compact domain ontologies that mirror the
vocabulary of the synthetic dataset generators: a chemistry/assay ontology
(for the ChEMBL-like source), and a small business/people ontology used by
the other sources.  SemProp's behaviour only depends on being able (or
failing) to link attribute names to ontology classes, which these preserve.
"""

from __future__ import annotations

from repro.ontology.model import Ontology, OntologyClass

__all__ = ["chemistry_ontology", "business_ontology"]


def chemistry_ontology() -> Ontology:
    """A compact assay/chemistry ontology standing in for EFO."""
    classes = [
        OntologyClass("experimental_factor", ("factor", "experimental factor")),
        OntologyClass("assay", ("assay", "experiment", "test"), parents=("experimental_factor",)),
        OntologyClass("bioassay", ("bioassay", "biological assay"), parents=("assay",)),
        OntologyClass("measurement", ("measurement", "value", "reading"), parents=("experimental_factor",)),
        OntologyClass("concentration", ("concentration", "dose", "dosage"), parents=("measurement",)),
        OntologyClass("potency", ("potency", "ic50", "activity"), parents=("measurement",)),
        OntologyClass("compound", ("compound", "molecule", "chemical", "substance")),
        OntologyClass("target", ("target", "protein", "receptor")),
        OntologyClass("organism", ("organism", "species", "taxon")),
        OntologyClass("cell_line", ("cell line", "cell", "cellline"), parents=("organism",)),
        OntologyClass("tissue", ("tissue", "organ"), parents=("organism",)),
        OntologyClass("document", ("document", "journal", "publication", "reference")),
        OntologyClass("identifier", ("identifier", "id", "accession", "code")),
        OntologyClass("description", ("description", "comment", "text", "note")),
        OntologyClass("date", ("date", "year", "time")),
        OntologyClass("unit", ("unit", "units", "uom"), parents=("measurement",)),
    ]
    return Ontology("chemistry", classes)


def business_ontology() -> Ontology:
    """A compact business/people ontology used by non-chemistry sources."""
    classes = [
        OntologyClass("agent", ("agent", "actor")),
        OntologyClass("person", ("person", "individual", "human"), parents=("agent",)),
        OntologyClass("customer", ("customer", "client", "buyer"), parents=("person",)),
        OntologyClass("employee", ("employee", "worker", "staff"), parents=("person",)),
        OntologyClass("organization", ("organization", "company", "firm", "employer"), parents=("agent",)),
        OntologyClass("team", ("team", "squad", "group"), parents=("organization",)),
        OntologyClass("location", ("location", "place", "address")),
        OntologyClass("city", ("city", "town"), parents=("location",)),
        OntologyClass("country", ("country", "nation", "state"), parents=("location",)),
        OntologyClass("postal_code", ("postal code", "zipcode", "zip"), parents=("location",)),
        OntologyClass("artifact", ("artifact", "object")),
        OntologyClass("product", ("product", "item", "goods"), parents=("artifact",)),
        OntologyClass("application", ("application", "software", "system"), parents=("artifact",)),
        OntologyClass("work", ("work", "creative work"), parents=("artifact",)),
        OntologyClass("song", ("song", "track", "recording"), parents=("work",)),
        OntologyClass("album", ("album", "record"), parents=("work",)),
        OntologyClass("movie", ("movie", "film"), parents=("work",)),
        OntologyClass("monetary_amount", ("amount", "price", "salary", "revenue", "balance")),
        OntologyClass("date", ("date", "year", "birthday", "time")),
        OntologyClass("identifier", ("identifier", "id", "key", "code")),
        OntologyClass("description", ("description", "comment", "note", "text")),
    ]
    return Ontology("business", classes)
