"""Command-line interface of the Valentine reproduction.

Subcommands:

* ``coverage`` — print the Table I matcher / match-type coverage matrix;
* ``parameters`` — print the Table II parameter grids;
* ``fabricate`` — fabricate dataset pairs from a synthetic seed source and
  write them to CSV files;
* ``run`` — run the experiment grid over fabricated pairs and print the
  Figure 4–6 style summaries;
* ``match`` — match two CSV files with a chosen method and print the ranked
  matches;
* ``lake build`` / ``lake prepare`` / ``lake query`` / ``lake stats`` —
  maintain a persistent column-sketch store over a directory of CSV files
  (optionally sketching in a process pool), pre-warm the prepared-candidate
  store for a matcher, run index-accelerated discovery queries against it,
  and inspect store-level statistics;
* ``lake serve`` — run the long-lived discovery daemon: one warm engine +
  rerank pool behind ``/query`` / ``/stats`` / ``/healthz`` over HTTP
  (TCP or a unix socket), with bounded admission and live store reopen;
* ``lake publish`` / ``lake pull`` — export the stores as a
  content-addressed snapshot artifact and sync replicas from it, fetching
  only the delta (IBLT reconciliation with full-diff fallback);
* ``lake watch`` — poll a CSV directory and fold changes into the store
  incrementally (optionally re-preparing and re-publishing on change).

Observability flags: ``-v/--verbose`` turns on logging for the lake and
discovery paths (``-vv`` for everything); ``lake query --stats`` prints a
per-stage latency/counter summary, and ``lake query --trace-json PATH``
writes a Chrome trace-event file loadable in chrome://tracing or Perfetto.
"""

from __future__ import annotations

import argparse
import logging
import sys
from pathlib import Path

from repro.data.csv_io import read_csv, write_csv
from repro.datasets import chembl_assays_table, open_data_table, tpcdi_prospect_table
from repro.experiments.parameters import default_parameter_grids
from repro.experiments.reports import (
    render_boxplot_figure,
    render_coverage_table,
    render_parameter_grids,
)
from repro.experiments.runner import ExperimentRunner
from repro.fabrication import FabricationConfig, Fabricator, Scenario
from repro.matchers.registry import create_matcher

__all__ = ["main", "build_parser"]

_SOURCES = {
    "tpcdi": tpcdi_prospect_table,
    "opendata": open_data_table,
    "chembl": chembl_assays_table,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``valentine-repro`` entry point."""
    parser = argparse.ArgumentParser(
        prog="valentine-repro",
        description="Valentine reproduction: schema matching experiments for dataset discovery",
    )
    parser.add_argument(
        "-v",
        "--verbose",
        action="count",
        default=0,
        help="enable logging: -v for DEBUG on the lake/discovery paths, "
        "-vv for DEBUG everywhere",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("coverage", help="print the Table I coverage matrix")

    params = subparsers.add_parser("parameters", help="print the Table II parameter grids")
    params.add_argument("--fast", action="store_true", help="show the thinned laptop-scale grids")

    fabricate = subparsers.add_parser("fabricate", help="fabricate dataset pairs to CSV files")
    fabricate.add_argument("--source", choices=sorted(_SOURCES), default="tpcdi")
    fabricate.add_argument("--rows", type=int, default=400, help="seed table row count")
    fabricate.add_argument("--output", type=Path, default=Path("fabricated_pairs"))
    fabricate.add_argument("--scenario", choices=[s.value for s in Scenario], default=None)

    run = subparsers.add_parser("run", help="run the experiment grid and print summaries")
    run.add_argument("--source", choices=sorted(_SOURCES), default="tpcdi")
    run.add_argument("--rows", type=int, default=200, help="seed table row count")
    run.add_argument("--methods", nargs="*", default=None, help="subset of method names to run")
    run.add_argument("--full-grid", action="store_true", help="use the full Table II grids")
    run.add_argument("--output", type=Path, default=None, help="write results JSON to this path")

    match = subparsers.add_parser("match", help="match two CSV files")
    match.add_argument("source_csv", type=Path)
    match.add_argument("target_csv", type=Path)
    match.add_argument("--method", default="ComaSchema", help="registered matcher name")
    match.add_argument("--top", type=int, default=20, help="number of ranked matches to print")

    lake = subparsers.add_parser("lake", help="persistent sketch store + LSH discovery")
    lake_commands = lake.add_subparsers(dest="lake_command", required=True)

    build = lake_commands.add_parser("build", help="(re)build the sketch store from CSVs")
    build.add_argument("input", type=Path, help="directory of CSV files (one table each)")
    build.add_argument("--store", type=Path, default=Path("lake.sketches"), help="store path")
    build.add_argument(
        "--prune",
        action="store_true",
        help="also drop store tables whose CSV is no longer in the input directory",
    )
    build.add_argument(
        "--workers",
        type=int,
        default=None,
        help="read + sketch CSVs in a process pool of this size "
        "(the store is still written by this process only)",
    )

    prepare = lake_commands.add_parser(
        "prepare",
        help="pre-warm the prepared-candidate store for one matcher",
    )
    prepare.add_argument("method", help="registered matcher name to prepare for")
    prepare.add_argument("--store", type=Path, default=Path("lake.sketches"), help="store path")
    prepare.add_argument(
        "--prepared-store",
        type=Path,
        default=None,
        help="prepared-candidate store path (default: <store>.prepared)",
    )
    prepare.add_argument(
        "--workers",
        type=int,
        default=None,
        help="prepare tables in a process pool of this size",
    )
    prepare.add_argument(
        "--max-store-mb",
        type=float,
        default=None,
        help="byte budget for the prepared store in MiB: least-recently-used "
        "payloads are evicted until the total fits (entry-count cap still "
        "applies as a secondary bound)",
    )

    query = lake_commands.add_parser("query", help="discover related tables for a CSV")
    query.add_argument("query_csv", type=Path)
    query.add_argument("--store", type=Path, default=Path("lake.sketches"), help="store path")
    query.add_argument(
        "--mode", choices=["joinable", "unionable", "combined"], default="joinable"
    )
    query.add_argument("--method", default="ComaSchema", help="registered matcher name")
    query.add_argument("--top", type=int, default=10, help="number of tables to report")
    query.add_argument("--parallel", action="store_true", help="rerank in a process pool")
    query.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size; implies --parallel (default: executor's "
        "choice).  Warm candidates are loaded inside the workers straight "
        "from the WAL-mode stores — nothing candidate-sized crosses the "
        "parent process",
    )
    query.add_argument(
        "--prepared-store",
        type=Path,
        default=None,
        help="prepared-candidate store path (default: <store>.prepared); "
        "warm candidates skip CSV loading and preparation entirely",
    )
    query.add_argument(
        "--no-prepared-store",
        action="store_true",
        help="disable the prepared-candidate store (the PR 3 cold path)",
    )
    query.add_argument(
        "--timeout-s",
        type=float,
        default=None,
        metavar="SECONDS",
        help="per-query deadline (the same one `lake serve` enforces per "
        "request); an expired query exits with status 124",
    )
    query.add_argument(
        "--cascade",
        action="store_true",
        help="two-stage rerank: score cheap sketch-level bounds first and "
        "skip candidates that provably cannot reach the top-k (exact "
        "rankings; skipping only when the matcher declares its bounds "
        "admissible)",
    )
    query.add_argument(
        "--budget-ms",
        type=float,
        default=None,
        metavar="MS",
        help="anytime rerank budget in milliseconds: stop scoring at the "
        "deadline and report the best-effort top-k (flagged partial)",
    )
    query.add_argument(
        "--stats",
        action="store_true",
        help="print per-stage latencies (p50/p95/p99) and pipeline counters "
        "for this query",
    )
    query.add_argument(
        "--trace-json",
        type=Path,
        default=None,
        metavar="PATH",
        help="write the query's spans as a Chrome trace-event JSON file "
        "(open in chrome://tracing or https://ui.perfetto.dev)",
    )

    stats = lake_commands.add_parser(
        "stats",
        help="print store-level statistics (row counts, bytes, hit rates)",
    )
    stats.add_argument("--store", type=Path, default=Path("lake.sketches"), help="store path")
    stats.add_argument(
        "--prepared-store",
        type=Path,
        default=None,
        help="prepared-candidate store path (default: <store>.prepared)",
    )

    serve = lake_commands.add_parser(
        "serve",
        help="run the discovery daemon (/query /stats /healthz over HTTP)",
    )
    serve.add_argument("--store", type=Path, default=Path("lake.sketches"), help="store path")
    serve.add_argument("--method", default="ComaSchema", help="registered matcher name")
    serve.add_argument(
        "--prepared-store",
        type=Path,
        default=None,
        help="prepared-candidate store path (default: <store>.prepared)",
    )
    serve.add_argument("--host", default="127.0.0.1", help="TCP bind address")
    serve.add_argument(
        "--port", type=int, default=8642, help="TCP port (0 for an ephemeral one)"
    )
    serve.add_argument(
        "--unix-socket",
        type=Path,
        default=None,
        metavar="PATH",
        help="serve on this unix-domain socket instead of TCP",
    )
    serve.add_argument(
        "--queue-limit",
        type=int,
        default=32,
        help="bounded admission queue size; requests beyond it get 429",
    )
    serve.add_argument(
        "--batch-max",
        type=int,
        default=8,
        help="micro-batch size: concurrent queries scored per engine pass",
    )
    serve.add_argument(
        "--timeout-s",
        type=float,
        default=30.0,
        metavar="SECONDS",
        help="default per-request deadline (clients can override per query; "
        "expired requests get 504)",
    )
    serve.add_argument(
        "--workers",
        type=int,
        default=None,
        help="rerank process-pool size shared by all requests",
    )
    serve.add_argument(
        "--serial",
        action="store_true",
        help="rerank inline in the dispatcher instead of the process pool",
    )
    serve.add_argument(
        "--cascade",
        action="store_true",
        help="arm the two-stage rerank cascade for every served query "
        "(exact rankings; admissible bounds skip hopeless candidates)",
    )
    serve.add_argument(
        "--reopen-poll-s",
        type=float,
        default=1.0,
        metavar="SECONDS",
        help="how often to poll the stores for a writer cycle (generation "
        "change triggers a graceful engine reopen)",
    )

    publish = lake_commands.add_parser(
        "publish",
        help="export the stores as a content-addressed snapshot artifact",
    )
    publish.add_argument(
        "out_dir", type=Path, help="artifact directory (created or updated in place)"
    )
    publish.add_argument("--store", type=Path, default=Path("lake.sketches"), help="store path")
    publish.add_argument(
        "--prepared-store",
        type=Path,
        default=None,
        help="prepared-candidate store to include (default: <store>.prepared "
        "when it exists)",
    )
    publish.add_argument(
        "--no-prepared",
        action="store_true",
        help="publish sketches only, even when a prepared store exists",
    )
    publish.add_argument(
        "--no-prune",
        action="store_true",
        help="keep blobs of superseded snapshots (for shared blob directories)",
    )
    publish.add_argument(
        "--iblt-cells",
        type=int,
        default=128,
        help="cells per IBLT subtable in the manifest; the default decodes "
        "deltas of roughly 250 keys",
    )

    pull = lake_commands.add_parser(
        "pull",
        help="sync local stores to a published snapshot, fetching only the delta",
    )
    pull.add_argument("src", type=Path, help="artifact directory to pull from")
    pull.add_argument("--store", type=Path, default=Path("lake.sketches"), help="store path")
    pull.add_argument(
        "--prepared-store",
        type=Path,
        default=None,
        help="prepared-candidate store to sync (default: <store>.prepared "
        "when the snapshot carries prepared payloads)",
    )
    pull.add_argument(
        "--no-prepared",
        action="store_true",
        help="sync the sketch store only, ignoring the snapshot's prepared payloads",
    )
    pull.add_argument(
        "--keep-missing",
        action="store_true",
        help="keep local tables and payloads absent from the snapshot "
        "(default: remove them so the replica converges exactly)",
    )
    pull.add_argument(
        "--retry-attempts",
        type=int,
        default=4,
        metavar="N",
        help="max transport attempts per blob before skipping it (default: 4)",
    )
    pull.add_argument(
        "--retry-budget",
        type=int,
        default=64,
        metavar="N",
        help="total retries one pull may spend across all blobs (default: 64)",
    )
    pull.add_argument(
        "--no-resume",
        action="store_true",
        help="ignore an interrupted pull's journal and refetch from scratch",
    )

    verify = lake_commands.add_parser(
        "verify",
        help="cross-check manifest <-> blobs <-> stores and optionally repair",
    )
    verify.add_argument(
        "--store", type=Path, default=Path("lake.sketches"), help="store path"
    )
    verify.add_argument(
        "--prepared-store",
        type=Path,
        default=None,
        help="prepared-candidate store path (default: <store>.prepared when present)",
    )
    verify.add_argument(
        "--artifact",
        type=Path,
        default=None,
        metavar="DIR",
        help="snapshot artifact to cross-check against (and repair from)",
    )
    verify.add_argument(
        "--repair",
        action="store_true",
        help="fix findings: re-sketch from recorded CSVs, prune stale prepared "
        "rows, re-pull missing entries from --artifact",
    )

    watch = lake_commands.add_parser(
        "watch",
        help="poll a CSV directory and ingest changes into the store incrementally",
    )
    watch.add_argument("input", type=Path, help="directory of CSV files (one table each)")
    watch.add_argument("--store", type=Path, default=Path("lake.sketches"), help="store path")
    watch.add_argument(
        "--interval-s",
        type=float,
        default=2.0,
        metavar="SECONDS",
        help="poll interval; idle polls cost one stat() per file",
    )
    watch.add_argument(
        "--max-polls",
        type=int,
        default=None,
        help="stop after this many polls (default: run until interrupted)",
    )
    watch.add_argument(
        "--prepare",
        metavar="METHOD",
        default=None,
        help="also keep the prepared store warm for this matcher after every "
        "mutating poll (stale payloads are pruned)",
    )
    watch.add_argument(
        "--prepared-store",
        type=Path,
        default=None,
        help="prepared-candidate store path (default: <store>.prepared; "
        "only used with --prepare)",
    )
    watch.add_argument(
        "--publish",
        type=Path,
        default=None,
        metavar="DIR",
        help="re-publish a snapshot artifact there after every mutating poll "
        "(O(delta) thanks to content addressing)",
    )
    watch.add_argument(
        "--workers",
        type=int,
        default=None,
        help="process-pool size for re-sketching and re-preparing",
    )

    return parser


def _configure_logging(verbose: int) -> None:
    """Wire stderr logging for the ``repro`` hierarchy per ``-v`` count.

    The library itself only attaches a ``NullHandler``; this is the CLI's
    opt-in.  One ``-v`` debugs the discovery pipeline (``repro.lake``,
    ``repro.discovery``) and keeps the rest at INFO; ``-vv`` debugs the
    whole ``repro.*`` tree.
    """
    if verbose <= 0:
        return
    handler = logging.StreamHandler(sys.stderr)
    handler.setFormatter(logging.Formatter("%(levelname)s %(name)s: %(message)s"))
    root = logging.getLogger("repro")
    root.addHandler(handler)
    if verbose == 1:
        root.setLevel(logging.INFO)
        logging.getLogger("repro.lake").setLevel(logging.DEBUG)
        logging.getLogger("repro.discovery").setLevel(logging.DEBUG)
        logging.getLogger("repro.artifacts").setLevel(logging.DEBUG)
    else:
        root.setLevel(logging.DEBUG)


def _command_coverage() -> int:
    print(render_coverage_table())
    return 0


def _command_parameters(fast: bool) -> int:
    print(render_parameter_grids(default_parameter_grids(fast=fast)))
    return 0


def _command_fabricate(source: str, rows: int, output: Path, scenario: str | None) -> int:
    seed_table = _SOURCES[source](num_rows=rows)
    fabricator = Fabricator(FabricationConfig())
    scenarios = [Scenario(scenario)] if scenario else None
    pairs = fabricator.fabricate(seed_table, scenarios=scenarios)
    output.mkdir(parents=True, exist_ok=True)
    for pair in pairs:
        write_csv(pair.source, output / f"{pair.name}__source.csv")
        write_csv(pair.target, output / f"{pair.name}__target.csv")
        ground_truth_path = output / f"{pair.name}__ground_truth.csv"
        with ground_truth_path.open("w", encoding="utf-8") as handle:
            handle.write("source_column,target_column\n")
            for source_column, target_column in pair.ground_truth:
                handle.write(f"{source_column},{target_column}\n")
    print(f"fabricated {len(pairs)} pairs from {source} into {output}")
    return 0


def _command_run(
    source: str, rows: int, methods: list[str] | None, full_grid: bool, output: Path | None
) -> int:
    seed_table = _SOURCES[source](num_rows=rows)
    fabricator = Fabricator(FabricationConfig())
    pairs = fabricator.fabricate(seed_table)
    grids = default_parameter_grids(fast=not full_grid)
    runner = ExperimentRunner(grids=grids, progress_callback=lambda msg: print("  " + msg))
    print(f"running {runner.total_runs(len(pairs), methods)} experiments over {len(pairs)} pairs")
    results = runner.run_all(pairs, methods=methods)
    print(render_boxplot_figure(results, title=f"Recall@ground-truth summaries ({source})"))
    if output is not None:
        results.to_json(output)
        print(f"results written to {output}")
    return 0


def _command_match(source_csv: Path, target_csv: Path, method: str, top: int) -> int:
    source = read_csv(source_csv)
    target = read_csv(target_csv)
    matcher = create_matcher(method)
    result = matcher.get_matches(source, target)
    for match in result.top_k(top):
        print(f"{match.score:.3f}  {match.source}  ~  {match.target}")
    return 0


def _default_prepared_store_path(store_path: Path) -> Path:
    return store_path.with_name(store_path.name + ".prepared")


def _command_lake_build(
    input_dir: Path, store_path: Path, prune: bool, workers: int | None
) -> int:
    from repro.lake import SketchStore, build_from_paths

    csv_paths = sorted(input_dir.glob("*.csv"))
    if not csv_paths:
        print(f"no CSV files found in {input_dir}", file=sys.stderr)
        return 1
    try:
        store = SketchStore(store_path)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    with store:
        report = build_from_paths(
            store,
            csv_paths,
            workers=workers,
            on_unreadable=lambda message: print(message, file=sys.stderr),
            remove_missing=prune,
        )
    suffix = f", {len(report.removed)} pruned" if prune else ""
    if report.unreadable:
        suffix += f", {len(report.unreadable)} unreadable (skipped)"
    if workers and workers > 1:
        suffix += f" [{workers} workers]"
    print(
        f"store {store_path}: {report.sketched} tables sketched, "
        f"{report.unchanged} unchanged (cache hits){suffix}"
    )
    return 0


def _command_lake_prepare(
    method: str,
    store_path: Path,
    prepared_path: Path | None,
    workers: int | None,
    max_store_mb: float | None,
) -> int:
    from repro.discovery.prepared import PreparedStore
    from repro.lake import SketchStore, prepare_lake

    if not store_path.exists():
        print(f"no sketch store at {store_path}; run `lake build` first", file=sys.stderr)
        return 1
    resolved_prepared = prepared_path or _default_prepared_store_path(store_path)
    max_bytes = None if max_store_mb is None else max(1, int(max_store_mb * 1024 * 1024))
    try:
        store = SketchStore(store_path)
        prepared_store = PreparedStore(resolved_prepared, max_bytes=max_bytes)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    with store, prepared_store:
        report = prepare_lake(store, prepared_store, create_matcher(method), workers=workers)
    suffix = "" if max_bytes is None else f", byte budget {max_store_mb:g} MiB"
    if report.stale_pruned:
        suffix += f", {report.stale_pruned} stale payloads pruned"
    if report.missing:
        suffix += f", {len(report.missing)} missing source CSVs (skipped)"
    if report.stale:
        suffix += (
            f", {len(report.stale)} changed since build "
            "(stored under current content; re-run `lake build`)"
        )
    print(
        f"prepared store {resolved_prepared}: {report.prepared} tables prepared "
        f"with {method}, {report.already_stored} already stored{suffix}"
    )
    return 0


def _command_lake_publish(args: argparse.Namespace) -> int:
    from repro.artifacts import publish_snapshot
    from repro.discovery.prepared import PreparedStore
    from repro.lake import SketchStore

    if not args.store.exists():
        print(f"no sketch store at {args.store}; run `lake build` first", file=sys.stderr)
        return 1
    resolved_prepared = args.prepared_store or _default_prepared_store_path(args.store)
    include_prepared = not args.no_prepared and (
        args.prepared_store is not None or resolved_prepared.exists()
    )
    try:
        store = SketchStore(args.store)
        prepared_store = PreparedStore(resolved_prepared) if include_prepared else None
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    with store:
        try:
            report = publish_snapshot(
                store,
                args.out_dir,
                prepared_store=prepared_store,
                iblt_cells_per_subtable=args.iblt_cells,
                prune=not args.no_prune,
            )
        finally:
            if prepared_store is not None:
                prepared_store.close()
    print(
        f"published {args.out_dir}: snapshot {report.snapshot_id[:12]}, "
        f"{report.tables} tables, {report.prepared} prepared payloads; "
        f"{report.blobs_written} blobs written ({report.bytes_written} bytes), "
        f"{report.blobs_reused} reused, {report.blobs_pruned} pruned"
    )
    return 0


def _command_lake_pull(args: argparse.Namespace) -> int:
    from repro.artifacts import Manifest, RetryPolicy, pull_snapshot
    from repro.discovery.prepared import PreparedStore
    from repro.lake import SketchStore

    try:
        manifest = Manifest.load(args.src)
    except (FileNotFoundError, ValueError) as exc:
        print(str(exc), file=sys.stderr)
        return 1
    resolved_prepared = args.prepared_store or _default_prepared_store_path(args.store)
    include_prepared = not args.no_prepared and bool(manifest.prepared)
    try:
        # A bootstrap pull creates the local store with the snapshot's
        # sketch config; an existing store with a different config refuses.
        store = SketchStore(args.store, config=manifest.sketch_config)
        prepared_store = PreparedStore(resolved_prepared) if include_prepared else None
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    with store:
        try:
            report = pull_snapshot(
                args.src,
                store,
                prepared_store=prepared_store,
                remove_missing=not args.keep_missing,
                retry=RetryPolicy(
                    max_attempts=args.retry_attempts, budget=args.retry_budget
                ),
                resume=not args.no_resume,
            )
        finally:
            if prepared_store is not None:
                prepared_store.close()
    if report.unchanged:
        delta = "already in sync"
    else:
        delta = (
            f"+{report.tables_added}/-{report.tables_removed} tables, "
            f"+{report.prepared_added}/-{report.prepared_removed} prepared"
        )
    via = "full diff" if report.iblt_fallback else "iblt delta"
    print(
        f"pulled {args.src} -> {args.store}: {delta}; "
        f"{report.blobs_fetched} blobs fetched ({report.bytes_fetched} bytes), "
        f"{report.blobs_skipped} already local [{via}]"
    )
    if report.retries:
        print(f"  transport retries: {report.retries}")
    if report.resumed:
        print(
            f"  resumed interrupted pull: {report.resumed_blobs} blobs "
            "already verified, not re-fetched"
        )
    if report.corrupt:
        print(
            f"warning: skipped {len(report.corrupt)} entries with corrupt blobs "
            "(re-run `lake pull` to retry just those)",
            file=sys.stderr,
        )
        return 1
    return 0


def _command_lake_verify(args: argparse.Namespace) -> int:
    from repro.discovery.prepared import PreparedStore
    from repro.lake import SketchStore
    from repro.lake.verify import verify_lake

    if not args.store.exists():
        print(f"no sketch store at {args.store}; run `lake build` first", file=sys.stderr)
        return 1
    resolved_prepared = args.prepared_store or _default_prepared_store_path(args.store)
    include_prepared = args.prepared_store is not None or resolved_prepared.exists()
    try:
        store = SketchStore(args.store)
        prepared_store = PreparedStore(resolved_prepared) if include_prepared else None
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    with store:
        try:
            report = verify_lake(
                store,
                prepared_store=prepared_store,
                source=args.artifact,
                repair=args.repair,
            )
        except (FileNotFoundError, ValueError) as exc:
            print(str(exc), file=sys.stderr)
            return 1
        finally:
            if prepared_store is not None:
                prepared_store.close()
    for label, findings in sorted(report.sqlite_findings.items()):
        print(f"{label}: SQLite integrity_check FAILED ({len(findings)} findings)")
        for finding in findings[:5]:
            print(f"  {finding}")
    if report.bad_sketches:
        print(f"undecodable sketches: {', '.join(sorted(report.bad_sketches))}")
    if report.stale_prepared:
        print(f"stale prepared rows: {report.stale_prepared}")
    if report.missing_blobs:
        print(f"artifact blobs missing/unreadable: {len(report.missing_blobs)}")
    if report.corrupt_blobs:
        print(f"artifact blobs corrupt: {len(report.corrupt_blobs)}")
    if report.missing_entries:
        print(f"manifest entries absent locally: {len(report.missing_entries)}")
    if args.repair:
        print(
            f"repairs: {report.resketched} re-sketched, {report.repulled} "
            f"re-pulled, {report.pruned_prepared} stale prepared rows pruned"
        )
        if report.unrepaired:
            print(f"unrepaired: {', '.join(sorted(set(report.unrepaired)))}")
        if report.healthy_after_repair:
            print("verify: all findings repaired" if not report.clean else "verify: clean")
            return 0
        return 1
    if report.clean:
        print("verify: clean")
        return 0
    return 1


def _command_lake_watch(args: argparse.Namespace) -> int:
    from repro.artifacts import LakeWatcher, WatchReport
    from repro.discovery.prepared import PreparedStore
    from repro.lake import SketchStore

    if not args.input.is_dir():
        print(f"not a directory: {args.input}", file=sys.stderr)
        return 1
    try:
        store = SketchStore(args.store)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    matcher = None
    prepared_store = None
    if args.prepare is not None:
        resolved_prepared = args.prepared_store or _default_prepared_store_path(args.store)
        matcher = create_matcher(args.prepare)
        try:
            prepared_store = PreparedStore(resolved_prepared)
        except ValueError as exc:
            store.close()
            print(str(exc), file=sys.stderr)
            return 1

    def _print_report(report: WatchReport) -> None:
        if not report.changed:
            return
        suffix = "" if report.publish is None else (
            f"; republished {report.publish.snapshot_id[:12]}"
        )
        print(
            f"[watch] {report.seen} files: {report.sketched} sketched, "
            f"{report.removed} removed, {report.prepared} prepared{suffix}",
            flush=True,
        )

    watcher = LakeWatcher(
        store,
        args.input,
        prepared_store=prepared_store,
        matcher=matcher,
        publish_dir=args.publish,
        workers=args.workers,
    )
    with store:
        try:
            polls = watcher.run(
                interval_s=args.interval_s,
                max_polls=args.max_polls,
                on_report=_print_report,
            )
        except KeyboardInterrupt:
            polls = None
        finally:
            if prepared_store is not None:
                prepared_store.close()
    suffix = "interrupted" if polls is None else f"{polls} polls"
    print(f"watch on {args.input} stopped ({suffix}); store {args.store}")
    return 0


def _command_lake_query(
    query_csv: Path,
    store_path: Path,
    mode: str,
    method: str,
    top: int,
    parallel: bool,
    workers: int | None,
    prepared_path: Path | None,
    no_prepared_store: bool,
    show_stats: bool = False,
    trace_json: Path | None = None,
    timeout_s: float | None = None,
    cascade: bool = False,
    budget_ms: float | None = None,
) -> int:
    from repro.serve.admission import DeadlineExpired, run_with_deadline

    # The whole query (store opens included) runs under the deadline in a
    # worker thread: SQLite connections are thread-bound, so the thread
    # that opens the stores must be the one that queries and closes them.
    try:
        return run_with_deadline(
            lambda: _run_lake_query(
                query_csv,
                store_path,
                mode,
                method,
                top,
                parallel,
                workers,
                prepared_path,
                no_prepared_store,
                show_stats,
                trace_json,
                cascade,
                budget_ms,
            ),
            timeout_s,
        )
    except DeadlineExpired as exc:
        print(str(exc), file=sys.stderr)
        return 124


def _run_lake_query(
    query_csv: Path,
    store_path: Path,
    mode: str,
    method: str,
    top: int,
    parallel: bool,
    workers: int | None,
    prepared_path: Path | None,
    no_prepared_store: bool,
    show_stats: bool = False,
    trace_json: Path | None = None,
    cascade: bool = False,
    budget_ms: float | None = None,
) -> int:
    from repro.discovery.prepared import PreparedStore
    from repro.lake import LakeDiscoveryEngine, SketchStore
    from repro.telemetry import TelemetryRecorder, use, write_chrome_trace

    if not store_path.exists():
        print(f"no sketch store at {store_path}; run `lake build` first", file=sys.stderr)
        return 1
    query = read_csv(query_csv)
    try:
        store = SketchStore(store_path)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    prepared_store = None
    if not no_prepared_store:
        # Write-through: the first (cold) query warms this store, later
        # queries with the same matcher config rerank without preparing.
        try:
            prepared_store = PreparedStore(
                prepared_path or _default_prepared_store_path(store_path)
            )
        except ValueError as exc:
            if prepared_path is not None:
                # The user asked for this store explicitly: fail loudly.
                print(str(exc), file=sys.stderr)
                store.close()
                return 1
            # Default path unusable (read-only directory, foreign file):
            # degrade to the cold path instead of failing the query.
            print(f"prepared store unavailable, querying cold: {exc}", file=sys.stderr)
    with store:
        # The engine context releases the persistent rerank pool it lazily
        # creates for the parallel path (a serving process would keep the
        # engine — and its warm workers — alive across queries instead).
        with LakeDiscoveryEngine(
            matcher=create_matcher(method), store=store, prepared_store=prepared_store
        ) as engine:
            # --stats / --trace-json need counters and spans: activate a
            # real recorder for the query.  Without them the default no-op
            # recorder stays in place and instrumentation costs ~nothing.
            if show_stats or trace_json is not None:
                with use(TelemetryRecorder()):
                    results = engine.query(
                        query,
                        mode=mode,
                        top_k=top,
                        parallel=parallel or workers is not None,
                        max_workers=workers,
                        cascade=cascade,
                        budget_ms=budget_ms,
                    )
            else:
                results = engine.query(
                    query,
                    mode=mode,
                    top_k=top,
                    parallel=parallel or workers is not None,
                    max_workers=workers,
                    cascade=cascade,
                    budget_ms=budget_ms,
                )
        stats = engine.last_query_stats
        warm_note = ""
        if prepared_store is not None:
            warm_note = f", {stats.store_hits} served from the prepared store"
            prepared_store.close()
        cascade_note = ""
        if cascade:
            cascade_note = f", {stats.cascade_skipped} skipped by cascade bound"
        print(
            f"query {query.name!r} against {len(store)} tables "
            f"({stats.rerank_count} candidates reranked with {method}"
            f"{warm_note}{cascade_note})"
        )
        if stats.partial:
            print(
                f"note: budget of {budget_ms:g} ms expired before all "
                "candidates were scored — ranking is partial (best-effort)",
                file=sys.stderr,
            )
    for result in results:
        best = result.scores.best_pair
        best_text = f"  via {best[0]} ~ {best[1]}" if best else ""
        print(
            f"join={result.joinability:.3f} union={result.unionability:.3f}  "
            f"{result.table_name}{best_text}"
        )
    if show_stats:
        print()
        print(stats.format_summary())
    if trace_json is not None and stats.snapshot is not None:
        write_chrome_trace(stats.snapshot, trace_json)
        print(f"trace written to {trace_json} (open in chrome://tracing or Perfetto)")
    return 0


def _command_lake_serve(args: argparse.Namespace) -> int:
    from repro.serve import DiscoveryServer, ServeConfig

    if not args.store.exists():
        print(f"no sketch store at {args.store}; run `lake build` first", file=sys.stderr)
        return 1
    config = ServeConfig(
        store_path=args.store,
        method=args.method,
        prepared_path=args.prepared_store,
        host=args.host,
        port=args.port,
        unix_socket=args.unix_socket,
        queue_limit=args.queue_limit,
        batch_max=args.batch_max,
        default_timeout_s=args.timeout_s,
        parallel=not args.serial,
        max_workers=args.workers,
        reopen_poll_s=args.reopen_poll_s,
        cascade=args.cascade,
    )
    try:
        server = DiscoveryServer(config).start()
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    if args.unix_socket is not None:
        where = f"unix:{args.unix_socket}"
    else:
        host, port = server.address
        where = f"http://{host}:{port}"
    print(
        f"serving {args.store} with {args.method} on {where} "
        f"(queue limit {args.queue_limit}, batch max {args.batch_max}; Ctrl-C to stop)"
    )
    server.run_forever()
    return 0


def _command_lake_stats(store_path: Path, prepared_path: Path | None) -> int:
    from repro.discovery.prepared import PreparedStore
    from repro.lake import SketchStore

    if not store_path.exists():
        print(f"no sketch store at {store_path}; run `lake build` first", file=sys.stderr)
        return 1
    try:
        store = SketchStore(store_path)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    with store:
        sketch_stats = store.stats()
    size = store_path.stat().st_size
    print(f"sketch store {store_path} ({size / 1024:.1f} KiB)")
    print(f"  tables:           {sketch_stats['tables']}")
    print(f"  columns:          {sketch_stats['columns']}")
    print(f"  total table rows: {sketch_stats['total_table_rows']}")
    print(f"  store version:    {sketch_stats['version']}")
    _print_last_pull(store_path)
    resolved_prepared = prepared_path or _default_prepared_store_path(store_path)
    if not resolved_prepared.exists():
        print(f"no prepared store at {resolved_prepared}")
        return 0
    try:
        prepared_store = PreparedStore(resolved_prepared)
    except ValueError as exc:
        print(str(exc), file=sys.stderr)
        return 1
    with prepared_store:
        prepared_stats = prepared_store.stats()
    size = resolved_prepared.stat().st_size
    print(f"prepared store {resolved_prepared} ({size / 1024:.1f} KiB)")
    print(f"  rows:             {prepared_stats['rows']}")
    print(f"  payload bytes:    {prepared_stats['total_payload_bytes']}")
    print(f"  entry cap:        {prepared_stats['max_entries']}")
    budget = prepared_stats["max_bytes"]
    print(f"  byte budget:      {budget if budget is not None else 'none'}")
    for fingerprint, per in sorted(prepared_stats["per_fingerprint"].items()):
        print(
            f"  matcher {fingerprint[:12]}…: {per['rows']} rows, "
            f"{per['payload_bytes']} payload bytes"
        )
    return 0


def _print_last_pull(store_path: Path) -> None:
    """Append the last-pull journal summary (if any) to `lake stats` output."""
    from repro.artifacts import PullJournal

    journal_path = PullJournal.default_path(store_path)
    if journal_path is None:
        return
    summary = PullJournal.summarize(journal_path)
    if summary is None:
        return
    state = "complete" if summary["completed"] else "INTERRUPTED (will resume)"
    print(f"last pull ({state})")
    print(f"  snapshot:         {str(summary['snapshot_id'])[:12]}…")
    print(f"  verified entries: {summary['verified_keys']}")
    stats = summary.get("stats") or {}
    if stats:
        print(
            f"  fetched:          {stats.get('blobs_fetched', 0)} blobs "
            f"({stats.get('bytes_fetched', 0)} bytes), "
            f"{stats.get('retries', 0)} retries"
        )


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    _configure_logging(args.verbose)
    if args.command == "coverage":
        return _command_coverage()
    if args.command == "parameters":
        return _command_parameters(args.fast)
    if args.command == "fabricate":
        return _command_fabricate(args.source, args.rows, args.output, args.scenario)
    if args.command == "run":
        return _command_run(args.source, args.rows, args.methods, args.full_grid, args.output)
    if args.command == "match":
        return _command_match(args.source_csv, args.target_csv, args.method, args.top)
    if args.command == "lake":
        if args.lake_command == "build":
            return _command_lake_build(args.input, args.store, args.prune, args.workers)
        if args.lake_command == "prepare":
            return _command_lake_prepare(
                args.method,
                args.store,
                args.prepared_store,
                args.workers,
                args.max_store_mb,
            )
        if args.lake_command == "stats":
            return _command_lake_stats(args.store, args.prepared_store)
        if args.lake_command == "serve":
            return _command_lake_serve(args)
        if args.lake_command == "publish":
            return _command_lake_publish(args)
        if args.lake_command == "pull":
            return _command_lake_pull(args)
        if args.lake_command == "verify":
            return _command_lake_verify(args)
        if args.lake_command == "watch":
            return _command_lake_watch(args)
        return _command_lake_query(
            args.query_csv,
            args.store,
            args.mode,
            args.method,
            args.top,
            args.parallel,
            args.workers,
            args.prepared_store,
            args.no_prepared_store,
            show_stats=args.stats,
            trace_json=args.trace_json,
            timeout_s=args.timeout_s,
            cascade=args.cascade,
            budget_ms=args.budget_ms,
        )
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
