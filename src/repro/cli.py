"""Command-line interface of the Valentine reproduction.

Subcommands:

* ``coverage`` — print the Table I matcher / match-type coverage matrix;
* ``parameters`` — print the Table II parameter grids;
* ``fabricate`` — fabricate dataset pairs from a synthetic seed source and
  write them to CSV files;
* ``run`` — run the experiment grid over fabricated pairs and print the
  Figure 4–6 style summaries;
* ``match`` — match two CSV files with a chosen method and print the ranked
  matches.
"""

from __future__ import annotations

import argparse
import sys
from pathlib import Path

from repro.data.csv_io import read_csv, write_csv
from repro.datasets import chembl_assays_table, open_data_table, tpcdi_prospect_table
from repro.experiments.parameters import default_parameter_grids
from repro.experiments.reports import (
    render_boxplot_figure,
    render_coverage_table,
    render_parameter_grids,
)
from repro.experiments.runner import ExperimentRunner
from repro.fabrication import FabricationConfig, Fabricator, Scenario
from repro.matchers.registry import matcher_class

__all__ = ["main", "build_parser"]

_SOURCES = {
    "tpcdi": tpcdi_prospect_table,
    "opendata": open_data_table,
    "chembl": chembl_assays_table,
}


def build_parser() -> argparse.ArgumentParser:
    """Build the argument parser for the ``valentine-repro`` entry point."""
    parser = argparse.ArgumentParser(
        prog="valentine-repro",
        description="Valentine reproduction: schema matching experiments for dataset discovery",
    )
    subparsers = parser.add_subparsers(dest="command", required=True)

    subparsers.add_parser("coverage", help="print the Table I coverage matrix")

    params = subparsers.add_parser("parameters", help="print the Table II parameter grids")
    params.add_argument("--fast", action="store_true", help="show the thinned laptop-scale grids")

    fabricate = subparsers.add_parser("fabricate", help="fabricate dataset pairs to CSV files")
    fabricate.add_argument("--source", choices=sorted(_SOURCES), default="tpcdi")
    fabricate.add_argument("--rows", type=int, default=400, help="seed table row count")
    fabricate.add_argument("--output", type=Path, default=Path("fabricated_pairs"))
    fabricate.add_argument("--scenario", choices=[s.value for s in Scenario], default=None)

    run = subparsers.add_parser("run", help="run the experiment grid and print summaries")
    run.add_argument("--source", choices=sorted(_SOURCES), default="tpcdi")
    run.add_argument("--rows", type=int, default=200, help="seed table row count")
    run.add_argument("--methods", nargs="*", default=None, help="subset of method names to run")
    run.add_argument("--full-grid", action="store_true", help="use the full Table II grids")
    run.add_argument("--output", type=Path, default=None, help="write results JSON to this path")

    match = subparsers.add_parser("match", help="match two CSV files")
    match.add_argument("source_csv", type=Path)
    match.add_argument("target_csv", type=Path)
    match.add_argument("--method", default="ComaSchema", help="registered matcher name")
    match.add_argument("--top", type=int, default=20, help="number of ranked matches to print")

    return parser


def _command_coverage() -> int:
    print(render_coverage_table())
    return 0


def _command_parameters(fast: bool) -> int:
    print(render_parameter_grids(default_parameter_grids(fast=fast)))
    return 0


def _command_fabricate(source: str, rows: int, output: Path, scenario: str | None) -> int:
    seed_table = _SOURCES[source](num_rows=rows)
    fabricator = Fabricator(FabricationConfig())
    scenarios = [Scenario(scenario)] if scenario else None
    pairs = fabricator.fabricate(seed_table, scenarios=scenarios)
    output.mkdir(parents=True, exist_ok=True)
    for pair in pairs:
        write_csv(pair.source, output / f"{pair.name}__source.csv")
        write_csv(pair.target, output / f"{pair.name}__target.csv")
        ground_truth_path = output / f"{pair.name}__ground_truth.csv"
        with ground_truth_path.open("w", encoding="utf-8") as handle:
            handle.write("source_column,target_column\n")
            for source_column, target_column in pair.ground_truth:
                handle.write(f"{source_column},{target_column}\n")
    print(f"fabricated {len(pairs)} pairs from {source} into {output}")
    return 0


def _command_run(
    source: str, rows: int, methods: list[str] | None, full_grid: bool, output: Path | None
) -> int:
    seed_table = _SOURCES[source](num_rows=rows)
    fabricator = Fabricator(FabricationConfig())
    pairs = fabricator.fabricate(seed_table)
    grids = default_parameter_grids(fast=not full_grid)
    runner = ExperimentRunner(grids=grids, progress_callback=lambda msg: print("  " + msg))
    print(f"running {runner.total_runs(len(pairs), methods)} experiments over {len(pairs)} pairs")
    results = runner.run_all(pairs, methods=methods)
    print(render_boxplot_figure(results, title=f"Recall@ground-truth summaries ({source})"))
    if output is not None:
        results.to_json(output)
        print(f"results written to {output}")
    return 0


def _command_match(source_csv: Path, target_csv: Path, method: str, top: int) -> int:
    source = read_csv(source_csv)
    target = read_csv(target_csv)
    matcher = matcher_class(method)()
    result = matcher.get_matches(source, target)
    for match in result.top_k(top):
        print(f"{match.score:.3f}  {match.source}  ~  {match.target}")
    return 0


def main(argv: list[str] | None = None) -> int:
    """CLI entry point; returns a process exit code."""
    parser = build_parser()
    args = parser.parse_args(argv)
    if args.command == "coverage":
        return _command_coverage()
    if args.command == "parameters":
        return _command_parameters(args.fast)
    if args.command == "fabricate":
        return _command_fabricate(args.source, args.rows, args.output, args.scenario)
    if args.command == "run":
        return _command_run(args.source, args.rows, args.methods, args.full_grid, args.output)
    if args.command == "match":
        return _command_match(args.source_csv, args.target_csv, args.method, args.top)
    parser.error(f"unknown command {args.command!r}")
    return 2


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
