"""Sketching substrate: MinHash signatures for set-overlap estimation."""

from repro.sketches.minhash import (
    MinHashSignature,
    estimate_jaccard,
    minhash_signature,
    minhash_signatures,
)

__all__ = [
    "MinHashSignature",
    "minhash_signature",
    "minhash_signatures",
    "estimate_jaccard",
]
