"""MinHash signatures for set-overlap estimation.

SemProp's syntactic matcher (and several of the dataset discovery systems the
paper surveys, e.g. Aurum and LSH Ensemble) estimate value-set overlap with
MinHash sketches instead of exact set intersection.  This module provides a
deterministic MinHash implementation with Jaccard and containment estimators.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Sequence

import numpy as np

__all__ = ["MinHashSignature", "minhash_signature", "estimate_jaccard"]

_MERSENNE_PRIME = (1 << 61) - 1
_MAX_HASH = (1 << 32) - 1


def _stable_hash(value: str) -> int:
    """Deterministic 32-bit hash of a string (independent of PYTHONHASHSEED)."""
    digest = hashlib.blake2b(value.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") & _MAX_HASH


@dataclass(frozen=True)
class MinHashSignature:
    """A MinHash signature of a value set."""

    values: tuple[int, ...]
    set_size: int

    @property
    def num_permutations(self) -> int:
        return len(self.values)

    def jaccard(self, other: "MinHashSignature") -> float:
        """Estimated Jaccard similarity with another signature."""
        if self.num_permutations != other.num_permutations:
            raise ValueError("signatures must use the same number of permutations")
        if self.num_permutations == 0:
            return 0.0
        equal = sum(1 for a, b in zip(self.values, other.values) if a == b)
        return equal / self.num_permutations

    def containment(self, other: "MinHashSignature") -> float:
        """Estimated containment of this set in *other* (|A∩B| / |A|)."""
        jaccard = self.jaccard(other)
        if self.set_size == 0:
            return 0.0
        union_estimate = (self.set_size + other.set_size) / (1.0 + jaccard) if jaccard >= 0 else 0
        intersection_estimate = jaccard * union_estimate
        return min(1.0, intersection_estimate / self.set_size)


def _permutation_parameters(num_permutations: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    rng = np.random.default_rng(seed)
    a = rng.integers(1, _MERSENNE_PRIME, size=num_permutations, dtype=np.int64)
    b = rng.integers(0, _MERSENNE_PRIME, size=num_permutations, dtype=np.int64)
    return a, b


def minhash_signature(
    values: Iterable[object],
    num_permutations: int = 128,
    seed: int = 7,
) -> MinHashSignature:
    """Compute the MinHash signature of a collection of values.

    Values are rendered as lowercase strings before hashing; the signature is
    empty (all max) for an empty input set.
    """
    if num_permutations <= 0:
        raise ValueError("num_permutations must be positive")
    distinct = {str(v).strip().lower() for v in values}
    a, b = _permutation_parameters(num_permutations, seed)
    if not distinct:
        return MinHashSignature(tuple([_MAX_HASH] * num_permutations), 0)
    hashes = np.array([_stable_hash(value) for value in distinct], dtype=np.int64)
    # (a * h + b) mod p, truncated to 32 bits — vectorised across permutations.
    products = (np.outer(hashes, a) + b) % _MERSENNE_PRIME
    signature = (products & _MAX_HASH).min(axis=0)
    return MinHashSignature(tuple(int(x) for x in signature), len(distinct))


def estimate_jaccard(
    values_a: Iterable[object],
    values_b: Iterable[object],
    num_permutations: int = 128,
    seed: int = 7,
) -> float:
    """Convenience: estimated Jaccard similarity of two raw value collections."""
    signature_a = minhash_signature(values_a, num_permutations=num_permutations, seed=seed)
    signature_b = minhash_signature(values_b, num_permutations=num_permutations, seed=seed)
    return signature_a.jaccard(signature_b)
