"""MinHash signatures for set-overlap estimation.

SemProp's syntactic matcher (and several of the dataset discovery systems the
paper surveys, e.g. Aurum and LSH Ensemble) estimate value-set overlap with
MinHash sketches instead of exact set intersection.  This module provides a
deterministic MinHash implementation with Jaccard and containment estimators.

The implementation is fully batched: every distinct value across a batch of
value sets is digested exactly once into a ``uint64`` hash array, the
``(a * h + b) mod p`` permutation family is applied to the whole array via
broadcast arithmetic, and the per-set minima come from one segmented
reduction.  A pure-Python reference (:func:`minhash_signatures_scalar`)
computes bit-identical signatures value by value; it exists so tests and
benchmarks can verify the vectorized path against an independent
implementation (see ``benchmarks/bench_warm_lake_query.py``).
"""

from __future__ import annotations

import functools
import hashlib
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = [
    "MinHashSignature",
    "minhash_signature",
    "minhash_signatures",
    "minhash_signatures_scalar",
    "hash_normalized_values",
    "minhash_signatures_from_hashes",
    "jaccard_matrix",
    "estimate_jaccard",
]

_MERSENNE_PRIME = (1 << 61) - 1
_MAX_HASH = (1 << 32) - 1


@functools.lru_cache(maxsize=1 << 16)
def _stable_hash(value: str) -> int:
    """Deterministic 32-bit hash of a string (independent of PYTHONHASHSEED).

    The scalar twin of :func:`hash_normalized_values`: one blake2b digest
    truncated to 32 bits.  Kept (and cached) for the callers that hash single
    values on demand — the hashed-rank histogram domain and the scalar
    reference path — while the batch pipeline hashes whole arrays at once.
    """
    digest = hashlib.blake2b(value.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") & _MAX_HASH


def hash_normalized_values(values: Iterable[str]) -> np.ndarray:
    """Hash already-normalised strings into a ``uint64`` array in one pass.

    Produces exactly ``[_stable_hash(v) for v in values]`` but builds the
    digests into one contiguous buffer and converts with a single
    ``np.frombuffer`` instead of a per-value ``int.from_bytes`` round trip.
    Callers are expected to have normalised (stripped/lowercased) and
    deduplicated the values already.
    """
    blake2b = hashlib.blake2b
    buffer = b"".join(
        blake2b(value.encode("utf-8"), digest_size=8).digest() for value in values
    )
    if not buffer:
        return np.empty(0, dtype=np.uint64)
    return np.frombuffer(buffer, dtype="<u8").astype(np.uint64) & np.uint64(_MAX_HASH)


@dataclass(frozen=True)
class MinHashSignature:
    """A MinHash signature of a value set."""

    values: tuple[int, ...]
    set_size: int

    @property
    def num_permutations(self) -> int:
        return len(self.values)

    @property
    def _vector(self) -> np.ndarray:
        """The signature as a uint64 array, built once per instance.

        Cached outside the dataclass fields (equality/hash ignore it) so
        repeated Jaccard estimates — an LSH index refines every bucket
        collision with one — compare arrays instead of looping in Python.
        """
        vector = self.__dict__.get("_vector_cache")
        if vector is None:
            vector = np.asarray(self.values, dtype=np.uint64)
            object.__setattr__(self, "_vector_cache", vector)
        return vector

    def __getstate__(self) -> tuple[tuple[int, ...], int]:
        # Drop the cached vector: pickled signatures (prepared-table store,
        # rerank worker processes) carry only the canonical fields.
        return (self.values, self.set_size)

    def __setstate__(self, state: tuple[tuple[int, ...], int]) -> None:
        object.__setattr__(self, "values", state[0])
        object.__setattr__(self, "set_size", state[1])

    def jaccard(self, other: "MinHashSignature") -> float:
        """Estimated Jaccard similarity with another signature."""
        if self.num_permutations != other.num_permutations:
            raise ValueError("signatures must use the same number of permutations")
        if self.num_permutations == 0:
            return 0.0
        equal = int(np.count_nonzero(self._vector == other._vector))
        return equal / self.num_permutations

    def containment(self, other: "MinHashSignature") -> float:
        """Estimated containment of this set in *other* (|A∩B| / |A|)."""
        jaccard = self.jaccard(other)
        if self.set_size == 0:
            return 0.0
        union_estimate = (self.set_size + other.set_size) / (1.0 + jaccard) if jaccard >= 0 else 0
        intersection_estimate = jaccard * union_estimate
        return min(1.0, intersection_estimate / self.set_size)


def _permutation_parameters(num_permutations: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """Multipliers/offsets of the ``(a*h + b) mod p`` permutation family.

    ``a`` and ``b`` are drawn below 2^32 so that with 32-bit value hashes the
    product ``a*h + b`` stays below 2^64 and the modular reduction is *exact*
    in uint64 arithmetic — no silent wrap-around before the ``mod p``.
    """
    rng = np.random.default_rng(seed)
    a = rng.integers(1, _MAX_HASH + 1, size=num_permutations, dtype=np.uint64)
    b = rng.integers(0, _MAX_HASH + 1, size=num_permutations, dtype=np.uint64)
    return a, b


def minhash_signature(
    values: Iterable[object],
    num_permutations: int = 128,
    seed: int = 7,
) -> MinHashSignature:
    """Compute the MinHash signature of a collection of values.

    Values are rendered as lowercase strings before hashing; the signature is
    empty (all max) for an empty input set.  This is the batch path of
    :func:`minhash_signatures` applied to a single collection, so store and
    query sketches can never drift apart.
    """
    return minhash_signatures([values], num_permutations=num_permutations, seed=seed)[0]


#: Upper bound on ``distinct values x permutations`` products materialised at
#: once by :func:`minhash_signatures_from_hashes`; keeps peak memory flat on
#: large lakes.
_BATCH_CELL_BUDGET = 4_000_000


def minhash_signatures(
    value_sets: Sequence[Iterable[object]],
    num_permutations: int = 128,
    seed: int = 7,
) -> list[MinHashSignature]:
    """Compute MinHash signatures for many value collections in one pass.

    Equivalent to ``[minhash_signature(v, ...) for v in value_sets]`` but
    amortises the expensive parts across the whole batch: every distinct
    normalised string in the batch is digested exactly once (values shared
    across columns are interned, not re-hashed), the digests land in one
    ``uint64`` array, and the ``(a * h + b) mod p`` permutation products are
    computed as chunked matrix operations with a segmented min
    (``np.minimum.reduceat``) instead of a per-value Python loop.
    """
    interned: dict[str, int] = {}
    column_indices: list[np.ndarray] = []
    for values in value_sets:
        distinct = {str(v).strip().lower() for v in values}
        slots = [interned.setdefault(value, len(interned)) for value in distinct]
        column_indices.append(np.asarray(slots, dtype=np.intp))
    all_hashes = hash_normalized_values(interned)
    hash_arrays = [all_hashes[indices] for indices in column_indices]
    return minhash_signatures_from_hashes(
        hash_arrays, num_permutations=num_permutations, seed=seed
    )


def minhash_signatures_from_hashes(
    hash_arrays: Sequence[np.ndarray],
    num_permutations: int = 128,
    seed: int = 7,
) -> list[MinHashSignature]:
    """Signatures from precomputed 32-bit value hashes (one array per set).

    The entry point for callers that already hold the hashed distinct values
    — :func:`repro.lake.profiles.sketch_table` hashes each column once and
    shares the array between the MinHash and histogram passes.  Hash arrays
    must come from :func:`hash_normalized_values` (or equal
    :func:`_stable_hash` values) with one entry per *distinct* value.
    """
    if num_permutations <= 0:
        raise ValueError("num_permutations must be positive")
    a, b = _permutation_parameters(num_permutations, seed)

    empty = MinHashSignature(tuple([_MAX_HASH] * num_permutations), 0)
    signatures: list[Optional[MinHashSignature]] = [None] * len(hash_arrays)

    chunk_rows = max(1, _BATCH_CELL_BUDGET // num_permutations)
    chunk_arrays: list[np.ndarray] = []  # hash arrays of the columns in flight
    chunk_length = 0
    chunk_members: list[int] = []  # column index per segment
    chunk_offsets: list[int] = []  # segment start per column

    def _flush() -> None:
        nonlocal chunk_length
        if not chunk_members:
            return
        hashes = np.concatenate(chunk_arrays)
        # (a * h + b) mod p, truncated to 32 bits — exact: h, a, b < 2^32
        # keep every intermediate below 2^64.
        products = (np.outer(hashes, a) + b) % np.uint64(_MERSENNE_PRIME)
        mins = np.minimum.reduceat(products & np.uint64(_MAX_HASH), np.asarray(chunk_offsets))
        for row, column_index in enumerate(chunk_members):
            signatures[column_index] = MinHashSignature(
                tuple(mins[row].tolist()),
                int(hash_arrays[column_index].size),
            )
        chunk_arrays.clear()
        chunk_members.clear()
        chunk_offsets.clear()
        chunk_length = 0

    for column_index, hashes in enumerate(hash_arrays):
        if hashes.size == 0:
            signatures[column_index] = empty
            continue
        if chunk_length and chunk_length + hashes.size > chunk_rows:
            _flush()
        chunk_offsets.append(chunk_length)
        chunk_members.append(column_index)
        chunk_arrays.append(np.ascontiguousarray(hashes, dtype=np.uint64))
        chunk_length += int(hashes.size)
    _flush()
    return [sig if sig is not None else empty for sig in signatures]


def minhash_signatures_scalar(
    value_sets: Sequence[Iterable[object]],
    num_permutations: int = 128,
    seed: int = 7,
) -> list[MinHashSignature]:
    """Pure-Python reference implementation of :func:`minhash_signatures`.

    One :func:`_stable_hash` call per distinct value and one Python-level
    ``(a*h + b) mod p`` loop per permutation — the pre-vectorization hot
    path, kept as an independently-written oracle.  Tests assert the NumPy
    batch path produces bit-identical signatures; the warm-lake benchmark
    measures its speedup over this function.
    """
    if num_permutations <= 0:
        raise ValueError("num_permutations must be positive")
    a, b = _permutation_parameters(num_permutations, seed)
    a_ints = [int(x) for x in a]
    b_ints = [int(x) for x in b]

    signatures = []
    for values in value_sets:
        distinct = {str(v).strip().lower() for v in values}
        hashes = [_stable_hash(value) for value in distinct]
        if not hashes:
            signatures.append(MinHashSignature(tuple([_MAX_HASH] * num_permutations), 0))
            continue
        signature = tuple(
            min(((a_i * h + b_i) % _MERSENNE_PRIME) & _MAX_HASH for h in hashes)
            for a_i, b_i in zip(a_ints, b_ints)
        )
        signatures.append(MinHashSignature(signature, len(hashes)))
    return signatures


def jaccard_matrix(
    signatures_a: Sequence[MinHashSignature],
    signatures_b: Sequence[MinHashSignature],
) -> np.ndarray:
    """Pairwise estimated Jaccard similarities between two signature lists.

    ``result[i, j] == signatures_a[i].jaccard(signatures_b[j])`` bit for bit
    (one equality count per pair, divided by the permutation count), but the
    whole ``len(a) x len(b)`` grid is computed as a single broadcast
    comparison — the shape every all-pairs column matcher needs.
    """
    if not signatures_a or not signatures_b:
        return np.zeros((len(signatures_a), len(signatures_b)), dtype=float)
    num_permutations = signatures_a[0].num_permutations
    for signature in (*signatures_a, *signatures_b):
        if signature.num_permutations != num_permutations:
            raise ValueError("signatures must use the same number of permutations")
    if num_permutations == 0:
        return np.zeros((len(signatures_a), len(signatures_b)), dtype=float)
    matrix_a = np.stack([signature._vector for signature in signatures_a])
    matrix_b = np.stack([signature._vector for signature in signatures_b])
    equal = (matrix_a[:, None, :] == matrix_b[None, :, :]).sum(axis=2)
    return equal / num_permutations


def estimate_jaccard(
    values_a: Iterable[object],
    values_b: Iterable[object],
    num_permutations: int = 128,
    seed: int = 7,
) -> float:
    """Convenience: estimated Jaccard similarity of two raw value collections.

    Both collections are sketched in one :func:`minhash_signatures` batch
    (shared values hashed once) and compared with the vectorized
    :meth:`MinHashSignature.jaccard`.
    """
    signature_a, signature_b = minhash_signatures(
        [values_a, values_b], num_permutations=num_permutations, seed=seed
    )
    return signature_a.jaccard(signature_b)
