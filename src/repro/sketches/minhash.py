"""MinHash signatures for set-overlap estimation.

SemProp's syntactic matcher (and several of the dataset discovery systems the
paper surveys, e.g. Aurum and LSH Ensemble) estimate value-set overlap with
MinHash sketches instead of exact set intersection.  This module provides a
deterministic MinHash implementation with Jaccard and containment estimators.
"""

from __future__ import annotations

import functools
import hashlib
from dataclasses import dataclass
from typing import Iterable, Optional, Sequence

import numpy as np

__all__ = [
    "MinHashSignature",
    "minhash_signature",
    "minhash_signatures",
    "estimate_jaccard",
]

_MERSENNE_PRIME = (1 << 61) - 1
_MAX_HASH = (1 << 32) - 1


@functools.lru_cache(maxsize=1 << 16)
def _stable_hash(value: str) -> int:
    """Deterministic 32-bit hash of a string (independent of PYTHONHASHSEED).

    Cached so repeated values across a lake — and the histogram pass reusing
    the values the MinHash pass already hashed — cost one digest each.  The
    size is bounded (~64k entries) so long-lived processes don't pin every
    distinct cell value they ever sketched.
    """
    digest = hashlib.blake2b(value.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "little") & _MAX_HASH


@dataclass(frozen=True)
class MinHashSignature:
    """A MinHash signature of a value set."""

    values: tuple[int, ...]
    set_size: int

    @property
    def num_permutations(self) -> int:
        return len(self.values)

    def jaccard(self, other: "MinHashSignature") -> float:
        """Estimated Jaccard similarity with another signature."""
        if self.num_permutations != other.num_permutations:
            raise ValueError("signatures must use the same number of permutations")
        if self.num_permutations == 0:
            return 0.0
        equal = sum(1 for a, b in zip(self.values, other.values) if a == b)
        return equal / self.num_permutations

    def containment(self, other: "MinHashSignature") -> float:
        """Estimated containment of this set in *other* (|A∩B| / |A|)."""
        jaccard = self.jaccard(other)
        if self.set_size == 0:
            return 0.0
        union_estimate = (self.set_size + other.set_size) / (1.0 + jaccard) if jaccard >= 0 else 0
        intersection_estimate = jaccard * union_estimate
        return min(1.0, intersection_estimate / self.set_size)


def _permutation_parameters(num_permutations: int, seed: int) -> tuple[np.ndarray, np.ndarray]:
    """Multipliers/offsets of the ``(a*h + b) mod p`` permutation family.

    ``a`` and ``b`` are drawn below 2^32 so that with 32-bit value hashes the
    product ``a*h + b`` stays below 2^64 and the modular reduction is *exact*
    in uint64 arithmetic — no silent wrap-around before the ``mod p``.
    """
    rng = np.random.default_rng(seed)
    a = rng.integers(1, _MAX_HASH + 1, size=num_permutations, dtype=np.uint64)
    b = rng.integers(0, _MAX_HASH + 1, size=num_permutations, dtype=np.uint64)
    return a, b


def minhash_signature(
    values: Iterable[object],
    num_permutations: int = 128,
    seed: int = 7,
) -> MinHashSignature:
    """Compute the MinHash signature of a collection of values.

    Values are rendered as lowercase strings before hashing; the signature is
    empty (all max) for an empty input set.  This is the batch path of
    :func:`minhash_signatures` applied to a single collection, so store and
    query sketches can never drift apart.
    """
    return minhash_signatures([values], num_permutations=num_permutations, seed=seed)[0]


#: Upper bound on ``distinct values x permutations`` products materialised at
#: once by :func:`minhash_signatures`; keeps peak memory flat on large lakes.
_BATCH_CELL_BUDGET = 4_000_000


def minhash_signatures(
    value_sets: Sequence[Iterable[object]],
    num_permutations: int = 128,
    seed: int = 7,
) -> list[MinHashSignature]:
    """Compute MinHash signatures for many value collections in one pass.

    Equivalent to ``[minhash_signature(v, ...) for v in value_sets]`` but
    amortises the expensive parts across the whole batch: distinct strings
    repeated across columns share one digest (via the bounded
    :func:`_stable_hash` cache, so the dedup is best-effort beyond its size),
    and the ``(a * h + b) mod p`` permutation products are computed as
    chunked matrix operations with a segmented min (``np.minimum.reduceat``)
    instead of a per-column Python loop.
    """
    if num_permutations <= 0:
        raise ValueError("num_permutations must be positive")
    a, b = _permutation_parameters(num_permutations, seed)

    column_hashes: list[list[int]] = []
    for values in value_sets:
        distinct = {str(v).strip().lower() for v in values}
        # _stable_hash is lru-cached, so values shared across columns (or
        # with the histogram pass) are digested once per lake, not per use.
        column_hashes.append([_stable_hash(value) for value in distinct])

    empty = MinHashSignature(tuple([_MAX_HASH] * num_permutations), 0)
    signatures: list[Optional[MinHashSignature]] = [None] * len(column_hashes)

    chunk_rows = max(1, _BATCH_CELL_BUDGET // num_permutations)
    chunk: list[int] = []          # flattened hashes of the columns in flight
    chunk_members: list[int] = []  # column index per segment
    chunk_offsets: list[int] = []  # segment start per column

    def _flush() -> None:
        if not chunk_members:
            return
        hashes = np.asarray(chunk, dtype=np.uint64)
        # (a * h + b) mod p, truncated to 32 bits — exact: h, a, b < 2^32
        # keep every intermediate below 2^64.
        products = (np.outer(hashes, a) + b) % np.uint64(_MERSENNE_PRIME)
        mins = np.minimum.reduceat(products & np.uint64(_MAX_HASH), np.asarray(chunk_offsets))
        for row, column_index in enumerate(chunk_members):
            signatures[column_index] = MinHashSignature(
                tuple(int(x) for x in mins[row]),
                len(column_hashes[column_index]),
            )
        chunk.clear()
        chunk_members.clear()
        chunk_offsets.clear()

    for column_index, hashes in enumerate(column_hashes):
        if not hashes:
            signatures[column_index] = empty
            continue
        if chunk and len(chunk) + len(hashes) > chunk_rows:
            _flush()
        chunk_offsets.append(len(chunk))
        chunk_members.append(column_index)
        chunk.extend(hashes)
    _flush()
    return [sig if sig is not None else empty for sig in signatures]


def estimate_jaccard(
    values_a: Iterable[object],
    values_b: Iterable[object],
    num_permutations: int = 128,
    seed: int = 7,
) -> float:
    """Convenience: estimated Jaccard similarity of two raw value collections."""
    signature_a = minhash_signature(values_a, num_permutations=num_permutations, seed=seed)
    signature_b = minhash_signature(values_b, num_permutations=num_permutations, seed=seed)
    return signature_a.jaccard(signature_b)
