"""Graph substrate: schema graphs and similarity propagation."""

from repro.graphmodel.propagation import (
    PropagationConfig,
    build_propagation_graph,
    similarity_flood,
)
from repro.graphmodel.schema_graph import (
    NodeKind,
    SchemaNode,
    build_schema_graph,
    pairwise_connectivity_graph,
)

__all__ = [
    "NodeKind",
    "SchemaNode",
    "build_schema_graph",
    "pairwise_connectivity_graph",
    "PropagationConfig",
    "build_propagation_graph",
    "similarity_flood",
]
