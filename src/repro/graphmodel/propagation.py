"""Similarity propagation (the "flooding" fixpoint of Similarity Flooding).

Given a pairwise connectivity graph and initial similarity scores, the
algorithm builds an *induced propagation graph* whose edge weights are
propagation coefficients, then iterates a fixpoint computation in which every
map pair propagates part of its similarity to its neighbours, until the
similarity vector stabilises (Euclidean residual below a threshold) or an
iteration cap is reached.

The propagation coefficient policy and the fixpoint formula follow the
variants named in the paper's configuration (Table II): ``inverse_average``
coefficients and fixpoint formula "C" (``sigma_i+1 = normalize(sigma_0 +
sigma_i + phi(sigma_0 + sigma_i))``).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Hashable, Mapping

import networkx as nx

__all__ = ["PropagationConfig", "build_propagation_graph", "similarity_flood"]

PairNode = Hashable


@dataclass(frozen=True)
class PropagationConfig:
    """Configuration of the similarity flooding fixpoint.

    Attributes
    ----------
    coefficient_policy:
        ``"inverse_average"`` (paper default) or ``"inverse_product"``.
    fixpoint_formula:
        One of ``"basic"``, ``"a"``, ``"b"``, ``"c"`` — the variants from the
        Similarity Flooding paper; ``"c"`` is the paper default.
    max_iterations:
        Iteration cap.
    residual_threshold:
        Euclidean residual below which the fixpoint is declared converged.
    """

    coefficient_policy: str = "inverse_average"
    fixpoint_formula: str = "c"
    max_iterations: int = 200
    residual_threshold: float = 1e-3

    def __post_init__(self) -> None:
        if self.coefficient_policy not in ("inverse_average", "inverse_product"):
            raise ValueError(f"unknown coefficient policy {self.coefficient_policy!r}")
        if self.fixpoint_formula not in ("basic", "a", "b", "c"):
            raise ValueError(f"unknown fixpoint formula {self.fixpoint_formula!r}")


def build_propagation_graph(
    pcg: nx.DiGraph, config: PropagationConfig | None = None
) -> nx.DiGraph:
    """Attach propagation coefficients to a pairwise connectivity graph.

    For every PCG edge ``u --label--> v`` two weighted edges are created in
    the propagation graph: ``u -> v`` and ``v -> u``.  With the
    ``inverse_average`` policy the weight of edges leaving *u* for label *l*
    is ``1 / n`` where *n* is the number of label-*l* edges incident to *u*
    in that direction (out-edges for forward propagation, in-edges for the
    backward direction).
    """
    config = config or PropagationConfig()
    propagation = nx.DiGraph()
    propagation.add_nodes_from(pcg.nodes())

    out_counts: dict[tuple[PairNode, str], int] = {}
    in_counts: dict[tuple[PairNode, str], int] = {}
    for source, target, data in pcg.edges(data=True):
        label = data.get("label", "")
        out_counts[(source, label)] = out_counts.get((source, label), 0) + 1
        in_counts[(target, label)] = in_counts.get((target, label), 0) + 1

    for source, target, data in pcg.edges(data=True):
        label = data.get("label", "")
        if config.coefficient_policy == "inverse_average":
            forward = 1.0 / out_counts[(source, label)]
            backward = 1.0 / in_counts[(target, label)]
        else:  # inverse_product
            product = out_counts[(source, label)] * in_counts[(target, label)]
            forward = backward = 1.0 / product
        _accumulate_edge(propagation, source, target, forward)
        _accumulate_edge(propagation, target, source, backward)
    return propagation


def _accumulate_edge(graph: nx.DiGraph, source: PairNode, target: PairNode, weight: float) -> None:
    if graph.has_edge(source, target):
        graph[source][target]["weight"] += weight
    else:
        graph.add_edge(source, target, weight=weight)


def _propagate(
    graph: nx.DiGraph, sigma: Mapping[PairNode, float]
) -> dict[PairNode, float]:
    """One propagation step: phi(sigma)[v] = sum over in-edges of w * sigma[u]."""
    result: dict[PairNode, float] = {node: 0.0 for node in graph.nodes()}
    for source, target, data in graph.edges(data=True):
        result[target] += data["weight"] * sigma.get(source, 0.0)
    return result


def similarity_flood(
    pcg: nx.DiGraph,
    initial_similarity: Mapping[PairNode, float],
    config: PropagationConfig | None = None,
) -> dict[PairNode, float]:
    """Run the similarity-flooding fixpoint and return final similarities.

    Parameters
    ----------
    pcg:
        Pairwise connectivity graph.
    initial_similarity:
        Initial similarity sigma_0 per map pair; missing pairs default to 0.
    config:
        Fixpoint configuration.
    """
    config = config or PropagationConfig()
    propagation = build_propagation_graph(pcg, config)
    nodes = list(propagation.nodes())
    if not nodes:
        return {}

    sigma0 = {node: float(initial_similarity.get(node, 0.0)) for node in nodes}
    sigma = dict(sigma0)

    for _ in range(config.max_iterations):
        if config.fixpoint_formula == "basic":
            base = sigma
            increment = _propagate(propagation, sigma)
            updated = {node: base[node] + increment[node] for node in nodes}
        elif config.fixpoint_formula == "a":
            increment = _propagate(propagation, sigma)
            updated = {node: sigma0[node] + increment[node] for node in nodes}
        elif config.fixpoint_formula == "b":
            combined = {node: sigma0[node] + sigma[node] for node in nodes}
            increment = _propagate(propagation, combined)
            updated = dict(increment)
        else:  # formula "c"
            combined = {node: sigma0[node] + sigma[node] for node in nodes}
            increment = _propagate(propagation, combined)
            updated = {node: combined[node] + increment[node] for node in nodes}

        maximum = max(updated.values()) if updated else 0.0
        if maximum > 0:
            updated = {node: value / maximum for node, value in updated.items()}

        residual = sum((updated[node] - sigma[node]) ** 2 for node in nodes) ** 0.5
        sigma = updated
        if residual < config.residual_threshold:
            break
    return sigma
