"""Directed labelled graphs describing relational schemata.

Similarity Flooding operates on directed graphs with labelled edges derived
from the two input schemata.  For tabular data the paper-standard encoding
(following Melnik et al.'s relational example) represents each table, column,
column name, data type and the relationships between them as nodes/edges:

* ``Table --name--> NameLiteral``
* ``Table --column--> Column``
* ``Column --name--> NameLiteral``
* ``Column --type--> TypeLiteral``

The module builds these graphs with ``networkx`` and exposes the node kinds
so matchers can filter the correspondences they care about (column ↔ column).
"""

from __future__ import annotations

from dataclasses import dataclass
from enum import Enum
from typing import Iterable

import networkx as nx

from repro.data.table import Table

__all__ = ["NodeKind", "SchemaNode", "build_schema_graph", "pairwise_connectivity_graph"]


class NodeKind(str, Enum):
    """The role a node plays in a schema graph."""

    TABLE = "table"
    COLUMN = "column"
    NAME = "name"
    TYPE = "type"


@dataclass(frozen=True, order=True)
class SchemaNode:
    """A node of a schema graph.

    ``identifier`` disambiguates nodes of the same kind (e.g. two columns);
    literal nodes (names, types) share identity when their text is equal,
    which is what lets Similarity Flooding propagate similarity through
    shared labels.
    """

    kind: NodeKind
    identifier: str

    def __str__(self) -> str:  # pragma: no cover - debugging aid
        return f"{self.kind.value}:{self.identifier}"


def build_schema_graph(table: Table) -> nx.DiGraph:
    """Build the directed labelled schema graph of *table*."""
    graph = nx.DiGraph(table_name=table.name)
    table_node = SchemaNode(NodeKind.TABLE, table.name)
    table_name_node = SchemaNode(NodeKind.NAME, table.name.lower())
    graph.add_node(table_node)
    graph.add_node(table_name_node)
    graph.add_edge(table_node, table_name_node, label="name")
    for column in table.columns:
        column_node = SchemaNode(NodeKind.COLUMN, f"{table.name}.{column.name}")
        name_node = SchemaNode(NodeKind.NAME, column.name.lower())
        type_node = SchemaNode(NodeKind.TYPE, column.data_type.value)
        graph.add_node(column_node)
        graph.add_node(name_node)
        graph.add_node(type_node)
        graph.add_edge(table_node, column_node, label="column")
        graph.add_edge(column_node, name_node, label="name")
        graph.add_edge(column_node, type_node, label="type")
    return graph


def pairwise_connectivity_graph(
    graph_a: nx.DiGraph, graph_b: nx.DiGraph
) -> nx.DiGraph:
    """Build the pairwise connectivity graph (PCG) of two schema graphs.

    Nodes are pairs ``(a, b)`` with ``a`` from *graph_a* and ``b`` from
    *graph_b``; there is an edge ``(a1, b1) --label--> (a2, b2)`` whenever both
    input graphs have an edge with that label between the respective nodes.
    Only node pairs that participate in at least one such shared-label edge
    appear in the PCG, as in the original algorithm.
    """
    pcg = nx.DiGraph()
    edges_by_label_b: dict[str, list[tuple]] = {}
    for source_b, target_b, data in graph_b.edges(data=True):
        edges_by_label_b.setdefault(data.get("label", ""), []).append((source_b, target_b))

    for source_a, target_a, data in graph_a.edges(data=True):
        label = data.get("label", "")
        for source_b, target_b in edges_by_label_b.get(label, ()):
            pair_source = (source_a, source_b)
            pair_target = (target_a, target_b)
            pcg.add_edge(pair_source, pair_target, label=label)
    return pcg
