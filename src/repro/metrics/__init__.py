"""Effectiveness metrics: ranked-list and classic 1-1 measures."""

from repro.metrics.one_to_one import OneToOneScores, precision_recall_f1
from repro.metrics.ranking import (
    average_precision,
    ndcg_at_k,
    precision_at_k,
    recall_at_ground_truth,
    recall_at_k,
    reciprocal_rank,
)

__all__ = [
    "recall_at_ground_truth",
    "precision_at_k",
    "recall_at_k",
    "reciprocal_rank",
    "average_precision",
    "ndcg_at_k",
    "OneToOneScores",
    "precision_recall_f1",
]
