"""Classic 1-1 matching metrics (precision, recall, F1).

The paper argues these are ill-suited to dataset discovery (which needs
ranked outputs) and excludes them from its evaluation; they are provided here
for completeness, for the ablation benchmarks that contrast the two
evaluation styles, and for users who want a traditional matcher evaluation.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterable

__all__ = ["OneToOneScores", "precision_recall_f1"]

Pair = tuple[str, str]


@dataclass(frozen=True)
class OneToOneScores:
    """Precision / recall / F1 of a predicted match set."""

    precision: float
    recall: float
    f1: float
    true_positives: int
    false_positives: int
    false_negatives: int


def precision_recall_f1(predicted: Iterable[Pair], ground_truth: Iterable[Pair]) -> OneToOneScores:
    """Compute set-based precision, recall and F1 of predicted matches."""
    predicted_set = {(str(a), str(b)) for a, b in predicted}
    truth_set = {(str(a), str(b)) for a, b in ground_truth}
    true_positives = len(predicted_set & truth_set)
    false_positives = len(predicted_set - truth_set)
    false_negatives = len(truth_set - predicted_set)
    precision = true_positives / len(predicted_set) if predicted_set else 0.0
    recall = true_positives / len(truth_set) if truth_set else 0.0
    f1 = (
        2 * precision * recall / (precision + recall)
        if (precision + recall) > 0
        else 0.0
    )
    return OneToOneScores(
        precision=precision,
        recall=recall,
        f1=f1,
        true_positives=true_positives,
        false_positives=false_positives,
        false_negatives=false_negatives,
    )
