"""Ranked-list effectiveness metrics.

The paper's headline metric is **Recall@ground-truth** (Section II-C): with
``k = |ground truth|``, the fraction of the top-*k* ranked matches that are
relevant.  Because *k* equals the ground-truth size, the measure coincides
with Precision@ground-truth.  Additional ranked metrics (precision@k,
recall@k, reciprocal rank, average precision) are provided for completeness
and used in ablation benchmarks.
"""

from __future__ import annotations

from typing import Iterable, Sequence

__all__ = [
    "recall_at_ground_truth",
    "precision_at_k",
    "recall_at_k",
    "reciprocal_rank",
    "average_precision",
    "ndcg_at_k",
]

Pair = tuple[str, str]


def _normalise_pairs(pairs: Iterable[Pair]) -> list[Pair]:
    return [(str(a), str(b)) for a, b in pairs]


def _relevant_in_top_k(ranked_pairs: Sequence[Pair], truth: set[Pair], k: int) -> int:
    """Number of *distinct* ground-truth pairs appearing in the top-*k*.

    Rankings may in principle contain duplicate pairs; each ground-truth pair
    is counted at most once so metrics stay within [0, 1].
    """
    top_k = _normalise_pairs(ranked_pairs)[:k]
    return len({pair for pair in top_k if pair in truth})


def recall_at_ground_truth(ranked_pairs: Sequence[Pair], ground_truth: Iterable[Pair]) -> float:
    """Recall@ground-truth: relevant matches among the top-``|ground truth|``.

    Parameters
    ----------
    ranked_pairs:
        Column-name pairs ordered by decreasing confidence.
    ground_truth:
        The set of correct column-name pairs.
    """
    truth = set(_normalise_pairs(ground_truth))
    if not truth:
        return 0.0
    k = len(truth)
    return _relevant_in_top_k(ranked_pairs, truth, k) / k


def precision_at_k(ranked_pairs: Sequence[Pair], ground_truth: Iterable[Pair], k: int) -> float:
    """Precision of the top-*k* ranked matches."""
    if k <= 0:
        return 0.0
    truth = set(_normalise_pairs(ground_truth))
    if not _normalise_pairs(ranked_pairs)[:k]:
        return 0.0
    return _relevant_in_top_k(ranked_pairs, truth, k) / k


def recall_at_k(ranked_pairs: Sequence[Pair], ground_truth: Iterable[Pair], k: int) -> float:
    """Recall of the top-*k* ranked matches with respect to the ground truth."""
    truth = set(_normalise_pairs(ground_truth))
    if not truth or k <= 0:
        return 0.0
    return _relevant_in_top_k(ranked_pairs, truth, k) / len(truth)


def reciprocal_rank(ranked_pairs: Sequence[Pair], ground_truth: Iterable[Pair]) -> float:
    """Reciprocal rank of the first relevant match (0 when none is found)."""
    truth = set(_normalise_pairs(ground_truth))
    for index, pair in enumerate(_normalise_pairs(ranked_pairs), start=1):
        if pair in truth:
            return 1.0 / index
    return 0.0


def average_precision(ranked_pairs: Sequence[Pair], ground_truth: Iterable[Pair]) -> float:
    """Average precision over the full ranking."""
    truth = set(_normalise_pairs(ground_truth))
    if not truth:
        return 0.0
    seen: set[Pair] = set()
    precision_sum = 0.0
    for index, pair in enumerate(_normalise_pairs(ranked_pairs), start=1):
        if pair in truth and pair not in seen:
            seen.add(pair)
            precision_sum += len(seen) / index
    return precision_sum / len(truth)


def ndcg_at_k(ranked_pairs: Sequence[Pair], ground_truth: Iterable[Pair], k: int) -> float:
    """Binary-relevance normalised discounted cumulative gain at *k*."""
    import math

    truth = set(_normalise_pairs(ground_truth))
    if not truth or k <= 0:
        return 0.0
    top_k = _normalise_pairs(ranked_pairs)[:k]
    seen: set[Pair] = set()
    dcg = 0.0
    for index, pair in enumerate(top_k, start=1):
        if pair in truth and pair not in seen:
            seen.add(pair)
            dcg += 1.0 / math.log2(index + 1)
    ideal_hits = min(len(truth), k)
    ideal = sum(1.0 / math.log2(index + 1) for index in range(1, ideal_hits + 1))
    return dcg / ideal if ideal else 0.0
