"""Noise injection for fabricated dataset pairs (Section IV of the paper).

Two families of perturbations are implemented, following the eTuner-style
strategy the paper adopts:

* **Instance noise** — for string columns, random typos based on keyboard
  proximity; for numeric columns, random perturbations drawn according to the
  column's own value distribution.
* **Schema noise** — a combination of three transformation rules on column
  names: prefixing with the table name, abbreviation, and vowel dropping.

All functions take an explicit ``random.Random`` instance so fabrication is
deterministic given a seed.
"""

from __future__ import annotations

import random
import string
from typing import Sequence

from repro.data.table import Column, Table
from repro.data.types import DataType, is_missing

__all__ = [
    "KEYBOARD_NEIGHBOURS",
    "typo",
    "perturb_string_column",
    "perturb_numeric_column",
    "add_instance_noise",
    "prefix_column_name",
    "abbreviate_column_name",
    "drop_vowels",
    "add_schema_noise",
]

#: QWERTY keyboard adjacency used to generate plausible typos.
KEYBOARD_NEIGHBOURS: dict[str, str] = {
    "q": "wa", "w": "qes", "e": "wrd", "r": "etf", "t": "ryg", "y": "tuh",
    "u": "yij", "i": "uok", "o": "ipl", "p": "ol",
    "a": "qsz", "s": "awdx", "d": "sefc", "f": "drgv", "g": "fthb",
    "h": "gyjn", "j": "hukm", "k": "jil", "l": "kop",
    "z": "asx", "x": "zsdc", "c": "xdfv", "v": "cfgb", "b": "vghn",
    "n": "bhjm", "m": "njk",
    "0": "19", "1": "02", "2": "13", "3": "24", "4": "35", "5": "46",
    "6": "57", "7": "68", "8": "79", "9": "80",
}


def typo(value: str, rng: random.Random, operations: int = 1) -> str:
    """Introduce *operations* keyboard-proximity typos into *value*.

    Each operation either substitutes a character with a keyboard neighbour,
    swaps two adjacent characters, or drops a character.  Very short values
    (length < 3) are returned unchanged so that identifiers stay recognisable.
    """
    text = list(str(value))
    if len(text) < 3:
        return str(value)
    for _ in range(operations):
        kind = rng.choice(("substitute", "swap", "drop"))
        index = rng.randrange(len(text))
        char = text[index].lower()
        if kind == "substitute" and char in KEYBOARD_NEIGHBOURS:
            replacement = rng.choice(KEYBOARD_NEIGHBOURS[char])
            text[index] = replacement.upper() if text[index].isupper() else replacement
        elif kind == "swap" and index < len(text) - 1:
            text[index], text[index + 1] = text[index + 1], text[index]
        elif kind == "drop" and len(text) > 3:
            del text[index]
    return "".join(text)


def perturb_string_column(column: Column, rng: random.Random, noise_rate: float = 0.5) -> Column:
    """Apply keyboard-proximity typos to a fraction of a string column's cells."""
    new_values = []
    for value in column.values:
        if is_missing(value) or rng.random() > noise_rate:
            new_values.append(value)
        else:
            new_values.append(typo(str(value), rng))
    return Column(column.name, new_values, column.data_type, column.table_name)


def perturb_numeric_column(column: Column, rng: random.Random, noise_rate: float = 0.5) -> Column:
    """Perturb a fraction of numeric cells according to the column distribution.

    Each perturbed value receives additive noise drawn from a normal
    distribution whose standard deviation is the column's own standard
    deviation (integers stay integers).
    """
    numbers = column.numeric_values()
    if not numbers:
        return column
    mean = sum(numbers) / len(numbers)
    variance = sum((x - mean) ** 2 for x in numbers) / len(numbers)
    std = variance ** 0.5 or max(abs(mean) * 0.1, 1.0)

    new_values = []
    for value in column.values:
        if is_missing(value) or rng.random() > noise_rate:
            new_values.append(value)
            continue
        try:
            number = float(str(value))
        except (TypeError, ValueError):
            new_values.append(value)
            continue
        noisy = number + rng.gauss(0.0, std)
        if column.data_type is DataType.INTEGER:
            new_values.append(int(round(noisy)))
        else:
            new_values.append(round(noisy, 4))
    return Column(column.name, new_values, column.data_type, column.table_name)


def add_instance_noise(table: Table, rng: random.Random, noise_rate: float = 0.5) -> Table:
    """Return a copy of *table* with instance noise in every column."""
    noisy_columns = []
    for column in table.columns:
        if column.data_type.is_numeric:
            noisy_columns.append(perturb_numeric_column(column, rng, noise_rate))
        elif column.data_type.is_textual or column.data_type is DataType.DATE:
            noisy_columns.append(perturb_string_column(column, rng, noise_rate))
        else:
            noisy_columns.append(column)
    return Table(table.name, noisy_columns)


# --------------------------------------------------------------------------- #
# schema noise
# --------------------------------------------------------------------------- #
_VOWELS = set("aeiouAEIOU")


def prefix_column_name(name: str, table_name: str) -> str:
    """Prefix a column name with its table name (common DB design practice)."""
    clean_table = table_name.replace(" ", "_")
    return f"{clean_table}_{name}"


def abbreviate_column_name(name: str, max_length: int = 4) -> str:
    """Abbreviate a column name by truncating each word token."""
    pieces = [piece for piece in name.replace("-", "_").split("_") if piece]
    if not pieces:
        return name
    return "_".join(piece[:max_length] for piece in pieces)


def drop_vowels(name: str) -> str:
    """Remove non-leading vowels from a column name."""
    if not name:
        return name
    kept = [name[0]]
    kept.extend(char for char in name[1:] if char not in _VOWELS)
    result = "".join(kept)
    return result if result else name


def add_schema_noise(table: Table, rng: random.Random) -> tuple[Table, dict[str, str]]:
    """Apply a random combination of the three renaming rules to every column.

    Returns the renamed table and the mapping ``{original name: noisy name}``.
    Renaming is collision-safe: when two noisy names collide, a numeric suffix
    keeps them distinct.
    """
    mapping: dict[str, str] = {}
    used: set[str] = set()
    for column in table.columns:
        new_name = column.name
        rules = rng.sample(("prefix", "abbreviate", "vowels"), k=rng.randint(1, 2))
        for rule in rules:
            if rule == "prefix":
                new_name = prefix_column_name(new_name, table.name)
            elif rule == "abbreviate":
                new_name = abbreviate_column_name(new_name)
            else:
                new_name = drop_vowels(new_name)
        if new_name == column.name:
            new_name = drop_vowels(abbreviate_column_name(column.name))
        base = new_name
        suffix = 1
        while new_name in used:
            suffix += 1
            new_name = f"{base}{suffix}"
        used.add(new_name)
        mapping[column.name] = new_name
    return table.rename_columns(mapping), mapping
