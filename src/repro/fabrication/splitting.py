"""Horizontal and vertical table splitting (Section IV, Figure 3).

The fabricator creates matching problems by splitting a seed table:

* **horizontal splits** partition rows (with a configurable overlap
  percentage) and keep all columns — the basis of unionable pairs;
* **vertical splits** partition columns (with a configurable overlap) and
  keep all rows — the basis of joinable pairs;
* combinations of both produce view-unionable and joinable-with-row-overlap
  pairs.

All functions are deterministic given a ``random.Random`` instance.
"""

from __future__ import annotations

import random
from dataclasses import dataclass

from repro.data.table import Table

__all__ = ["HorizontalSplit", "VerticalSplit", "split_horizontal", "split_vertical"]


@dataclass(frozen=True)
class HorizontalSplit:
    """Result of a horizontal (row) split."""

    first: Table
    second: Table
    overlap_rows: int


@dataclass(frozen=True)
class VerticalSplit:
    """Result of a vertical (column) split."""

    first: Table
    second: Table
    shared_columns: tuple[str, ...]


def split_horizontal(
    table: Table,
    row_overlap: float,
    rng: random.Random,
    first_name: str | None = None,
    second_name: str | None = None,
) -> HorizontalSplit:
    """Split *table* into two row partitions with the given fractional overlap.

    ``row_overlap`` of 0.0 produces disjoint halves; 1.0 produces two copies
    of the same rows; 0.5 makes half of each partition's rows shared.

    Raises
    ------
    ValueError
        If the table has fewer than 2 rows or the overlap is out of range.
    """
    if not 0.0 <= row_overlap <= 1.0:
        raise ValueError("row_overlap must be in [0, 1]")
    if table.num_rows < 2:
        raise ValueError("cannot horizontally split a table with fewer than 2 rows")

    indices = list(range(table.num_rows))
    rng.shuffle(indices)
    half = table.num_rows // 2
    first_own = indices[:half]
    second_own = indices[half:]

    overlap_first = first_own[: int(round(len(first_own) * row_overlap))]
    overlap_second = second_own[: int(round(len(second_own) * row_overlap))]

    first_rows = sorted(first_own + overlap_second)
    second_rows = sorted(second_own + overlap_first)

    first = table.select_rows(first_rows, name=first_name or f"{table.name}_left")
    second = table.select_rows(second_rows, name=second_name or f"{table.name}_right")
    return HorizontalSplit(first=first, second=second, overlap_rows=len(overlap_first) + len(overlap_second))


def split_vertical(
    table: Table,
    column_overlap: float | int,
    rng: random.Random,
    first_name: str | None = None,
    second_name: str | None = None,
) -> VerticalSplit:
    """Split *table* into two column partitions sharing some columns.

    Parameters
    ----------
    column_overlap:
        Either a fraction in ``(0, 1]`` of columns shared by both partitions,
        or an integer absolute number of shared columns (the paper uses
        "1 column" as the smallest joinable setting).

    The non-shared columns are distributed between the two partitions so that
    each side also has exclusive attributes.
    """
    names = list(table.column_names)
    if len(names) < 2:
        raise ValueError("cannot vertically split a table with fewer than 2 columns")

    if isinstance(column_overlap, int) and not isinstance(column_overlap, bool):
        shared_count = column_overlap
    else:
        if not 0.0 < float(column_overlap) <= 1.0:
            raise ValueError("fractional column_overlap must be in (0, 1]")
        shared_count = int(round(len(names) * float(column_overlap)))
    shared_count = max(1, min(shared_count, len(names)))

    shuffled = list(names)
    rng.shuffle(shuffled)
    shared = shuffled[:shared_count]
    rest = shuffled[shared_count:]
    half = len(rest) // 2
    first_exclusive = rest[:half]
    second_exclusive = rest[half:]

    # Preserve the original column order within each partition.
    first_columns = [n for n in names if n in set(shared) | set(first_exclusive)]
    second_columns = [n for n in names if n in set(shared) | set(second_exclusive)]

    first = table.project(first_columns, name=first_name or f"{table.name}_a")
    second = table.project(second_columns, name=second_name or f"{table.name}_b")
    return VerticalSplit(first=first, second=second, shared_columns=tuple(n for n in names if n in shared))
