"""Scenario-specific dataset-pair fabrication (Section III + Figure 3).

Each function fabricates one :class:`~repro.fabrication.pairs.DatasetPair`
from a seed table for one relatedness scenario, one noise variant and one
overlap setting:

* **Unionable** — horizontal split with row overlap in {0%, 50%, 100%};
  every schema/instance noise combination.
* **View-unionable** — vertical split (column overlap in {30%, 50%, 70%})
  followed by a horizontal split with zero row overlap; every noise
  combination.
* **Joinable** — vertical split (column overlap in {1 column, 30%, 50%, 70%}),
  optionally combined with a horizontal split at 50% row overlap; verbatim
  instances only (noise may affect the schema).
* **Semantically joinable** — as joinable but with noisy instances.

Ground truth is derived from the seed table: corresponding columns of the two
splits match (modulo the renaming introduced by schema noise).
"""

from __future__ import annotations

import random
from typing import Sequence

from repro.data.table import Table
from repro.fabrication.noise import add_instance_noise, add_schema_noise
from repro.fabrication.pairs import DatasetPair, NoiseVariant, Scenario
from repro.fabrication.splitting import split_horizontal, split_vertical

__all__ = [
    "fabricate_unionable",
    "fabricate_view_unionable",
    "fabricate_joinable",
    "fabricate_semantically_joinable",
]


def _apply_noise(
    target: Table,
    variant: NoiseVariant,
    rng: random.Random,
    instance_noise_rate: float,
) -> tuple[Table, dict[str, str]]:
    """Apply the requested noise to the *target* side of a fabricated pair.

    The paper perturbs one of the two tables; the source keeps the original
    schema/instances so the ground truth stays anchored to the seed.
    Returns the noisy table and the column-rename mapping (identity when the
    schema is verbatim).
    """
    mapping = {name: name for name in target.column_names}
    result = target
    if variant.noisy_instances:
        result = add_instance_noise(result, rng, noise_rate=instance_noise_rate)
    if variant.noisy_schema:
        result, mapping = add_schema_noise(result, rng)
    return result, mapping


def _ground_truth(shared_columns: Sequence[str], rename_mapping: dict[str, str]) -> list[tuple[str, str]]:
    """Ground truth pairs: seed column name ↔ (possibly renamed) target column."""
    return [(name, rename_mapping.get(name, name)) for name in shared_columns]


def fabricate_unionable(
    seed: Table,
    variant: NoiseVariant,
    row_overlap: float,
    rng: random.Random,
    instance_noise_rate: float = 0.5,
    name: str | None = None,
) -> DatasetPair:
    """Fabricate a unionable pair by horizontal splitting (Figure 3, left)."""
    split = split_horizontal(seed, row_overlap, rng)
    target, mapping = _apply_noise(split.second, variant, rng, instance_noise_rate)
    pair_name = name or f"{seed.name}_unionable_{variant.name.lower()}_{int(row_overlap * 100)}"
    pair = DatasetPair(
        name=pair_name,
        source=split.first,
        target=target.rename(f"{seed.name}_right"),
        ground_truth=_ground_truth(split.first.column_names, mapping),
        scenario=Scenario.UNIONABLE,
        variant=variant,
        metadata={"row_overlap": row_overlap, "seed_table": seed.name},
    )
    pair.validate()
    return pair


def fabricate_view_unionable(
    seed: Table,
    variant: NoiseVariant,
    column_overlap: float,
    rng: random.Random,
    instance_noise_rate: float = 0.5,
    name: str | None = None,
) -> DatasetPair:
    """Fabricate a view-unionable pair: vertical + horizontal split, no row overlap."""
    vertical = split_vertical(seed, column_overlap, rng)
    horizontal_first = split_horizontal(vertical.first, 0.0, rng)
    horizontal_second = split_horizontal(vertical.second, 0.0, rng)
    source = horizontal_first.first.rename(f"{seed.name}_view_a")
    target_raw = horizontal_second.second.rename(f"{seed.name}_view_b")
    target, mapping = _apply_noise(target_raw, variant, rng, instance_noise_rate)
    shared = [c for c in vertical.shared_columns]
    pair_name = name or (
        f"{seed.name}_viewunionable_{variant.name.lower()}_{int(column_overlap * 100)}"
    )
    pair = DatasetPair(
        name=pair_name,
        source=source,
        target=target,
        ground_truth=_ground_truth(shared, mapping),
        scenario=Scenario.VIEW_UNIONABLE,
        variant=variant,
        metadata={
            "column_overlap": column_overlap,
            "row_overlap": 0.0,
            "seed_table": seed.name,
        },
    )
    pair.validate()
    return pair


def _fabricate_join_like(
    seed: Table,
    variant: NoiseVariant,
    column_overlap: float | int,
    rng: random.Random,
    scenario: Scenario,
    with_row_split: bool,
    instance_noise_rate: float,
    name: str | None,
) -> DatasetPair:
    vertical = split_vertical(seed, column_overlap, rng)
    source = vertical.first
    target_raw = vertical.second
    row_overlap = 1.0
    if with_row_split:
        row_overlap = 0.5
        source = split_horizontal(vertical.first, 0.5, rng).first
        target_raw = split_horizontal(vertical.second, 0.5, rng).second
    source = source.rename(f"{seed.name}_join_a")
    target_raw = target_raw.rename(f"{seed.name}_join_b")
    target, mapping = _apply_noise(target_raw, variant, rng, instance_noise_rate)
    shared = list(vertical.shared_columns)
    overlap_label = (
        str(column_overlap)
        if isinstance(column_overlap, int) and not isinstance(column_overlap, bool)
        else f"{int(float(column_overlap) * 100)}pct"
    )
    pair_name = name or (
        f"{seed.name}_{scenario.value}_{variant.name.lower()}_{overlap_label}"
        + ("_rowsplit" if with_row_split else "")
    )
    pair = DatasetPair(
        name=pair_name,
        source=source,
        target=target,
        ground_truth=_ground_truth(shared, mapping),
        scenario=scenario,
        variant=variant,
        metadata={
            "column_overlap": column_overlap,
            "row_overlap": row_overlap,
            "seed_table": seed.name,
            "with_row_split": with_row_split,
        },
    )
    pair.validate()
    return pair


def fabricate_joinable(
    seed: Table,
    variant: NoiseVariant,
    column_overlap: float | int,
    rng: random.Random,
    with_row_split: bool = False,
    name: str | None = None,
) -> DatasetPair:
    """Fabricate a joinable pair: vertical split, verbatim instances.

    Raises
    ------
    ValueError
        If *variant* requests noisy instances (that is the semantically
        joinable scenario).
    """
    if variant.noisy_instances:
        raise ValueError("joinable pairs use verbatim instances; use the semantically joinable fabricator")
    return _fabricate_join_like(
        seed,
        variant,
        column_overlap,
        rng,
        scenario=Scenario.JOINABLE,
        with_row_split=with_row_split,
        instance_noise_rate=0.0,
        name=name,
    )


def fabricate_semantically_joinable(
    seed: Table,
    variant: NoiseVariant,
    column_overlap: float | int,
    rng: random.Random,
    with_row_split: bool = False,
    instance_noise_rate: float = 0.5,
    name: str | None = None,
) -> DatasetPair:
    """Fabricate a semantically joinable pair: joinable splits + noisy instances.

    Raises
    ------
    ValueError
        If *variant* requests verbatim instances (that is the plain joinable
        scenario).
    """
    if not variant.noisy_instances:
        raise ValueError("semantically joinable pairs require noisy instances")
    return _fabricate_join_like(
        seed,
        variant,
        column_overlap,
        rng,
        scenario=Scenario.SEMANTICALLY_JOINABLE,
        with_row_split=with_row_split,
        instance_noise_rate=instance_noise_rate,
        name=name,
    )
