"""The dataset-pair fabricator (Figure 1, step 1).

Given a seed table, the fabricator produces the full grid of dataset pairs of
Figure 3: every relatedness scenario, every applicable noise variant and
every overlap setting.  The paper fabricates 180 pairs per dataset source by
repeating the grid with different random splits; the ``repetitions`` knob
reproduces that behaviour at configurable scale.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Sequence

from repro.data.table import Table
from repro.fabrication.pairs import DatasetPair, NoiseVariant, Scenario
from repro.fabrication.scenarios import (
    fabricate_joinable,
    fabricate_semantically_joinable,
    fabricate_unionable,
    fabricate_view_unionable,
)

__all__ = ["FabricationConfig", "Fabricator"]

_ALL_VARIANTS = (
    NoiseVariant.VERBATIM_SCHEMA_VERBATIM_INSTANCES,
    NoiseVariant.NOISY_SCHEMA_VERBATIM_INSTANCES,
    NoiseVariant.VERBATIM_SCHEMA_NOISY_INSTANCES,
    NoiseVariant.NOISY_SCHEMA_NOISY_INSTANCES,
)
_VERBATIM_INSTANCE_VARIANTS = (
    NoiseVariant.VERBATIM_SCHEMA_VERBATIM_INSTANCES,
    NoiseVariant.NOISY_SCHEMA_VERBATIM_INSTANCES,
)
_NOISY_INSTANCE_VARIANTS = (
    NoiseVariant.VERBATIM_SCHEMA_NOISY_INSTANCES,
    NoiseVariant.NOISY_SCHEMA_NOISY_INSTANCES,
)


@dataclass(frozen=True)
class FabricationConfig:
    """Fabrication grid parameters (defaults follow Figure 3).

    Attributes
    ----------
    unionable_row_overlaps:
        Row overlaps of the unionable scenario.
    view_unionable_column_overlaps:
        Column overlaps of the view-unionable scenario.
    joinable_column_overlaps:
        Column overlaps of the (semantically) joinable scenarios; the integer
        ``1`` means "exactly one shared column".
    include_row_split_joins:
        Also fabricate joinable pairs that combine a vertical split with a
        50% row-overlap horizontal split.
    repetitions:
        How many times the whole grid is instantiated with fresh random
        splits.
    instance_noise_rate:
        Fraction of cells perturbed in noisy-instance variants.
    seed:
        Root random seed.
    """

    unionable_row_overlaps: tuple[float, ...] = (0.0, 0.5, 1.0)
    view_unionable_column_overlaps: tuple[float, ...] = (0.3, 0.5, 0.7)
    joinable_column_overlaps: tuple[object, ...] = (1, 0.3, 0.5, 0.7)
    include_row_split_joins: bool = True
    repetitions: int = 1
    instance_noise_rate: float = 0.5
    seed: int = 1234


class Fabricator:
    """Fabricates the full scenario grid of dataset pairs from seed tables."""

    def __init__(self, config: FabricationConfig | None = None) -> None:
        self.config = config or FabricationConfig()

    # ------------------------------------------------------------------ #
    # per-scenario grids
    # ------------------------------------------------------------------ #
    def unionable_pairs(self, seed_table: Table, rng: random.Random) -> list[DatasetPair]:
        """All unionable pairs of the grid for one repetition."""
        pairs = []
        for overlap in self.config.unionable_row_overlaps:
            for variant in _ALL_VARIANTS:
                pairs.append(
                    fabricate_unionable(
                        seed_table,
                        variant,
                        row_overlap=overlap,
                        rng=rng,
                        instance_noise_rate=self.config.instance_noise_rate,
                    )
                )
        return pairs

    def view_unionable_pairs(self, seed_table: Table, rng: random.Random) -> list[DatasetPair]:
        """All view-unionable pairs of the grid for one repetition."""
        pairs = []
        for overlap in self.config.view_unionable_column_overlaps:
            for variant in _ALL_VARIANTS:
                pairs.append(
                    fabricate_view_unionable(
                        seed_table,
                        variant,
                        column_overlap=overlap,
                        rng=rng,
                        instance_noise_rate=self.config.instance_noise_rate,
                    )
                )
        return pairs

    def joinable_pairs(self, seed_table: Table, rng: random.Random) -> list[DatasetPair]:
        """All joinable pairs of the grid for one repetition."""
        pairs = []
        for overlap in self.config.joinable_column_overlaps:
            for variant in _VERBATIM_INSTANCE_VARIANTS:
                pairs.append(
                    fabricate_joinable(
                        seed_table, variant, column_overlap=overlap, rng=rng, with_row_split=False
                    )
                )
                if self.config.include_row_split_joins:
                    pairs.append(
                        fabricate_joinable(
                            seed_table, variant, column_overlap=overlap, rng=rng, with_row_split=True
                        )
                    )
        return pairs

    def semantically_joinable_pairs(self, seed_table: Table, rng: random.Random) -> list[DatasetPair]:
        """All semantically-joinable pairs of the grid for one repetition."""
        pairs = []
        for overlap in self.config.joinable_column_overlaps:
            for variant in _NOISY_INSTANCE_VARIANTS:
                pairs.append(
                    fabricate_semantically_joinable(
                        seed_table,
                        variant,
                        column_overlap=overlap,
                        rng=rng,
                        with_row_split=False,
                        instance_noise_rate=self.config.instance_noise_rate,
                    )
                )
                if self.config.include_row_split_joins:
                    pairs.append(
                        fabricate_semantically_joinable(
                            seed_table,
                            variant,
                            column_overlap=overlap,
                            rng=rng,
                            with_row_split=True,
                            instance_noise_rate=self.config.instance_noise_rate,
                        )
                    )
        return pairs

    # ------------------------------------------------------------------ #
    # full grids
    # ------------------------------------------------------------------ #
    def fabricate(
        self,
        seed_table: Table,
        scenarios: Sequence[Scenario] | None = None,
    ) -> list[DatasetPair]:
        """Fabricate the whole grid (all repetitions) from *seed_table*.

        Parameters
        ----------
        seed_table:
            The original table whose splits define the ground truth.
        scenarios:
            Optional subset of scenarios to fabricate; defaults to all four.
        """
        wanted = set(scenarios) if scenarios else set(Scenario)
        pairs: list[DatasetPair] = []
        for repetition in range(self.config.repetitions):
            rng = random.Random((self.config.seed, seed_table.name, repetition).__hash__())
            if Scenario.UNIONABLE in wanted:
                pairs.extend(self._tagged(self.unionable_pairs(seed_table, rng), repetition))
            if Scenario.VIEW_UNIONABLE in wanted:
                pairs.extend(self._tagged(self.view_unionable_pairs(seed_table, rng), repetition))
            if Scenario.JOINABLE in wanted:
                pairs.extend(self._tagged(self.joinable_pairs(seed_table, rng), repetition))
            if Scenario.SEMANTICALLY_JOINABLE in wanted:
                pairs.extend(
                    self._tagged(self.semantically_joinable_pairs(seed_table, rng), repetition)
                )
        return pairs

    @staticmethod
    def _tagged(pairs: list[DatasetPair], repetition: int) -> list[DatasetPair]:
        if repetition == 0:
            return pairs
        for pair in pairs:
            pair.name = f"{pair.name}_rep{repetition}"
            pair.metadata["repetition"] = repetition
        return pairs

    def iter_fabricate(
        self, seed_tables: Sequence[Table], scenarios: Sequence[Scenario] | None = None
    ) -> Iterator[DatasetPair]:
        """Lazily fabricate pairs for several seed tables."""
        for seed_table in seed_tables:
            yield from self.fabricate(seed_table, scenarios=scenarios)
