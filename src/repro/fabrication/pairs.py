"""Dataset pairs with ground truth.

A :class:`DatasetPair` bundles everything one matching experiment needs: the
source and target tables, the ground-truth column correspondences and
metadata describing how the pair was fabricated (scenario, noise flags,
overlap parameters).
"""

from __future__ import annotations

from dataclasses import dataclass, field
from enum import Enum
from typing import Iterable, Optional

from repro.data.table import Table

__all__ = ["Scenario", "NoiseVariant", "DatasetPair"]


class Scenario(str, Enum):
    """The four dataset relatedness scenarios of Section III."""

    UNIONABLE = "unionable"
    VIEW_UNIONABLE = "view_unionable"
    JOINABLE = "joinable"
    SEMANTICALLY_JOINABLE = "semantically_joinable"


class NoiseVariant(str, Enum):
    """The schema/instance noise combinations of Figure 3.

    ``VS``/``NS`` = verbatim/noisy schemata, ``VI``/``NI`` = verbatim/noisy
    instances.
    """

    VERBATIM_SCHEMA_VERBATIM_INSTANCES = "VS/VI"
    NOISY_SCHEMA_VERBATIM_INSTANCES = "NS/VI"
    VERBATIM_SCHEMA_NOISY_INSTANCES = "VS/NI"
    NOISY_SCHEMA_NOISY_INSTANCES = "NS/NI"

    @property
    def noisy_schema(self) -> bool:
        """True when the variant perturbs column names."""
        return self in (
            NoiseVariant.NOISY_SCHEMA_VERBATIM_INSTANCES,
            NoiseVariant.NOISY_SCHEMA_NOISY_INSTANCES,
        )

    @property
    def noisy_instances(self) -> bool:
        """True when the variant perturbs cell values."""
        return self in (
            NoiseVariant.VERBATIM_SCHEMA_NOISY_INSTANCES,
            NoiseVariant.NOISY_SCHEMA_NOISY_INSTANCES,
        )


@dataclass
class DatasetPair:
    """A fabricated (or curated) dataset pair with ground truth.

    Attributes
    ----------
    name:
        Identifier of the pair (used in experiment records).
    source / target:
        The two tables to be matched.
    ground_truth:
        Correct correspondences as ``(source column, target column)`` pairs.
    scenario:
        The relatedness scenario this pair instantiates.
    variant:
        The noise variant applied during fabrication (``None`` for curated
        pairs).
    metadata:
        Free-form fabrication parameters (row/column overlap, source dataset).
    """

    name: str
    source: Table
    target: Table
    ground_truth: list[tuple[str, str]]
    scenario: Scenario
    variant: Optional[NoiseVariant] = None
    metadata: dict[str, object] = field(default_factory=dict)

    @property
    def ground_truth_size(self) -> int:
        """Number of ground-truth correspondences."""
        return len(self.ground_truth)

    def ground_truth_set(self) -> set[tuple[str, str]]:
        """Ground truth as a set of name pairs."""
        return set(self.ground_truth)

    def describe(self) -> str:
        """One-line description used in reports."""
        variant = self.variant.value if self.variant else "curated"
        return (
            f"{self.name}: {self.scenario.value} [{variant}] "
            f"{self.source.shape} vs {self.target.shape}, "
            f"|GT|={self.ground_truth_size}"
        )

    def validate(self) -> None:
        """Raise ``ValueError`` when the ground truth references unknown columns."""
        missing = [
            pair
            for pair in self.ground_truth
            if pair[0] not in self.source or pair[1] not in self.target
        ]
        if missing:
            raise ValueError(
                f"pair {self.name!r}: ground truth references unknown columns: {missing[:5]}"
            )
