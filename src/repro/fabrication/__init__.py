"""Dataset-pair fabrication: splits, noise, scenarios and the fabricator."""

from repro.fabrication.fabricator import FabricationConfig, Fabricator
from repro.fabrication.noise import (
    abbreviate_column_name,
    add_instance_noise,
    add_schema_noise,
    drop_vowels,
    prefix_column_name,
    typo,
)
from repro.fabrication.pairs import DatasetPair, NoiseVariant, Scenario
from repro.fabrication.scenarios import (
    fabricate_joinable,
    fabricate_semantically_joinable,
    fabricate_unionable,
    fabricate_view_unionable,
)
from repro.fabrication.splitting import (
    HorizontalSplit,
    VerticalSplit,
    split_horizontal,
    split_vertical,
)

__all__ = [
    "DatasetPair",
    "NoiseVariant",
    "Scenario",
    "Fabricator",
    "FabricationConfig",
    "fabricate_unionable",
    "fabricate_view_unionable",
    "fabricate_joinable",
    "fabricate_semantically_joinable",
    "split_horizontal",
    "split_vertical",
    "HorizontalSplit",
    "VerticalSplit",
    "typo",
    "add_instance_noise",
    "add_schema_noise",
    "prefix_column_name",
    "abbreviate_column_name",
    "drop_vowels",
]
