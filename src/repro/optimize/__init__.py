"""Discrete optimisation substrate: binary ILP and assignment helpers."""

from repro.optimize.assignment import greedy_assignment, max_weight_assignment, stable_marriage
from repro.optimize.ilp import BinaryProgram, Constraint, ILPSolution

__all__ = [
    "BinaryProgram",
    "Constraint",
    "ILPSolution",
    "max_weight_assignment",
    "greedy_assignment",
    "stable_marriage",
]
