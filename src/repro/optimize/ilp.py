"""A small 0/1 integer linear program solver (branch & bound).

The distribution-based matcher finishes with an integer program that decides
the final clusters of related columns (the paper's authors used CPLEX/PuLP).
No external solver is available offline, so this module implements a compact
exact branch-and-bound solver over binary variables with linear constraints.
Problem sizes in this suite are tiny (tens of variables), so exactness and
clarity win over raw speed; an LP relaxation computed with scipy provides the
bounding function.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Optional, Sequence

import numpy as np
from scipy.optimize import linprog

__all__ = ["Constraint", "BinaryProgram", "ILPSolution"]


@dataclass(frozen=True)
class Constraint:
    """A linear constraint ``sum(coeffs[i] * x[i]) (<=|>=|==) bound``."""

    coefficients: dict[int, float]
    sense: str
    bound: float

    def __post_init__(self) -> None:
        if self.sense not in ("<=", ">=", "=="):
            raise ValueError(f"unknown constraint sense {self.sense!r}")

    def satisfied(self, assignment: Sequence[float], tolerance: float = 1e-9) -> bool:
        """Check the constraint on a full variable assignment."""
        value = sum(coeff * assignment[idx] for idx, coeff in self.coefficients.items())
        if self.sense == "<=":
            return value <= self.bound + tolerance
        if self.sense == ">=":
            return value >= self.bound - tolerance
        return abs(value - self.bound) <= tolerance


@dataclass
class ILPSolution:
    """Result of a :class:`BinaryProgram` solve."""

    status: str
    objective: float
    assignment: dict[int, int] = field(default_factory=dict)

    @property
    def is_optimal(self) -> bool:
        return self.status == "optimal"


class BinaryProgram:
    """A maximisation problem over binary variables with linear constraints.

    Example
    -------
    >>> program = BinaryProgram(num_variables=2)
    >>> program.set_objective({0: 1.0, 1: 2.0})
    >>> program.add_constraint({0: 1.0, 1: 1.0}, "<=", 1.0)
    >>> program.solve().assignment
    {0: 0, 1: 1}
    """

    def __init__(self, num_variables: int) -> None:
        if num_variables < 0:
            raise ValueError("num_variables must be non-negative")
        self.num_variables = num_variables
        self._objective = np.zeros(num_variables, dtype=float)
        self._constraints: list[Constraint] = []

    def set_objective(self, coefficients: dict[int, float]) -> None:
        """Set the (maximisation) objective coefficients."""
        self._objective = np.zeros(self.num_variables, dtype=float)
        for index, coeff in coefficients.items():
            self._check_index(index)
            self._objective[index] = coeff

    def add_constraint(self, coefficients: dict[int, float], sense: str, bound: float) -> None:
        """Add a linear constraint over variable indices."""
        for index in coefficients:
            self._check_index(index)
        self._constraints.append(Constraint(dict(coefficients), sense, float(bound)))

    def _check_index(self, index: int) -> None:
        if not 0 <= index < self.num_variables:
            raise IndexError(f"variable index {index} out of range (n={self.num_variables})")

    # ------------------------------------------------------------------ #
    # solving
    # ------------------------------------------------------------------ #
    def _lp_relaxation(self, fixed: dict[int, int]) -> Optional[tuple[float, np.ndarray]]:
        """Solve the LP relaxation with some variables fixed.

        Returns ``(upper bound, fractional solution)`` or ``None`` when the
        relaxation is infeasible.
        """
        bounds = []
        for i in range(self.num_variables):
            if i in fixed:
                bounds.append((fixed[i], fixed[i]))
            else:
                bounds.append((0.0, 1.0))

        a_ub, b_ub, a_eq, b_eq = [], [], [], []
        for constraint in self._constraints:
            row = np.zeros(self.num_variables)
            for index, coeff in constraint.coefficients.items():
                row[index] = coeff
            if constraint.sense == "<=":
                a_ub.append(row)
                b_ub.append(constraint.bound)
            elif constraint.sense == ">=":
                a_ub.append(-row)
                b_ub.append(-constraint.bound)
            else:
                a_eq.append(row)
                b_eq.append(constraint.bound)

        result = linprog(
            -self._objective,
            A_ub=np.array(a_ub) if a_ub else None,
            b_ub=np.array(b_ub) if b_ub else None,
            A_eq=np.array(a_eq) if a_eq else None,
            b_eq=np.array(b_eq) if b_eq else None,
            bounds=bounds,
            method="highs",
        )
        if not result.success:
            return None
        return -result.fun, result.x

    def _feasible(self, assignment: Sequence[float]) -> bool:
        return all(constraint.satisfied(assignment) for constraint in self._constraints)

    def solve(self, max_nodes: int = 100_000) -> ILPSolution:
        """Solve the program by branch and bound.

        Parameters
        ----------
        max_nodes:
            Safety cap on the number of explored branch-and-bound nodes.
        """
        if self.num_variables == 0:
            return ILPSolution(status="optimal", objective=0.0, assignment={})

        best_value = -np.inf
        best_assignment: Optional[np.ndarray] = None
        stack: list[dict[int, int]] = [{}]
        explored = 0

        while stack and explored < max_nodes:
            fixed = stack.pop()
            explored += 1
            relaxation = self._lp_relaxation(fixed)
            if relaxation is None:
                continue
            upper_bound, fractional = relaxation
            if upper_bound <= best_value + 1e-9:
                continue
            # Find the most fractional free variable.
            free_fractionality = [
                (abs(fractional[i] - 0.5), i)
                for i in range(self.num_variables)
                if i not in fixed and 1e-6 < fractional[i] < 1 - 1e-6
            ]
            if not free_fractionality:
                rounded = np.round(fractional).astype(int)
                if self._feasible(rounded):
                    value = float(self._objective @ rounded)
                    if value > best_value:
                        best_value = value
                        best_assignment = rounded
                continue
            _, branch_var = min(free_fractionality)
            for forced in (1, 0):
                child = dict(fixed)
                child[branch_var] = forced
                stack.append(child)

        if best_assignment is None:
            return ILPSolution(status="infeasible", objective=float("-inf"))
        assignment = {i: int(best_assignment[i]) for i in range(self.num_variables)}
        return ILPSolution(status="optimal", objective=float(best_value), assignment=assignment)
