"""Assignment helpers for turning similarity matrices into 1-1 matchings.

Valentine compares methods on ranked match lists, but several matchers (and
the classic 1-1 evaluation included for completeness) need a maximum-weight
bipartite assignment or a stable-marriage style filter over a similarity
matrix.  ``scipy.optimize.linear_sum_assignment`` does the heavy lifting; the
helpers here adapt it to sparse, name-keyed similarity dictionaries.
"""

from __future__ import annotations

from typing import Hashable, Mapping, Sequence

import numpy as np
from scipy.optimize import linear_sum_assignment

__all__ = ["max_weight_assignment", "greedy_assignment", "stable_marriage"]

Pair = tuple[Hashable, Hashable]


def max_weight_assignment(
    similarities: Mapping[Pair, float],
    threshold: float = 0.0,
) -> dict[Pair, float]:
    """Maximum-weight 1-1 assignment over a sparse similarity mapping.

    Parameters
    ----------
    similarities:
        Mapping ``(source, target) -> similarity``.
    threshold:
        Pairs assigned with a similarity at or below this value are dropped.
    """
    if not similarities:
        return {}
    sources = sorted({pair[0] for pair in similarities}, key=str)
    targets = sorted({pair[1] for pair in similarities}, key=str)
    source_index = {item: i for i, item in enumerate(sources)}
    target_index = {item: i for i, item in enumerate(targets)}
    matrix = np.zeros((len(sources), len(targets)))
    for (source, target), score in similarities.items():
        matrix[source_index[source], target_index[target]] = score
    row_ind, col_ind = linear_sum_assignment(-matrix)
    result: dict[Pair, float] = {}
    for row, col in zip(row_ind, col_ind):
        score = float(matrix[row, col])
        if score > threshold:
            result[(sources[row], targets[col])] = score
    return result


def greedy_assignment(
    similarities: Mapping[Pair, float],
    threshold: float = 0.0,
) -> dict[Pair, float]:
    """Greedy 1-1 assignment: repeatedly pick the highest unmatched pair."""
    chosen: dict[Pair, float] = {}
    used_sources: set[Hashable] = set()
    used_targets: set[Hashable] = set()
    ordered = sorted(similarities.items(), key=lambda item: (-item[1], str(item[0])))
    for (source, target), score in ordered:
        if score <= threshold:
            break
        if source in used_sources or target in used_targets:
            continue
        chosen[(source, target)] = score
        used_sources.add(source)
        used_targets.add(target)
    return chosen


def stable_marriage(
    similarities: Mapping[Pair, float],
    sources: Sequence[Hashable] | None = None,
    targets: Sequence[Hashable] | None = None,
) -> dict[Pair, float]:
    """Stable-marriage matching where both sides rank partners by similarity.

    Used as COMA-style "both directions" selection: a pair survives only if
    neither endpoint would rather be matched to someone who also prefers it.
    """
    if not similarities:
        return {}
    if sources is None:
        sources = sorted({pair[0] for pair in similarities}, key=str)
    if targets is None:
        targets = sorted({pair[1] for pair in similarities}, key=str)

    def preference(side_items, key_fn):
        prefs = {}
        for item in side_items:
            ranked = sorted(
                (pair for pair in similarities if key_fn(pair) == item),
                key=lambda pair: (-similarities[pair], str(pair)),
            )
            prefs[item] = ranked
        return prefs

    source_prefs = preference(sources, lambda pair: pair[0])
    engaged_target: dict[Hashable, Pair] = {}
    free_sources = [s for s in sources if source_prefs[s]]
    next_choice = {s: 0 for s in sources}

    while free_sources:
        source = free_sources.pop(0)
        prefs = source_prefs[source]
        while next_choice[source] < len(prefs):
            pair = prefs[next_choice[source]]
            next_choice[source] += 1
            target = pair[1]
            current = engaged_target.get(target)
            if current is None:
                engaged_target[target] = pair
                break
            if similarities[pair] > similarities[current]:
                engaged_target[target] = pair
                displaced = current[0]
                if next_choice[displaced] < len(source_prefs[displaced]):
                    free_sources.append(displaced)
                break
        # else: source remains unmatched
    return {pair: similarities[pair] for pair in engaged_target.values()}
