"""Invertible Bloom Lookup Table for snapshot set reconciliation.

Two lake nodes that each hold a set of ``(table name, content hash)`` keys
want to learn their symmetric difference without shipping full key lists.
The IBLT (Goodrich & Mitzenmacher; memory/randomness refinements in
Fleischhacker et al., see PAPERS.md) solves exactly this: each side folds
its keys into a small table of XOR/counter cells, one side subtracts the
other's table cell-wise, and the difference structure *peels* — any cell
holding exactly one surviving key is recoverable, removing that key may
make further cells pure, and with a table a small constant factor larger
than the difference the cascade recovers every differing key with high
probability.

The structure here is the classic k-subtable layout: ``num_hashes``
independent subtables of ``cells_per_subtable`` cells each, so one key
never lands in the same cell twice (which would silently cancel its own
XOR contribution).  Each cell tracks::

    count    — signed number of keys folded in (negative after subtract)
    keysum   — XOR of the 64-bit keys
    hashsum  — XOR of a per-key checksum (detects false-pure cells)

Keys are 64-bit integers derived from the snapshot key strings with
:func:`key_fingerprint` (BLAKE2b, stable across processes and platforms —
Python's ``hash`` is salted per process and useless here).

Decoding is *probabilistic*: a difference larger than the table's capacity
(or an unlucky hash layout) leaves impure cells and :meth:`IBLTSketch.decode`
returns ``None`` — the sync layer then falls back to a full manifest diff,
so reconciliation is never wrong, only occasionally less compact.
"""

from __future__ import annotations

import hashlib
from dataclasses import dataclass
from typing import Iterable, Mapping, Optional

__all__ = ["IBLTSketch", "IBLTDecodeResult", "key_fingerprint"]

_MASK64 = (1 << 64) - 1

#: Default number of independent subtables (hash functions).  Three is the
#: textbook sweet spot: decode succeeds w.h.p. once the cell count exceeds
#: ~1.3x the difference size.
DEFAULT_NUM_HASHES = 3

#: Default cells per subtable — 3 x 128 = 384 cells total, comfortably
#: decoding symmetric differences of ~250 keys while costing ~10 KiB of
#: JSON in a manifest.
DEFAULT_CELLS_PER_SUBTABLE = 128


def key_fingerprint(key: str) -> int:
    """Stable 64-bit fingerprint of a snapshot key string."""
    digest = hashlib.blake2b(key.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


def _checksum(key: int) -> int:
    """Per-key checksum folded into ``hashsum`` (guards against false pures)."""
    digest = hashlib.blake2b(
        key.to_bytes(8, "big"), digest_size=8, person=b"iblt-chk"
    ).digest()
    return int.from_bytes(digest, "big")


def _cell_index(key: int, subtable: int, cells_per_subtable: int, seed: int) -> int:
    """The cell of *key* within one subtable (independent per subtable)."""
    digest = hashlib.blake2b(
        key.to_bytes(8, "big"),
        digest_size=8,
        salt=subtable.to_bytes(8, "big"),
        person=seed.to_bytes(8, "big"),
    ).digest()
    return int.from_bytes(digest, "big") % cells_per_subtable


@dataclass(frozen=True)
class IBLTDecodeResult:
    """Outcome of peeling a subtracted IBLT.

    ``only_in_self`` holds key fingerprints present in the sketch
    :meth:`~IBLTSketch.subtract` was called on but not the argument;
    ``only_in_other`` the reverse.
    """

    only_in_self: frozenset[int]
    only_in_other: frozenset[int]


class IBLTSketch:
    """A fixed-shape invertible Bloom lookup table over 64-bit keys.

    Two sketches are only comparable when their shape ``(num_hashes,
    cells_per_subtable, seed)`` matches — :meth:`subtract` enforces it.
    """

    def __init__(
        self,
        cells_per_subtable: int = DEFAULT_CELLS_PER_SUBTABLE,
        num_hashes: int = DEFAULT_NUM_HASHES,
        seed: int = 7,
    ) -> None:
        if cells_per_subtable <= 0 or num_hashes <= 0:
            raise ValueError("cells_per_subtable and num_hashes must be positive")
        self.cells_per_subtable = cells_per_subtable
        self.num_hashes = num_hashes
        self.seed = seed
        size = cells_per_subtable * num_hashes
        self._counts = [0] * size
        self._keysums = [0] * size
        self._hashsums = [0] * size

    # ------------------------------------------------------------------ #
    # construction
    # ------------------------------------------------------------------ #
    @property
    def num_cells(self) -> int:
        return len(self._counts)

    def _cells_of(self, key: int) -> Iterable[int]:
        for subtable in range(self.num_hashes):
            offset = subtable * self.cells_per_subtable
            yield offset + _cell_index(
                key, subtable, self.cells_per_subtable, self.seed
            )

    def _fold(self, key: int, delta: int) -> None:
        check = _checksum(key)
        for cell in self._cells_of(key):
            self._counts[cell] += delta
            self._keysums[cell] ^= key
            self._hashsums[cell] ^= check

    def insert(self, key: int) -> None:
        """Fold one 64-bit key fingerprint into the table."""
        self._fold(key & _MASK64, +1)

    def remove(self, key: int) -> None:
        """Unfold one key (the exact inverse of :meth:`insert`)."""
        self._fold(key & _MASK64, -1)

    @classmethod
    def from_keys(
        cls,
        keys: Iterable[str],
        cells_per_subtable: int = DEFAULT_CELLS_PER_SUBTABLE,
        num_hashes: int = DEFAULT_NUM_HASHES,
        seed: int = 7,
    ) -> "IBLTSketch":
        """Build a sketch over string keys via :func:`key_fingerprint`."""
        sketch = cls(
            cells_per_subtable=cells_per_subtable, num_hashes=num_hashes, seed=seed
        )
        for key in keys:
            sketch.insert(key_fingerprint(key))
        return sketch

    # ------------------------------------------------------------------ #
    # reconciliation
    # ------------------------------------------------------------------ #
    def _shape(self) -> tuple[int, int, int]:
        return (self.num_hashes, self.cells_per_subtable, self.seed)

    def subtract(self, other: "IBLTSketch") -> "IBLTSketch":
        """Cell-wise difference ``self - other`` as a new sketch.

        The result encodes only the symmetric difference of the two key
        sets: shared keys cancel exactly (XOR and counter both invert).
        """
        if self._shape() != other._shape():
            raise ValueError(
                f"cannot subtract IBLT of shape {other._shape()} from {self._shape()}"
            )
        result = IBLTSketch(
            cells_per_subtable=self.cells_per_subtable,
            num_hashes=self.num_hashes,
            seed=self.seed,
        )
        result._counts = [a - b for a, b in zip(self._counts, other._counts)]
        result._keysums = [a ^ b for a, b in zip(self._keysums, other._keysums)]
        result._hashsums = [a ^ b for a, b in zip(self._hashsums, other._hashsums)]
        return result

    def _pure_cell(self, cell: int) -> Optional[int]:
        """The count (+1/-1) when *cell* holds exactly one key, else None."""
        count = self._counts[cell]
        if count not in (1, -1):
            return None
        if self._hashsums[cell] != _checksum(self._keysums[cell]):
            return None  # colliding keys masquerading as one
        return count

    def decode(self) -> Optional[IBLTDecodeResult]:
        """Peel the table into the two one-sided key sets, or ``None``.

        Intended for the output of :meth:`subtract`.  Peeling mutates a
        working copy, never ``self``.  Returns ``None`` when cells remain
        undecodable — the difference exceeded capacity (or an unlucky
        layout); callers must fall back to a full diff.
        """
        work = self.subtract(IBLTSketch(self.cells_per_subtable, self.num_hashes, self.seed))
        only_self: set[int] = set()
        only_other: set[int] = set()
        frontier = [
            cell for cell in range(work.num_cells) if work._pure_cell(cell) is not None
        ]
        while frontier:
            cell = frontier.pop()
            sign = work._pure_cell(cell)
            if sign is None:
                continue  # already peeled via another subtable's cell
            key = work._keysums[cell]
            (only_self if sign > 0 else only_other).add(key)
            touched = list(work._cells_of(key))
            work._fold(key, -sign)
            for other_cell in touched:
                if work._pure_cell(other_cell) is not None:
                    frontier.append(other_cell)
        if any(work._counts) or any(work._keysums) or any(work._hashsums):
            return None  # impure residue: capacity exceeded
        return IBLTDecodeResult(
            only_in_self=frozenset(only_self), only_in_other=frozenset(only_other)
        )

    # ------------------------------------------------------------------ #
    # serialisation (manifest transport)
    # ------------------------------------------------------------------ #
    def to_dict(self) -> dict[str, object]:
        """JSON-serialisable representation (inverse of :meth:`from_dict`)."""
        return {
            "cells_per_subtable": self.cells_per_subtable,
            "num_hashes": self.num_hashes,
            "seed": self.seed,
            "counts": list(self._counts),
            # 64-bit sums exceed 2^53: hex strings keep them exact through
            # any JSON reader, not just Python's.
            "keysums": [format(v, "x") for v in self._keysums],
            "hashsums": [format(v, "x") for v in self._hashsums],
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "IBLTSketch":
        sketch = cls(
            cells_per_subtable=int(data["cells_per_subtable"]),
            num_hashes=int(data["num_hashes"]),
            seed=int(data["seed"]),
        )
        counts = [int(v) for v in data["counts"]]
        keysums = [int(v, 16) for v in data["keysums"]]
        hashsums = [int(v, 16) for v in data["hashsums"]]
        if not (len(counts) == len(keysums) == len(hashsums) == sketch.num_cells):
            raise ValueError("IBLT cell arrays do not match the declared shape")
        sketch._counts = counts
        sketch._keysums = keysums
        sketch._hashsums = hashsums
        return sketch
