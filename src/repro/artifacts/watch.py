"""Incremental lake ingestion: keep a sketch store in sync with a directory.

``lake watch <data-dir>`` polls a directory of CSVs and folds changes into
the stores without ever rebuilding the world:

* a cheap ``(mtime_ns, size)`` prefilter decides which files even get
  *read* — an idle poll over a 100k-file lake is pure ``stat`` calls;
* files that pass the prefilter go through the ordinary
  :func:`~repro.lake.build.build_from_paths` path, whose
  ``table_content_hash`` comparison confirms real content change (a
  ``touch`` re-reads but never re-sketches or re-enters the writer);
* stems that vanish from the directory are removed from the sketch store
  (and their prepared payloads pruned on the next ``prepare`` pass).

The watcher is the lake's single writer; combined with
:func:`~repro.artifacts.sync.publish_snapshot` (see *publish_dir*) it turns
a plain directory of CSVs into a continuously re-published snapshot that
replica ``lake serve`` nodes pull from.

Quarantine.  A persistently broken file (truncated upload, wrong encoding,
a producer re-writing garbage every cycle) must not be re-read — or worse,
re-failed — on every poll forever.  After ``quarantine_after`` consecutive
failed attempts a path is *parked*: the watcher skips it for a backoff
window measured in polls (doubling up to ``quarantine_max_polls``), then
retries once; a success releases it, another failure re-parks it with a
longer window.  Parked tables keep their last good sketch — quarantine
gates *ingestion attempts*, never store contents.  Counters:
``watch.quarantined`` / ``watch.released`` / ``watch.stat_errors``.
"""

from __future__ import annotations

import logging
import threading
import time
from dataclasses import dataclass, field
from pathlib import Path
from typing import Callable, Optional, Union

from repro.artifacts.sync import PublishReport, publish_snapshot
from repro.discovery.prepared import PreparedStore
from repro.lake.build import build_from_paths, prepare_lake
from repro.lake.store import SketchStore
from repro.matchers.base import BaseMatcher
from repro.telemetry import recorder as telemetry

__all__ = ["LakeWatcher", "WatchReport"]

logger = logging.getLogger(__name__)

#: ``(mtime_ns, size)`` — the prefilter identity of one file on disk.
_FileStamp = tuple[int, int]


@dataclass
class WatchReport:
    """Outcome of one :meth:`LakeWatcher.poll_once` pass."""

    #: Files present in the directory this poll.
    seen: int = 0
    #: Files whose stamp changed (or were new) and were re-read.
    candidates: int = 0
    sketched: int = 0
    unchanged: int = 0
    removed: int = 0
    prepared: int = 0
    stale_pruned: int = 0
    unreadable: list[str] = field(default_factory=list)
    publish: Optional[PublishReport] = None
    #: Quarantine traffic this poll: stems newly parked (or re-parked after
    #: a failed probe), stems released after healing, and every stem
    #: currently sitting in quarantine.
    quarantined: list[str] = field(default_factory=list)
    released: list[str] = field(default_factory=list)
    parked: list[str] = field(default_factory=list)
    #: Files whose ``stat`` failed during the scan (permissions, I/O).
    stat_errors: int = 0
    #: Post-ingest stages that failed this poll (the loop keeps running).
    prepare_error: Optional[str] = None
    publish_error: Optional[str] = None

    @property
    def changed(self) -> bool:
        """True when this poll mutated the stores."""
        return bool(self.sketched or self.removed or self.prepared or self.stale_pruned)


class LakeWatcher:
    """Polls *data_dir* and incrementally maintains the lake stores.

    Parameters
    ----------
    store:
        The sketch store to keep in sync (this process must be its single
        writer).
    data_dir:
        Directory of one-table-per-file CSVs (table name = file stem).
    pattern:
        Glob selecting the files to track (default ``*.csv``).
    prepared_store / matcher:
        When both are given, each mutating poll also runs
        :func:`~repro.lake.build.prepare_lake` so changed tables are
        re-prepared and stale payloads pruned — replicas stay warm.
    publish_dir:
        When set, every mutating poll re-publishes the stores there via
        :func:`~repro.artifacts.sync.publish_snapshot` (O(delta) thanks to
        content addressing).
    workers:
        Forwarded to the build/prepare process pools.
    quarantine_after:
        Consecutive failed ingestion attempts before a path is parked.
    quarantine_base_polls / quarantine_max_polls:
        First backoff window (in polls) and its doubling cap.  Windows are
        measured in polls, not seconds, so quarantine behaviour is exactly
        reproducible in tests regardless of poll interval.
    """

    def __init__(
        self,
        store: SketchStore,
        data_dir: Union[str, Path],
        pattern: str = "*.csv",
        prepared_store: Optional[PreparedStore] = None,
        matcher: Optional[BaseMatcher] = None,
        publish_dir: Optional[Union[str, Path]] = None,
        workers: Optional[int] = None,
        quarantine_after: int = 3,
        quarantine_base_polls: int = 4,
        quarantine_max_polls: int = 64,
    ) -> None:
        if (prepared_store is None) != (matcher is None):
            raise ValueError("prepared_store and matcher must be given together")
        if quarantine_after < 1:
            raise ValueError("quarantine_after must be >= 1")
        if not 1 <= quarantine_base_polls <= quarantine_max_polls:
            raise ValueError(
                "quarantine windows must satisfy 1 <= base <= max polls"
            )
        self.store = store
        self.data_dir = Path(data_dir)
        self.pattern = pattern
        self.prepared_store = prepared_store
        self.matcher = matcher
        self.publish_dir = Path(publish_dir) if publish_dir is not None else None
        self.workers = workers
        self.quarantine_after = quarantine_after
        self.quarantine_base_polls = quarantine_base_polls
        self.quarantine_max_polls = quarantine_max_polls
        self._stamps: dict[str, _FileStamp] = {}
        self._poll_index = 0
        #: path -> consecutive failed ingestion attempts.
        self._failures: dict[str, int] = {}
        #: path -> (poll index at which to probe again, current window).
        self._quarantine: dict[str, tuple[int, int]] = {}

    # ------------------------------------------------------------------ #
    # one poll
    # ------------------------------------------------------------------ #
    def _scan(self, report: WatchReport) -> dict[str, _FileStamp]:
        """Current ``path -> (mtime_ns, size)`` map of the tracked files."""
        stamps: dict[str, _FileStamp] = {}
        if not self.data_dir.is_dir():
            return stamps
        for path in sorted(self.data_dir.glob(self.pattern)):
            try:
                stat = path.stat()
            except OSError as exc:
                # Usually a race with a delete (the next poll settles it),
                # but permission or I/O errors hide here too — surface the
                # skip instead of silently thinning the lake.
                report.stat_errors += 1
                telemetry.count("watch.stat_errors")
                logger.warning("skipping %s this poll: stat failed (%s)", path, exc)
                continue
            if path.is_file():
                stamps[str(path)] = (stat.st_mtime_ns, stat.st_size)
        return stamps

    # ------------------------------------------------------------------ #
    # quarantine bookkeeping
    # ------------------------------------------------------------------ #
    def _is_parked(self, path: str) -> bool:
        """In quarantine and its probe poll has not arrived yet."""
        entry = self._quarantine.get(path)
        return entry is not None and self._poll_index < entry[0]

    def _note_failure(self, path: str, report: WatchReport) -> None:
        count = self._failures.get(path, 0) + 1
        self._failures[path] = count
        previous = self._quarantine.get(path)
        if previous is None and count < self.quarantine_after:
            return  # still inside the grace window; retried on next change
        if previous is None:
            window = self.quarantine_base_polls
        else:
            window = min(self.quarantine_max_polls, previous[1] * 2)
        self._quarantine[path] = (self._poll_index + window, window)
        report.quarantined.append(Path(path).stem)
        telemetry.count("watch.quarantined")
        logger.warning(
            "quarantined %s after %d consecutive failures; next attempt in "
            "%d polls (last good sketch, if any, stays served)",
            path,
            count,
            window,
        )

    def _note_success(self, path: str, report: WatchReport) -> None:
        self._failures.pop(path, None)
        if self._quarantine.pop(path, None) is not None:
            report.released.append(Path(path).stem)
            telemetry.count("watch.released")
            logger.info("released %s from quarantine: it reads cleanly again", path)

    def _forget(self, path: str) -> None:
        self._failures.pop(path, None)
        self._quarantine.pop(path, None)

    def poll_once(self) -> WatchReport:
        """Scan the directory once and fold any changes into the stores."""
        report = WatchReport()
        self._poll_index += 1
        with telemetry.span("artifacts.watch.poll", data_dir=str(self.data_dir)):
            current = self._scan(report)
            report.seen = len(current)
            changed = [
                path
                for path, stamp in current.items()
                if self._stamps.get(path) != stamp and not self._is_parked(path)
            ]
            # Quarantined paths whose window elapsed get one unconditional
            # probe — even with an unchanged stamp, so operators see the
            # table either heal or re-park on a schedule.
            due = [
                path
                for path, (probe_at, _window) in self._quarantine.items()
                if path in current and self._poll_index >= probe_at
            ]
            changed = sorted(set(changed) | set(due))
            vanished = [path for path in self._stamps if path not in current]
            report.candidates = len(changed)
            if changed:
                build = build_from_paths(self.store, changed, workers=self.workers)
                report.sketched = build.sketched
                report.unchanged = build.unchanged
                report.unreadable = list(build.unreadable)
                broken = set(build.unreadable)
                for path in changed:
                    if Path(path).stem in broken:
                        self._note_failure(path, report)
                    else:
                        self._note_success(path, report)
            for path in vanished:
                # One file, one table: a vanished CSV retires its stem.
                if self.store.remove_table(Path(path).stem):
                    report.removed += 1
                self._forget(path)
            # Record stamps for everything seen — including unchanged and
            # unreadable files, so a broken CSV is not re-read every poll
            # (editing it changes its stamp and retriggers).
            self._stamps = current
            report.parked = sorted(
                Path(path).stem
                for path in self._quarantine
                if path in current
            )
            if report.changed and self.prepared_store is not None:
                try:
                    prep = prepare_lake(
                        self.store,
                        self.prepared_store,
                        self.matcher,
                        workers=self.workers,
                    )
                except Exception as exc:
                    # A poisoned prepare must not wedge the watch loop; the
                    # next mutating poll retries with fresh inputs.
                    report.prepare_error = str(exc)
                    telemetry.count("watch.prepare_errors")
                    logger.warning("prepare pass failed this poll: %s", exc)
                else:
                    report.prepared = prep.prepared
                    report.stale_pruned = prep.stale_pruned
            if report.changed and self.publish_dir is not None:
                try:
                    report.publish = publish_snapshot(
                        self.store,
                        self.publish_dir,
                        prepared_store=self.prepared_store,
                    )
                except Exception as exc:
                    report.publish_error = str(exc)
                    telemetry.count("watch.publish_errors")
                    logger.warning("publish failed this poll: %s", exc)
        telemetry.count("artifacts.watch.polls")
        if report.changed:
            telemetry.count("artifacts.watch.changed_polls")
            telemetry.count("artifacts.watch.sketched", report.sketched)
            telemetry.count("artifacts.watch.removed", report.removed)
            logger.info(
                "watch poll: %d files, %d sketched, %d removed, %d prepared%s",
                report.seen,
                report.sketched,
                report.removed,
                report.prepared,
                "" if report.publish is None else ", republished",
            )
        return report

    # ------------------------------------------------------------------ #
    # polling loop
    # ------------------------------------------------------------------ #
    def run(
        self,
        interval_s: float = 2.0,
        max_polls: Optional[int] = None,
        stop: Optional[threading.Event] = None,
        on_report: Optional[Callable[[WatchReport], None]] = None,
    ) -> int:
        """Poll until *stop* is set (or *max_polls* exhausted); returns polls run.

        *on_report* is invoked after every poll — CLI progress printing,
        test hooks.  The loop sleeps in small slices so a ``stop`` event is
        honoured promptly even with long intervals.
        """
        polls = 0
        while max_polls is None or polls < max_polls:
            if stop is not None and stop.is_set():
                break
            report = self.poll_once()
            polls += 1
            if on_report is not None:
                on_report(report)
            if max_polls is not None and polls >= max_polls:
                break
            deadline = time.monotonic() + interval_s
            while True:
                remaining = deadline - time.monotonic()
                if remaining <= 0:
                    break
                if stop is not None and stop.wait(min(remaining, 0.1)):
                    return polls
                if stop is None:
                    time.sleep(remaining)
                    break
        return polls
