"""How a pull moves bytes: the transport seam of the artifact layer.

:func:`~repro.artifacts.sync.pull_snapshot` used to read the artifact
directory directly, which welded "what to sync" to "how bytes arrive" and
left nowhere to model a lossy channel.  :class:`ArtifactTransport` is that
seam: two byte-level reads (manifest, blob) with **no verification** —
digest checking belongs to the *puller*, because the trust boundary sits on
the receiving side of the wire.  A transport may return garbage; the pull
layer re-hashes every blob against its manifest digest and re-fetches on
mismatch, so a corrupt read costs a retry, never a corrupt store.

* :class:`LocalTransport` — the original behaviour: a path-like artifact
  directory (local disk, NFS export, object-store mount).
* :class:`FaultyTransport` — wraps any transport with a
  :class:`~repro.faults.FaultPlan`, injecting errors / delays / truncation
  / bit flips / crashes at the two read points.  This is both the chaos
  test harness and living documentation of the failure model the retry
  layer is built against.

:class:`RetryPolicy` pins the retry discipline: bounded exponential backoff
with jitter per blob, plus one **retry budget per pull** so a hard-down
artifact fails in bounded time instead of retrying each of 100k blobs to
its individual limit.
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass
from pathlib import Path
from typing import Callable, Optional, Union

from repro.artifacts.blobs import BlobStore
from repro.artifacts.manifest import BLOBS_DIR, MANIFEST_NAME
from repro.faults.plan import FaultPlan, InjectedFault

__all__ = [
    "TransportError",
    "ArtifactTransport",
    "LocalTransport",
    "FaultyTransport",
    "RetryPolicy",
    "RetryState",
]


class TransportError(Exception):
    """A transient transport failure — the retryable kind."""


class ArtifactTransport:
    """Byte-level access to one published snapshot artifact.

    Contract for implementations:

    * :meth:`read_manifest` returns the raw manifest bytes, raising
      ``FileNotFoundError`` when the artifact has never been published and
      :class:`TransportError` / ``OSError`` on transient failure;
    * :meth:`read_blob` returns raw blob bytes **unverified**, raising
      ``KeyError`` when the digest is absent and :class:`TransportError` /
      ``OSError`` on transient failure.
    """

    def read_manifest(self) -> bytes:
        raise NotImplementedError

    def read_blob(self, digest: str) -> bytes:
        raise NotImplementedError

    def describe(self) -> str:
        """Human-readable origin for logs and reports."""
        return type(self).__name__


class LocalTransport(ArtifactTransport):
    """The artifact directory on a filesystem (the PR 8 behaviour)."""

    def __init__(self, artifact_dir: Union[str, Path]) -> None:
        self.root = Path(artifact_dir)
        self._blobs = BlobStore(self.root / BLOBS_DIR)

    def read_manifest(self) -> bytes:
        path = self.root / MANIFEST_NAME
        try:
            return path.read_bytes()
        except FileNotFoundError:
            raise FileNotFoundError(
                f"no snapshot manifest at {path}; not a published artifact?"
            ) from None

    def read_blob(self, digest: str) -> bytes:
        return self._blobs.read_raw(digest)

    def describe(self) -> str:
        return str(self.root)


class FaultyTransport(ArtifactTransport):
    """Any transport seen through a :class:`~repro.faults.FaultPlan`.

    Control faults fire *before* the inner read (a failed request transfers
    nothing); data faults mutate the returned bytes (the read "succeeded"
    but the payload is torn or flipped).  Operation names:
    ``transport.read_manifest`` and ``transport.read_blob``.
    """

    def __init__(self, inner: ArtifactTransport, plan: FaultPlan) -> None:
        self.inner = inner
        self.plan = plan

    def _check(self, operation: str) -> None:
        # A generic injected fault presents as the transport's own transient
        # error type (that is what a flaky wire raises); crashes and
        # explicitly-typed errors pass through untouched.
        try:
            self.plan.check(operation)
        except InjectedFault as exc:
            raise TransportError(str(exc)) from exc

    def read_manifest(self) -> bytes:
        self._check("transport.read_manifest")
        return self.plan.mutate("transport.read_manifest", self.inner.read_manifest())

    def read_blob(self, digest: str) -> bytes:
        self._check("transport.read_blob")
        return self.plan.mutate("transport.read_blob", self.inner.read_blob(digest))

    def describe(self) -> str:
        return f"{self.inner.describe()} (fault-injected)"


@dataclass
class RetryPolicy:
    """Bounded exponential backoff with jitter, plus a per-pull budget.

    The delay before retry *n* (1-based) is ``base_delay_s * 2**(n-1)``
    capped at ``max_delay_s``, then jittered by up to ``jitter`` of itself
    (subtracted, so the cap is honest).  ``seed`` pins the jitter stream
    for deterministic tests; ``sleep`` is injectable so chaos suites run at
    full speed.

    ``budget`` bounds the *total* retries one pull may spend across all
    blobs: transient flakiness retries cheerfully, a dead artifact gives up
    after a bounded amount of work.
    """

    max_attempts: int = 4
    base_delay_s: float = 0.05
    max_delay_s: float = 2.0
    jitter: float = 0.5
    budget: int = 64
    sleep: Callable[[float], None] = time.sleep
    seed: Optional[int] = None

    def __post_init__(self) -> None:
        if self.max_attempts < 1:
            raise ValueError("max_attempts must be >= 1")
        if not 0.0 <= self.jitter <= 1.0:
            raise ValueError("jitter must be within [0, 1]")
        if self.budget < 0:
            raise ValueError("budget must be >= 0")

    def start(self) -> "RetryState":
        """Fresh per-pull state (budget counter + jitter stream)."""
        return RetryState(self)


class RetryState:
    """One pull's retry bookkeeping against a :class:`RetryPolicy`."""

    def __init__(self, policy: RetryPolicy) -> None:
        self.policy = policy
        self.retries = 0
        self._rng = random.Random(policy.seed)

    @property
    def budget_left(self) -> int:
        return max(0, self.policy.budget - self.retries)

    def backoff(self, attempt: int) -> float:
        """The jittered delay before retry *attempt* (1-based)."""
        delay = min(
            self.policy.max_delay_s,
            self.policy.base_delay_s * (2.0 ** (attempt - 1)),
        )
        if self.policy.jitter:
            delay -= delay * self.policy.jitter * self._rng.random()
        return delay

    def pause(self, attempt: int) -> bool:
        """Consume budget and sleep before retry *attempt*; False = give up.

        Returns False (without sleeping) once either the per-blob attempt
        cap or the pull-wide budget is exhausted.
        """
        if attempt >= self.policy.max_attempts or self.budget_left <= 0:
            return False
        self.retries += 1
        self.policy.sleep(self.backoff(attempt))
        return True
