"""Crash-safe pull journal: resume an interrupted `lake pull` where it died.

A pull that fetches 100k blobs and dies at blob 99k should not start over.
The journal is an append-only JSONL file next to the replica store:

* a **header** line naming the snapshot being pulled,
* one **entry** line per manifest key *after* its blob has been digest-
  verified and committed to the local store,
* a **completion** line when the pull finishes.

Append-only JSONL is the crash-safety trick: every line is flushed before
the next commit begins, a torn final line (the crash write) is detected and
ignored on replay, and there is no in-place mutation to corrupt.  On
restart, :meth:`PullJournal.begin` replays the file — if it records an
*incomplete* pull of the *same* snapshot, the recorded keys are handed back
as already-verified and the pull skips straight to the remainder.  A
different snapshot id (the publisher moved on) or a completed record voids
the journal and the pull starts clean.

The journal records *keys*, not digests: a key commits exactly one store
row, so "key journaled" == "row durably committed before we advanced".
"""

from __future__ import annotations

import json
import os
from pathlib import Path
from typing import Optional, Union

__all__ = ["PullJournal"]

JOURNAL_SUFFIX = ".pull-journal"


def _parse_lines(raw: str) -> list[dict]:
    """Replay journal lines, tolerating a torn final line from a crash."""
    records = []
    for line in raw.splitlines():
        line = line.strip()
        if not line:
            continue
        try:
            record = json.loads(line)
        except json.JSONDecodeError:
            # A torn write — only legal as the final line; anything the
            # crashed process managed to append after it never existed.
            break
        if isinstance(record, dict):
            records.append(record)
    return records


class PullJournal:
    """Write-ahead progress log for one replica's pulls.

    One journal file serves a replica across pulls: each :meth:`begin`
    truncates it (after harvesting any resumable progress) and starts a new
    record.  The file lives next to the store, so "same journal" implies
    "same replica".
    """

    def __init__(self, path: Union[str, Path]) -> None:
        self.path = Path(path)
        self._handle = None

    # ------------------------------------------------------------------ #
    # lifecycle
    # ------------------------------------------------------------------ #
    def begin(self, snapshot_id: str) -> set[str]:
        """Open the journal for a pull of *snapshot_id*.

        Returns the keys already verified by a previous **interrupted**
        pull of the same snapshot (empty when starting clean).  The journal
        file is then rewritten with a fresh header plus the carried-over
        keys, so a second crash still resumes from the union.
        """
        resumed = self._resumable_keys(snapshot_id)
        self.path.parent.mkdir(parents=True, exist_ok=True)
        self._handle = open(self.path, "w", encoding="utf-8")
        self._append({"kind": "begin", "snapshot_id": snapshot_id})
        for key in sorted(resumed):
            self._append({"kind": "verified", "key": key})
        return resumed

    def record(self, key: str) -> None:
        """Mark one manifest key as verified **and committed** locally.

        Call order matters: record *after* the store commit, so a crash
        between them re-fetches the blob (harmless — commits are
        idempotent) rather than skipping an uncommitted one.
        """
        self._append({"kind": "verified", "key": key})

    def complete(self, stats: Optional[dict] = None) -> None:
        """Seal the journal: this pull finished; nothing to resume."""
        self._append({"kind": "complete", "stats": stats or {}})
        self.close()

    def close(self) -> None:
        if self._handle is not None:
            self._handle.close()
            self._handle = None

    def __enter__(self) -> "PullJournal":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ------------------------------------------------------------------ #
    # replay
    # ------------------------------------------------------------------ #
    def _resumable_keys(self, snapshot_id: str) -> set[str]:
        try:
            raw = self.path.read_text(encoding="utf-8")
        except OSError:
            return set()
        records = _parse_lines(raw)
        if not records or records[0].get("kind") != "begin":
            return set()
        if records[0].get("snapshot_id") != snapshot_id:
            return set()  # the publisher moved on; stale progress is useless
        if any(r.get("kind") == "complete" for r in records):
            return set()  # previous pull finished; nothing to resume
        return {
            str(r["key"])
            for r in records
            if r.get("kind") == "verified" and "key" in r
        }

    def _append(self, record: dict) -> None:
        if self._handle is None:
            raise RuntimeError("journal is not open; call begin() first")
        self._handle.write(json.dumps(record, sort_keys=True) + "\n")
        # Flush through to the OS before the caller takes its next step —
        # the whole point is surviving a crash between steps.
        self._handle.flush()
        os.fsync(self._handle.fileno())

    # ------------------------------------------------------------------ #
    # inspection (``lake stats``)
    # ------------------------------------------------------------------ #
    @classmethod
    def summarize(cls, path: Union[str, Path]) -> Optional[dict]:
        """Describe the journal at *path* without opening it for writing.

        Returns ``None`` when no journal exists, else a dict with the
        snapshot id, verified-key count, completion flag, and any stats the
        completion record carried.
        """
        try:
            raw = Path(path).read_text(encoding="utf-8")
        except OSError:
            return None
        records = _parse_lines(raw)
        if not records or records[0].get("kind") != "begin":
            return None
        completed = next((r for r in records if r.get("kind") == "complete"), None)
        return {
            "snapshot_id": records[0].get("snapshot_id"),
            "verified_keys": sum(1 for r in records if r.get("kind") == "verified"),
            "completed": completed is not None,
            "stats": (completed or {}).get("stats", {}),
        }

    @classmethod
    def default_path(cls, store_path: Union[str, Path]) -> Optional[Path]:
        """Where the journal for a store at *store_path* lives.

        ``None`` for in-memory stores — there is nothing durable to resume.
        """
        text = str(store_path)
        if text == ":memory:" or text.startswith("file::memory:"):
            return None
        return Path(text + JOURNAL_SUFFIX)
