"""Publish and pull: moving lake snapshots between nodes by content address.

The replication topology is **single writer, many readers**: one node owns
the sketch/prepared stores (it runs ``lake build`` / ``lake watch``),
periodically :func:`publish_snapshot`-es them into an artifact directory
(local disk, NFS export, object-store mount — anything path-like), and any
number of query nodes :func:`pull_snapshot` the artifact into their own
local stores.  Applied pulls commit through the ordinary single-writer
store APIs (:meth:`SketchStore.add_sketch`, :meth:`PreparedStore.put_raw`),
bumping the store version — a running ``lake serve`` daemon on the replica
notices via its ``store_generation`` probe and reopens live.

Delta sync.  A pull first reconciles *keys* (``t|name|hash`` /
``p|fingerprint|name|hash|fmt``) between the local stores and the published
manifest.  The preferred mechanism is the manifest's
:class:`~repro.artifacts.iblt.IBLTSketch`: the puller folds its own keys
into an identically-shaped table, subtracts, and peels — an O(cells)
exchange that recovers the symmetric difference no matter how large the
lake is, as long as the *difference* fits the table.  Peel failure (e.g. a
bootstrap pull into an empty store, where the difference is the whole lake)
falls back to a full manifest diff; either way only missing blobs are
fetched, and shared ones cost nothing.  Telemetry counters:
``artifacts.iblt.decode_success`` / ``artifacts.iblt.decode_fallback``,
``artifacts.pull.blobs_fetched`` / ``blobs_skipped`` / ``bytes_fetched``.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.artifacts.blobs import BlobStore
from repro.artifacts.iblt import IBLTSketch, key_fingerprint
from repro.artifacts.manifest import (
    BLOBS_DIR,
    Manifest,
    PreparedEntry,
    TableEntry,
    decode_sketch_blob,
    encode_sketch_blob,
)
from repro.discovery.prepared import PreparedStore
from repro.lake.store import SketchStore
from repro.telemetry import recorder as telemetry

__all__ = ["PublishReport", "PullReport", "publish_snapshot", "pull_snapshot"]

logger = logging.getLogger(__name__)


# ---------------------------------------------------------------------- #
# publish
# ---------------------------------------------------------------------- #


@dataclass
class PublishReport:
    """Outcome of one :func:`publish_snapshot` run."""

    snapshot_id: str = ""
    tables: int = 0
    prepared: int = 0
    #: Blobs actually written vs already present from a previous publish —
    #: an unchanged re-publish writes zero blobs.
    blobs_written: int = 0
    blobs_reused: int = 0
    bytes_written: int = 0
    blobs_pruned: int = 0


def publish_snapshot(
    store: SketchStore,
    artifact_dir: Union[str, Path],
    prepared_store: Optional[PreparedStore] = None,
    iblt_cells_per_subtable: int = 128,
    prune: bool = True,
) -> PublishReport:
    """Export *store* (and optionally *prepared_store*) as a snapshot artifact.

    Blobs are content-addressed and written first (atomically, reusing any
    digest already present), the manifest swap is the single publication
    point, and unreferenced blobs of superseded snapshots are pruned after
    the swap — so re-publishing in place is safe under concurrent pulls and
    costs O(delta) writes.

    Parameters
    ----------
    store / prepared_store:
        The stores to export.  Prepared payload blobs are shipped verbatim
        (current payload format only); pass ``None`` to publish sketches
        only.
    artifact_dir:
        Destination directory (created on demand).
    iblt_cells_per_subtable:
        Size of the reconciliation sketches embedded in the manifest; the
        default decodes deltas of roughly 250 keys.  Bigger lakes with
        churnier deltas can raise it — pullers adapt automatically (the
        shape travels in the manifest).
    prune:
        Delete blobs no longer referenced by the new manifest.  Turn off
        when several publishers share one blob directory.
    """
    report = PublishReport()
    directory = Path(artifact_dir)
    blobs = BlobStore(directory / BLOBS_DIR)
    with telemetry.span("artifacts.publish", store=store.path):
        table_entries: list[TableEntry] = []
        for sketch in store:
            data = encode_sketch_blob(sketch)
            digest, written = blobs.write(data)
            if written:
                report.blobs_written += 1
                report.bytes_written += len(data)
            else:
                report.blobs_reused += 1
            table_entries.append(
                TableEntry(
                    name=sketch.name,
                    content_hash=sketch.content_hash,
                    digest=digest,
                    num_rows=sketch.num_rows,
                )
            )
        prepared_entries: list[PreparedEntry] = []
        if prepared_store is not None:
            for fingerprint, name, content_hash, fmt, blob in prepared_store.iter_raw():
                digest, written = blobs.write(bytes(blob))
                if written:
                    report.blobs_written += 1
                    report.bytes_written += len(blob)
                else:
                    report.blobs_reused += 1
                prepared_entries.append(
                    PreparedEntry(
                        fingerprint=fingerprint,
                        table_name=name,
                        content_hash=content_hash,
                        payload_format=fmt,
                        digest=digest,
                    )
                )
        manifest = Manifest(
            sketch_config=store.config,
            store_version=store.version,
            tables=table_entries,
            prepared=prepared_entries,
            iblt=IBLTSketch.from_keys(
                (entry.key for entry in table_entries),
                cells_per_subtable=iblt_cells_per_subtable,
            ),
            prepared_iblt=IBLTSketch.from_keys(
                (entry.key for entry in prepared_entries),
                cells_per_subtable=iblt_cells_per_subtable,
            ),
        )
        manifest.save(directory)
        if prune:
            report.blobs_pruned = blobs.prune(manifest.referenced_digests())
    report.snapshot_id = manifest.snapshot_id
    report.tables = len(table_entries)
    report.prepared = len(prepared_entries)
    telemetry.count("artifacts.publish.blobs_written", report.blobs_written)
    telemetry.count("artifacts.publish.blobs_reused", report.blobs_reused)
    telemetry.count("artifacts.publish.bytes_written", report.bytes_written)
    logger.info(
        "published snapshot %s: %d tables, %d prepared payloads "
        "(%d blobs written, %d reused, %d pruned)",
        report.snapshot_id[:12],
        report.tables,
        report.prepared,
        report.blobs_written,
        report.blobs_reused,
        report.blobs_pruned,
    )
    return report


# ---------------------------------------------------------------------- #
# reconciliation
# ---------------------------------------------------------------------- #


def _reconcile(
    local_keys: set[str],
    remote_keys: set[str],
    remote_iblt: Optional[IBLTSketch],
) -> tuple[set[str], set[str], bool]:
    """``(keys to fetch, keys to retire, via_iblt)`` for one key domain.

    Attempts the O(delta) IBLT exchange first: fold the local keys into a
    table of the remote sketch's shape, subtract, peel.  Any failure —
    missing sketch, peel giving up, or a decoded fingerprint that maps to
    no known key (a 64-bit collision, vanishingly rare) — falls back to the
    exact full diff, so the result is always correct.
    """
    if remote_iblt is not None:
        local_iblt = IBLTSketch.from_keys(
            local_keys,
            cells_per_subtable=remote_iblt.cells_per_subtable,
            num_hashes=remote_iblt.num_hashes,
            seed=remote_iblt.seed,
        )
        decoded = local_iblt.subtract(remote_iblt).decode()
        if decoded is not None:
            local_by_print = {key_fingerprint(key): key for key in local_keys}
            remote_by_print = {key_fingerprint(key): key for key in remote_keys}
            to_remove = {
                local_by_print[p] for p in decoded.only_in_self if p in local_by_print
            }
            to_fetch = {
                remote_by_print[p] for p in decoded.only_in_other if p in remote_by_print
            }
            if len(to_remove) == len(decoded.only_in_self) and len(to_fetch) == len(
                decoded.only_in_other
            ):
                telemetry.count("artifacts.iblt.decode_success")
                return to_fetch, to_remove, True
            logger.warning(
                "IBLT decoded keys that map to no manifest entry "
                "(fingerprint collision?); falling back to full diff"
            )
        telemetry.count("artifacts.iblt.decode_fallback")
    return remote_keys - local_keys, local_keys - remote_keys, False


# ---------------------------------------------------------------------- #
# pull
# ---------------------------------------------------------------------- #


@dataclass
class PullReport:
    """Outcome of one :func:`pull_snapshot` run."""

    snapshot_id: str = ""
    tables_added: int = 0
    tables_removed: int = 0
    prepared_added: int = 0
    prepared_removed: int = 0
    #: Blob traffic: fetched = read from the artifact (the bytes a remote
    #: transport would move), skipped = referenced by the manifest but
    #: already present locally (zero transfer).
    blobs_fetched: int = 0
    blobs_skipped: int = 0
    bytes_fetched: int = 0
    #: Key domains (tables / prepared) reconciled via a successful IBLT
    #: peel vs the full-diff fallback.
    iblt_decoded: int = 0
    iblt_fallback: int = 0
    #: Tables whose fetched blob failed digest/identity verification (the
    #: pull skips them and keeps whatever the local store had).
    corrupt: list[str] = field(default_factory=list)

    @property
    def unchanged(self) -> bool:
        """True when the pull found the local stores already in sync."""
        return (
            self.tables_added
            == self.tables_removed
            == self.prepared_added
            == self.prepared_removed
            == 0
        )


def pull_snapshot(
    artifact_dir: Union[str, Path],
    store: SketchStore,
    prepared_store: Optional[PreparedStore] = None,
    remove_missing: bool = True,
) -> PullReport:
    """Sync local stores to the snapshot published at *artifact_dir*.

    Only blobs whose keys are missing locally are read (delta fetch); local
    tables and payloads absent from the snapshot are retired when
    *remove_missing* is set, so the replica converges to exactly the
    published state.  All writes go through the ordinary store APIs in this
    (single-writer) process; every applied change bumps the sketch store's
    monotone version, which is what a serving daemon's generation probe
    watches.

    Raises
    ------
    FileNotFoundError / ValueError
        Unreadable artifact, or a sketch-config mismatch with the local
        store (signatures would not be comparable).
    """
    report = PullReport()
    manifest = Manifest.load(artifact_dir)
    if manifest.sketch_config != store.config:
        raise ValueError(
            f"snapshot at {artifact_dir} was published with "
            f"{manifest.sketch_config}, local store uses {store.config}; "
            "refusing to mix incomparable sketches"
        )
    report.snapshot_id = manifest.snapshot_id
    blobs = BlobStore(Path(artifact_dir) / BLOBS_DIR)
    with telemetry.span("artifacts.pull", artifact=str(artifact_dir)):
        _pull_tables(manifest, blobs, store, remove_missing, report)
        if prepared_store is not None:
            _pull_prepared(manifest, blobs, prepared_store, remove_missing, report)
    telemetry.count("artifacts.pull.blobs_fetched", report.blobs_fetched)
    telemetry.count("artifacts.pull.blobs_skipped", report.blobs_skipped)
    telemetry.count("artifacts.pull.bytes_fetched", report.bytes_fetched)
    logger.info(
        "pulled snapshot %s: +%d/-%d tables, +%d/-%d prepared "
        "(%d blobs fetched / %d skipped, %d bytes)",
        report.snapshot_id[:12],
        report.tables_added,
        report.tables_removed,
        report.prepared_added,
        report.prepared_removed,
        report.blobs_fetched,
        report.blobs_skipped,
        report.bytes_fetched,
    )
    return report


def _pull_tables(
    manifest: Manifest,
    blobs: BlobStore,
    store: SketchStore,
    remove_missing: bool,
    report: PullReport,
) -> None:
    local_meta = store.table_meta(store.table_names)
    local_keys = {
        f"t|{name}|{content_hash}": name
        for name, (content_hash, _path) in local_meta.items()
    }
    remote_entries = {entry.key: entry for entry in manifest.tables}
    to_fetch, to_remove, via_iblt = _reconcile(
        set(local_keys), set(remote_entries), manifest.iblt
    )
    report.iblt_decoded += int(via_iblt)
    report.iblt_fallback += int(not via_iblt)
    report.blobs_skipped += len(remote_entries) - len(to_fetch)
    for key in sorted(to_fetch):
        entry = remote_entries[key]
        try:
            data = blobs.read(entry.digest)
            sketch = decode_sketch_blob(data)
        except (KeyError, ValueError) as exc:
            logger.warning("skipping table %r: bad snapshot blob (%s)", entry.name, exc)
            report.corrupt.append(entry.name)
            continue
        if sketch.name != entry.name or sketch.content_hash != entry.content_hash:
            logger.warning(
                "skipping table %r: blob identity does not match its manifest entry",
                entry.name,
            )
            report.corrupt.append(entry.name)
            continue
        report.blobs_fetched += 1
        report.bytes_fetched += len(data)
        if store.add_sketch(sketch):
            report.tables_added += 1
    if remove_missing:
        # A changed table surfaces as old-key-removed + new-key-added for
        # the same name; the add above already replaced the row, so only
        # names absent from the snapshot entirely are dropped.
        remote_names = {entry.name for entry in manifest.tables}
        for key in sorted(to_remove):
            name = local_keys[key]
            if name in remote_names:
                continue
            if store.remove_table(name):
                report.tables_removed += 1


def _pull_prepared(
    manifest: Manifest,
    blobs: BlobStore,
    prepared_store: PreparedStore,
    remove_missing: bool,
    report: PullReport,
) -> None:
    local_rows = {
        f"p|{fingerprint}|{name}|{content_hash}|{fmt}": (fingerprint, name, content_hash)
        for fingerprint, name, content_hash, fmt in prepared_store.raw_keys()
    }
    remote_entries = {entry.key: entry for entry in manifest.prepared}
    to_fetch, to_remove, via_iblt = _reconcile(
        set(local_rows), set(remote_entries), manifest.prepared_iblt
    )
    report.iblt_decoded += int(via_iblt)
    report.iblt_fallback += int(not via_iblt)
    report.blobs_skipped += len(remote_entries) - len(to_fetch)
    for key in sorted(to_fetch):
        entry = remote_entries[key]
        try:
            data = blobs.read(entry.digest)
        except (KeyError, ValueError) as exc:
            logger.warning(
                "skipping prepared payload for %r: bad snapshot blob (%s)",
                entry.table_name,
                exc,
            )
            report.corrupt.append(entry.table_name)
            continue
        report.blobs_fetched += 1
        report.bytes_fetched += len(data)
        prepared_store.put_raw(
            entry.fingerprint,
            entry.table_name,
            entry.content_hash,
            entry.payload_format,
            data,
        )
        report.prepared_added += 1
    if remove_missing:
        # Prepared keys embed the content hash, so a changed payload's old
        # row is a distinct primary key — exact removal never clobbers the
        # row just pulled.
        for key in sorted(to_remove):
            fingerprint, name, content_hash = local_rows[key]
            if prepared_store.remove_raw(fingerprint, name, content_hash):
                report.prepared_removed += 1
