"""Publish and pull: moving lake snapshots between nodes by content address.

The replication topology is **single writer, many readers**: one node owns
the sketch/prepared stores (it runs ``lake build`` / ``lake watch``),
periodically :func:`publish_snapshot`-es them into an artifact directory
(local disk, NFS export, object-store mount — anything path-like), and any
number of query nodes :func:`pull_snapshot` the artifact into their own
local stores.  Applied pulls commit through the ordinary single-writer
store APIs (:meth:`SketchStore.add_sketch`, :meth:`PreparedStore.put_raw`),
bumping the store version — a running ``lake serve`` daemon on the replica
notices via its ``store_generation`` probe and reopens live.

Delta sync.  A pull first reconciles *keys* (``t|name|hash`` /
``p|fingerprint|name|hash|fmt``) between the local stores and the published
manifest.  The preferred mechanism is the manifest's
:class:`~repro.artifacts.iblt.IBLTSketch`: the puller folds its own keys
into an identically-shaped table, subtracts, and peels — an O(cells)
exchange that recovers the symmetric difference no matter how large the
lake is, as long as the *difference* fits the table.  Peel failure (e.g. a
bootstrap pull into an empty store, where the difference is the whole lake)
falls back to a full manifest diff; either way only missing blobs are
fetched, and shared ones cost nothing.  Telemetry counters:
``artifacts.iblt.decode_success`` / ``artifacts.iblt.decode_fallback``,
``artifacts.pull.blobs_fetched`` / ``blobs_skipped`` / ``bytes_fetched``.

Fault tolerance.  A pull reads through an
:class:`~repro.artifacts.transport.ArtifactTransport` (a plain path is
wrapped in a :class:`~repro.artifacts.transport.LocalTransport`) and treats
the channel as lossy: every fetched blob is re-hashed against its manifest
digest, and a mismatch or transient transport error triggers a bounded
backoff-and-retry (:class:`~repro.artifacts.transport.RetryPolicy` — per
blob attempts plus a pull-wide budget) rather than an abort.  Progress is
journaled (:class:`~repro.artifacts.journal.PullJournal`): each key is
logged *after* its store commit, so a pull killed mid-flight resumes
fetching only blobs it never verified.  Counters: ``sync.retries``,
``sync.resumed_blobs``.
"""

from __future__ import annotations

import logging
from dataclasses import dataclass, field
from pathlib import Path
from typing import Optional, Union

from repro.artifacts.blobs import BlobStore, blob_digest
from repro.artifacts.iblt import IBLTSketch, key_fingerprint
from repro.artifacts.journal import PullJournal
from repro.artifacts.manifest import (
    BLOBS_DIR,
    Manifest,
    PreparedEntry,
    TableEntry,
    decode_sketch_blob,
    encode_sketch_blob,
)
from repro.artifacts.transport import (
    ArtifactTransport,
    LocalTransport,
    RetryPolicy,
    RetryState,
    TransportError,
)
from repro.discovery.prepared import PreparedStore
from repro.lake.store import SketchStore
from repro.telemetry import recorder as telemetry

__all__ = ["PublishReport", "PullReport", "publish_snapshot", "pull_snapshot"]

logger = logging.getLogger(__name__)


# ---------------------------------------------------------------------- #
# publish
# ---------------------------------------------------------------------- #


@dataclass
class PublishReport:
    """Outcome of one :func:`publish_snapshot` run."""

    snapshot_id: str = ""
    tables: int = 0
    prepared: int = 0
    #: Blobs actually written vs already present from a previous publish —
    #: an unchanged re-publish writes zero blobs.
    blobs_written: int = 0
    blobs_reused: int = 0
    bytes_written: int = 0
    blobs_pruned: int = 0


def publish_snapshot(
    store: SketchStore,
    artifact_dir: Union[str, Path],
    prepared_store: Optional[PreparedStore] = None,
    iblt_cells_per_subtable: int = 128,
    prune: bool = True,
) -> PublishReport:
    """Export *store* (and optionally *prepared_store*) as a snapshot artifact.

    Blobs are content-addressed and written first (atomically, reusing any
    digest already present), the manifest swap is the single publication
    point, and unreferenced blobs of superseded snapshots are pruned after
    the swap — so re-publishing in place is safe under concurrent pulls and
    costs O(delta) writes.

    Parameters
    ----------
    store / prepared_store:
        The stores to export.  Prepared payload blobs are shipped verbatim
        (current payload format only); pass ``None`` to publish sketches
        only.
    artifact_dir:
        Destination directory (created on demand).
    iblt_cells_per_subtable:
        Size of the reconciliation sketches embedded in the manifest; the
        default decodes deltas of roughly 250 keys.  Bigger lakes with
        churnier deltas can raise it — pullers adapt automatically (the
        shape travels in the manifest).
    prune:
        Delete blobs no longer referenced by the new manifest.  Turn off
        when several publishers share one blob directory.
    """
    report = PublishReport()
    directory = Path(artifact_dir)
    blobs = BlobStore(directory / BLOBS_DIR)
    with telemetry.span("artifacts.publish", store=store.path):
        table_entries: list[TableEntry] = []
        for sketch in store:
            data = encode_sketch_blob(sketch)
            digest, written = blobs.write(data)
            if written:
                report.blobs_written += 1
                report.bytes_written += len(data)
            else:
                report.blobs_reused += 1
            table_entries.append(
                TableEntry(
                    name=sketch.name,
                    content_hash=sketch.content_hash,
                    digest=digest,
                    num_rows=sketch.num_rows,
                )
            )
        prepared_entries: list[PreparedEntry] = []
        if prepared_store is not None:
            for fingerprint, name, content_hash, fmt, blob in prepared_store.iter_raw():
                digest, written = blobs.write(bytes(blob))
                if written:
                    report.blobs_written += 1
                    report.bytes_written += len(blob)
                else:
                    report.blobs_reused += 1
                prepared_entries.append(
                    PreparedEntry(
                        fingerprint=fingerprint,
                        table_name=name,
                        content_hash=content_hash,
                        payload_format=fmt,
                        digest=digest,
                    )
                )
        manifest = Manifest(
            sketch_config=store.config,
            store_version=store.version,
            tables=table_entries,
            prepared=prepared_entries,
            iblt=IBLTSketch.from_keys(
                (entry.key for entry in table_entries),
                cells_per_subtable=iblt_cells_per_subtable,
            ),
            prepared_iblt=IBLTSketch.from_keys(
                (entry.key for entry in prepared_entries),
                cells_per_subtable=iblt_cells_per_subtable,
            ),
        )
        manifest.save(directory)
        if prune:
            report.blobs_pruned = blobs.prune(manifest.referenced_digests())
    report.snapshot_id = manifest.snapshot_id
    report.tables = len(table_entries)
    report.prepared = len(prepared_entries)
    telemetry.count("artifacts.publish.blobs_written", report.blobs_written)
    telemetry.count("artifacts.publish.blobs_reused", report.blobs_reused)
    telemetry.count("artifacts.publish.bytes_written", report.bytes_written)
    logger.info(
        "published snapshot %s: %d tables, %d prepared payloads "
        "(%d blobs written, %d reused, %d pruned)",
        report.snapshot_id[:12],
        report.tables,
        report.prepared,
        report.blobs_written,
        report.blobs_reused,
        report.blobs_pruned,
    )
    return report


# ---------------------------------------------------------------------- #
# reconciliation
# ---------------------------------------------------------------------- #


def _reconcile(
    local_keys: set[str],
    remote_keys: set[str],
    remote_iblt: Optional[IBLTSketch],
) -> tuple[set[str], set[str], bool]:
    """``(keys to fetch, keys to retire, via_iblt)`` for one key domain.

    Attempts the O(delta) IBLT exchange first: fold the local keys into a
    table of the remote sketch's shape, subtract, peel.  Any failure —
    missing sketch, peel giving up, or a decoded fingerprint that maps to
    no known key (a 64-bit collision, vanishingly rare) — falls back to the
    exact full diff, so the result is always correct.
    """
    if remote_iblt is not None:
        local_iblt = IBLTSketch.from_keys(
            local_keys,
            cells_per_subtable=remote_iblt.cells_per_subtable,
            num_hashes=remote_iblt.num_hashes,
            seed=remote_iblt.seed,
        )
        decoded = local_iblt.subtract(remote_iblt).decode()
        if decoded is not None:
            local_by_print = {key_fingerprint(key): key for key in local_keys}
            remote_by_print = {key_fingerprint(key): key for key in remote_keys}
            to_remove = {
                local_by_print[p] for p in decoded.only_in_self if p in local_by_print
            }
            to_fetch = {
                remote_by_print[p] for p in decoded.only_in_other if p in remote_by_print
            }
            if len(to_remove) == len(decoded.only_in_self) and len(to_fetch) == len(
                decoded.only_in_other
            ):
                telemetry.count("artifacts.iblt.decode_success")
                return to_fetch, to_remove, True
            logger.warning(
                "IBLT decoded keys that map to no manifest entry "
                "(fingerprint collision?); falling back to full diff"
            )
        telemetry.count("artifacts.iblt.decode_fallback")
    return remote_keys - local_keys, local_keys - remote_keys, False


# ---------------------------------------------------------------------- #
# pull
# ---------------------------------------------------------------------- #


@dataclass
class PullReport:
    """Outcome of one :func:`pull_snapshot` run."""

    snapshot_id: str = ""
    tables_added: int = 0
    tables_removed: int = 0
    prepared_added: int = 0
    prepared_removed: int = 0
    #: Blob traffic: fetched = read from the artifact (the bytes a remote
    #: transport would move), skipped = referenced by the manifest but
    #: already present locally (zero transfer).
    blobs_fetched: int = 0
    blobs_skipped: int = 0
    bytes_fetched: int = 0
    #: Key domains (tables / prepared) reconciled via a successful IBLT
    #: peel vs the full-diff fallback.
    iblt_decoded: int = 0
    iblt_fallback: int = 0
    #: Tables whose fetched blob failed digest/identity verification even
    #: after retries (the pull skips them and keeps whatever the local
    #: store had — a later pull retries them from scratch).
    corrupt: list[str] = field(default_factory=list)
    #: Fault-tolerance accounting: transport reads retried after a failure
    #: or digest mismatch, and blobs *not* re-fetched because an earlier
    #: interrupted pull of this snapshot already verified and committed
    #: them (per the pull journal).
    retries: int = 0
    resumed_blobs: int = 0
    #: True when this pull picked up an interrupted pull's journal.
    resumed: bool = False

    @property
    def unchanged(self) -> bool:
        """True when the pull found the local stores already in sync."""
        return (
            self.tables_added
            == self.tables_removed
            == self.prepared_added
            == self.prepared_removed
            == 0
        )


class _FetchFailed(Exception):
    """A blob could not be fetched intact within the retry policy."""


def _fetch_manifest(
    transport: ArtifactTransport, retry_state: Optional[RetryState], report: PullReport
) -> Manifest:
    """Fetch + parse the manifest, retrying transient/corrupt reads."""
    attempt = 1
    while True:
        try:
            raw = transport.read_manifest()
            return Manifest.from_bytes(raw, origin=transport.describe())
        except FileNotFoundError:
            raise  # never published: retrying cannot help
        except (TransportError, OSError, ValueError) as exc:
            if retry_state is None or not retry_state.pause(attempt):
                raise
            attempt += 1
            report.retries += 1
            logger.warning(
                "retrying manifest read from %s (attempt %d): %s",
                transport.describe(),
                attempt,
                exc,
            )


def _fetch_blob(
    transport: ArtifactTransport,
    digest: str,
    retry_state: Optional[RetryState],
    report: PullReport,
) -> bytes:
    """Fetch one blob and verify it against its content address.

    Transient errors, absent blobs (a concurrent re-publish may have
    pruned and re-added), and digest mismatches (torn or corrupted
    transfer) all retry under the policy; exhaustion raises
    :class:`_FetchFailed` so the caller can skip just this entry.
    """
    attempt = 1
    while True:
        failure: str
        try:
            data = transport.read_blob(digest)
        except (KeyError, TransportError, OSError) as exc:
            failure = f"{type(exc).__name__}: {exc}"
        else:
            if blob_digest(data) == digest:
                return data
            failure = "content does not match digest (corrupt transfer)"
        if retry_state is None or not retry_state.pause(attempt):
            raise _FetchFailed(f"blob {digest[:12]}…: {failure}")
        attempt += 1
        report.retries += 1


def pull_snapshot(
    source: Union[str, Path, ArtifactTransport],
    store: SketchStore,
    prepared_store: Optional[PreparedStore] = None,
    remove_missing: bool = True,
    retry: Optional[RetryPolicy] = None,
    journal_path: Union[str, Path, None] = None,
    resume: bool = True,
) -> PullReport:
    """Sync local stores to the snapshot published at *source*.

    Only blobs whose keys are missing locally are read (delta fetch); local
    tables and payloads absent from the snapshot are retired when
    *remove_missing* is set, so the replica converges to exactly the
    published state.  All writes go through the ordinary store APIs in this
    (single-writer) process; every applied change bumps the sketch store's
    monotone version, which is what a serving daemon's generation probe
    watches.

    Parameters
    ----------
    source:
        An artifact directory path, or any
        :class:`~repro.artifacts.transport.ArtifactTransport`.
    retry:
        Backoff policy for transient transport failures and corrupt
        transfers (default: :class:`RetryPolicy()`); an entry that stays
        unfetchable after retries lands in ``report.corrupt`` instead of
        aborting the pull.
    journal_path / resume:
        Where the crash-safe progress journal lives (default: next to the
        sketch store; ``None`` + in-memory store = no journal) and whether
        to honour an interrupted pull's progress found there.

    Raises
    ------
    FileNotFoundError / ValueError
        Unreadable artifact, or a sketch-config mismatch with the local
        store (signatures would not be comparable).
    """
    transport = (
        source if isinstance(source, ArtifactTransport) else LocalTransport(source)
    )
    report = PullReport()
    retry_state = (retry or RetryPolicy()).start()
    manifest = _fetch_manifest(transport, retry_state, report)
    if manifest.sketch_config != store.config:
        raise ValueError(
            f"snapshot at {transport.describe()} was published with "
            f"{manifest.sketch_config}, local store uses {store.config}; "
            "refusing to mix incomparable sketches"
        )
    report.snapshot_id = manifest.snapshot_id

    if journal_path is None:
        journal_path = PullJournal.default_path(store.path)
    journal = PullJournal(journal_path) if journal_path is not None else None
    verified_before: set[str] = set()
    if journal is not None:
        resumed = journal.begin(manifest.snapshot_id)
        if resume:
            verified_before = resumed
            report.resumed = bool(resumed)

    try:
        with telemetry.span("artifacts.pull", artifact=transport.describe()):
            _pull_tables(
                manifest,
                transport,
                store,
                remove_missing,
                report,
                retry_state,
                journal,
                verified_before,
            )
            if prepared_store is not None:
                _pull_prepared(
                    manifest,
                    transport,
                    prepared_store,
                    remove_missing,
                    report,
                    retry_state,
                    journal,
                    verified_before,
                )
        if journal is not None and not report.corrupt:
            # With failures pending we leave the journal unsealed, so the
            # next pull resumes and retries exactly the unverified rest.
            journal.complete(
                {
                    "blobs_fetched": report.blobs_fetched,
                    "bytes_fetched": report.bytes_fetched,
                    "retries": report.retries,
                }
            )
    finally:
        if journal is not None:
            journal.close()
    telemetry.count("artifacts.pull.blobs_fetched", report.blobs_fetched)
    telemetry.count("artifacts.pull.blobs_skipped", report.blobs_skipped)
    telemetry.count("artifacts.pull.bytes_fetched", report.bytes_fetched)
    telemetry.count("sync.retries", report.retries)
    telemetry.count("sync.resumed_blobs", report.resumed_blobs)
    logger.info(
        "pulled snapshot %s: +%d/-%d tables, +%d/-%d prepared "
        "(%d blobs fetched / %d skipped, %d bytes, %d retries, %d resumed)",
        report.snapshot_id[:12],
        report.tables_added,
        report.tables_removed,
        report.prepared_added,
        report.prepared_removed,
        report.blobs_fetched,
        report.blobs_skipped,
        report.bytes_fetched,
        report.retries,
        report.resumed_blobs,
    )
    return report


def _pull_tables(
    manifest: Manifest,
    transport: ArtifactTransport,
    store: SketchStore,
    remove_missing: bool,
    report: PullReport,
    retry_state: Optional[RetryState],
    journal: Optional[PullJournal],
    verified_before: set[str],
) -> None:
    local_meta = store.table_meta(store.table_names)
    local_keys = {
        f"t|{name}|{content_hash}": name
        for name, (content_hash, _path) in local_meta.items()
    }
    remote_entries = {entry.key: entry for entry in manifest.tables}
    to_fetch, to_remove, via_iblt = _reconcile(
        set(local_keys), set(remote_entries), manifest.iblt
    )
    report.iblt_decoded += int(via_iblt)
    report.iblt_fallback += int(not via_iblt)
    report.blobs_skipped += len(remote_entries) - len(to_fetch)
    report.resumed_blobs += len(
        verified_before & (set(remote_entries) - to_fetch)
    )
    for key in sorted(to_fetch):
        entry = remote_entries[key]
        try:
            data = _fetch_blob(transport, entry.digest, retry_state, report)
        except _FetchFailed as exc:
            logger.warning("skipping table %r: %s", entry.name, exc)
            report.corrupt.append(entry.name)
            continue
        try:
            sketch = decode_sketch_blob(data)
        except (ValueError, KeyError, TypeError) as exc:
            # Digest-valid but undecodable: a publisher bug, not a wire
            # fault — re-fetching would hand back the same bytes.
            logger.warning(
                "skipping table %r: blob is not a sketch (%s)", entry.name, exc
            )
            report.corrupt.append(entry.name)
            continue
        if sketch.name != entry.name or sketch.content_hash != entry.content_hash:
            logger.warning(
                "skipping table %r: blob identity does not match its manifest entry",
                entry.name,
            )
            report.corrupt.append(entry.name)
            continue
        report.blobs_fetched += 1
        report.bytes_fetched += len(data)
        if store.add_sketch(sketch):
            report.tables_added += 1
        if journal is not None:
            journal.record(key)
    if remove_missing:
        # A changed table surfaces as old-key-removed + new-key-added for
        # the same name; the add above already replaced the row, so only
        # names absent from the snapshot entirely are dropped.
        remote_names = {entry.name for entry in manifest.tables}
        for key in sorted(to_remove):
            name = local_keys[key]
            if name in remote_names:
                continue
            if store.remove_table(name):
                report.tables_removed += 1


def _pull_prepared(
    manifest: Manifest,
    transport: ArtifactTransport,
    prepared_store: PreparedStore,
    remove_missing: bool,
    report: PullReport,
    retry_state: Optional[RetryState],
    journal: Optional[PullJournal],
    verified_before: set[str],
) -> None:
    local_rows = {
        f"p|{fingerprint}|{name}|{content_hash}|{fmt}": (fingerprint, name, content_hash)
        for fingerprint, name, content_hash, fmt in prepared_store.raw_keys()
    }
    remote_entries = {entry.key: entry for entry in manifest.prepared}
    to_fetch, to_remove, via_iblt = _reconcile(
        set(local_rows), set(remote_entries), manifest.prepared_iblt
    )
    report.iblt_decoded += int(via_iblt)
    report.iblt_fallback += int(not via_iblt)
    report.blobs_skipped += len(remote_entries) - len(to_fetch)
    report.resumed_blobs += len(
        verified_before & (set(remote_entries) - to_fetch)
    )
    for key in sorted(to_fetch):
        entry = remote_entries[key]
        try:
            data = _fetch_blob(transport, entry.digest, retry_state, report)
        except _FetchFailed as exc:
            logger.warning(
                "skipping prepared payload for %r: %s", entry.table_name, exc
            )
            report.corrupt.append(entry.table_name)
            continue
        report.blobs_fetched += 1
        report.bytes_fetched += len(data)
        prepared_store.put_raw(
            entry.fingerprint,
            entry.table_name,
            entry.content_hash,
            entry.payload_format,
            data,
        )
        report.prepared_added += 1
        if journal is not None:
            journal.record(key)
    if remove_missing:
        # Prepared keys embed the content hash, so a changed payload's old
        # row is a distinct primary key — exact removal never clobbers the
        # row just pulled.
        for key in sorted(to_remove):
            fingerprint, name, content_hash = local_rows[key]
            if prepared_store.remove_raw(fingerprint, name, content_hash):
                report.prepared_removed += 1
