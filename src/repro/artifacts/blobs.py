"""Content-addressed blob storage for published lake snapshots.

A snapshot artifact is a directory of immutable blobs named by the SHA-256
of their bytes, plus a manifest pointing at them.  Content addressing is
what makes publish/pull safe and cheap:

* **atomic publish** — blobs are written to a temp file and ``os.replace``d
  into place; a blob path either does not exist or holds exactly the bytes
  its digest promises, so a re-publish can add blobs *in place* while
  readers of the previous manifest keep resolving their (still present)
  blobs.  Only the manifest swap — also a single ``os.replace`` — moves
  readers to the new snapshot.
* **idempotent writes** — re-publishing an unchanged table writes nothing
  (the digest already exists), which is what keeps `lake watch` + republish
  cycles O(delta).
* **verified reads** — :meth:`BlobStore.read` re-hashes and refuses bytes
  that do not match their name, so a torn or tampered blob can never be
  committed into a store.
"""

from __future__ import annotations

import hashlib
import os
import tempfile
from pathlib import Path
from typing import Iterator, Union

__all__ = ["BlobStore", "blob_digest"]


def blob_digest(data: bytes) -> str:
    """The hex SHA-256 content address of *data*."""
    return hashlib.sha256(data).hexdigest()


class BlobStore:
    """A directory of immutable blobs addressed by SHA-256 digest.

    Blobs live two levels deep (``blobs/ab/abcdef...``) so a 100k-table
    snapshot does not put every payload in one directory.
    """

    def __init__(self, root: Union[str, Path]) -> None:
        self.root = Path(root)

    def _path_of(self, digest: str) -> Path:
        if len(digest) < 3 or not all(c in "0123456789abcdef" for c in digest):
            raise ValueError(f"not a hex blob digest: {digest!r}")
        return self.root / digest[:2] / digest

    def __contains__(self, digest: str) -> bool:
        return self._path_of(digest).is_file()

    def size(self, digest: str) -> int:
        """On-disk byte size of one blob (raises ``KeyError`` when absent)."""
        try:
            return self._path_of(digest).stat().st_size
        except OSError:
            raise KeyError(f"no blob {digest}") from None

    def write(self, data: bytes) -> tuple[str, bool]:
        """Store *data* under its digest; returns ``(digest, written)``.

        ``written`` is False when the blob already existed — the caller's
        re-publish accounting.  The write is atomic (temp file + replace in
        the same directory), so concurrent publishers of identical content
        are harmless.
        """
        digest = blob_digest(data)
        path = self._path_of(digest)
        if path.is_file():
            return digest, False
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, temp_name = tempfile.mkstemp(prefix=".blob-", dir=path.parent)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(temp_name, path)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return digest, True

    def read_raw(self, digest: str) -> bytes:
        """Load one blob's bytes **without** digest verification.

        This is the transport-layer read: a puller fetching over a possibly
        lossy channel re-hashes the bytes itself against the manifest, so
        verifying here as well would just hash everything twice.  Raises
        ``KeyError`` when the blob is absent.
        """
        try:
            return self._path_of(digest).read_bytes()
        except OSError:
            raise KeyError(f"no blob {digest}") from None

    def read(self, digest: str) -> bytes:
        """Load and verify one blob.

        Raises
        ------
        KeyError
            When no blob with that digest exists.
        ValueError
            When the stored bytes do not hash to their name (corruption).
        """
        data = self.read_raw(digest)
        if blob_digest(data) != digest:
            raise ValueError(
                f"blob {digest} is corrupt: content does not match its address"
            )
        return data

    def digests(self) -> Iterator[str]:
        """Every blob digest currently stored (no particular order)."""
        if not self.root.is_dir():
            return
        for shard in self.root.iterdir():
            if not shard.is_dir():
                continue
            for path in shard.iterdir():
                if path.is_file() and not path.name.startswith("."):
                    yield path.name

    def prune(self, referenced: set[str]) -> int:
        """Delete blobs not in *referenced*; returns how many were removed.

        Run *after* the manifest swap: anything the live manifest does not
        reference belongs to superseded snapshots.
        """
        removed = 0
        for digest in list(self.digests()):
            if digest in referenced:
                continue
            try:
                self._path_of(digest).unlink()
                removed += 1
            except OSError:
                pass
        return removed
