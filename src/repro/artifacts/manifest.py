"""The snapshot manifest: one JSON root object naming a lake's content.

A published snapshot is ``manifest.json`` + a :class:`~repro.artifacts.blobs.
BlobStore` directory.  The manifest is the only mutable file in an artifact
and is swapped atomically, so a snapshot is exactly "whatever the manifest
references":

* one :class:`TableEntry` per sketch-store table — ``(name, content hash,
  payload digest, num_rows)``, the blob being the canonical JSON encoding
  of the :class:`~repro.lake.profiles.TableSketch`;
* one :class:`PreparedEntry` per prepared-store row — ``(matcher
  fingerprint, table name, content hash, payload format, digest)``, the
  blob being the store's pickled payload verbatim;
* the publishing store's ``version`` and pinned
  :class:`~repro.lake.profiles.SketchConfig` (a puller refuses to mix
  incomparable sketch parameters);
* one :class:`~repro.artifacts.iblt.IBLTSketch` over the table entry
  **keys** and one over the prepared entry keys, so a puller can reconcile
  either set against its local keys by exchanging O(delta) cells instead of
  full key lists (peel failure falls back to the entry list, which the
  manifest also carries).  The two domains get separate sketches because a
  puller may sync only the sketch store — a combined IBLT would then see
  every prepared key as a difference and never decode.

Entry *keys* are strings (``t|name|hash`` / ``p|fingerprint|name|hash|fmt``)
— a table whose content changes gets a new key, so "changed" is just
"one key removed + one added" to the reconciliation layer.

Blob encoding of a table sketch is **canonical** (sorted keys, fixed
separators): the same sketch always produces the same bytes, hence the same
digest, hence a no-op re-publish.
"""

from __future__ import annotations

import hashlib
import json
import os
import tempfile
from dataclasses import dataclass, field
from pathlib import Path
from typing import Mapping, Optional, Union

from repro.artifacts.iblt import IBLTSketch
from repro.lake.profiles import ColumnSketch, SketchConfig, TableSketch

__all__ = [
    "MANIFEST_FORMAT",
    "MANIFEST_NAME",
    "BLOBS_DIR",
    "TableEntry",
    "PreparedEntry",
    "Manifest",
    "encode_sketch_blob",
    "decode_sketch_blob",
]

MANIFEST_FORMAT = 1
MANIFEST_NAME = "manifest.json"
BLOBS_DIR = "blobs"


def _canonical_json(data: object) -> bytes:
    return json.dumps(data, sort_keys=True, separators=(",", ":")).encode("utf-8")


def encode_sketch_blob(sketch: TableSketch) -> bytes:
    """Canonical JSON bytes of a table sketch (digest-stable)."""
    return _canonical_json(
        {
            "name": sketch.name,
            "content_hash": sketch.content_hash,
            "num_rows": sketch.num_rows,
            "columns": [column.to_dict() for column in sketch.columns],
        }
    )


def decode_sketch_blob(data: bytes) -> TableSketch:
    """Inverse of :func:`encode_sketch_blob`."""
    decoded = json.loads(data.decode("utf-8"))
    return TableSketch(
        name=str(decoded["name"]),
        content_hash=str(decoded["content_hash"]),
        num_rows=int(decoded["num_rows"]),
        columns=tuple(ColumnSketch.from_dict(c) for c in decoded["columns"]),
    )


@dataclass(frozen=True)
class TableEntry:
    """One sketch-store table in a snapshot."""

    name: str
    content_hash: str
    digest: str
    num_rows: int = 0

    @property
    def key(self) -> str:
        return f"t|{self.name}|{self.content_hash}"

    def as_dict(self) -> dict[str, object]:
        return {
            "name": self.name,
            "content_hash": self.content_hash,
            "digest": self.digest,
            "num_rows": self.num_rows,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "TableEntry":
        return cls(
            name=str(data["name"]),
            content_hash=str(data["content_hash"]),
            digest=str(data["digest"]),
            num_rows=int(data.get("num_rows", 0)),
        )


@dataclass(frozen=True)
class PreparedEntry:
    """One prepared-store payload in a snapshot."""

    fingerprint: str
    table_name: str
    content_hash: str
    payload_format: int
    digest: str

    @property
    def key(self) -> str:
        return (
            f"p|{self.fingerprint}|{self.table_name}|{self.content_hash}"
            f"|{self.payload_format}"
        )

    def as_dict(self) -> dict[str, object]:
        return {
            "fingerprint": self.fingerprint,
            "table_name": self.table_name,
            "content_hash": self.content_hash,
            "payload_format": self.payload_format,
            "digest": self.digest,
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "PreparedEntry":
        return cls(
            fingerprint=str(data["fingerprint"]),
            table_name=str(data["table_name"]),
            content_hash=str(data["content_hash"]),
            payload_format=int(data["payload_format"]),
            digest=str(data["digest"]),
        )


@dataclass
class Manifest:
    """The root object of one published snapshot."""

    sketch_config: SketchConfig
    store_version: int = 0
    tables: list[TableEntry] = field(default_factory=list)
    prepared: list[PreparedEntry] = field(default_factory=list)
    iblt: Optional[IBLTSketch] = None
    prepared_iblt: Optional[IBLTSketch] = None

    # ------------------------------------------------------------------ #
    # derived views
    # ------------------------------------------------------------------ #
    def entries_by_key(self) -> dict[str, Union[TableEntry, PreparedEntry]]:
        """Every entry keyed by its reconciliation key string."""
        out: dict[str, Union[TableEntry, PreparedEntry]] = {}
        for entry in self.tables:
            out[entry.key] = entry
        for entry in self.prepared:
            out[entry.key] = entry
        return out

    def referenced_digests(self) -> set[str]:
        """Digests of every blob this snapshot needs (for pruning)."""
        return {e.digest for e in self.tables} | {e.digest for e in self.prepared}

    @property
    def snapshot_id(self) -> str:
        """Content identity of the snapshot: hash of its sorted entry keys
        and digests (independent of store version or entry order)."""
        payload = _canonical_json(
            sorted((key, entry.digest) for key, entry in self.entries_by_key().items())
        )
        return hashlib.sha256(payload).hexdigest()

    # ------------------------------------------------------------------ #
    # (de)serialisation
    # ------------------------------------------------------------------ #
    def as_dict(self) -> dict[str, object]:
        return {
            "format": MANIFEST_FORMAT,
            "kind": "lake-snapshot",
            "snapshot_id": self.snapshot_id,
            "store_version": self.store_version,
            "sketch_config": self.sketch_config.as_dict(),
            "tables": [entry.as_dict() for entry in self.tables],
            "prepared": [entry.as_dict() for entry in self.prepared],
            "iblt": None if self.iblt is None else self.iblt.to_dict(),
            "prepared_iblt": (
                None if self.prepared_iblt is None else self.prepared_iblt.to_dict()
            ),
        }

    @classmethod
    def from_dict(cls, data: Mapping[str, object]) -> "Manifest":
        declared = int(data.get("format", -1))
        if declared != MANIFEST_FORMAT:
            raise ValueError(
                f"snapshot manifest format {declared} is not readable by this "
                f"code (expected {MANIFEST_FORMAT})"
            )
        iblt_data = data.get("iblt")
        prepared_iblt_data = data.get("prepared_iblt")
        return cls(
            sketch_config=SketchConfig.from_dict(data["sketch_config"]),
            store_version=int(data.get("store_version", 0)),
            tables=[TableEntry.from_dict(e) for e in data.get("tables", [])],
            prepared=[PreparedEntry.from_dict(e) for e in data.get("prepared", [])],
            iblt=None if iblt_data is None else IBLTSketch.from_dict(iblt_data),
            prepared_iblt=(
                None
                if prepared_iblt_data is None
                else IBLTSketch.from_dict(prepared_iblt_data)
            ),
        )

    def save(self, artifact_dir: Union[str, Path]) -> Path:
        """Atomically write ``manifest.json`` into *artifact_dir*.

        The temp-file + ``os.replace`` swap is the publication point: a
        concurrent puller sees either the previous complete manifest or
        this one, never a torn file.
        """
        directory = Path(artifact_dir)
        directory.mkdir(parents=True, exist_ok=True)
        target = directory / MANIFEST_NAME
        payload = json.dumps(self.as_dict(), indent=1).encode("utf-8")
        fd, temp_name = tempfile.mkstemp(prefix=".manifest-", dir=directory)
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(payload)
            os.replace(temp_name, target)
        except BaseException:
            try:
                os.unlink(temp_name)
            except OSError:
                pass
            raise
        return target

    @classmethod
    def from_bytes(cls, raw: bytes, origin: str = "manifest") -> "Manifest":
        """Parse manifest bytes as fetched by a transport.

        Raises ``ValueError`` when the bytes are not a readable snapshot
        manifest — which a puller treats as retryable, since a transport
        may have handed back torn or corrupted bytes.
        """
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise ValueError(f"unreadable snapshot manifest ({origin}): {exc}") from exc
        if not isinstance(data, dict) or data.get("kind") != "lake-snapshot":
            raise ValueError(f"{origin} is not a lake snapshot manifest")
        return cls.from_dict(data)

    @classmethod
    def load(cls, artifact_dir: Union[str, Path]) -> "Manifest":
        """Read the manifest of an artifact directory.

        Raises
        ------
        FileNotFoundError
            When *artifact_dir* holds no ``manifest.json``.
        ValueError
            When the file is not a readable snapshot manifest.
        """
        path = Path(artifact_dir) / MANIFEST_NAME
        try:
            raw = path.read_bytes()
        except OSError as exc:
            raise FileNotFoundError(
                f"no snapshot manifest at {path}; not a published artifact?"
            ) from exc
        return cls.from_bytes(raw, origin=str(path))
