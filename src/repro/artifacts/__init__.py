"""Content-addressed snapshot distribution for lake stores.

The artifact layer turns a lake's stores into a replicable unit: a
publisher node exports sketch (and optionally prepared) stores as a
content-addressed snapshot — ``manifest.json`` plus SHA-256-named blobs —
and replica nodes pull it, fetching only the blobs they are missing.
Delta reconciliation uses an Invertible Bloom Lookup Table exchange with a
full-manifest-diff fallback, so pulls cost O(difference) in the common
case and are always correct.  :class:`~repro.artifacts.watch.LakeWatcher`
closes the loop on the publisher side by folding directory changes into
the stores (and optionally re-publishing) incrementally.
"""

from repro.artifacts.blobs import BlobStore, blob_digest
from repro.artifacts.iblt import IBLTDecodeResult, IBLTSketch, key_fingerprint
from repro.artifacts.journal import PullJournal
from repro.artifacts.manifest import (
    BLOBS_DIR,
    MANIFEST_FORMAT,
    MANIFEST_NAME,
    Manifest,
    PreparedEntry,
    TableEntry,
    decode_sketch_blob,
    encode_sketch_blob,
)
from repro.artifacts.sync import (
    PublishReport,
    PullReport,
    publish_snapshot,
    pull_snapshot,
)
from repro.artifacts.transport import (
    ArtifactTransport,
    FaultyTransport,
    LocalTransport,
    RetryPolicy,
    TransportError,
)
from repro.artifacts.watch import LakeWatcher, WatchReport

__all__ = [
    "BLOBS_DIR",
    "MANIFEST_FORMAT",
    "MANIFEST_NAME",
    "ArtifactTransport",
    "BlobStore",
    "FaultyTransport",
    "IBLTDecodeResult",
    "IBLTSketch",
    "LakeWatcher",
    "LocalTransport",
    "Manifest",
    "PreparedEntry",
    "PublishReport",
    "PullJournal",
    "PullReport",
    "RetryPolicy",
    "TableEntry",
    "TransportError",
    "WatchReport",
    "blob_digest",
    "decode_sketch_blob",
    "encode_sketch_blob",
    "key_fingerprint",
    "publish_snapshot",
    "pull_snapshot",
]
