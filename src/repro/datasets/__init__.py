"""Synthetic dataset sources standing in for the paper's data (Section V)."""

from repro.datasets.fabricated_sources import (
    chembl_assays_table,
    open_data_table,
    tpcdi_prospect_table,
)
from repro.datasets.ing import ing_application_pair, ing_backlog_pair, ing_pairs
from repro.datasets.magellan import magellan_pairs
from repro.datasets.vocabulary import ValueSampler
from repro.datasets.wikidata import wikidata_pairs, wikidata_singers_table

__all__ = [
    "tpcdi_prospect_table",
    "open_data_table",
    "chembl_assays_table",
    "wikidata_singers_table",
    "wikidata_pairs",
    "magellan_pairs",
    "ing_backlog_pair",
    "ing_application_pair",
    "ing_pairs",
    "ValueSampler",
]
