"""Deterministic value vocabularies for the synthetic dataset generators.

The paper's dataset sources (TPC-DI, Open Data, ChEMBL, WikiData, Magellan,
ING) cannot be redistributed offline, so the generators in this package
synthesise tables with the same *shape*: realistic person/company/location
vocabularies, identifiers, monetary amounts, chemistry terms, etc.  This
module centralises the word lists and the deterministic samplers they feed.
"""

from __future__ import annotations

import random
from typing import Sequence

__all__ = [
    "FIRST_NAMES",
    "LAST_NAMES",
    "STREET_NAMES",
    "CITIES",
    "COUNTRIES",
    "COUNTRY_CODES",
    "COMPANY_WORDS",
    "GENRES",
    "COMPOUND_PREFIXES",
    "TARGET_PROTEINS",
    "ORGANISMS",
    "TEAM_NAMES",
    "APPLICATION_WORDS",
    "ValueSampler",
]

FIRST_NAMES: tuple[str, ...] = (
    "James", "Mary", "John", "Patricia", "Robert", "Jennifer", "Michael", "Linda",
    "William", "Elizabeth", "David", "Barbara", "Richard", "Susan", "Joseph", "Jessica",
    "Thomas", "Sarah", "Charles", "Karen", "Wei", "Mei", "Hiroshi", "Yuki", "Carlos",
    "Sofia", "Ahmed", "Fatima", "Ivan", "Olga", "Lars", "Ingrid", "Pierre", "Amelie",
    "Marco", "Giulia", "Raj", "Priya", "Kwame", "Amara", "Diego", "Lucia", "Jan",
    "Anna", "Pedro", "Ines", "Omar", "Leila", "Finn", "Freya",
)

LAST_NAMES: tuple[str, ...] = (
    "Smith", "Johnson", "Williams", "Brown", "Jones", "Garcia", "Miller", "Davis",
    "Rodriguez", "Martinez", "Hernandez", "Lopez", "Gonzalez", "Wilson", "Anderson",
    "Thomas", "Taylor", "Moore", "Jackson", "Martin", "Lee", "Chen", "Wang", "Kim",
    "Tanaka", "Suzuki", "Singh", "Patel", "Kumar", "Ali", "Hassan", "Ivanov", "Petrov",
    "Jansen", "De Vries", "Bakker", "Visser", "Muller", "Schmidt", "Fischer", "Weber",
    "Rossi", "Russo", "Ferrari", "Dubois", "Moreau", "Silva", "Santos", "Oliveira", "Costa",
)

STREET_NAMES: tuple[str, ...] = (
    "Main St", "Oak Ave", "Maple Dr", "Cedar Ln", "Elm St", "Pine Rd", "Birch Blvd",
    "Walnut Way", "Chestnut Ct", "Willow Pl", "High St", "Church Rd", "Park Ave",
    "Mill Ln", "Station Rd", "Bridge St", "Tea St", "Fly St", "Bay St", "River Rd",
    "Lake Dr", "Hill St", "Garden Ave", "Forest Ln", "Meadow Way", "Sunset Blvd",
    "Harbor Dr", "Spring St", "Canal St", "Market Sq",
)

CITIES: tuple[str, ...] = (
    "Amsterdam", "Rotterdam", "Delft", "Utrecht", "Eindhoven", "New York", "Chicago",
    "Boston", "Seattle", "Austin", "London", "Manchester", "Berlin", "Munich", "Paris",
    "Lyon", "Madrid", "Barcelona", "Rome", "Milan", "Beijing", "Shanghai", "Tokyo",
    "Osaka", "Toronto", "Vancouver", "Sydney", "Melbourne", "Mumbai", "Delhi",
)

COUNTRIES: tuple[str, ...] = (
    "USA", "China", "Netherlands", "Germany", "France", "UK", "Canada", "India",
    "Spain", "Italy", "Japan", "Brazil", "Australia", "Sweden", "Norway", "Greece",
)

#: Alternative encodings of the same countries (used by WikiData-like and
#: semantically-joinable fabrication to break verbatim value equality).
COUNTRY_CODES: dict[str, str] = {
    "USA": "States",
    "China": "Chn",
    "Netherlands": "NLD",
    "Germany": "Deu",
    "France": "Fra",
    "UK": "Britain",
    "Canada": "Can",
    "India": "Ind",
    "Spain": "Esp",
    "Italy": "Ita",
    "Japan": "Jpn",
    "Brazil": "Bra",
    "Australia": "Aus",
    "Sweden": "Swe",
    "Norway": "Nor",
    "Greece": "Grc",
}

COMPANY_WORDS: tuple[str, ...] = (
    "Global", "Dynamic", "United", "Advanced", "Pacific", "Northern", "Digital",
    "Quantum", "Stellar", "Prime", "Vertex", "Apex", "Nova", "Orion", "Atlas",
    "Systems", "Solutions", "Industries", "Logistics", "Partners", "Holdings",
    "Analytics", "Technologies", "Consulting", "Ventures", "Capital", "Labs",
)

GENRES: tuple[str, ...] = (
    "rock", "pop", "jazz", "blues", "country", "soul", "funk", "folk", "gospel",
    "hip hop", "rhythm and blues", "rockabilly", "disco", "electronic", "punk",
)

COMPOUND_PREFIXES: tuple[str, ...] = (
    "CHEMBL", "MOL", "CPD", "LIG", "SUB",
)

TARGET_PROTEINS: tuple[str, ...] = (
    "EGFR", "HER2", "VEGFR2", "BRAF", "MEK1", "CDK4", "CDK6", "PI3K", "AKT1",
    "mTOR", "JAK2", "BTK", "ALK", "ROS1", "KRAS", "TP53", "PARP1", "HDAC1",
    "DNMT1", "PDE5", "ACE", "COX2", "5HT2A", "D2R", "GABA-A",
)

ORGANISMS: tuple[str, ...] = (
    "Homo sapiens", "Mus musculus", "Rattus norvegicus", "Escherichia coli",
    "Saccharomyces cerevisiae", "Danio rerio", "Drosophila melanogaster",
    "Plasmodium falciparum", "Mycobacterium tuberculosis", "Candida albicans",
)

TEAM_NAMES: tuple[str, ...] = (
    "Phoenix", "Falcon", "Atlas", "Mercury", "Neptune", "Voyager", "Pioneer",
    "Discovery", "Endeavour", "Horizon", "Quasar", "Pulsar", "Nebula", "Comet",
    "Aurora", "Zenith", "Vector", "Matrix", "Lambda", "Sigma",
)

APPLICATION_WORDS: tuple[str, ...] = (
    "Payments", "Ledger", "Risk", "Fraud", "Onboarding", "Reporting", "Billing",
    "Settlement", "Clearing", "Treasury", "Compliance", "Portal", "Gateway",
    "Scheduler", "Archive", "Monitor", "Catalog", "Registry", "Pipeline", "Vault",
)


class ValueSampler:
    """Deterministic sampler over the bundled vocabularies.

    Parameters
    ----------
    seed:
        Seed of the internal ``random.Random`` instance.
    """

    def __init__(self, seed: int = 0) -> None:
        self.rng = random.Random(seed)

    def choice(self, options: Sequence[str]) -> str:
        """Uniformly pick one option."""
        return self.rng.choice(list(options))

    def person_name(self) -> str:
        """A "First Last" person name."""
        return f"{self.choice(FIRST_NAMES)} {self.choice(LAST_NAMES)}"

    def short_person_name(self) -> str:
        """A "F. Last" person name (the encoding used in Figure 2)."""
        first = self.choice(FIRST_NAMES)
        return f"{first[0]}. {self.choice(LAST_NAMES)}"

    def street_address(self) -> str:
        """A "<number>, <street>" address string."""
        return f"{self.rng.randint(1, 250)}, {self.choice(STREET_NAMES)}"

    def city(self) -> str:
        """A city name."""
        return self.choice(CITIES)

    def country(self) -> str:
        """A country name."""
        return self.choice(COUNTRIES)

    def postal_code(self) -> str:
        """A 5-digit postal code."""
        return f"{self.rng.randint(10000, 99999)}"

    def phone(self) -> str:
        """A phone number string."""
        return f"+{self.rng.randint(1, 99)}-{self.rng.randint(100, 999)}-{self.rng.randint(1000000, 9999999)}"

    def email(self, name: str | None = None) -> str:
        """An email address, optionally derived from a person name."""
        base = (name or self.person_name()).lower().replace(" ", ".").replace(",", "")
        domain = self.choice(("example.com", "mail.org", "corp.net", "bank.nl"))
        return f"{base}@{domain}"

    def company(self) -> str:
        """A two-word company name."""
        return f"{self.choice(COMPANY_WORDS)} {self.choice(COMPANY_WORDS)}"

    def date(self, start_year: int = 1990, end_year: int = 2020) -> str:
        """An ISO date string."""
        year = self.rng.randint(start_year, end_year)
        month = self.rng.randint(1, 12)
        day = self.rng.randint(1, 28)
        return f"{year:04d}-{month:02d}-{day:02d}"

    def amount(self, low: float = 10.0, high: float = 100000.0) -> float:
        """A monetary amount rounded to cents."""
        return round(self.rng.uniform(low, high), 2)

    def integer(self, low: int = 0, high: int = 1000) -> int:
        """A uniform integer."""
        return self.rng.randint(low, high)

    def identifier(self, prefix: str = "ID", width: int = 6) -> str:
        """A prefixed zero-padded identifier."""
        return f"{prefix}{self.rng.randint(0, 10 ** width - 1):0{width}d}"

    def hash_token(self, length: int = 12) -> str:
        """A hexadecimal hash-like token (ING#1 columns contain hashes)."""
        return "".join(self.rng.choice("0123456789abcdef") for _ in range(length))

    def sentence(self, words: Sequence[str], length: int = 6) -> str:
        """A pseudo-sentence built from a word list."""
        return " ".join(self.choice(words) for _ in range(length))
