"""Synthetic stand-ins for the proprietary ING dataset pairs.

Section V-B describes two production pairs from ING Bank Netherlands that
cannot be published:

* **ING#1** — two SCRUM backlog tables (33 columns × 935 rows and 16 columns
  × 972 rows) with dates, team ids, owner teams, tasks, EPIC names and many
  hash/description columns whose words recur across contexts.  Matching
  columns have identical or very similar names and almost-identical values.
* **ING#2** — an application-inventory pair: a wide denormalised table
  (59 columns × 1000 rows) with low-level information and a 25-column
  business-oriented table, where the second table's column names carry
  suffixes and the ground truth maps single business columns to *multiple*
  technical columns.

The generators below reproduce those structural challenges synthetically and
ship a hand-written ground truth, so Table IV can be regenerated.
"""

from __future__ import annotations

from repro.data.table import Column, Table
from repro.datasets.vocabulary import APPLICATION_WORDS, TEAM_NAMES, ValueSampler
from repro.fabrication.pairs import DatasetPair, NoiseVariant, Scenario

__all__ = ["ing_backlog_pair", "ing_application_pair", "ing_pairs"]


def ing_backlog_pair(num_rows: int = 300, seed: int = 55) -> DatasetPair:
    """ING#1: two SCRUM backlog tables with near-identical shared columns."""
    sampler = ValueSampler(seed)
    rows = num_rows
    teams = list(TEAM_NAMES)
    epics = [f"EPIC-{sampler.integer(100, 999)}" for _ in range(25)]
    task_words = ("implement", "refactor", "migrate", "review", "deploy", "test", "design", "document", "integrate", "monitor")
    status_values = ("todo", "in progress", "review", "done", "blocked")

    # Shared backbone columns appear in both systems with (nearly) the same
    # names and almost identical values.
    shared_values = {
        "sprint_id": [f"SPR-{sampler.integer(1, 60):03d}" for _ in range(rows)],
        "team_id": [sampler.choice(teams) for _ in range(rows)],
        "owner_team": [sampler.choice(teams) for _ in range(rows)],
        "epic_name": [sampler.choice(epics) for _ in range(rows)],
        "task_description": [sampler.sentence(task_words, 6) for _ in range(rows)],
        "story_points": [sampler.choice(("1", "2", "3", "5", "8", "13")) for _ in range(rows)],
        "status": [sampler.choice(status_values) for _ in range(rows)],
        "start_date": [sampler.date(2018, 2020) for _ in range(rows)],
        "end_date": [sampler.date(2019, 2021) for _ in range(rows)],
        "assignee": [sampler.person_name() for _ in range(rows)],
        "reporter": [sampler.person_name() for _ in range(rows)],
        "item_hash": [sampler.hash_token(16) for _ in range(rows)],
    }

    wide_columns = [Column(name, list(values)) for name, values in shared_values.items()]
    # Extra technical columns unique to the first (33-column) system.
    for extra_name in (
        "board_id", "backlog_rank", "parent_item_hash", "labels", "component",
        "created_by", "created_at", "updated_at", "resolution", "priority",
        "time_spent_hours", "remaining_hours", "original_estimate", "watchers",
        "comments_count", "blocked_reason", "release_version", "environment",
        "acceptance_criteria", "risk_level", "audit_hash",
    ):
        if extra_name in ("parent_item_hash", "audit_hash"):
            values = [sampler.hash_token(16) for _ in range(rows)]
        elif extra_name in ("created_at", "updated_at"):
            values = [sampler.date(2018, 2021) for _ in range(rows)]
        elif extra_name in ("time_spent_hours", "remaining_hours", "original_estimate"):
            values = [sampler.integer(1, 80) for _ in range(rows)]
        elif extra_name in ("watchers", "comments_count", "backlog_rank", "board_id"):
            values = [sampler.integer(1, 500) for _ in range(rows)]
        elif extra_name == "priority":
            values = [sampler.choice(("low", "medium", "high", "critical")) for _ in range(rows)]
        elif extra_name == "risk_level":
            values = [sampler.choice(("green", "amber", "red")) for _ in range(rows)]
        else:
            values = [sampler.sentence(task_words, 4) for _ in range(rows)]
        wide_columns.append(Column(extra_name, values))
    wide = Table("ing_backlog_system1", wide_columns)

    # The 16-column system shares the backbone (slightly renamed in places)
    # plus a few of its own columns; values are near-identical copies.
    narrow_renames = {
        "sprint_id": "sprint",
        "team_id": "team",
        "owner_team": "owner_team",
        "epic_name": "epic",
        "task_description": "task_description",
        "story_points": "points",
        "status": "status",
        "start_date": "start_date",
        "end_date": "end_date",
        "assignee": "assignee",
        "reporter": "reported_by",
        "item_hash": "item_hash",
    }
    narrow_columns = [
        Column(narrow_renames[name], list(values)) for name, values in shared_values.items()
    ]
    narrow_columns.extend(
        [
            Column("velocity", [sampler.integer(10, 60) for _ in range(rows)]),
            Column("capacity", [sampler.integer(20, 80) for _ in range(rows)]),
            Column("retrospective_notes", [sampler.sentence(task_words, 5) for _ in range(rows)]),
            Column("scrum_master", [sampler.person_name() for _ in range(rows)]),
        ]
    )
    narrow = Table("ing_backlog_system2", narrow_columns)

    ground_truth = [(name, narrow_renames[name]) for name in shared_values]
    pair = DatasetPair(
        name="ing_1",
        source=wide,
        target=narrow,
        ground_truth=ground_truth,
        scenario=Scenario.JOINABLE,
        variant=None,
        metadata={"source_dataset": "ing", "description": "SCRUM backlog systems"},
    )
    pair.validate()
    return pair


def ing_application_pair(num_rows: int = 300, seed: int = 56) -> DatasetPair:
    """ING#2: wide technical application inventory vs. business-oriented view.

    The ground truth maps business columns to (possibly several) technical
    columns; technical column names carry suffixes (``_cd``, ``_ref``,
    ``_src``) that hurt schema-based matching, while values are highly
    similar, which favours distribution-based matching — mirroring Table IV.
    """
    sampler = ValueSampler(seed)
    rows = num_rows
    app_names = [f"{sampler.choice(APPLICATION_WORDS)} {sampler.choice(('Core', 'Hub', 'Service', 'Engine'))}" for _ in range(60)]
    teams = list(TEAM_NAMES)
    departments = ("Retail", "Wholesale", "Risk", "Operations", "Technology", "Finance")
    env_values = ("prod", "acc", "test", "dev")
    criticality = ("mission critical", "business critical", "supporting", "experimental")

    base = {
        "application_name": [sampler.choice(app_names) for _ in range(rows)],
        "owner_team": [sampler.choice(teams) for _ in range(rows)],
        "manager_name": [sampler.person_name() for _ in range(rows)],
        "department": [sampler.choice(departments) for _ in range(rows)],
        "hardware_host": [f"srv-{sampler.integer(100, 999)}.{sampler.choice(('ams', 'rtm', 'fra'))}.bank" for _ in range(rows)],
        "environment": [sampler.choice(env_values) for _ in range(rows)],
        "criticality": [sampler.choice(criticality) for _ in range(rows)],
        "used_by_application": [sampler.choice(app_names) for _ in range(rows)],
        "uses_application": [sampler.choice(app_names) for _ in range(rows)],
        "annual_cost": [sampler.amount(10_000, 2_000_000) for _ in range(rows)],
        "user_count": [sampler.integer(5, 20000) for _ in range(rows)],
        "go_live_date": [sampler.date(2000, 2020) for _ in range(rows)],
    }

    # Technical table: multiple cryptically named variants per business
    # concept (abbreviated, suffixed — as in the paper the technical system's
    # column names "contain suffixes that complicate schema-based matching")
    # plus plenty of unrelated low-level columns (59 columns in the paper).
    wide_columns: list[Column] = []
    suffix_variants = {
        "application_name": ("apl_nm_cd", "apl_nm_ref"),
        "owner_team": ("ownr_tm_cd", "ownr_tm_src"),
        "manager_name": ("mgr_prsn_ref",),
        "department": ("dept_cd",),
        "hardware_host": ("hw_hst_ref", "hw_hst_src"),
        "environment": ("env_cd",),
        "criticality": ("crt_lvl_cd",),
        "used_by_application": ("usd_by_apl_ref",),
        "uses_application": ("uses_apl_ref",),
        "annual_cost": ("ann_cst_amt",),
        "user_count": ("usr_cnt_nbr",),
        "go_live_date": ("golive_dt",),
    }
    ground_truth: list[tuple[str, str]] = []
    for business_name, technical_names in suffix_variants.items():
        for technical_name in technical_names:
            wide_columns.append(Column(technical_name, list(base[business_name])))
            ground_truth.append((business_name, technical_name))

    low_level_words = ("queue", "batch", "node", "shard", "pool", "cache", "token", "socket", "thread", "kernel")
    for i in range(59 - len(wide_columns)):
        kind = i % 4
        name = f"{sampler.choice(low_level_words)}_{sampler.choice(('id', 'cfg', 'metric', 'flag'))}_{i:02d}"
        if kind == 0:
            values = [sampler.hash_token(10) for _ in range(rows)]
        elif kind == 1:
            values = [sampler.integer(0, 10_000) for _ in range(rows)]
        elif kind == 2:
            values = [sampler.choice(("true", "false")) for _ in range(rows)]
        else:
            values = [round(sampler.rng.uniform(0, 1), 4) for _ in range(rows)]
        wide_columns.append(Column(name, values))
    technical = Table("ing_app_inventory_technical", wide_columns)

    # Business table: the 12 business columns plus 13 extra descriptive ones.
    business_columns = [Column(name, list(values)) for name, values in base.items()]
    for extra in (
        "business_owner", "service_window", "support_level", "vendor",
        "contract_end_date", "compliance_status", "recovery_time_objective",
        "recovery_point_objective", "data_classification", "country",
        "business_description", "review_date", "architecture_domain",
    ):
        if extra in ("contract_end_date", "review_date"):
            values = [sampler.date(2020, 2026) for _ in range(rows)]
        elif extra in ("recovery_time_objective", "recovery_point_objective"):
            values = [sampler.integer(1, 72) for _ in range(rows)]
        elif extra == "country":
            values = [sampler.country() for _ in range(rows)]
        elif extra == "business_owner":
            values = [sampler.person_name() for _ in range(rows)]
        else:
            values = [sampler.sentence(("core", "banking", "platform", "customer", "facing", "internal", "regulatory"), 4) for _ in range(rows)]
        business_columns.append(Column(extra, values))
    business = Table("ing_app_inventory_business", business_columns)

    pair = DatasetPair(
        name="ing_2",
        source=business,
        target=technical,
        ground_truth=ground_truth,
        scenario=Scenario.JOINABLE,
        variant=None,
        metadata={"source_dataset": "ing", "description": "application inventory"},
    )
    pair.validate()
    return pair


def ing_pairs(num_rows: int = 300, seed: int = 55) -> list[DatasetPair]:
    """Both ING pairs (ING#1 backlog, ING#2 application inventory)."""
    return [ing_backlog_pair(num_rows=num_rows, seed=seed), ing_application_pair(num_rows=num_rows, seed=seed + 1)]
