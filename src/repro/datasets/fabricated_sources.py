"""Synthetic seed tables standing in for the fabricated dataset sources.

Section V-A of the paper fabricates 540 dataset pairs from three sources:

* **TPC-DI** — the ``Prospect`` table (11–22 columns, 7 492–14 983 rows);
* **Open Data** — a wide table from Canada/USA/UK open data
  (26–51 columns, 11 628–23 255 rows);
* **ChEMBL** — the ``Assays`` table (12–23 columns, 7 500–15 000 rows).

These sources are not redistributable offline, so each generator below builds
a deterministic synthetic seed table with the same column-count range,
data-type mix (identifiers, person data, monetary amounts, categorical codes,
free text, measurements) and naming conventions.  A row-count knob shrinks
the tables for laptop-scale experiments while preserving the structure — the
matchers only see names, types and value sets, so relative method behaviour
is preserved.
"""

from __future__ import annotations

from repro.data.table import Column, Table
from repro.datasets.vocabulary import (
    FIRST_NAMES,
    LAST_NAMES,
    ORGANISMS,
    TARGET_PROTEINS,
    ValueSampler,
)

__all__ = ["tpcdi_prospect_table", "open_data_table", "chembl_assays_table"]


def tpcdi_prospect_table(num_rows: int = 800, seed: int = 11) -> Table:
    """A synthetic stand-in for the TPC-DI ``Prospect`` table (17 columns).

    The real Prospect table describes marketing prospects: agency identifiers,
    person names, address fields, demographics and financial figures.
    """
    sampler = ValueSampler(seed)
    agencies = [sampler.identifier("AGY", 4) for _ in range(max(10, num_rows // 50))]
    rows = num_rows
    columns = [
        Column("agency_id", [sampler.choice(agencies) for _ in range(rows)]),
        Column("last_name", [sampler.choice(LAST_NAMES) for _ in range(rows)]),
        Column("first_name", [sampler.choice(FIRST_NAMES) for _ in range(rows)]),
        Column("middle_initial", [sampler.choice("ABCDEFGHJKLMNPRSTW") for _ in range(rows)]),
        Column("gender", [sampler.choice(("M", "F")) for _ in range(rows)]),
        Column("address_line1", [sampler.street_address() for _ in range(rows)]),
        Column(
            "address_line2",
            [f"Apt {sampler.integer(1, 99)}" if sampler.rng.random() < 0.3 else None for _ in range(rows)],
        ),
        Column("postal_code", [sampler.postal_code() for _ in range(rows)]),
        Column("city", [sampler.city() for _ in range(rows)]),
        Column(
            "state_province",
            [sampler.choice(("NY", "CA", "TX", "WA", "MA", "NH", "ZH", "NB")) for _ in range(rows)],
        ),
        Column("country", [sampler.country() for _ in range(rows)]),
        Column("phone", [sampler.phone() for _ in range(rows)]),
        Column("income", [sampler.integer(20000, 250000) for _ in range(rows)]),
        Column("number_cars", [sampler.integer(0, 4) for _ in range(rows)]),
        Column("number_children", [sampler.integer(0, 5) for _ in range(rows)]),
        Column("age", [sampler.integer(18, 90) for _ in range(rows)]),
        Column("net_worth", [sampler.amount(1000, 2_000_000) for _ in range(rows)]),
    ]
    return Table("tpcdi_prospect", columns)


def open_data_table(num_rows: int = 1000, seed: int = 23) -> Table:
    """A synthetic stand-in for the wide Open Data contracts table (28 columns).

    Open-government tables mix administrative codes, organisation names,
    locations, dates, budget figures and free-text descriptions.
    """
    sampler = ValueSampler(seed)
    programs = [f"Program {chr(65 + i)}" for i in range(12)]
    departments = [sampler.company() for _ in range(15)]
    rows = num_rows
    description_words = (
        "annual", "maintenance", "support", "licence", "infrastructure",
        "services", "supply", "renewal", "upgrade", "framework",
    )
    comment_words = ("approved", "pending", "review", "completed", "extended", "amended", "on", "hold")
    columns = [
        Column("record_id", [sampler.identifier("REC", 7) for _ in range(rows)]),
        Column("fiscal_year", [sampler.integer(2008, 2020) for _ in range(rows)]),
        Column("quarter", [sampler.choice(("Q1", "Q2", "Q3", "Q4")) for _ in range(rows)]),
        Column("department_name", [sampler.choice(departments) for _ in range(rows)]),
        Column("department_code", [sampler.identifier("DEP", 3) for _ in range(rows)]),
        Column("program_name", [sampler.choice(programs) for _ in range(rows)]),
        Column("program_code", [sampler.identifier("PRG", 4) for _ in range(rows)]),
        Column("vendor_name", [sampler.company() for _ in range(rows)]),
        Column("vendor_city", [sampler.city() for _ in range(rows)]),
        Column("vendor_country", [sampler.country() for _ in range(rows)]),
        Column("vendor_postal_code", [sampler.postal_code() for _ in range(rows)]),
        Column("contract_value", [sampler.amount(500, 5_000_000) for _ in range(rows)]),
        Column("amended_value", [sampler.amount(500, 5_000_000) for _ in range(rows)]),
        Column("contract_date", [sampler.date(2008, 2020) for _ in range(rows)]),
        Column("delivery_date", [sampler.date(2009, 2021) for _ in range(rows)]),
        Column(
            "contract_type",
            [sampler.choice(("goods", "services", "construction", "lease")) for _ in range(rows)],
        ),
        Column(
            "solicitation_procedure",
            [sampler.choice(("open", "selective", "limited", "negotiated")) for _ in range(rows)],
        ),
        Column("owner_organization", [sampler.choice(departments) for _ in range(rows)]),
        Column("responsible_officer", [sampler.person_name() for _ in range(rows)]),
        Column("officer_email", [sampler.email() for _ in range(rows)]),
        Column("region", [sampler.choice(("North", "South", "East", "West", "Central")) for _ in range(rows)]),
        Column("municipality", [sampler.city() for _ in range(rows)]),
        Column("description", [sampler.sentence(description_words, 8) for _ in range(rows)]),
        Column("comments", [sampler.sentence(comment_words, 5) for _ in range(rows)]),
        Column("number_of_bids", [sampler.integer(1, 25) for _ in range(rows)]),
        Column("employee_count", [sampler.integer(1, 5000) for _ in range(rows)]),
        Column("budget_allocated", [sampler.amount(10_000, 10_000_000) for _ in range(rows)]),
        Column("budget_spent", [sampler.amount(10_000, 10_000_000) for _ in range(rows)]),
        Column("status", [sampler.choice(("active", "closed", "cancelled", "planned")) for _ in range(rows)]),
    ]
    return Table("open_data_contracts", columns)


def chembl_assays_table(num_rows: int = 800, seed: int = 37) -> Table:
    """A synthetic stand-in for the ChEMBL ``Assays`` table (16 columns).

    The Assays table records bio-assay experiments: accession identifiers,
    descriptions, assay types, target/organism/cell annotations, confidence
    scores and measured values.
    """
    sampler = ValueSampler(seed)
    rows = num_rows
    journal_names = ("J Med Chem", "Bioorg Med Chem", "Eur J Pharmacol", "Nature", "Science", "Cell")
    description_words = (
        "inhibition", "binding", "affinity", "activity", "assay", "against",
        "human", "recombinant", "enzyme", "cells", "measured", "in", "vitro",
    )
    columns = [
        Column("assay_id", [sampler.integer(100000, 999999) for _ in range(rows)]),
        Column("assay_chembl_id", [sampler.identifier("CHEMBL", 7) for _ in range(rows)]),
        Column("description", [sampler.sentence(description_words, 9) for _ in range(rows)]),
        Column("assay_type", [sampler.choice(("B", "F", "A", "T", "P")) for _ in range(rows)]),
        Column(
            "assay_category",
            [sampler.choice(("screening", "confirmatory", "panel", "other")) for _ in range(rows)],
        ),
        Column("target_name", [sampler.choice(TARGET_PROTEINS) for _ in range(rows)]),
        Column("target_chembl_id", [sampler.identifier("CHEMBL", 6) for _ in range(rows)]),
        Column("organism", [sampler.choice(ORGANISMS) for _ in range(rows)]),
        Column(
            "cell_line",
            [sampler.choice(("HeLa", "MCF7", "A549", "HEK293", "HepG2", "U87", "PC3")) if sampler.rng.random() < 0.8 else None for _ in range(rows)],
        ),
        Column(
            "tissue",
            [sampler.choice(("liver", "lung", "breast", "brain", "kidney", "blood")) if sampler.rng.random() < 0.7 else None for _ in range(rows)],
        ),
        Column("confidence_score", [sampler.integer(0, 9) for _ in range(rows)]),
        Column("standard_type", [sampler.choice(("IC50", "Ki", "EC50", "Kd", "Potency")) for _ in range(rows)]),
        Column("standard_value", [sampler.amount(0.001, 10000.0) for _ in range(rows)]),
        Column("standard_units", [sampler.choice(("nM", "uM", "mM")) for _ in range(rows)]),
        Column("journal", [sampler.choice(journal_names) for _ in range(rows)]),
        Column("publication_year", [sampler.integer(1995, 2020) for _ in range(rows)]),
    ]
    return Table("chembl_assays", columns)
