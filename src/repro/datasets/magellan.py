"""Synthetic stand-ins for the Magellan data repository pairs.

The paper picks 7 Magellan dataset pairs previously used for schema matching
evaluation by EmbDI.  They are unionable pairs of real-world tables (movies,
restaurants, products, music, books, beers, bibliography) with *identical
column naming conventions*, value overlap, 3–7 columns and up to ~130k rows
— some with multi-valued attributes (e.g. lists of actors).

The generators below reproduce those characteristics at laptop scale: for
each domain, a pair of tables that share column names, have substantial but
imperfect value overlap, and (for movies/music) multi-valued cells.
"""

from __future__ import annotations

import random

from repro.data.table import Column, Table
from repro.datasets.vocabulary import GENRES, ValueSampler
from repro.fabrication.pairs import DatasetPair, NoiseVariant, Scenario

__all__ = ["magellan_pairs"]


def _overlapping_rows(
    generator,
    num_rows: int,
    overlap: float,
    rng: random.Random,
) -> tuple[list[dict[str, object]], list[dict[str, object]]]:
    """Generate two row lists sharing roughly ``overlap`` of their entities."""
    shared_count = int(num_rows * overlap)
    shared = [generator() for _ in range(shared_count)]
    left_only = [generator() for _ in range(num_rows - shared_count)]
    right_only = [generator() for _ in range(num_rows - shared_count)]
    left = shared + left_only
    right = shared + right_only
    rng.shuffle(left)
    rng.shuffle(right)
    return left, right


def _rows_to_table(name: str, rows: list[dict[str, object]]) -> Table:
    if not rows:
        return Table(name, [])
    column_names = list(rows[0])
    columns = [Column(col, [row[col] for row in rows]) for col in column_names]
    return Table(name, columns)


def _make_pair(
    pair_name: str,
    generator,
    num_rows: int,
    overlap: float,
    rng: random.Random,
) -> DatasetPair:
    left_rows, right_rows = _overlapping_rows(generator, num_rows, overlap, rng)
    source = _rows_to_table(f"{pair_name}_a", left_rows)
    target = _rows_to_table(f"{pair_name}_b", right_rows)
    ground_truth = [(name, name) for name in source.column_names]
    pair = DatasetPair(
        name=f"magellan_{pair_name}",
        source=source,
        target=target,
        ground_truth=ground_truth,
        scenario=Scenario.UNIONABLE,
        variant=NoiseVariant.VERBATIM_SCHEMA_VERBATIM_INSTANCES,
        metadata={"source_dataset": "magellan", "row_overlap": overlap},
    )
    pair.validate()
    return pair


def magellan_pairs(num_rows: int = 300, seed: int = 77) -> list[DatasetPair]:
    """The seven Magellan-style unionable pairs."""
    sampler = ValueSampler(seed)
    rng = sampler.rng

    def movie_row() -> dict[str, object]:
        actors = "; ".join(sampler.person_name() for _ in range(rng.randint(2, 4)))
        return {
            "title": f"{sampler.choice(('The', 'A', 'Last', 'First', 'Dark', 'Bright'))} "
            f"{sampler.choice(('Journey', 'Secret', 'Promise', 'Empire', 'Garden', 'Storm'))}",
            "director": sampler.person_name(),
            "actors": actors,
            "year": sampler.integer(1970, 2020),
            "genre": sampler.choice(("drama", "comedy", "thriller", "action", "romance")),
            "rating": round(rng.uniform(1.0, 10.0), 1),
        }

    def restaurant_row() -> dict[str, object]:
        return {
            "name": f"{sampler.choice(('Golden', 'Blue', 'Royal', 'Little', 'Grand'))} "
            f"{sampler.choice(('Dragon', 'Olive', 'Fork', 'Table', 'Garden'))}",
            "address": sampler.street_address(),
            "city": sampler.city(),
            "phone": sampler.phone(),
            "cuisine": sampler.choice(("italian", "chinese", "mexican", "indian", "french", "thai")),
        }

    def product_row() -> dict[str, object]:
        return {
            "product_name": f"{sampler.choice(('Ultra', 'Pro', 'Max', 'Eco', 'Smart'))} "
            f"{sampler.choice(('Blender', 'Kettle', 'Vacuum', 'Router', 'Monitor', 'Keyboard'))}",
            "brand": sampler.company(),
            "price": sampler.amount(10, 900),
            "category": sampler.choice(("kitchen", "electronics", "office", "outdoor")),
        }

    def song_row() -> dict[str, object]:
        return {
            "song_title": f"{sampler.choice(('Midnight', 'Summer', 'Broken', 'Golden', 'Lonely'))} "
            f"{sampler.choice(('Dream', 'Heart', 'Road', 'Dance', 'Rain'))}",
            "artist": sampler.person_name(),
            "album": f"{sampler.choice(('Echoes', 'Horizons', 'Reflections', 'Origins'))}",
            "genre": sampler.choice(GENRES),
            "duration_seconds": sampler.integer(120, 420),
            "release_year": sampler.integer(1965, 2020),
            "label": f"{sampler.choice(('Sun', 'Motown', 'Atlantic', 'Capitol'))} Records",
        }

    def book_row() -> dict[str, object]:
        return {
            "title": f"{sampler.choice(('History of', 'Introduction to', 'The Art of', 'Notes on'))} "
            f"{sampler.choice(('Databases', 'Gardens', 'Mountains', 'Cities', 'Painting'))}",
            "author": sampler.person_name(),
            "publisher": sampler.company(),
            "year": sampler.integer(1950, 2021),
            "isbn": f"978-{sampler.integer(0, 9)}-{sampler.integer(100, 999)}-{sampler.integer(10000, 99999)}-{sampler.integer(0, 9)}",
            "pages": sampler.integer(80, 900),
        }

    def beer_row() -> dict[str, object]:
        return {
            "beer_name": f"{sampler.choice(('Hoppy', 'Dark', 'Golden', 'Wild', 'Old'))} "
            f"{sampler.choice(('Fox', 'Monk', 'Anchor', 'Barrel', 'River'))}",
            "brewery": f"{sampler.choice(('North', 'South', 'Harbor', 'Valley'))} Brewing",
            "style": sampler.choice(("IPA", "stout", "lager", "pilsner", "porter", "saison")),
            "abv": round(rng.uniform(3.5, 12.0), 1),
        }

    def citation_row() -> dict[str, object]:
        return {
            "title": f"{sampler.choice(('On', 'Towards', 'A Study of', 'Revisiting'))} "
            f"{sampler.choice(('Query Optimization', 'Schema Matching', 'Data Lakes', 'Stream Processing', 'Entity Resolution'))}",
            "authors": "; ".join(sampler.person_name() for _ in range(rng.randint(1, 4))),
            "venue": sampler.choice(("SIGMOD", "VLDB", "ICDE", "EDBT", "CIKM")),
            "year": sampler.integer(1995, 2021),
        }

    pair_specs = (
        ("movies", movie_row, 0.6),
        ("restaurants", restaurant_row, 0.5),
        ("products", product_row, 0.55),
        ("songs", song_row, 0.6),
        ("books", book_row, 0.5),
        ("beers", beer_row, 0.5),
        ("citations", citation_row, 0.6),
    )
    return [
        _make_pair(name, generator, num_rows, overlap, rng)
        for name, generator, overlap in pair_specs
    ]
