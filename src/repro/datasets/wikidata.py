"""Synthetic stand-in for the human-curated WikiData singer pairs.

Section V-B builds two tables about USA-citizen singers queried from
WikiData: both start from the same twenty-column schema, then the second
table's column names are varied (``partner`` → ``spouse``) and the values of
six selected columns are replaced with alternative encodings of the same
entity (``Elvis Presley`` → ``Elvis Aaron Presley``).  Variants for all four
relatedness scenarios are then curated manually.

The generator below reproduces that construction synthetically: a seed
"singers" table, a renamed/re-encoded counterpart, and the four scenario
variants with hand-derived ground truth.
"""

from __future__ import annotations

import random

from repro.data.table import Column, Table
from repro.datasets.vocabulary import COUNTRY_CODES, GENRES, ValueSampler
from repro.fabrication.pairs import DatasetPair, NoiseVariant, Scenario
from repro.fabrication.splitting import split_horizontal, split_vertical

__all__ = ["wikidata_singers_table", "wikidata_pairs"]

#: Renamings applied to the second table (original name → alternative name).
_RENAMINGS: dict[str, str] = {
    "artist_name": "singer",
    "birth_name": "full_name",
    "partner": "spouse",
    "father_name": "parent_father",
    "mother_name": "parent_mother",
    "song_genre": "music_style",
    "record_label": "label",
    "birth_city": "place_of_birth",
    "citizenship": "country_of_citizenship",
    "active_since": "career_start",
    "band_name": "group",
    "official_site": "website",
}

#: Columns whose values are re-encoded in the second table.
_REENCODED_COLUMNS = (
    "artist_name",
    "citizenship",
    "song_genre",
    "partner",
    "birth_city",
    "record_label",
)


def wikidata_singers_table(num_rows: int = 400, seed: int = 101) -> Table:
    """A synthetic twenty-column "USA singers" table."""
    sampler = ValueSampler(seed)
    rows = num_rows
    labels = [f"{sampler.choice(('Sun', 'Motown', 'Atlantic', 'Capitol', 'Columbia', 'Decca'))} Records" for _ in range(rows)]
    columns = [
        Column("artist_name", [sampler.person_name() for _ in range(rows)]),
        Column("birth_name", [sampler.person_name() for _ in range(rows)]),
        Column("gender", [sampler.choice(("male", "female")) for _ in range(rows)]),
        Column("birth_date", [sampler.date(1930, 2000) for _ in range(rows)]),
        Column("birth_city", [sampler.city() for _ in range(rows)]),
        Column("citizenship", [sampler.country() for _ in range(rows)]),
        Column("father_name", [sampler.person_name() for _ in range(rows)]),
        Column("mother_name", [sampler.person_name() for _ in range(rows)]),
        Column("partner", [sampler.person_name() for _ in range(rows)]),
        Column("children_count", [sampler.integer(0, 6) for _ in range(rows)]),
        Column("song_genre", [sampler.choice(GENRES) for _ in range(rows)]),
        Column("instrument", [sampler.choice(("guitar", "piano", "vocals", "drums", "bass", "violin")) for _ in range(rows)]),
        Column("record_label", [labels[i] for i in range(rows)]),
        Column("band_name", [f"The {sampler.choice(('Wanderers', 'Drifters', 'Voyagers', 'Comets', 'Strangers', 'Dreamers'))}" for _ in range(rows)]),
        Column("debut_album", [f"{sampler.choice(('Midnight', 'Golden', 'Electric', 'Silent', 'Velvet'))} {sampler.choice(('Road', 'Dreams', 'Hearts', 'Nights', 'City'))}" for _ in range(rows)]),
        Column("active_since", [sampler.integer(1950, 2015) for _ in range(rows)]),
        Column("awards_count", [sampler.integer(0, 30) for _ in range(rows)]),
        Column("height_cm", [sampler.integer(150, 200) for _ in range(rows)]),
        Column("official_site", [f"www.{sampler.choice(('music', 'songs', 'artist', 'star'))}{sampler.integer(1, 999)}.com" for _ in range(rows)]),
        Column("description", [sampler.sentence(("american", "singer", "songwriter", "performer", "musician", "award", "winning", "famous"), 6) for _ in range(rows)]),
    ]
    return Table("wikidata_singers", columns)


def _reencode_value(column_name: str, value: object, rng: random.Random) -> object:
    """Alternative encoding of a value, mimicking WikiData label variants."""
    text = str(value)
    if column_name == "citizenship":
        return COUNTRY_CODES.get(text, text)
    if column_name in ("artist_name", "partner"):
        parts = text.split()
        if len(parts) == 2:
            middle = rng.choice(("Lee", "Aaron", "Marie", "Ray", "Jean", "May"))
            return f"{parts[0]} {middle} {parts[1]}"
        return text
    if column_name == "song_genre":
        return text.replace(" ", "-").title()
    if column_name == "birth_city":
        return f"{text} City" if not text.endswith("City") else text
    if column_name == "record_label":
        return text.replace(" Records", " Recordings")
    return text


def _build_counterpart(seed_table: Table, rng: random.Random) -> tuple[Table, dict[str, str]]:
    """The second WikiData table: renamed columns + re-encoded values."""
    columns = []
    for column in seed_table.columns:
        values = list(column.values)
        if column.name in _REENCODED_COLUMNS:
            values = [_reencode_value(column.name, v, rng) for v in values]
        columns.append(Column(_RENAMINGS.get(column.name, column.name), values))
    counterpart = Table("wikidata_singers_alt", columns)
    mapping = {name: _RENAMINGS.get(name, name) for name in seed_table.column_names}
    return counterpart, mapping


def wikidata_pairs(num_rows: int = 400, seed: int = 101) -> list[DatasetPair]:
    """The four curated WikiData pairs (one per relatedness scenario)."""
    rng = random.Random(seed)
    seed_table = wikidata_singers_table(num_rows=num_rows, seed=seed)
    counterpart, mapping = _build_counterpart(seed_table, rng)

    pairs: list[DatasetPair] = []

    # Unionable: same attributes on both sides (renamed + re-encoded), rows split.
    first_half = seed_table.slice_rows(0, seed_table.num_rows // 2, name="wikidata_singers_a")
    second_half = counterpart.slice_rows(
        seed_table.num_rows // 3, counterpart.num_rows, name="wikidata_singers_b"
    )
    pairs.append(
        DatasetPair(
            name="wikidata_unionable",
            source=first_half,
            target=second_half,
            ground_truth=[(name, mapping[name]) for name in seed_table.column_names],
            scenario=Scenario.UNIONABLE,
            variant=NoiseVariant.NOISY_SCHEMA_NOISY_INSTANCES,
            metadata={"source_dataset": "wikidata"},
        )
    )

    # View-unionable: each side keeps a column subset; no row overlap.
    vertical = split_vertical(seed_table, 0.6, rng)
    left = split_horizontal(vertical.first, 0.0, rng).first.rename("wikidata_view_a")
    right_raw = split_horizontal(vertical.second, 0.0, rng).second
    right_columns = [
        Column(
            mapping[c.name],
            [_reencode_value(c.name, v, rng) for v in c.values] if c.name in _REENCODED_COLUMNS else list(c.values),
        )
        for c in right_raw.columns
    ]
    right = Table("wikidata_view_b", right_columns)
    pairs.append(
        DatasetPair(
            name="wikidata_view_unionable",
            source=left,
            target=right,
            ground_truth=[(name, mapping[name]) for name in vertical.shared_columns],
            scenario=Scenario.VIEW_UNIONABLE,
            variant=NoiseVariant.NOISY_SCHEMA_NOISY_INSTANCES,
            metadata={"source_dataset": "wikidata"},
        )
    )

    # Joinable: column split with verbatim instances on the shared columns.
    vertical_join = split_vertical(seed_table, 0.4, rng)
    join_left = vertical_join.first.rename("wikidata_join_a")
    join_right = Table(
        "wikidata_join_b",
        [Column(mapping[c.name], list(c.values)) for c in vertical_join.second.columns],
    )
    pairs.append(
        DatasetPair(
            name="wikidata_joinable",
            source=join_left,
            target=join_right,
            ground_truth=[(name, mapping[name]) for name in vertical_join.shared_columns],
            scenario=Scenario.JOINABLE,
            variant=NoiseVariant.NOISY_SCHEMA_VERBATIM_INSTANCES,
            metadata={"source_dataset": "wikidata"},
        )
    )

    # Semantically joinable: as joinable but shared-column values re-encoded.
    vertical_sem = split_vertical(seed_table, 0.4, rng)
    sem_left = vertical_sem.first.rename("wikidata_semjoin_a")
    sem_right = Table(
        "wikidata_semjoin_b",
        [
            Column(
                mapping[c.name],
                [_reencode_value(c.name, v, rng) for v in c.values]
                if c.name in _REENCODED_COLUMNS
                else list(c.values),
            )
            for c in vertical_sem.second.columns
        ],
    )
    pairs.append(
        DatasetPair(
            name="wikidata_semantically_joinable",
            source=sem_left,
            target=sem_right,
            ground_truth=[(name, mapping[name]) for name in vertical_sem.shared_columns],
            scenario=Scenario.SEMANTICALLY_JOINABLE,
            variant=NoiseVariant.NOISY_SCHEMA_NOISY_INSTANCES,
            metadata={"source_dataset": "wikidata"},
        )
    )

    for pair in pairs:
        pair.validate()
    return pairs
