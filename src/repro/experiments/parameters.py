"""Method parameterisation (Table II of the paper).

Each matching method is run under a grid of parameter variants; this module
defines those grids and expands them into concrete matcher instances
(Figure 1, step 2).  Where the paper's authors provide default parameters
(Similarity Flooding, COMA, EmbDI) a single configuration is used; for the
other methods a grid search over the ranges of Table II is generated.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from itertools import product
from typing import Callable, Iterator, Mapping, Sequence

from repro.matchers.base import BaseMatcher
from repro.matchers.coma import ComaInstanceMatcher, ComaSchemaMatcher
from repro.matchers.cupid import CupidMatcher
from repro.matchers.distribution_based import DistributionBasedMatcher
from repro.matchers.embdi import EmbDIMatcher
from repro.matchers.jaccard_levenshtein import JaccardLevenshteinMatcher
from repro.matchers.semprop import SemPropMatcher
from repro.matchers.similarity_flooding import SimilarityFloodingMatcher

__all__ = [
    "ParameterGrid",
    "default_parameter_grids",
    "expand_grid",
    "total_configurations",
]


def _float_range(start: float, stop: float, step: float) -> tuple[float, ...]:
    """Inclusive float range with rounding to avoid accumulation error."""
    values = []
    current = start
    while current <= stop + 1e-9:
        values.append(round(current, 6))
        current += step
    return tuple(values)


@dataclass(frozen=True)
class ParameterGrid:
    """A named grid of parameter values for one matcher class.

    Attributes
    ----------
    method:
        Display name used in experiment records (e.g. ``"Cupid"``).
    factory:
        Callable building the matcher from keyword arguments.
    grid:
        Mapping from parameter name to the tuple of values it takes.
    fixed:
        Parameters passed to every configuration unchanged.
    """

    method: str
    factory: Callable[..., BaseMatcher]
    grid: Mapping[str, tuple]
    fixed: Mapping[str, object] = field(default_factory=dict)

    def configurations(self) -> Iterator[dict[str, object]]:
        """Yield every parameter combination of the grid (fixed values merged)."""
        if not self.grid:
            yield dict(self.fixed)
            return
        names = sorted(self.grid)
        for combo in product(*(self.grid[name] for name in names)):
            params = dict(self.fixed)
            params.update(dict(zip(names, combo)))
            yield params

    def matchers(self) -> Iterator[tuple[dict[str, object], BaseMatcher]]:
        """Yield ``(parameters, matcher instance)`` for every configuration."""
        for params in self.configurations():
            yield params, self.factory(**params)

    def size(self) -> int:
        """Number of configurations in the grid."""
        size = 1
        for values in self.grid.values():
            size *= len(values)
        return size


def default_parameter_grids(fast: bool = False) -> dict[str, ParameterGrid]:
    """The Table II grids, keyed by method name.

    Parameters
    ----------
    fast:
        When True, the grids are thinned to one or two configurations per
        method so the full pipeline runs at laptop/benchmark scale; the
        parameter *ranges* are unchanged, only the number of sampled points.
    """
    cupid_values = {
        "leaf_w_struct": _float_range(0.0, 0.6, 0.2),
        "w_struct": _float_range(0.0, 0.6, 0.2),
        "th_accept": _float_range(0.3, 0.8, 0.1),
    }
    dist_strict = {
        "phase1_threshold": _float_range(0.1, 0.2, 0.05),
        "phase2_threshold": _float_range(0.1, 0.2, 0.05),
    }
    dist_lenient = {
        "phase1_threshold": _float_range(0.3, 0.5, 0.1),
        "phase2_threshold": _float_range(0.3, 0.5, 0.1),
    }
    semprop_values = {
        "minhash_threshold": _float_range(0.2, 0.3, 0.1),
        "semantic_threshold": _float_range(0.4, 0.6, 0.1),
        "coherent_threshold": _float_range(0.2, 0.4, 0.2),
    }
    jl_values = {"threshold": _float_range(0.4, 0.8, 0.1)}

    if fast:
        cupid_values = {
            "leaf_w_struct": (0.2,),
            "w_struct": (0.2,),
            "th_accept": (0.5, 0.7),
        }
        dist_strict = {"phase1_threshold": (0.15,), "phase2_threshold": (0.15,)}
        dist_lenient = {"phase1_threshold": (0.4,), "phase2_threshold": (0.4,)}
        semprop_values = {
            "minhash_threshold": (0.25,),
            "semantic_threshold": (0.5,),
            "coherent_threshold": (0.3,),
        }
        jl_values = {"threshold": (0.6, 0.8)}

    grids = {
        "Cupid": ParameterGrid("Cupid", CupidMatcher, cupid_values),
        "SimilarityFlooding": ParameterGrid(
            "SimilarityFlooding",
            SimilarityFloodingMatcher,
            {},
            fixed={"coefficient_policy": "inverse_average", "fixpoint_formula": "c"},
        ),
        "ComaSchema": ParameterGrid("ComaSchema", ComaSchemaMatcher, {}, fixed={"threshold": 0.0}),
        "ComaInstance": ParameterGrid("ComaInstance", ComaInstanceMatcher, {}, fixed={"threshold": 0.0}),
        "DistributionBased#1": ParameterGrid(
            "DistributionBased#1", DistributionBasedMatcher, dist_strict
        ),
        "DistributionBased#2": ParameterGrid(
            "DistributionBased#2", DistributionBasedMatcher, dist_lenient
        ),
        "SemProp": ParameterGrid("SemProp", SemPropMatcher, semprop_values),
        "EmbDI": ParameterGrid(
            "EmbDI",
            EmbDIMatcher,
            {},
            fixed={"window_size": 3, "sentence_length": 20 if fast else 60, "dimensions": 32 if fast else 300},
        ),
        "JaccardLevenshtein": ParameterGrid("JaccardLevenshtein", JaccardLevenshteinMatcher, jl_values),
    }
    return grids


def expand_grid(grid: ParameterGrid) -> list[tuple[dict[str, object], BaseMatcher]]:
    """Materialise all ``(parameters, matcher)`` pairs of a grid."""
    return list(grid.matchers())


def total_configurations(grids: Mapping[str, ParameterGrid]) -> int:
    """Total number of method configurations over all grids (Table II count)."""
    return sum(grid.size() for grid in grids.values())
