"""Experiment suite: parameter grids, runner, aggregation and reports."""

from repro.experiments.efficiency import RuntimeMeasurement, measure_runtimes
from repro.experiments.parameters import (
    ParameterGrid,
    default_parameter_grids,
    expand_grid,
    total_configurations,
)
from repro.experiments.results import BoxplotStats, ExperimentRecord, ResultSet
from repro.experiments.runner import ExperimentRunner, run_single_experiment
from repro.experiments.sensitivity import (
    SensitivityResult,
    parameter_sensitivity,
    sensitivity_table,
)

__all__ = [
    "ParameterGrid",
    "default_parameter_grids",
    "expand_grid",
    "total_configurations",
    "ExperimentRecord",
    "BoxplotStats",
    "ResultSet",
    "ExperimentRunner",
    "run_single_experiment",
    "SensitivityResult",
    "parameter_sensitivity",
    "sensitivity_table",
    "RuntimeMeasurement",
    "measure_runtimes",
]
