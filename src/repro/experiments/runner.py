"""The experiment runner (Figure 1, step 3).

Exhaustively executes every combination of method configuration × dataset
pair, measuring Recall@ground-truth and runtime per run, and collects the
outcomes into a :class:`~repro.experiments.results.ResultSet`.
"""

from __future__ import annotations

import time
from dataclasses import dataclass
from typing import Callable, Iterable, Mapping, Optional, Sequence

from repro.discovery.prepared import PreparedTableCache
from repro.discovery.search import RerankPool
from repro.fabrication.pairs import DatasetPair
from repro.experiments.parameters import ParameterGrid
from repro.experiments.results import ExperimentRecord, ResultSet
from repro.matchers.base import BaseMatcher
from repro.metrics.ranking import recall_at_ground_truth, reciprocal_rank
from repro.telemetry import recorder as telemetry
from repro.telemetry.recorder import TelemetryRecorder

__all__ = ["ExperimentRunner", "run_single_experiment"]


def run_single_experiment(
    matcher: BaseMatcher,
    pair: DatasetPair,
    method_name: Optional[str] = None,
    parameters: Optional[Mapping[str, object]] = None,
    prepared_cache: Optional[PreparedTableCache] = None,
) -> ExperimentRecord:
    """Run one matcher on one dataset pair and score the ranking.

    Parameters
    ----------
    matcher:
        The configured matching method.
    pair:
        The dataset pair with ground truth.
    method_name:
        Display name recorded for the run (defaults to the matcher's name).
    parameters:
        Parameter values recorded for the run (defaults to
        ``matcher.parameters()``).
    prepared_cache:
        Optional shared :class:`~repro.discovery.prepared.PreparedTableCache`.
        When sweeping a parameter grid, configurations whose
        :meth:`~repro.matchers.base.BaseMatcher.prepare` ignores the swept
        parameter share one prepared payload per table — the run then times
        only the pairwise stage plus a cache lookup, and the record's
        ``prepare_cache_hits``/``prepare_cache_hit_rate`` extra metrics
        report the reuse.  Leave ``None`` (the default) for paper-faithful
        runtime measurements: caching changes what ``runtime_seconds``
        means.
    """
    # Run through the two-phase protocol explicitly so the records can report
    # how much of the runtime is per-table preparation (the part discovery
    # amortises) versus genuinely pairwise matching.  Total runtime semantics
    # are unchanged: prepare + match is exactly what get_matches does.
    # Matchers whose subclass overrode get_matches below the prepared
    # pipeline go through get_matches so the override is honoured.
    #
    # Every run executes under its own telemetry recorder: the snapshot
    # yields the cache-hit counters this record reports and is flattened
    # into ``extra_metrics`` (``tm.*``), then merged into whatever recorder
    # the caller has active so sweep-level totals still add up.
    parent = telemetry.get_recorder()
    run_recorder = TelemetryRecorder()
    use_cache = prepared_cache is not None and not matcher.prefers_legacy_get_matches()
    started = time.perf_counter()
    with telemetry.use(run_recorder):
        if matcher.prefers_legacy_get_matches():
            prepared_at = started
            with telemetry.span("matcher.match", pair=pair.name):
                result = matcher.get_matches(pair.source, pair.target)
        else:
            with telemetry.span("matcher.prepare", pair=pair.name):
                if use_cache:
                    source_prepared = prepared_cache.prepare(matcher, pair.source)
                    target_prepared = prepared_cache.prepare(matcher, pair.target)
                else:
                    source_prepared = matcher.prepare(pair.source)
                    target_prepared = matcher.prepare(pair.target)
            prepared_at = time.perf_counter()
            with telemetry.span("matcher.match", pair=pair.name):
                result = matcher.match_prepared(source_prepared, target_prepared)
    elapsed = time.perf_counter() - started
    snapshot = run_recorder.snapshot()
    if parent.enabled:
        parent.merge(snapshot)

    ranked = result.ranked_pairs()
    truth = pair.ground_truth
    recall = recall_at_ground_truth(ranked, truth)
    extra_metrics = {
        "reciprocal_rank": reciprocal_rank(ranked, truth),
        "prepare_seconds": prepared_at - started,
    }
    if use_cache:
        # Both the hit count and the number of prepares come from this
        # run's own telemetry counters — the denominator is no longer a
        # hardcoded "2 prepares per run" assumption.
        run_hits = snapshot.counters.get("prepared_cache.hits", 0)
        run_prepares = run_hits + snapshot.counters.get("prepared_cache.misses", 0)
        extra_metrics["prepare_cache_hits"] = float(run_hits)
        extra_metrics["prepare_cache_hit_rate"] = (
            run_hits / run_prepares if run_prepares else 0.0
        )
    for name, value in sorted(snapshot.counters.items()):
        extra_metrics[f"tm.{name}"] = float(value)
    for name, seconds in sorted(snapshot.stage_seconds().items()):
        extra_metrics[f"tm.{name}.seconds"] = seconds
    record = ExperimentRecord(
        method=method_name or matcher.name,
        matcher_code=matcher.code,
        pair_name=pair.name,
        scenario=pair.scenario.value,
        variant=pair.variant.value if pair.variant else None,
        dataset_source=str(pair.metadata.get("seed_table", pair.metadata.get("source_dataset", ""))) or None,
        parameters=dict(parameters or matcher.parameters()),
        recall_at_ground_truth=recall,
        runtime_seconds=elapsed,
        ground_truth_size=pair.ground_truth_size,
        noisy_schema=pair.variant.noisy_schema if pair.variant else None,
        noisy_instances=pair.variant.noisy_instances if pair.variant else None,
        extra_metrics=extra_metrics,
    )
    return record


def _run_pooled_experiment(
    task: tuple[BaseMatcher, DatasetPair, str, Mapping[str, object]],
) -> ExperimentRecord:
    """One (configuration, pair) experiment, shaped for ``RerankPool.map``."""
    matcher, pair, method_name, parameters = task
    return run_single_experiment(
        matcher, pair, method_name=method_name, parameters=parameters
    )


@dataclass
class ExperimentRunner:
    """Runs grids of method configurations over collections of dataset pairs.

    Attributes
    ----------
    grids:
        Parameter grids keyed by method name (see
        :func:`repro.experiments.parameters.default_parameter_grids`).
    progress_callback:
        Optional callable invoked with a human-readable progress string after
        every run (used by the CLI).
    prepared_cache:
        Optional shared :class:`~repro.discovery.prepared.PreparedTableCache`
        threaded through every run.  Across a parameter grid, configurations
        whose prepare stage ignores the swept parameter (the matcher's
        :meth:`~repro.matchers.base.BaseMatcher.prepare_parameters` excludes
        it) reuse prepared pair tables instead of re-preparing per
        configuration; each record's ``prepare_cache_hit_rate`` extra metric
        reports the reuse.  Leave ``None`` for paper-faithful runtime
        measurements.
    rerank_pool:
        Optional persistent :class:`~repro.discovery.search.RerankPool`.
        When set, the (configuration x pair) experiments of each method fan
        out over its warm worker processes — the grid is embarrassingly
        parallel, and one pool amortises its spawn cost over the whole
        sweep.  Records come back in the same order as the serial loop.
        The in-process ``prepared_cache`` cannot cross processes and is
        ignored on this path; per-run wall-clock is still measured inside
        the worker, but concurrent runs share cores, so keep the pool
        ``None`` for paper-faithful runtime comparisons.
    """

    grids: Mapping[str, ParameterGrid]
    progress_callback: Optional[Callable[[str], None]] = None
    prepared_cache: Optional[PreparedTableCache] = None
    rerank_pool: Optional[RerankPool] = None

    def _notify(self, message: str) -> None:
        if self.progress_callback is not None:
            self.progress_callback(message)

    def run_method(
        self,
        method_name: str,
        pairs: Sequence[DatasetPair],
    ) -> ResultSet:
        """Run every configuration of one method over every pair."""
        if method_name not in self.grids:
            raise KeyError(f"no parameter grid for method {method_name!r}")
        grid = self.grids[method_name]
        results = ResultSet()
        if self.rerank_pool is not None:
            tasks = [
                (matcher, pair, method_name, parameters)
                for parameters, matcher in grid.matchers()
                for pair in pairs
            ]
            for record in self.rerank_pool.map(_run_pooled_experiment, tasks):
                results.add(record)
                self._notify(
                    f"{method_name} on {record.pair_name}: "
                    f"recall@GT={record.recall_at_ground_truth:.3f}"
                )
            return results
        for parameters, matcher in grid.matchers():
            for pair in pairs:
                record = run_single_experiment(
                    matcher,
                    pair,
                    method_name=method_name,
                    parameters=parameters,
                    prepared_cache=self.prepared_cache,
                )
                results.add(record)
                self._notify(
                    f"{method_name} on {pair.name}: recall@GT={record.recall_at_ground_truth:.3f}"
                )
        return results

    def run_all(
        self,
        pairs: Sequence[DatasetPair],
        methods: Optional[Iterable[str]] = None,
    ) -> ResultSet:
        """Run every (selected) method over every pair — the full Figure 1 loop."""
        selected = list(methods) if methods is not None else list(self.grids)
        results = ResultSet()
        for method_name in selected:
            results.extend(self.run_method(method_name, pairs).records)
        return results

    def total_runs(self, num_pairs: int, methods: Optional[Iterable[str]] = None) -> int:
        """Number of experiment runs ``run_all`` would execute."""
        selected = list(methods) if methods is not None else list(self.grids)
        return sum(self.grids[name].size() * num_pairs for name in selected)
