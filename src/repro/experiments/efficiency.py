"""Efficiency measurements (Table V of the paper).

Table V reports the average runtime per experiment (i.e. per table pair) for
every matching method.  This module measures those averages over a collection
of dataset pairs using one representative configuration per method.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.experiments.parameters import ParameterGrid
from repro.experiments.runner import run_single_experiment
from repro.fabrication.pairs import DatasetPair

__all__ = ["RuntimeMeasurement", "measure_runtimes"]


@dataclass(frozen=True)
class RuntimeMeasurement:
    """Average runtime of one method over a set of pairs."""

    method: str
    average_seconds: float
    per_pair_seconds: dict[str, float]
    uses_instances: bool


def measure_runtimes(
    grids: Mapping[str, ParameterGrid],
    pairs: Sequence[DatasetPair],
) -> list[RuntimeMeasurement]:
    """Measure average runtime per method (one representative configuration).

    The representative configuration is the first of each grid, matching how
    the paper averages over all runs of a method (relative ordering between
    methods is what Table V communicates).
    """
    measurements = []
    for method_name, grid in grids.items():
        parameters, matcher = next(iter(grid.matchers()))
        per_pair: dict[str, float] = {}
        for pair in pairs:
            record = run_single_experiment(matcher, pair, method_name=method_name, parameters=parameters)
            per_pair[pair.name] = record.runtime_seconds
        average = sum(per_pair.values()) / len(per_pair) if per_pair else 0.0
        measurements.append(
            RuntimeMeasurement(
                method=method_name,
                average_seconds=average,
                per_pair_seconds=per_pair,
                uses_instances=matcher.uses_instances,
            )
        )
    return sorted(measurements, key=lambda m: m.average_seconds)
