"""Parameter sensitivity analysis (Table III of the paper).

For each method under grid search, the paper varies a single parameter
*ceteris paribus*, applies the method to every ChEMBL dataset pair and
measures, per pair, the standard deviation of recall@ground-truth across the
varied values.  Table III then reports the minimum, median and maximum of
those standard deviations per parameter.
"""

from __future__ import annotations

import statistics
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.experiments.parameters import ParameterGrid
from repro.experiments.runner import run_single_experiment
from repro.fabrication.pairs import DatasetPair

__all__ = ["SensitivityResult", "parameter_sensitivity", "sensitivity_table"]


@dataclass(frozen=True)
class SensitivityResult:
    """Sensitivity of one method to one parameter.

    Attributes
    ----------
    method / parameter:
        Which grid entry was varied.
    min_std / median_std / max_std:
        Statistics over the per-pair standard deviations of recall@GT.
    per_pair_std:
        The underlying per-pair standard deviations.
    """

    method: str
    parameter: str
    min_std: float
    median_std: float
    max_std: float
    per_pair_std: dict[str, float]


def parameter_sensitivity(
    grid: ParameterGrid,
    parameter: str,
    pairs: Sequence[DatasetPair],
    baseline: Mapping[str, object] | None = None,
) -> SensitivityResult:
    """Vary one parameter of *grid* ceteris paribus and measure recall spread.

    Parameters
    ----------
    grid:
        The parameter grid of the method.
    parameter:
        Name of the parameter to vary (must be in the grid and take at least
        two values for the result to be meaningful).
    pairs:
        Dataset pairs to evaluate on (the paper uses the ChEMBL pairs).
    baseline:
        Fixed values for the *other* grid parameters; defaults to the middle
        value of each.
    """
    if parameter not in grid.grid:
        raise KeyError(f"parameter {parameter!r} is not part of the {grid.method} grid")
    values = grid.grid[parameter]
    fixed: dict[str, object] = dict(grid.fixed)
    for name, options in grid.grid.items():
        if name == parameter:
            continue
        if baseline and name in baseline:
            fixed[name] = baseline[name]
        else:
            fixed[name] = options[len(options) // 2]

    per_pair_std: dict[str, float] = {}
    for pair in pairs:
        recalls = []
        for value in values:
            params = dict(fixed)
            params[parameter] = value
            matcher = grid.factory(**params)
            record = run_single_experiment(matcher, pair, method_name=grid.method, parameters=params)
            recalls.append(record.recall_at_ground_truth)
        per_pair_std[pair.name] = statistics.pstdev(recalls) if len(recalls) > 1 else 0.0

    stds = list(per_pair_std.values())
    return SensitivityResult(
        method=grid.method,
        parameter=parameter,
        min_std=min(stds) if stds else 0.0,
        median_std=statistics.median(stds) if stds else 0.0,
        max_std=max(stds) if stds else 0.0,
        per_pair_std=per_pair_std,
    )


def sensitivity_table(
    grids: Mapping[str, ParameterGrid],
    pairs: Sequence[DatasetPair],
    min_values: int = 3,
) -> list[SensitivityResult]:
    """Reproduce Table III: sensitivity of every grid parameter with ≥ *min_values* values.

    The paper only includes parameters taking at least three different values.
    """
    results = []
    for grid in grids.values():
        for parameter, values in grid.grid.items():
            if len(values) < min_values:
                continue
            results.append(parameter_sensitivity(grid, parameter, pairs))
    return results
