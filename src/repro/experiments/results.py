"""Experiment result records and aggregation.

Every run of a (method configuration, dataset pair) combination produces an
:class:`ExperimentRecord`; a :class:`ResultSet` collects them and provides the
aggregations the paper reports: per-method/per-scenario boxplot statistics
(minimum, median, maximum — Figures 4-7), per-dataset recall tables
(Table IV) and average runtimes (Table V).
"""

from __future__ import annotations

import json
import statistics
from dataclasses import asdict, dataclass, field
from pathlib import Path
from typing import Callable, Iterable, Iterator, Optional, Sequence

__all__ = ["ExperimentRecord", "BoxplotStats", "ResultSet"]


@dataclass(frozen=True)
class ExperimentRecord:
    """Outcome of running one method configuration on one dataset pair."""

    method: str
    matcher_code: str
    pair_name: str
    scenario: str
    variant: Optional[str]
    dataset_source: Optional[str]
    parameters: dict[str, object]
    recall_at_ground_truth: float
    runtime_seconds: float
    ground_truth_size: int
    noisy_schema: Optional[bool] = None
    noisy_instances: Optional[bool] = None
    extra_metrics: dict[str, float] = field(default_factory=dict)

    def to_dict(self) -> dict[str, object]:
        """Plain-dictionary form (JSON-serialisable)."""
        return asdict(self)


@dataclass(frozen=True)
class BoxplotStats:
    """Minimum / quartiles / median / maximum of a score sample."""

    minimum: float
    first_quartile: float
    median: float
    third_quartile: float
    maximum: float
    mean: float
    count: int

    @classmethod
    def from_values(cls, values: Sequence[float]) -> "BoxplotStats":
        """Compute the statistics of a non-empty value sample."""
        if not values:
            raise ValueError("cannot compute boxplot statistics of an empty sample")
        ordered = sorted(values)
        quartiles = statistics.quantiles(ordered, n=4) if len(ordered) > 1 else [ordered[0]] * 3
        return cls(
            minimum=ordered[0],
            first_quartile=quartiles[0],
            median=statistics.median(ordered),
            third_quartile=quartiles[2],
            maximum=ordered[-1],
            mean=statistics.fmean(ordered),
            count=len(ordered),
        )


class ResultSet:
    """A collection of experiment records with aggregation helpers."""

    def __init__(self, records: Iterable[ExperimentRecord] = ()) -> None:
        self._records: list[ExperimentRecord] = list(records)

    def add(self, record: ExperimentRecord) -> None:
        """Append one record."""
        self._records.append(record)

    def extend(self, records: Iterable[ExperimentRecord]) -> None:
        """Append many records."""
        self._records.extend(records)

    def __len__(self) -> int:
        return len(self._records)

    def __iter__(self) -> Iterator[ExperimentRecord]:
        return iter(self._records)

    @property
    def records(self) -> list[ExperimentRecord]:
        """All records (copy)."""
        return list(self._records)

    # ------------------------------------------------------------------ #
    # filtering
    # ------------------------------------------------------------------ #
    def filter(self, predicate: Callable[[ExperimentRecord], bool]) -> "ResultSet":
        """Records satisfying *predicate*."""
        return ResultSet(r for r in self._records if predicate(r))

    def for_method(self, method: str) -> "ResultSet":
        """Records of one method (by display name)."""
        return self.filter(lambda r: r.method == method)

    def for_scenario(self, scenario: str) -> "ResultSet":
        """Records of one relatedness scenario."""
        return self.filter(lambda r: r.scenario == scenario)

    def for_dataset_source(self, dataset_source: str) -> "ResultSet":
        """Records of one dataset source (e.g. ``"chembl"``)."""
        return self.filter(lambda r: r.dataset_source == dataset_source)

    # ------------------------------------------------------------------ #
    # aggregation
    # ------------------------------------------------------------------ #
    def methods(self) -> list[str]:
        """Distinct method names, sorted."""
        return sorted({r.method for r in self._records})

    def scenarios(self) -> list[str]:
        """Distinct scenarios, sorted."""
        return sorted({r.scenario for r in self._records})

    def recall_values(self) -> list[float]:
        """All recall@ground-truth values."""
        return [r.recall_at_ground_truth for r in self._records]

    def boxplot_by_method_and_scenario(self) -> dict[tuple[str, str], BoxplotStats]:
        """Boxplot statistics per ``(method, scenario)`` — the Figure 4-7 data."""
        grouped: dict[tuple[str, str], list[float]] = {}
        for record in self._records:
            grouped.setdefault((record.method, record.scenario), []).append(
                record.recall_at_ground_truth
            )
        return {key: BoxplotStats.from_values(values) for key, values in grouped.items()}

    def best_recall_by_method(self) -> dict[str, float]:
        """Best recall@GT per method over all its configurations — Table IV style."""
        best: dict[str, float] = {}
        for record in self._records:
            current = best.get(record.method, 0.0)
            best[record.method] = max(current, record.recall_at_ground_truth)
        return best

    def mean_recall_by_method(self) -> dict[str, float]:
        """Mean recall@GT per method."""
        grouped: dict[str, list[float]] = {}
        for record in self._records:
            grouped.setdefault(record.method, []).append(record.recall_at_ground_truth)
        return {method: statistics.fmean(values) for method, values in grouped.items()}

    def average_runtime_by_method(self) -> dict[str, float]:
        """Average runtime in seconds per method — the Table V data."""
        grouped: dict[str, list[float]] = {}
        for record in self._records:
            grouped.setdefault(record.method, []).append(record.runtime_seconds)
        return {method: statistics.fmean(values) for method, values in grouped.items()}

    # ------------------------------------------------------------------ #
    # persistence
    # ------------------------------------------------------------------ #
    def to_json(self, path: str | Path) -> Path:
        """Write all records to a JSON file and return the path."""
        path = Path(path)
        path.parent.mkdir(parents=True, exist_ok=True)
        with path.open("w", encoding="utf-8") as handle:
            json.dump([r.to_dict() for r in self._records], handle, indent=2, default=str)
        return path

    @classmethod
    def from_json(cls, path: str | Path) -> "ResultSet":
        """Load records previously written with :meth:`to_json`."""
        with Path(path).open("r", encoding="utf-8") as handle:
            raw = json.load(handle)
        records = [
            ExperimentRecord(
                method=item["method"],
                matcher_code=item["matcher_code"],
                pair_name=item["pair_name"],
                scenario=item["scenario"],
                variant=item.get("variant"),
                dataset_source=item.get("dataset_source"),
                parameters=item.get("parameters", {}),
                recall_at_ground_truth=item["recall_at_ground_truth"],
                runtime_seconds=item["runtime_seconds"],
                ground_truth_size=item["ground_truth_size"],
                noisy_schema=item.get("noisy_schema"),
                noisy_instances=item.get("noisy_instances"),
                extra_metrics=item.get("extra_metrics", {}),
            )
            for item in raw
        ]
        return cls(records)
