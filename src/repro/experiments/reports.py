"""Plain-text rendering of the paper's tables and figures.

The benchmark harness and the CLI print the reproduced artefacts with these
helpers: the Table I coverage matrix, Table II parameter grids, Table III
sensitivity, the Figure 4–7 boxplot summaries (rendered as min/median/max
rows per method and scenario), Table IV recall tables and Table V runtimes.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.experiments.efficiency import RuntimeMeasurement
from repro.experiments.parameters import ParameterGrid
from repro.experiments.results import BoxplotStats, ResultSet
from repro.experiments.sensitivity import SensitivityResult
from repro.matchers.registry import coverage_table

__all__ = [
    "format_table",
    "render_coverage_table",
    "render_parameter_grids",
    "render_sensitivity_table",
    "render_boxplot_figure",
    "render_recall_table",
    "render_runtime_table",
]


def format_table(headers: Sequence[str], rows: Sequence[Sequence[object]]) -> str:
    """Format a simple fixed-width text table."""
    columns = [list(map(str, column)) for column in zip(headers, *rows)] if rows else [[str(h)] for h in headers]
    widths = [max(len(cell) for cell in column) for column in columns]
    lines = []
    header_line = " | ".join(str(h).ljust(w) for h, w in zip(headers, widths))
    lines.append(header_line)
    lines.append("-+-".join("-" * w for w in widths))
    for row in rows:
        lines.append(" | ".join(str(cell).ljust(w) for cell, w in zip(row, widths)))
    return "\n".join(lines)


def render_coverage_table() -> str:
    """Render Table I: methods × match types."""
    rows = coverage_table()
    if not rows:
        return "(no matchers registered)"
    match_type_columns = [key for key in rows[0] if key not in ("method", "code")]
    headers = ["Method", "Code"] + [key.replace("_", " ") for key in match_type_columns]
    body = [
        [row["method"], row["code"]] + ["X" if row[key] else "" for key in match_type_columns]
        for row in rows
    ]
    return format_table(headers, body)


def render_parameter_grids(grids: Mapping[str, ParameterGrid]) -> str:
    """Render Table II: parameter values per method."""
    rows = []
    for method_name in sorted(grids):
        grid = grids[method_name]
        if not grid.grid and not grid.fixed:
            rows.append([method_name, "(defaults)", "-"])
        for parameter, values in sorted(grid.fixed.items()):
            rows.append([method_name, parameter, str(values)])
        for parameter, values in sorted(grid.grid.items()):
            rows.append([method_name, parameter, ", ".join(str(v) for v in values)])
    return format_table(["Method", "Parameter", "Values"], rows)


def render_sensitivity_table(results: Sequence[SensitivityResult]) -> str:
    """Render Table III: min/median/max std-dev of recall per varied parameter."""
    rows = [
        [
            result.method,
            result.parameter,
            f"{result.min_std:.2f}",
            f"{result.median_std:.2f}",
            f"{result.max_std:.2f}",
        ]
        for result in results
    ]
    return format_table(["Method", "Varying parameter", "Min std", "Median std", "Max std"], rows)


def render_boxplot_figure(
    results: ResultSet,
    title: str,
    methods: Sequence[str] | None = None,
    scenarios: Sequence[str] | None = None,
) -> str:
    """Render a Figure 4–7 style summary: recall stats per method and scenario."""
    stats = results.boxplot_by_method_and_scenario()
    method_names = list(methods) if methods else results.methods()
    scenario_names = list(scenarios) if scenarios else results.scenarios()
    rows = []
    for scenario in scenario_names:
        for method in method_names:
            entry = stats.get((method, scenario))
            if entry is None:
                continue
            rows.append(
                [
                    scenario,
                    method,
                    f"{entry.minimum:.2f}",
                    f"{entry.median:.2f}",
                    f"{entry.maximum:.2f}",
                    entry.count,
                ]
            )
    table = format_table(["Scenario", "Method", "Min", "Median", "Max", "Runs"], rows)
    return f"{title}\n{table}"


def render_recall_table(results_by_dataset: Mapping[str, ResultSet], title: str) -> str:
    """Render a Table IV style recall table: methods × dataset sources."""
    dataset_names = list(results_by_dataset)
    methods: list[str] = sorted(
        {method for results in results_by_dataset.values() for method in results.methods()}
    )
    rows = []
    for method in methods:
        row: list[object] = [method]
        for dataset in dataset_names:
            best = results_by_dataset[dataset].best_recall_by_method().get(method)
            row.append(f"{best:.3f}" if best is not None else "-")
        rows.append(row)
    table = format_table(["Method"] + dataset_names, rows)
    return f"{title}\n{table}"


def render_runtime_table(measurements: Sequence[RuntimeMeasurement]) -> str:
    """Render Table V: average runtime per experiment in seconds."""
    rows = [
        [m.method, f"{m.average_seconds:.3f}", "instance" if m.uses_instances else "schema"]
        for m in measurements
    ]
    return format_table(["Method", "Average runtime (s)", "Kind"], rows)
