"""Deterministic fault injection for chaos-testing the discovery pipeline.

The subsystem has one import rule: nothing in here imports the layers it
faults (artifacts, serve, lake), so a :class:`FaultPlan` can be threaded
into any of them without a cycle.  The artifact layer's
:class:`~repro.artifacts.transport.FaultyTransport` and the serve daemon's
``ServeConfig.fault_plan`` are the two wired-in injection surfaces; both
are no-ops unless a plan is supplied.
"""

from repro.faults.plan import FaultPlan, FaultSpec, InjectedCrash, InjectedFault

__all__ = ["FaultPlan", "FaultSpec", "InjectedCrash", "InjectedFault"]
