"""Seedable, deterministic fault injection for the distribution pipeline.

Production failure modes — flaky transports, torn blobs, slow NFS mounts,
processes dying mid-pull — are rare by construction, which makes the code
paths that handle them the *least* exercised in the repo.  This module turns
those failures into first-class, reproducible test inputs: a
:class:`FaultPlan` is a list of :class:`FaultSpec` rules evaluated at named
**operation points** (``transport.read_blob``, ``serve.score_batch``, ...)
that the hardened layers call on their hot paths.

Determinism is the design constraint.  Every spec draws from its own
``random.Random`` seeded from ``(plan seed, spec index)``, so a chaos test
with a fixed seed injects the *same* faults at the *same* calls on every
run, on every machine — the property that lets CI run chaos suites as
blocking jobs rather than flaky lottery tickets.  (This mirrors how the
IBLT layer treats its own failure mode: peel failure is deterministic for a
given key set, so the fallback path is testable, not probabilistic.)

Two families of faults:

* **control faults** (:meth:`FaultPlan.check`) — raise an error, sleep a
  delay, or raise :class:`InjectedCrash` (a ``BaseException``, so ordinary
  ``except Exception`` retry handlers do *not* swallow it — it models the
  process dying, and only a test harness catches it);
* **data faults** (:meth:`FaultPlan.mutate`) — truncate the payload or flip
  one bit, modelling torn writes and wire corruption.  The mutation point
  is drawn deterministically from the spec's stream, so the same call gets
  the same corruption.

A plan with no matching spec costs two dict lookups per call — cheap enough
to leave the hooks wired permanently (the default everywhere is no plan at
all, which costs nothing).
"""

from __future__ import annotations

import fnmatch
import random
import threading
import time
from dataclasses import dataclass, field
from typing import Callable, Optional, Sequence, Union

__all__ = ["InjectedFault", "InjectedCrash", "FaultSpec", "FaultPlan"]

#: The fault kinds a spec may inject.  ``error``/``delay``/``crash`` act at
#: :meth:`FaultPlan.check` points; ``truncate``/``corrupt`` act on payload
#: bytes at :meth:`FaultPlan.mutate` points.
KINDS = ("error", "delay", "crash", "truncate", "corrupt")


class InjectedFault(Exception):
    """The default exception an ``error`` spec raises (a transient fault)."""


class InjectedCrash(BaseException):
    """A simulated process death at an operation point.

    Deliberately **not** an :class:`Exception`: retry loops and degradation
    handlers catch ``Exception`` and must treat a crash the way a real
    ``kill -9`` behaves — by not running at all.  Only chaos-test harnesses
    (and the example scripts) catch this.
    """


@dataclass(frozen=True)
class FaultSpec:
    """One injection rule: *where*, *what*, and *when*.

    Parameters
    ----------
    operation:
        Glob pattern matched (``fnmatch``) against the operation name of
        each call — ``"transport.*"`` faults every transport op,
        ``"transport.read_blob"`` just blob reads.
    kind:
        One of :data:`KINDS`.
    probability:
        Chance of injecting at each matching call (drawn from the spec's
        private deterministic stream).  1.0 = every matching call.
    after:
        Skip the first *after* matching calls entirely — how "crash at step
        N" is written: ``FaultSpec("transport.read_blob", "crash", after=2)``
        lets two blobs through and kills the third read.
    times:
        Injection budget; the spec goes inert after injecting this many
        times (``None`` = unlimited).
    error:
        For ``error`` specs: the exception *instance* or *class* to raise.
        Defaults to :class:`InjectedFault`.
    delay_s:
        For ``delay`` specs: how long to sleep.
    """

    operation: str
    kind: str
    probability: float = 1.0
    after: int = 0
    times: Optional[int] = None
    error: Union[BaseException, type, None] = None
    delay_s: float = 0.01

    def __post_init__(self) -> None:
        if self.kind not in KINDS:
            raise ValueError(f"unknown fault kind {self.kind!r}; expected one of {KINDS}")
        if not 0.0 <= self.probability <= 1.0:
            raise ValueError("probability must be within [0, 1]")
        if self.after < 0:
            raise ValueError("after must be >= 0")
        if self.times is not None and self.times <= 0:
            raise ValueError("times must be positive (or None for unlimited)")


@dataclass
class _SpecState:
    """Mutable per-spec bookkeeping (the frozen spec itself never changes)."""

    spec: FaultSpec
    rng: random.Random
    matched_calls: int = 0
    injected: int = 0

    def should_inject(self) -> bool:
        """Advance this spec's deterministic stream for one matching call."""
        self.matched_calls += 1
        if self.matched_calls <= self.spec.after:
            return False
        if self.spec.times is not None and self.injected >= self.spec.times:
            return False
        if self.spec.probability < 1.0 and self.rng.random() >= self.spec.probability:
            return False
        self.injected += 1
        return True


class FaultPlan:
    """A deterministic schedule of injected faults over named operations.

    Thread-safe: the serve dispatcher and watch loop may consult one plan
    concurrently with a test thread reading :meth:`injected`.

    Parameters
    ----------
    specs:
        The injection rules, evaluated in order (every matching spec gets a
        chance per call — a call can suffer a delay *and* an error).
    seed:
        Root seed; each spec's private stream is seeded from
        ``f"{seed}:{index}"`` so reordering unrelated specs never perturbs
        another spec's draws.
    sleep:
        Clock hook for ``delay`` faults (tests pass a no-op).
    """

    def __init__(
        self,
        specs: Sequence[FaultSpec],
        seed: int = 0,
        sleep: Callable[[float], None] = time.sleep,
    ) -> None:
        self.seed = seed
        self._sleep = sleep
        self._lock = threading.Lock()
        self._states = [
            _SpecState(spec=spec, rng=random.Random(f"{seed}:{index}"))
            for index, spec in enumerate(specs)
        ]

    # ------------------------------------------------------------------ #
    # injection points
    # ------------------------------------------------------------------ #
    def check(self, operation: str) -> None:
        """Evaluate control faults (error / delay / crash) at *operation*.

        Hardened code calls this immediately before performing the real
        operation; with no matching armed spec it is a cheap no-op.
        """
        to_raise: Optional[BaseException] = None
        delay = 0.0
        with self._lock:
            for state in self._states:
                spec = state.spec
                if spec.kind not in ("error", "delay", "crash"):
                    continue
                if not fnmatch.fnmatch(operation, spec.operation):
                    continue
                if not state.should_inject():
                    continue
                if spec.kind == "delay":
                    delay += spec.delay_s
                elif spec.kind == "crash":
                    to_raise = InjectedCrash(
                        f"injected crash at {operation} "
                        f"(call {state.matched_calls})"
                    )
                    break
                elif to_raise is None:
                    to_raise = self._build_error(spec, operation, state.matched_calls)
        if delay:
            self._sleep(delay)
        if to_raise is not None:
            raise to_raise

    def mutate(self, operation: str, data: bytes) -> bytes:
        """Apply data faults (truncate / bit-flip) to *data* at *operation*."""
        with self._lock:
            for state in self._states:
                spec = state.spec
                if spec.kind not in ("truncate", "corrupt"):
                    continue
                if not fnmatch.fnmatch(operation, spec.operation):
                    continue
                if not state.should_inject():
                    continue
                if not data:
                    continue
                if spec.kind == "truncate":
                    # Tear the tail off — at least one byte survives and at
                    # least one byte is lost, like a partial write.
                    keep = state.rng.randint(1, max(1, len(data) - 1))
                    data = data[:keep]
                else:
                    # Flip one deterministic bit somewhere in the payload.
                    position = state.rng.randrange(len(data))
                    bit = 1 << state.rng.randrange(8)
                    mutated = bytearray(data)
                    mutated[position] ^= bit
                    data = bytes(mutated)
        return data

    @staticmethod
    def _build_error(
        spec: FaultSpec, operation: str, call: int
    ) -> BaseException:
        error = spec.error
        if error is None:
            return InjectedFault(f"injected fault at {operation} (call {call})")
        if isinstance(error, type):
            return error(f"injected {error.__name__} at {operation} (call {call})")
        return error

    # ------------------------------------------------------------------ #
    # observability
    # ------------------------------------------------------------------ #
    def injected(
        self, operation: Optional[str] = None, kind: Optional[str] = None
    ) -> int:
        """How many faults this plan has injected (optionally filtered).

        *operation* filters by the spec's **pattern** string, not by the
        call-site name — a plan is small enough that tests address specs by
        the patterns they wrote.
        """
        with self._lock:
            return sum(
                state.injected
                for state in self._states
                if (operation is None or state.spec.operation == operation)
                and (kind is None or state.spec.kind == kind)
            )

    def summary(self) -> dict[str, int]:
        """``{"pattern/kind": injected}`` for every spec (report material)."""
        with self._lock:
            return {
                f"{state.spec.operation}/{state.spec.kind}": state.injected
                for state in self._states
            }

    def reset(self) -> None:
        """Rewind every spec's counters and deterministic stream."""
        with self._lock:
            for index, state in enumerate(self._states):
                state.matched_calls = 0
                state.injected = 0
                state.rng = random.Random(f"{self.seed}:{index}")
