"""Tokenisation of attribute names and cell values.

Schema-based matchers compare attribute *names*, which in practice come in
mixed conventions: ``camelCase``, ``snake_case``, abbreviations, table-name
prefixes.  This module normalises and tokenises such identifiers, and also
provides simple word/value tokenisation and character n-grams used by the
instance-based matchers.
"""

from __future__ import annotations

import re
from typing import Iterable, Sequence

__all__ = [
    "normalize_identifier",
    "split_identifier",
    "tokenize_identifier",
    "tokenize_values",
    "character_ngrams",
    "word_tokens",
    "expand_abbreviation",
    "ABBREVIATIONS",
]

_CAMEL_RE = re.compile(r"(?<=[a-z0-9])(?=[A-Z])|(?<=[A-Z])(?=[A-Z][a-z])")
_NON_ALNUM_RE = re.compile(r"[^0-9a-zA-Z]+")
_WORD_RE = re.compile(r"[A-Za-z0-9]+")

#: Abbreviation dictionary used to expand common database-style shorthand;
#: the inverse direction (vowel dropping, truncation) is handled by fuzzy
#: string similarity rather than table lookups.
ABBREVIATIONS: dict[str, str] = {
    "addr": "address",
    "amt": "amount",
    "avg": "average",
    "cat": "category",
    "cd": "code",
    "cnt": "count",
    "cntr": "country",
    "cntry": "country",
    "cty": "city",
    "ctry": "country",
    "cust": "customer",
    "dept": "department",
    "desc": "description",
    "dob": "birthdate",
    "emp": "employee",
    "fname": "firstname",
    "id": "identifier",
    "lname": "lastname",
    "loc": "location",
    "mgr": "manager",
    "msr": "measure",
    "nbr": "number",
    "nm": "name",
    "no": "number",
    "num": "number",
    "org": "organization",
    "ph": "phone",
    "pcode": "postalcode",
    "pcd": "postalcode",
    "po": "postalcode",
    "prod": "product",
    "qty": "quantity",
    "ref": "reference",
    "sal": "salary",
    "st": "street",
    "tel": "telephone",
    "val": "value",
    "yr": "year",
}


def normalize_identifier(name: str) -> str:
    """Lowercase *name* and strip non-alphanumeric separators."""
    return _NON_ALNUM_RE.sub(" ", str(name)).strip().lower()


def split_identifier(name: str) -> list[str]:
    """Split an identifier on case boundaries, digits/letters and separators.

    ``"customerAddressLine1"`` becomes ``["customer", "address", "line1"]``
    and ``"CUST_ADDR"`` becomes ``["cust", "addr"]``.
    """
    if not name:
        return []
    pieces = _NON_ALNUM_RE.split(str(name))
    tokens: list[str] = []
    for piece in pieces:
        if not piece:
            continue
        for sub in _CAMEL_RE.split(piece):
            if sub:
                tokens.append(sub.lower())
    return tokens


def expand_abbreviation(token: str) -> str:
    """Expand *token* using the abbreviation dictionary (identity if unknown)."""
    return ABBREVIATIONS.get(token.lower(), token.lower())


def tokenize_identifier(name: str, expand: bool = True) -> list[str]:
    """Tokenise an attribute/table identifier into normalised word tokens.

    Parameters
    ----------
    name:
        The raw identifier.
    expand:
        When True, abbreviations are expanded via :data:`ABBREVIATIONS`.
    """
    tokens = split_identifier(name)
    if expand:
        tokens = [expand_abbreviation(token) for token in tokens]
    return tokens


def word_tokens(text: str) -> list[str]:
    """Lowercased alphanumeric word tokens of arbitrary text."""
    return [match.group(0).lower() for match in _WORD_RE.finditer(str(text))]


def tokenize_values(values: Iterable[object], max_tokens: int | None = None) -> list[str]:
    """Tokenise a collection of cell values into a flat token list.

    Used by instance-based matchers that compare the token vocabularies of two
    columns.  *max_tokens* bounds the output size for very large columns.
    """
    tokens: list[str] = []
    for value in values:
        tokens.extend(word_tokens(str(value)))
        if max_tokens is not None and len(tokens) >= max_tokens:
            return tokens[:max_tokens]
    return tokens


def character_ngrams(text: str, n: int = 3, pad: bool = True) -> list[str]:
    """Character n-grams of *text*; optionally padded with ``#`` boundaries."""
    if n <= 0:
        raise ValueError("n-gram size must be positive")
    text = str(text).lower()
    if pad:
        text = "#" * (n - 1) + text + "#" * (n - 1)
    if len(text) < n:
        return [text] if text else []
    return [text[i : i + n] for i in range(len(text) - n + 1)]
