"""Core string similarity and edit-distance measures.

These measures are used throughout the suite: the Jaccard–Levenshtein
baseline matcher, Cupid's linguistic matching, Similarity Flooding's initial
string similarities and COMA's name matchers all build on them.
"""

from __future__ import annotations

from functools import lru_cache
from typing import Iterable, Sequence

__all__ = [
    "levenshtein_distance",
    "levenshtein_similarity",
    "normalized_levenshtein",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "jaccard_similarity",
    "dice_coefficient",
    "overlap_coefficient",
    "containment",
    "longest_common_substring",
    "prefix_similarity",
    "monge_elkan",
]


def levenshtein_distance(a: str, b: str, max_distance: int | None = None) -> int:
    """Edit distance between *a* and *b* (insert/delete/substitute, unit cost).

    Implemented with the classic two-row dynamic program, O(|a|*|b|) time and
    O(min(|a|,|b|)) space.

    Parameters
    ----------
    max_distance:
        Optional cutoff for threshold-style callers ("are these within k
        edits?").  When set, any return value ``> max_distance`` only means
        *exceeded* (usually the sentinel ``max_distance + 1``, or the exact
        distance when a trivial case short-circuits first); distances at or
        below the cutoff are exact and identical to the unbounded
        computation.  The work saved: the standard length-difference early
        exit (``|len(a) - len(b)|`` is a lower bound) fires before any DP
        work, the two-row DP only fills a diagonal band of half-width
        ``max_distance`` (cells outside it cannot stay within the cutoff),
        and a row whose band minimum exceeds the cutoff aborts the scan.
    """
    if a == b:
        return 0
    if not a:
        return len(b)
    if not b:
        return len(a)
    if len(a) < len(b):
        a, b = b, a
    if max_distance is not None:
        if max_distance < 0:
            raise ValueError("max_distance must be non-negative")
        # Length-difference lower bound: no alignment can do better than
        # inserting the extra characters.
        if len(a) - len(b) > max_distance:
            return max_distance + 1
        return _banded_levenshtein(a, b, max_distance)
    previous = list(range(len(b) + 1))
    for i, char_a in enumerate(a, start=1):
        current = [i]
        for j, char_b in enumerate(b, start=1):
            cost = 0 if char_a == char_b else 1
            current.append(min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost))
        previous = current
    return previous[-1]


def _banded_levenshtein(a: str, b: str, max_distance: int) -> int:
    """Two-row DP restricted to the ``|i - j| <= max_distance`` diagonal band.

    Cells outside the band have distance > *max_distance* by construction,
    so they are treated as "over the cutoff" without being computed; if a
    whole row's band exceeds the cutoff no later row can recover and the
    scan aborts.  Requires ``len(a) >= len(b)``.
    """
    over = max_distance + 1
    len_b = len(b)
    previous = [min(j, over) for j in range(len_b + 1)]
    for i, char_a in enumerate(a, start=1):
        lower = max(1, i - max_distance)
        upper = min(len_b, i + max_distance)
        current = [i if i <= max_distance else over] + [over] * len_b
        best = current[0]
        for j in range(lower, upper + 1):
            char_b = b[j - 1]
            cost = 0 if char_a == char_b else 1
            value = min(previous[j] + 1, current[j - 1] + 1, previous[j - 1] + cost)
            if value > over:
                value = over
            current[j] = value
            if value < best:
                best = value
        if best >= over:
            return over
        previous = current
    return min(previous[-1], over)


def levenshtein_similarity(a: str, b: str) -> float:
    """Similarity in [0, 1] derived from the Levenshtein distance."""
    return normalized_levenshtein(a, b)


def normalized_levenshtein(a: str, b: str) -> float:
    """``1 - distance / max(len)`` — 1.0 for identical strings, 0.0 for disjoint."""
    if not a and not b:
        return 1.0
    longest = max(len(a), len(b))
    return 1.0 - levenshtein_distance(a, b) / longest


def jaro_similarity(a: str, b: str) -> float:
    """Jaro similarity in [0, 1]."""
    if a == b:
        return 1.0
    if not a or not b:
        return 0.0
    match_window = max(len(a), len(b)) // 2 - 1
    match_window = max(match_window, 0)
    a_matched = [False] * len(a)
    b_matched = [False] * len(b)
    matches = 0
    for i, char_a in enumerate(a):
        start = max(0, i - match_window)
        stop = min(i + match_window + 1, len(b))
        for j in range(start, stop):
            if b_matched[j] or b[j] != char_a:
                continue
            a_matched[i] = True
            b_matched[j] = True
            matches += 1
            break
    if matches == 0:
        return 0.0
    transpositions = 0
    j = 0
    for i, char_a in enumerate(a):
        if not a_matched[i]:
            continue
        while not b_matched[j]:
            j += 1
        if char_a != b[j]:
            transpositions += 1
        j += 1
    transpositions //= 2
    return (
        matches / len(a) + matches / len(b) + (matches - transpositions) / matches
    ) / 3.0


def jaro_winkler_similarity(a: str, b: str, prefix_weight: float = 0.1) -> float:
    """Jaro–Winkler similarity: Jaro boosted by a shared prefix of up to 4 chars."""
    jaro = jaro_similarity(a, b)
    prefix = 0
    for char_a, char_b in zip(a[:4], b[:4]):
        if char_a != char_b:
            break
        prefix += 1
    return jaro + prefix * prefix_weight * (1.0 - jaro)


def jaccard_similarity(a: Iterable, b: Iterable) -> float:
    """Jaccard similarity of two value collections (treated as sets)."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    intersection = len(set_a & set_b)
    union = len(set_a | set_b)
    return intersection / union


def dice_coefficient(a: Iterable, b: Iterable) -> float:
    """Sørensen–Dice coefficient of two value collections."""
    set_a, set_b = set(a), set(b)
    if not set_a and not set_b:
        return 1.0
    if not set_a or not set_b:
        return 0.0
    return 2.0 * len(set_a & set_b) / (len(set_a) + len(set_b))


def overlap_coefficient(a: Iterable, b: Iterable) -> float:
    """Overlap (Szymkiewicz–Simpson) coefficient: intersection over smaller set."""
    set_a, set_b = set(a), set(b)
    if not set_a or not set_b:
        return 0.0
    return len(set_a & set_b) / min(len(set_a), len(set_b))


def containment(a: Iterable, b: Iterable) -> float:
    """Containment of *a* in *b*: |a ∩ b| / |a|."""
    set_a, set_b = set(a), set(b)
    if not set_a:
        return 0.0
    return len(set_a & set_b) / len(set_a)


def longest_common_substring(a: str, b: str) -> int:
    """Length of the longest common contiguous substring of *a* and *b*."""
    if not a or not b:
        return 0
    previous = [0] * (len(b) + 1)
    best = 0
    for char_a in a:
        current = [0] * (len(b) + 1)
        for j, char_b in enumerate(b, start=1):
            if char_a == char_b:
                current[j] = previous[j - 1] + 1
                best = max(best, current[j])
        previous = current
    return best


def prefix_similarity(a: str, b: str) -> float:
    """Length of the common prefix divided by the shorter string length."""
    if not a or not b:
        return 0.0
    shared = 0
    for char_a, char_b in zip(a, b):
        if char_a != char_b:
            break
        shared += 1
    return shared / min(len(a), len(b))


def monge_elkan(
    tokens_a: Sequence[str],
    tokens_b: Sequence[str],
    inner=jaro_winkler_similarity,
) -> float:
    """Monge–Elkan similarity between two token sequences.

    For every token of *tokens_a* the best inner similarity against
    *tokens_b* is taken; the result is the mean of those maxima.
    """
    if not tokens_a or not tokens_b:
        return 0.0
    total = 0.0
    for token_a in tokens_a:
        total += max(inner(token_a, token_b) for token_b in tokens_b)
    return total / len(tokens_a)
