"""A compact Porter-style stemmer.

Cupid's linguistic matcher and the bundled thesaurus normalise word tokens to
stems before lookup, so that ``"addresses"`` matches ``"address"`` and
``"pricing"`` matches ``"price"`` (approximately).  The implementation follows
the classic Porter algorithm steps 1a/1b/1c plus a small suffix table; it is
intentionally lighter than a full Porter implementation but deterministic and
adequate for attribute-name vocabulary.
"""

from __future__ import annotations

__all__ = ["stem"]

_VOWELS = set("aeiou")


def _is_consonant(word: str, index: int) -> bool:
    char = word[index]
    if char in _VOWELS:
        return False
    if char == "y":
        return index == 0 or not _is_consonant(word, index - 1)
    return True


def _measure(word: str) -> int:
    """The Porter "measure": number of vowel→consonant transitions."""
    pattern = []
    for i in range(len(word)):
        is_cons = _is_consonant(word, i)
        if not pattern or pattern[-1] != is_cons:
            pattern.append(is_cons)
    # pattern like [C, V, C, V, ...]; count VC pairs
    measure = 0
    for i in range(len(pattern) - 1):
        if pattern[i] is False and pattern[i + 1] is True:
            measure += 1
    return measure


def _contains_vowel(word: str) -> bool:
    return any(not _is_consonant(word, i) for i in range(len(word)))


def stem(word: str) -> str:
    """Return the stem of *word* (lowercased)."""
    word = str(word).lower()
    if len(word) <= 2:
        return word

    # Step 1a: plurals
    if word.endswith("sses"):
        word = word[:-2]
    elif word.endswith("ies"):
        word = word[:-2]
    elif word.endswith("ss"):
        pass
    elif word.endswith("s"):
        word = word[:-1]

    # Step 1b: -ed / -ing
    if word.endswith("eed"):
        if _measure(word[:-3]) > 0:
            word = word[:-1]
    elif word.endswith("ed") and _contains_vowel(word[:-2]):
        word = word[:-2]
        word = _post_1b(word)
    elif word.endswith("ing") and _contains_vowel(word[:-3]):
        word = word[:-3]
        word = _post_1b(word)

    # Step 1c: terminal y -> i
    if word.endswith("y") and _contains_vowel(word[:-1]):
        word = word[:-1] + "i"

    # Small derivational suffix table (subset of Porter steps 2-4)
    for suffix, replacement, min_measure in (
        ("ational", "ate", 0),
        ("ization", "ize", 0),
        ("fulness", "ful", 0),
        ("ousness", "ous", 0),
        ("iveness", "ive", 0),
        ("tional", "tion", 0),
        ("biliti", "ble", 0),
        ("entli", "ent", 0),
        ("ation", "ate", 0),
        ("alism", "al", 0),
        ("aliti", "al", 0),
        ("iviti", "ive", 0),
        ("ement", "", 1),
        ("ment", "", 1),
        ("ness", "", 0),
        ("tion", "t", 1),
        ("ence", "", 1),
        ("ance", "", 1),
        ("able", "", 1),
        ("ible", "", 1),
    ):
        if word.endswith(suffix) and _measure(word[: -len(suffix)]) >= min_measure:
            word = word[: -len(suffix)] + replacement
            break

    return word


def _post_1b(word: str) -> str:
    """Cleanup after removing -ed / -ing, per Porter step 1b."""
    if word.endswith(("at", "bl", "iz")):
        return word + "e"
    if (
        len(word) >= 2
        and word[-1] == word[-2]
        and _is_consonant(word, len(word) - 1)
        and word[-1] not in "lsz"
    ):
        return word[:-1]
    if _measure(word) == 1 and _ends_cvc(word):
        return word + "e"
    return word


def _ends_cvc(word: str) -> bool:
    if len(word) < 3:
        return False
    last = len(word) - 1
    return (
        _is_consonant(word, last)
        and not _is_consonant(word, last - 1)
        and _is_consonant(word, last - 2)
        and word[last] not in "wxy"
    )
