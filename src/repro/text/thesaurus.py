"""Bundled mini-thesaurus: the offline substitute for WordNet.

The paper's Cupid implementation uses WordNet as a thesaurus for linguistic
matching.  No network access or NLTK corpora are available in this
reproduction, so we bundle a compact synonym/hypernym lexicon that covers the
vocabulary appearing in the synthetic dataset generators (customers, clients,
addresses, products, chemistry assay terms, SCRUM/IT terms, music/artist
terms).  The lexicon is intentionally small; anything it misses falls back to
string similarity in the matchers, exactly as Cupid does for out-of-thesaurus
terms.
"""

from __future__ import annotations

from typing import Iterable, Optional

from repro.text.stemmer import stem

__all__ = ["Thesaurus", "default_thesaurus"]

# Groups of mutual synonyms.  Order inside a group is irrelevant.
_SYNONYM_GROUPS: tuple[tuple[str, ...], ...] = (
    ("client", "customer", "patron", "buyer", "purchaser", "account holder"),
    ("person", "individual", "people", "human"),
    ("name", "title", "label", "designation"),
    ("firstname", "forename", "given name"),
    ("lastname", "surname", "family name"),
    ("address", "location", "residence", "street"),
    ("city", "town", "municipality"),
    ("country", "nation", "state", "land"),
    ("postalcode", "zipcode", "zip", "postcode"),
    ("phone", "telephone", "mobile", "cell"),
    ("email", "mail", "electronic mail"),
    ("birthdate", "birthday", "dateofbirth", "dob"),
    ("salary", "wage", "income", "pay", "earnings"),
    ("employee", "worker", "staff", "personnel"),
    ("employer", "company", "firm", "organization", "corporation", "enterprise", "business"),
    ("department", "division", "unit", "section"),
    ("manager", "supervisor", "head", "lead", "boss", "owner"),
    ("product", "item", "article", "goods"),
    ("price", "cost", "amount", "charge", "fee"),
    ("quantity", "count", "number", "amount"),
    ("date", "day", "time"),
    ("year", "yr"),
    ("identifier", "id", "key", "code", "reference"),
    ("description", "summary", "detail", "comment", "note", "text"),
    ("category", "type", "kind", "class", "group"),
    ("value", "measurement", "measure", "result", "reading"),
    ("gender", "sex"),
    ("spouse", "partner", "husband", "wife"),
    ("parent", "father", "mother"),
    ("child", "kid", "offspring"),
    ("song", "track", "tune", "recording"),
    ("album", "record", "release"),
    ("artist", "singer", "musician", "performer"),
    ("genre", "style", "category"),
    ("assay", "experiment", "test", "trial"),
    ("compound", "chemical", "molecule", "substance"),
    ("target", "protein", "receptor"),
    ("organism", "species"),
    ("cell", "cellline"),
    ("dose", "dosage", "concentration"),
    ("journal", "publication", "source"),
    ("sprint", "iteration", "cycle"),
    ("task", "ticket", "issue", "story", "workitem"),
    ("team", "squad", "group", "crew"),
    ("application", "app", "software", "system", "program"),
    ("server", "host", "machine", "hardware"),
    ("status", "state", "condition"),
    ("region", "area", "zone", "territory"),
    ("revenue", "income", "turnover", "sales"),
    ("balance", "amount", "total"),
    ("agency", "office", "bureau"),
    ("vehicle", "car", "automobile"),
    ("movie", "film", "picture"),
    ("actor", "performer", "cast"),
    ("director", "filmmaker"),
    ("rating", "score", "grade"),
    ("university", "college", "school", "institute"),
    ("hospital", "clinic", "medicalcenter"),
)

# (specific, general) hypernym pairs — specific IS-A general.
_HYPERNYM_PAIRS: tuple[tuple[str, str], ...] = (
    ("customer", "person"),
    ("client", "person"),
    ("employee", "person"),
    ("manager", "employee"),
    ("singer", "artist"),
    ("artist", "person"),
    ("actor", "person"),
    ("director", "person"),
    ("city", "location"),
    ("country", "location"),
    ("region", "location"),
    ("address", "location"),
    ("street", "address"),
    ("zipcode", "address"),
    ("salary", "amount"),
    ("price", "amount"),
    ("revenue", "amount"),
    ("balance", "amount"),
    ("compound", "substance"),
    ("protein", "substance"),
    ("assay", "experiment"),
    ("sprint", "interval"),
    ("task", "workitem"),
    ("application", "system"),
    ("server", "system"),
    ("song", "work"),
    ("album", "work"),
    ("movie", "work"),
    ("firstname", "name"),
    ("lastname", "name"),
    ("surname", "name"),
    ("birthdate", "date"),
    ("year", "date"),
)


class Thesaurus:
    """A small synonym/hypernym lexicon with stem-normalised lookups.

    Parameters
    ----------
    synonym_groups:
        Iterable of groups of mutually synonymous terms.
    hypernym_pairs:
        Iterable of ``(specific, general)`` pairs.
    """

    def __init__(
        self,
        synonym_groups: Iterable[tuple[str, ...]] = (),
        hypernym_pairs: Iterable[tuple[str, str]] = (),
    ) -> None:
        self._synonyms: dict[str, set[str]] = {}
        self._hypernyms: dict[str, set[str]] = {}
        for group in synonym_groups:
            self.add_synonym_group(group)
        for specific, general in hypernym_pairs:
            self.add_hypernym(specific, general)

    @staticmethod
    def _key(term: str) -> str:
        return stem(str(term).strip().lower().replace(" ", ""))

    def fingerprint(self) -> str:
        """Short content-based digest of the lexicon (stable across processes).

        Matchers fold it into their configuration fingerprint so prepared
        artifacts built under different thesauri can never be confused.
        Cached between mutations because matchers consult it on the
        per-candidate hot path.
        """
        cached = getattr(self, "_fingerprint_cache", None)
        if cached is None:
            import hashlib

            payload = repr(
                (
                    sorted((k, tuple(sorted(v))) for k, v in self._synonyms.items()),
                    sorted((k, tuple(sorted(v))) for k, v in self._hypernyms.items()),
                )
            )
            cached = hashlib.blake2b(payload.encode("utf-8"), digest_size=8).hexdigest()
            self._fingerprint_cache = cached
        return cached

    def add_synonym_group(self, terms: Iterable[str]) -> None:
        """Register a group of mutually synonymous terms."""
        keys = {self._key(term) for term in terms if term}
        for key in keys:
            self._synonyms.setdefault(key, set()).update(keys)
        self._fingerprint_cache: Optional[str] = None

    def add_hypernym(self, specific: str, general: str) -> None:
        """Register ``specific IS-A general``."""
        self._hypernyms.setdefault(self._key(specific), set()).add(self._key(general))
        self._fingerprint_cache = None

    def synonyms(self, term: str) -> set[str]:
        """Return the synonym keys of *term* (including itself if known)."""
        return set(self._synonyms.get(self._key(term), set()))

    def are_synonyms(self, a: str, b: str) -> bool:
        """True when *a* and *b* share a synonym group (or have equal stems)."""
        key_a, key_b = self._key(a), self._key(b)
        if key_a == key_b:
            return True
        return key_b in self._synonyms.get(key_a, set())

    def are_hypernyms(self, a: str, b: str) -> bool:
        """True when one of the terms is a registered hypernym of the other."""
        key_a, key_b = self._key(a), self._key(b)
        return key_b in self._hypernyms.get(key_a, set()) or key_a in self._hypernyms.get(
            key_b, set()
        )

    def relation_score(self, a: str, b: str) -> float:
        """Score the lexical relation of two terms.

        Following Cupid's linguistic-matching conventions: identical stems or
        synonyms score 1.0, hypernym/hyponym pairs score 0.8, shared synonym
        neighbourhood (both synonyms of a common term) scores 0.6, otherwise
        0.0 (the caller is expected to fall back to string similarity).
        """
        if self.are_synonyms(a, b):
            return 1.0
        if self.are_hypernyms(a, b):
            return 0.8
        common = self.synonyms(a) & self.synonyms(b)
        if common:
            return 0.6
        return 0.0

    def __contains__(self, term: str) -> bool:
        key = self._key(term)
        return key in self._synonyms or key in self._hypernyms

    def __len__(self) -> int:
        return len(self._synonyms)


_DEFAULT: Optional[Thesaurus] = None


def default_thesaurus() -> Thesaurus:
    """Return the shared bundled thesaurus instance (lazily constructed)."""
    global _DEFAULT
    if _DEFAULT is None:
        _DEFAULT = Thesaurus(_SYNONYM_GROUPS, _HYPERNYM_PAIRS)
    return _DEFAULT
