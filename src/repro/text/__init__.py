"""String similarity, tokenisation, stemming and thesaurus substrate."""

from repro.text.distance import (
    containment,
    dice_coefficient,
    jaccard_similarity,
    jaro_similarity,
    jaro_winkler_similarity,
    levenshtein_distance,
    levenshtein_similarity,
    longest_common_substring,
    monge_elkan,
    normalized_levenshtein,
    overlap_coefficient,
    prefix_similarity,
)
from repro.text.stemmer import stem
from repro.text.thesaurus import Thesaurus, default_thesaurus
from repro.text.tokenize import (
    ABBREVIATIONS,
    character_ngrams,
    expand_abbreviation,
    normalize_identifier,
    split_identifier,
    tokenize_identifier,
    tokenize_values,
    word_tokens,
)

__all__ = [
    "levenshtein_distance",
    "levenshtein_similarity",
    "normalized_levenshtein",
    "jaro_similarity",
    "jaro_winkler_similarity",
    "jaccard_similarity",
    "dice_coefficient",
    "overlap_coefficient",
    "containment",
    "longest_common_substring",
    "prefix_similarity",
    "monge_elkan",
    "stem",
    "Thesaurus",
    "default_thesaurus",
    "ABBREVIATIONS",
    "character_ngrams",
    "expand_abbreviation",
    "normalize_identifier",
    "split_identifier",
    "tokenize_identifier",
    "tokenize_values",
    "word_tokens",
]
