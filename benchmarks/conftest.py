"""Shared helpers for the benchmark harness.

Every benchmark module regenerates one table or figure of the paper at
laptop scale: the dataset sizes and parameter grids are reduced (see
``FAST_*`` constants below), but the *structure* of each experiment — which
methods run on which fabricated scenarios and how the results are aggregated
— follows the paper exactly.  The reproduced rows/series are printed to
stdout (run with ``-s`` or see ``bench_output.txt``) and attached to the
pytest-benchmark ``extra_info`` for machine-readable inspection.
"""

from __future__ import annotations

import functools

import pytest

from repro.datasets import (
    chembl_assays_table,
    open_data_table,
    tpcdi_prospect_table,
)
from repro.experiments.parameters import ParameterGrid
from repro.fabrication import FabricationConfig, Fabricator, Scenario
from repro.matchers.coma import ComaInstanceMatcher, ComaSchemaMatcher
from repro.matchers.cupid import CupidMatcher
from repro.matchers.distribution_based import DistributionBasedMatcher
from repro.matchers.embdi import EmbDIMatcher
from repro.matchers.jaccard_levenshtein import JaccardLevenshteinMatcher
from repro.matchers.semprop import SemPropMatcher
from repro.matchers.similarity_flooding import SimilarityFloodingMatcher

#: Row count of the seed tables used by the benchmark harness.
FAST_ROWS = 60
#: Number of fabricated pairs sampled per scenario per seed source.
PAIRS_PER_SCENARIO = 4


def fast_grids() -> dict[str, ParameterGrid]:
    """One representative configuration per method, sized for benchmarks."""
    return {
        "Cupid": ParameterGrid("Cupid", CupidMatcher, {}, fixed={"th_accept": 0.7}),
        "SimilarityFlooding": ParameterGrid("SimilarityFlooding", SimilarityFloodingMatcher, {}),
        "ComaSchema": ParameterGrid("ComaSchema", ComaSchemaMatcher, {}, fixed={"threshold": 0.0}),
        "ComaInstance": ParameterGrid(
            "ComaInstance", ComaInstanceMatcher, {}, fixed={"threshold": 0.0, "sample_size": 200}
        ),
        "DistributionBased": ParameterGrid(
            "DistributionBased",
            DistributionBasedMatcher,
            {},
            fixed={"phase1_threshold": 0.15, "phase2_threshold": 0.15, "sample_size": 200},
        ),
        "SemProp": ParameterGrid(
            "SemProp", SemPropMatcher, {}, fixed={"num_permutations": 32, "sample_size": 200}
        ),
        "EmbDI": ParameterGrid(
            "EmbDI",
            EmbDIMatcher,
            {},
            fixed={"dimensions": 32, "sentence_length": 16, "walks_per_node": 4, "epochs": 2, "max_rows": 60},
        ),
        "JaccardLevenshtein": ParameterGrid(
            "JaccardLevenshtein",
            JaccardLevenshteinMatcher,
            {},
            fixed={"threshold": 0.8, "sample_size": 60},
        ),
    }


@functools.lru_cache(maxsize=None)
def seed_tables() -> dict[str, object]:
    """The three fabricated-source seed tables (TPC-DI, Open Data, ChEMBL)."""
    return {
        "tpcdi": tpcdi_prospect_table(num_rows=FAST_ROWS),
        "opendata": open_data_table(num_rows=FAST_ROWS),
        "chembl": chembl_assays_table(num_rows=FAST_ROWS),
    }


@functools.lru_cache(maxsize=None)
def fabricated_pairs(scenario_value: str, sources: tuple[str, ...] = ("tpcdi", "chembl")):
    """A small, variant-diverse sample of fabricated pairs for one scenario.

    The full Figure 3 grid is fabricated and then sampled (deterministically)
    so that the benchmark sees a mix of overlap settings and noise variants
    rather than only the first corner of the grid.
    """
    import random

    scenario = Scenario(scenario_value)
    fabricator = Fabricator(FabricationConfig(seed=2021))
    pairs = []
    for source_name in sources:
        seed_table = seed_tables()[source_name]
        source_pairs = fabricator.fabricate(seed_table, scenarios=[scenario])
        sample_size = min(PAIRS_PER_SCENARIO, len(source_pairs))
        pairs.extend(random.Random(0).sample(source_pairs, sample_size))
    return pairs


def print_report(title: str, body: str) -> None:
    """Print a reproduced artefact and persist it under ``benchmarks/reports/``.

    pytest only shows captured stdout for failing tests, so every reproduced
    table/figure is also written to a text file named after its title; the
    files are what EXPERIMENTS.md links to.
    """
    import pathlib
    import re

    banner = "=" * len(title)
    text = f"\n{banner}\n{title}\n{banner}\n{body}\n"
    print(text)
    reports_dir = pathlib.Path(__file__).parent / "reports"
    reports_dir.mkdir(exist_ok=True)
    slug = re.sub(r"[^a-z0-9]+", "_", title.lower()).strip("_")[:60]
    (reports_dir / f"{slug}.txt").write_text(text, encoding="utf-8")
