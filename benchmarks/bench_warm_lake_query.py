"""Warm-path lake benchmark: prepared-candidate store + vectorized sketching.

PR 3 removed the *query-side* prepare cost from discovery; this benchmark
measures the remaining candidate-side hot path and the PR 4 fixes:

1. **Warm vs cold lake query** — a 200-candidate SemProp rerank, cold (the
   PR 3 baseline: every candidate CSV is read and prepared per query) vs
   warm (the persistent ``PreparedStore`` populated by ``lake prepare``:
   candidates come back as ready-made payloads, no CSV read, no prepare).
   Asserts the two rankings are byte-identical and the warm path is at
   least ``MIN_WARM_SPEEDUP`` x faster.
2. **MinHash sketching** — the NumPy batch path of ``minhash_signatures``
   vs the pure-Python scalar reference on 100k distinct values.  Asserts
   bit-identical signatures and at least ``MIN_MINHASH_SPEEDUP`` x.
3. **Lake build throughput** — ``lake build`` serial vs ``--workers``
   (informational: the speedup assertion is skipped on single-CPU runners,
   where a process pool cannot help).

Results are printed AND written to ``BENCH_PR4.json`` at the repository
root, so the perf trajectory is machine-readable.  Set ``BENCH_PR4_SMOKE=1``
to run a seconds-scale smoke version (used by CI): scales shrink and the
speedup assertions relax to ranking/signature *identity* only.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from benchmarks.conftest import print_report
from repro.data.csv_io import write_csv
from repro.datasets import tpcdi_prospect_table
from repro.discovery.prepared import PreparedStore
from repro.lake import LakeDiscoveryEngine, SketchStore, build_from_paths, prepare_lake
from repro.matchers.semprop import SemPropMatcher
from repro.sketches.minhash import minhash_signatures, minhash_signatures_scalar

SMOKE = os.environ.get("BENCH_PR4_SMOKE", "") not in ("", "0")

NUM_CANDIDATES = 30 if SMOKE else 200
CANDIDATE_ROWS = 60 if SMOKE else 800
QUERY_ROWS = 200 if SMOKE else 2000
MINHASH_VALUES = 5_000 if SMOKE else 100_000
BUILD_WORKERS = 4
MIN_WARM_SPEEDUP = 3.0
MIN_MINHASH_SPEEDUP = 5.0

_OUTPUT_PATH = Path(__file__).parent.parent / "BENCH_PR4.json"


def _rankings(results) -> list[tuple[str, float, float]]:
    return [(r.table_name, r.joinability, r.unionability) for r in results]


def _bench_minhash() -> dict[str, object]:
    values = [f"value-{i:07d}" for i in range(MINHASH_VALUES)]
    started = time.perf_counter()
    vectorized = minhash_signatures([values], num_permutations=128)
    vectorized_seconds = time.perf_counter() - started

    from repro.sketches.minhash import _stable_hash

    _stable_hash.cache_clear()  # the scalar path must pay its own digests
    started = time.perf_counter()
    scalar = minhash_signatures_scalar([values], num_permutations=128)
    scalar_seconds = time.perf_counter() - started

    assert vectorized == scalar, "vectorized signatures diverged from scalar oracle"
    return {
        "distinct_values": MINHASH_VALUES,
        "num_permutations": 128,
        "scalar_seconds": round(scalar_seconds, 4),
        "vectorized_seconds": round(vectorized_seconds, 4),
        "speedup": round(scalar_seconds / vectorized_seconds, 2),
        "identical_signatures": True,
    }


def _bench_build_and_query(workdir: Path) -> tuple[dict[str, object], dict[str, object]]:
    lake_dir = workdir / "lake"
    lake_dir.mkdir()
    for i in range(NUM_CANDIDATES):
        table = tpcdi_prospect_table(num_rows=CANDIDATE_ROWS, seed=100 + i)
        write_csv(table.rename(f"candidate_{i:03d}"), lake_dir / f"candidate_{i:03d}.csv")
    csv_paths = sorted(lake_dir.glob("*.csv"))

    started = time.perf_counter()
    with SketchStore(workdir / "serial.sketches") as serial_store:
        build_from_paths(serial_store, csv_paths)
    serial_seconds = time.perf_counter() - started

    started = time.perf_counter()
    store = SketchStore(workdir / "lake.sketches")
    build_from_paths(store, csv_paths, workers=BUILD_WORKERS)
    parallel_seconds = time.perf_counter() - started

    build_stats = {
        "tables": NUM_CANDIDATES,
        "rows_per_table": CANDIDATE_ROWS,
        "cpu_count": os.cpu_count(),
        "serial_seconds": round(serial_seconds, 3),
        "serial_tables_per_second": round(NUM_CANDIDATES / serial_seconds, 1),
        "workers": BUILD_WORKERS,
        "parallel_seconds": round(parallel_seconds, 3),
        "parallel_tables_per_second": round(NUM_CANDIDATES / parallel_seconds, 1),
        "parallel_speedup": round(serial_seconds / parallel_seconds, 2),
    }

    matcher = SemPropMatcher()
    query = tpcdi_prospect_table(num_rows=QUERY_ROWS, seed=1).rename("query_prospects")
    # Warm shared singletons (thesaurus, embeddings, ontology memos) so
    # neither path pays one-off initialisation inside its timing.
    matcher.get_matches(
        tpcdi_prospect_table(num_rows=5, seed=8),
        tpcdi_prospect_table(num_rows=5, seed=9),
    )

    cold_engine = LakeDiscoveryEngine(
        matcher=matcher,
        store=store,
        min_candidates=NUM_CANDIDATES,
        candidate_multiplier=NUM_CANDIDATES,
    )
    started = time.perf_counter()
    cold_results = cold_engine.query(query, top_k=10)
    cold_seconds = time.perf_counter() - started

    prepared_store = PreparedStore(workdir / "lake.sketches.prepared")
    started = time.perf_counter()
    prepare_report = prepare_lake(store, prepared_store, matcher, workers=BUILD_WORKERS)
    prepare_seconds = time.perf_counter() - started

    warm_engine = LakeDiscoveryEngine(
        matcher=matcher,
        store=store,
        prepared_store=prepared_store,
        min_candidates=NUM_CANDIDATES,
        candidate_multiplier=NUM_CANDIDATES,
    )
    started = time.perf_counter()
    warm_results = warm_engine.query(query, top_k=10)
    warm_seconds = time.perf_counter() - started

    assert _rankings(warm_results) == _rankings(cold_results), (
        "warm rankings diverged from the cold baseline"
    )
    assert prepared_store.hits == warm_engine.last_rerank_count, (
        "warm query did not serve every candidate from the prepared store"
    )
    query_stats = {
        "matcher": "SemProp",
        "candidates_reranked": warm_engine.last_rerank_count,
        "query_rows": QUERY_ROWS,
        "candidate_rows": CANDIDATE_ROWS,
        "cold_seconds": round(cold_seconds, 3),
        "prepare_lake_seconds": round(prepare_seconds, 3),
        "warm_seconds": round(warm_seconds, 3),
        "speedup": round(cold_seconds / warm_seconds, 2),
        "rankings_identical": True,
    }
    store.close()
    prepared_store.close()
    return build_stats, query_stats


def test_warm_lake_query_benchmark():
    workdir = Path(tempfile.mkdtemp(prefix="bench_pr4_"))
    try:
        minhash_stats = _bench_minhash()
        build_stats, query_stats = _bench_build_and_query(workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    payload = {
        "benchmark": "bench_warm_lake_query",
        "smoke": SMOKE,
        "warm_lake_query": query_stats,
        "lake_build": build_stats,
        "minhash_sketching": minhash_stats,
    }
    _OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    lines = [
        f"workload:   {NUM_CANDIDATES} candidates x {CANDIDATE_ROWS} rows, "
        f"query {QUERY_ROWS} rows (smoke={SMOKE})",
        f"lake query  cold: {query_stats['cold_seconds']:7.2f} s   "
        f"warm: {query_stats['warm_seconds']:7.2f} s   "
        f"speedup: {query_stats['speedup']:5.1f}x (rankings identical)",
        f"lake build  serial: {build_stats['serial_seconds']:5.2f} s   "
        f"{BUILD_WORKERS} workers: {build_stats['parallel_seconds']:5.2f} s   "
        f"(cpus={build_stats['cpu_count']})",
        f"minhash     scalar: {minhash_stats['scalar_seconds']:5.2f} s   "
        f"vectorized: {minhash_stats['vectorized_seconds']:5.2f} s   "
        f"speedup: {minhash_stats['speedup']:5.1f}x "
        f"({minhash_stats['distinct_values']} values, identical signatures)",
        f"written to  {_OUTPUT_PATH.name}",
    ]
    print_report(
        "Warm lake query — persistent prepared store + vectorized MinHash (PR 4)",
        "\n".join(lines),
    )

    if not SMOKE:
        assert query_stats["speedup"] >= MIN_WARM_SPEEDUP, (
            f"warm query only {query_stats['speedup']}x faster "
            f"(< {MIN_WARM_SPEEDUP}x): {query_stats}"
        )
        assert minhash_stats["speedup"] >= MIN_MINHASH_SPEEDUP, (
            f"vectorized minhash only {minhash_stats['speedup']}x faster "
            f"(< {MIN_MINHASH_SPEEDUP}x): {minhash_stats}"
        )
