"""Telemetry overhead benchmark: the disabled path must cost ~nothing.

PR 6 instruments every layer of the discovery pipeline (LSH probing, store
lookups, rerank stages) with spans and counters that default to a no-op
recorder.  This benchmark proves the central claim — **instrumentation left
in the hot path costs < ``MAX_DISABLED_OVERHEAD`` of a warm rerank when
telemetry is off** — and records the first per-stage latency breakdown of
the warm query while it is at it:

1. **Disabled-mode timing** — ``REPEAT_QUERIES`` fully warm serial queries
   (every candidate served from the prepared store) under the default
   :data:`~repro.telemetry.NULL_RECORDER`.
2. **Enabled-mode timing** — the same queries under a real
   :class:`~repro.telemetry.TelemetryRecorder`; the delta is reported (not
   asserted — it includes genuine recording work and timer noise).
3. **Instrumentation census** — the module-level ``span``/``count``/
   ``observe`` entry points are wrapped to count exactly how many times one
   warm query calls each.  Multiplying by the measured per-call cost of the
   *null* primitives gives a deterministic estimate of the disabled-mode
   overhead, asserted ``< MAX_DISABLED_OVERHEAD`` — this is robust where a
   direct disabled-vs-uninstrumented comparison would drown in noise (there
   is no uninstrumented build to compare against).
4. **Per-stage breakdown** — the enabled run's duration histograms
   (p50/p95/p99 per stage) land in the JSON report.

Results are printed AND written to ``BENCH_PR6.json`` at the repository
root.  Set ``BENCH_PR6_SMOKE=1`` for a seconds-scale smoke run (used by
CI); the census-based overhead bound holds there too, since it is
deterministic per query, not load-dependent.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from benchmarks.conftest import print_report
from repro.data.csv_io import write_csv
from repro.datasets import tpcdi_prospect_table
from repro.discovery.prepared import PreparedStore
from repro.lake import LakeDiscoveryEngine, SketchStore, build_from_paths, prepare_lake
from repro.matchers.semprop import SemPropMatcher
from repro.telemetry import TelemetryRecorder, use
from repro.telemetry import recorder as telemetry_recorder

SMOKE = os.environ.get("BENCH_PR6_SMOKE", "") not in ("", "0")

NUM_CANDIDATES = 24 if SMOKE else 200
CANDIDATE_ROWS = 60 if SMOKE else 600
QUERY_ROWS = 200 if SMOKE else 1500
REPEAT_QUERIES = 3 if SMOKE else 5
WORKERS = max(2, min(4, os.cpu_count() or 1))
#: The tentpole bound: estimated cost of the no-op instrumentation on one
#: warm query, as a fraction of that query's wall clock.
MAX_DISABLED_OVERHEAD = 0.02

_OUTPUT_PATH = Path(__file__).parent.parent / "BENCH_PR6.json"


def _null_primitive_costs() -> dict[str, float]:
    """Per-call seconds of the module-level primitives with the null recorder."""
    loops = 200_000
    started = time.perf_counter()
    for _ in range(loops):
        telemetry_recorder.count("bench.counter", 1)
    count_cost = (time.perf_counter() - started) / loops
    started = time.perf_counter()
    for _ in range(loops):
        telemetry_recorder.observe("bench.duration", 0.0)
    observe_cost = (time.perf_counter() - started) / loops
    started = time.perf_counter()
    for _ in range(loops):
        with telemetry_recorder.span("bench.span", table="t"):
            pass
    span_cost = (time.perf_counter() - started) / loops
    return {"span": span_cost, "count": count_cost, "observe": observe_cost}


def _census_one_query(engine, query) -> dict[str, int]:
    """Count how many span/count/observe calls one warm query issues.

    Wraps the module-level entry points in :mod:`repro.telemetry.recorder`
    (every instrumented module calls through them), runs one query with the
    recorder still disabled, and restores the originals.
    """
    calls = {"span": 0, "count": 0, "observe": 0}
    original_span = telemetry_recorder.span
    original_count = telemetry_recorder.count
    original_observe = telemetry_recorder.observe

    def census_span(name, **attrs):
        calls["span"] += 1
        return original_span(name, **attrs)

    def census_count(name, value=1):
        calls["count"] += 1
        original_count(name, value)

    def census_observe(name, seconds):
        calls["observe"] += 1
        original_observe(name, seconds)

    telemetry_recorder.span = census_span
    telemetry_recorder.count = census_count
    telemetry_recorder.observe = census_observe
    try:
        engine.query(query, top_k=10)
    finally:
        telemetry_recorder.span = original_span
        telemetry_recorder.count = original_count
        telemetry_recorder.observe = original_observe
    return calls


def _bench(workdir: Path) -> dict[str, object]:
    lake_dir = workdir / "lake"
    lake_dir.mkdir()
    for i in range(NUM_CANDIDATES):
        table = tpcdi_prospect_table(num_rows=CANDIDATE_ROWS, seed=300 + i)
        write_csv(table.rename(f"candidate_{i:03d}"), lake_dir / f"candidate_{i:03d}.csv")
    csv_paths = sorted(lake_dir.glob("*.csv"))

    matcher = SemPropMatcher()
    query = tpcdi_prospect_table(num_rows=QUERY_ROWS, seed=2).rename("query_prospects")
    # Warm shared singletons so neither mode pays one-off initialisation.
    matcher.get_matches(
        tpcdi_prospect_table(num_rows=5, seed=8),
        tpcdi_prospect_table(num_rows=5, seed=9),
    )

    store = SketchStore(workdir / "lake.sketches")
    build_from_paths(store, csv_paths, workers=WORKERS)
    prepared_store = PreparedStore(workdir / "lake.sketches.prepared")
    prepare_lake(store, prepared_store, matcher, workers=WORKERS)

    engine = LakeDiscoveryEngine(
        matcher=matcher,
        store=store,
        prepared_store=prepared_store,
        min_candidates=NUM_CANDIDATES,
        candidate_multiplier=NUM_CANDIDATES,
    )
    with engine:
        # Warm-up: writes the query's own payload through, touches caches.
        engine.query(query, top_k=10)
        assert engine.last_query_stats.store_hits == engine.last_rerank_count == NUM_CANDIDATES, (
            "warm-up query did not serve every candidate from the store"
        )

        disabled_seconds = []
        for _ in range(REPEAT_QUERIES):
            started = time.perf_counter()
            engine.query(query, top_k=10)
            disabled_seconds.append(time.perf_counter() - started)
        enabled_recorder = TelemetryRecorder()
        enabled_seconds = []
        with use(enabled_recorder):
            for _ in range(REPEAT_QUERIES):
                started = time.perf_counter()
                engine.query(query, top_k=10)
                enabled_seconds.append(time.perf_counter() - started)
        enabled_stats = engine.last_query_stats
        assert enabled_stats is not None and enabled_stats.snapshot is not None

        calls = _census_one_query(engine, query)
    store.close()
    prepared_store.close()

    costs = _null_primitive_costs()
    disabled_mean = sum(disabled_seconds) / len(disabled_seconds)
    enabled_mean = sum(enabled_seconds) / len(enabled_seconds)
    overhead_seconds = (
        calls["span"] * costs["span"]
        + calls["count"] * costs["count"]
        + calls["observe"] * costs["observe"]
    )
    disabled_overhead = overhead_seconds / disabled_mean

    snapshot = enabled_stats.snapshot
    stages = {}
    for name in sorted(snapshot.durations):
        summary = snapshot.duration_summary(name)
        stages[name] = {
            "count": int(summary["count"]),
            "total_ms": round(summary["total"] * 1e3, 3),
            "p50_ms": round(summary["p50"] * 1e3, 3),
            "p95_ms": round(summary["p95"] * 1e3, 3),
            "p99_ms": round(summary["p99"] * 1e3, 3),
        }
    return {
        "matcher": "SemProp",
        "candidates_reranked": NUM_CANDIDATES,
        "query_rows": QUERY_ROWS,
        "candidate_rows": CANDIDATE_ROWS,
        "repeat_queries": REPEAT_QUERIES,
        "cpu_count": os.cpu_count(),
        "disabled_mean_seconds": round(disabled_mean, 4),
        "enabled_mean_seconds": round(enabled_mean, 4),
        "enabled_over_disabled_ratio": round(enabled_mean / disabled_mean, 4),
        "instrumentation_calls_per_query": calls,
        "null_primitive_cost_ns": {
            name: round(cost * 1e9, 1) for name, cost in costs.items()
        },
        "disabled_overhead_seconds": round(overhead_seconds, 6),
        "disabled_overhead_fraction": round(disabled_overhead, 6),
        "max_disabled_overhead": MAX_DISABLED_OVERHEAD,
        "per_stage_latency": stages,
        "counters_last_enabled_query": dict(
            sorted(enabled_stats.counters.items())
        ),
    }


def test_telemetry_overhead_benchmark():
    workdir = Path(tempfile.mkdtemp(prefix="bench_pr6_"))
    try:
        stats = _bench(workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    payload = {
        "benchmark": "bench_telemetry_overhead",
        "smoke": SMOKE,
        "telemetry_overhead": stats,
    }
    _OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    calls = stats["instrumentation_calls_per_query"]
    top_stages = sorted(
        stats["per_stage_latency"].items(),
        key=lambda item: -item[1]["total_ms"],
    )[:5]
    stage_lines = [
        f"  {name:<28s} n={summary['count']:<5d} total={summary['total_ms']:8.1f} ms  "
        f"p50={summary['p50_ms']:7.2f}  p95={summary['p95_ms']:7.2f}"
        for name, summary in top_stages
    ]
    lines = [
        f"workload:        {NUM_CANDIDATES} warm candidates x {CANDIDATE_ROWS} rows, "
        f"query {QUERY_ROWS} rows (cpus={stats['cpu_count']}, smoke={SMOKE})",
        f"disabled mode:   {stats['disabled_mean_seconds']:8.3f} s / query "
        f"(mean of {REPEAT_QUERIES}) — default no-op recorder",
        f"enabled mode:    {stats['enabled_mean_seconds']:8.3f} s / query "
        f"({stats['enabled_over_disabled_ratio']:.3f}x disabled)",
        f"instrumentation: {calls['span']} spans + {calls['count']} counts + "
        f"{calls['observe']} observes per query",
        f"disabled cost:   {stats['disabled_overhead_seconds'] * 1e6:8.1f} µs "
        f"= {stats['disabled_overhead_fraction']:.4%} of the query "
        f"(bound: {MAX_DISABLED_OVERHEAD:.0%})",
        "hottest stages (enabled run):",
        *stage_lines,
        f"written to       {_OUTPUT_PATH.name}",
    ]
    print_report(
        "Telemetry overhead — no-op recorder on the warm rerank path (PR 6)",
        "\n".join(lines),
    )

    assert stats["disabled_overhead_fraction"] < MAX_DISABLED_OVERHEAD, (
        f"no-op instrumentation estimated at "
        f"{stats['disabled_overhead_fraction']:.4%} of a warm query "
        f"(>= {MAX_DISABLED_OVERHEAD:.0%}): {stats}"
    )
