"""Cascaded-rerank benchmark: score bounds + top-k early termination (PR 10).

A warm 200-candidate SemProp rerank where only a small value-overlapping
cohort can reach the top-k: the cascade's stage-1 sketch bounds should skip
the disjoint majority outright while returning a ranking byte-identical to
the uncascaded rerank (SemProp declares its ``0.5 * max_jaccard`` bound
admissible, so skipping is provably safe).

Reported per run: the exact-scored fraction, the skip fraction, and the
wall-clock speedup of ``cascade=True`` over the plain warm rerank.  The
benchmark *asserts* ranking identity and a skip fraction of at least
``MIN_SKIP_FRACTION`` — in smoke mode too; the speedup itself is
informational (it tracks matcher cost, which smoke scales shrink).

Results are printed AND written to ``BENCH_PR10.json`` at the repository
root.  Set ``BENCH_PR10_SMOKE=1`` for the seconds-scale CI version.
"""

from __future__ import annotations

import json
import os
import shutil
import tempfile
import time
from pathlib import Path

from benchmarks.conftest import print_report
from repro.data.csv_io import write_csv
from repro.data.table import Table
from repro.discovery.prepared import PreparedStore
from repro.lake import LakeDiscoveryEngine, SketchStore, build_from_paths, prepare_lake
from repro.matchers.semprop import SemPropMatcher

SMOKE = os.environ.get("BENCH_PR10_SMOKE", "") not in ("", "0")

NUM_CANDIDATES = 60 if SMOKE else 200
NUM_OVERLAPPING = 12 if SMOKE else 20
# Row count sets the exact-scoring cost the cascade avoids; stage-1 bounds
# read fixed-size sketches, so their cost is row-independent.
CANDIDATE_ROWS = 40 if SMOKE else 500
NUM_COLUMNS = 3 if SMOKE else 5
TOP_K = 10
MIN_SKIP_FRACTION = 0.30

_OUTPUT_PATH = Path(__file__).parent.parent / "BENCH_PR10.json"


def _rankings(results) -> list[tuple[str, float, float]]:
    return [(r.table_name, r.joinability, r.unionability) for r in results]


def _neutral_table(name: str, value_of) -> Table:
    """Columns with ontology-neutral names: SemProp forms no semantic links,
    so its admissible syntactic bound applies to every pair."""
    return Table(
        name,
        {
            f"field_{c}": [value_of(c, r) for r in range(CANDIDATE_ROWS)]
            for c in range(NUM_COLUMNS)
        },
    )


def _build_lake(workdir: Path) -> Path:
    lake_dir = workdir / "csv"
    lake_dir.mkdir()
    for i in range(NUM_OVERLAPPING):
        # Overlap fraction spreads 1.0 .. ~0.5 so the top-k has real contrast.
        keep = 1.0 - 0.5 * i / max(1, NUM_OVERLAPPING - 1)
        cut = int(CANDIDATE_ROWS * keep)
        table = _neutral_table(
            f"overlap_{i:03d}",
            lambda c, r, i=i, cut=cut: (
                f"val_{c}_{r}" if r < cut else f"own_{i}_{c}_{r}"
            ),
        )
        write_csv(table, lake_dir / f"{table.name}.csv")
    for i in range(NUM_CANDIDATES - NUM_OVERLAPPING):
        table = _neutral_table(
            f"disjoint_{i:03d}", lambda c, r, i=i: f"junk_{i}_{c}_{r}"
        )
        write_csv(table, lake_dir / f"{table.name}.csv")
    return lake_dir


def _bench_cascade(workdir: Path) -> dict[str, object]:
    lake_dir = _build_lake(workdir)
    query = _neutral_table("query_table", lambda c, r: f"val_{c}_{r}")

    matcher = SemPropMatcher()
    store = SketchStore(workdir / "lake.sketches")
    build_from_paths(store, sorted(lake_dir.glob("*.csv")))
    prepared_store = PreparedStore(workdir / "lake.sketches.prepared")
    prepare_lake(store, prepared_store, matcher)

    engine = LakeDiscoveryEngine(
        matcher=matcher,
        store=store,
        prepared_store=prepared_store,
        min_candidates=NUM_CANDIDATES,
        candidate_multiplier=NUM_CANDIDATES,
    )
    # One throwaway warm query so both timed runs see hot caches.
    engine.query(query, top_k=TOP_K)

    started = time.perf_counter()
    plain = engine.query(query, top_k=TOP_K)
    plain_seconds = time.perf_counter() - started
    plain_scored = engine.last_query_stats.rerank_count

    started = time.perf_counter()
    cascaded = engine.query(query, top_k=TOP_K, cascade=True)
    cascade_seconds = time.perf_counter() - started
    stats = engine.last_query_stats

    assert _rankings(cascaded) == _rankings(plain), (
        "cascaded ranking diverged from the uncascaded warm rerank"
    )
    shortlisted = stats.cascade_exact + stats.cascade_skipped
    skip_fraction = stats.cascade_skipped / shortlisted if shortlisted else 0.0
    outcome = {
        "matcher": "SemProp",
        "candidates": NUM_CANDIDATES,
        "overlapping": NUM_OVERLAPPING,
        "candidate_rows": CANDIDATE_ROWS,
        "top_k": TOP_K,
        "plain_seconds": round(plain_seconds, 4),
        "plain_scored": plain_scored,
        "cascade_seconds": round(cascade_seconds, 4),
        "exact_scored": stats.cascade_exact,
        "skipped": stats.cascade_skipped,
        "exact_fraction": round(stats.cascade_exact / shortlisted, 3),
        "skip_fraction": round(skip_fraction, 3),
        "speedup": round(plain_seconds / cascade_seconds, 2),
        "rankings_identical": True,
    }
    engine.close()
    store.close()
    prepared_store.close()

    assert skip_fraction >= MIN_SKIP_FRACTION, (
        f"cascade skipped only {skip_fraction:.0%} of the shortlist "
        f"(< {MIN_SKIP_FRACTION:.0%}): {outcome}"
    )
    return outcome


def test_rerank_cascade_benchmark():
    workdir = Path(tempfile.mkdtemp(prefix="bench_pr10_"))
    try:
        cascade_stats = _bench_cascade(workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    payload = {
        "benchmark": "bench_rerank_cascade",
        "smoke": SMOKE,
        "rerank_cascade": cascade_stats,
    }
    _OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    lines = [
        f"workload:   {NUM_CANDIDATES} warm SemProp candidates "
        f"({cascade_stats['overlapping']} overlapping), top_k={TOP_K} "
        f"(smoke={SMOKE})",
        f"plain       {cascade_stats['plain_seconds']:7.3f} s   "
        f"{cascade_stats['plain_scored']} scored",
        f"cascade     {cascade_stats['cascade_seconds']:7.3f} s   "
        f"{cascade_stats['exact_scored']} scored, "
        f"{cascade_stats['skipped']} skipped "
        f"({cascade_stats['skip_fraction']:.0%} of shortlist)",
        f"speedup     {cascade_stats['speedup']:5.1f}x (rankings identical)",
        f"written to  {_OUTPUT_PATH.name}",
    ]
    print_report(
        "Cascaded rerank — score bounds + top-k early termination (PR 10)",
        "\n".join(lines),
    )
