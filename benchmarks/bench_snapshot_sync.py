"""Snapshot distribution benchmark: full pull vs delta pull (PR 8).

The PR 8 claim: on a 500-table lake where 10 tables changed, a replica
``lake pull`` moves a small fraction of the bytes of a full snapshot copy —
content addressing skips every shared blob, and the IBLT reconciliation
decodes the 10-key delta without shipping key lists.

The benchmark builds the lake (sketch store + prepared store, so payload
bytes — the expensive part — are measured too), publishes, and measures:

1. **Full pull** — bootstrap into an empty replica: every blob crosses.
   This is the "full snapshot copy" baseline in bytes and seconds.
2. **Delta pull** — the publisher rewrites ``DELTA_TABLES`` tables,
   rebuilds, re-publishes (in place), and the *same* replica pulls again:
   only the changed blobs may cross.

Asserted (at full scale): delta bytes <= ``MAX_DELTA_BYTES_RATIO`` of the
full pull, the delta reconciles via IBLT decode (no fallback), and the
post-pull replica's ranking is **byte-identical** to a store freshly built
from the publisher's final CSVs.  Results are printed AND written to
``BENCH_PR8.json`` at the repository root.  Set ``BENCH_PR8_SMOKE=1`` for a
seconds-scale smoke run (CI): scales shrink, the identity and
delta-only-blob assertions still hold, the byte-ratio bound is relaxed.
"""

from __future__ import annotations

import json
import os
import pickle
import shutil
import tempfile
import time
from pathlib import Path

from benchmarks.conftest import print_report
from repro.artifacts import publish_snapshot, pull_snapshot
from repro.data.csv_io import write_csv
from repro.datasets import tpcdi_prospect_table
from repro.discovery.prepared import PreparedStore
from repro.lake import LakeDiscoveryEngine, SketchStore, build_from_paths, prepare_lake
from repro.matchers.registry import create_matcher

SMOKE = os.environ.get("BENCH_PR8_SMOKE", "") not in ("", "0")

NUM_TABLES = 40 if SMOKE else 500
DELTA_TABLES = 2 if SMOKE else 10
TABLE_ROWS = 24 if SMOKE else 60
WORKERS = max(2, min(4, os.cpu_count() or 1))
#: The PR 8 acceptance bound: a 10-of-500 delta must move <= 5% of the
#: bytes of a full snapshot copy.  Smoke scale (2 of 40) is bounded looser
#: because fixed per-table costs weigh more at small scale.
MAX_DELTA_BYTES_RATIO = 0.15 if SMOKE else 0.05

_OUTPUT_PATH = Path(__file__).parent.parent / "BENCH_PR8.json"


def _matcher():
    return create_matcher("jaccardlevenshtein", sample_size=20)


def _ranking_bytes(store, prepared_store, query) -> bytes:
    with LakeDiscoveryEngine(
        matcher=_matcher(), store=store, prepared_store=prepared_store
    ) as engine:
        results = engine.query(query, mode="combined", top_k=20)
    return pickle.dumps(
        [(r.table_name, r.scores, r.matches) for r in results], protocol=4
    )


def _bench(workdir: Path) -> dict[str, object]:
    lake_dir = workdir / "lake"
    lake_dir.mkdir()
    for i in range(NUM_TABLES):
        table = tpcdi_prospect_table(num_rows=TABLE_ROWS, seed=1000 + i)
        write_csv(table.rename(f"table_{i:04d}"), lake_dir / f"table_{i:04d}.csv")

    publisher = SketchStore(workdir / "publisher.sketches")
    prepared = PreparedStore(workdir / "publisher.sketches.prepared")
    build_from_paths(publisher, sorted(lake_dir.glob("*.csv")), workers=WORKERS)
    prepare_lake(publisher, prepared, _matcher(), workers=WORKERS)

    artifact = workdir / "artifact"
    started = time.perf_counter()
    publish = publish_snapshot(publisher, artifact, prepared_store=prepared)
    publish_seconds = time.perf_counter() - started

    # 1. Full pull: bootstrap replica, every blob crosses.
    replica = SketchStore(workdir / "replica.sketches")
    replica_prepared = PreparedStore(workdir / "replica.sketches.prepared")
    started = time.perf_counter()
    full = pull_snapshot(artifact, replica, prepared_store=replica_prepared)
    full_seconds = time.perf_counter() - started
    assert full.tables_added == NUM_TABLES, "bootstrap pull missed tables"

    # 2. Publisher rewrites DELTA_TABLES tables and re-publishes in place.
    for i in range(DELTA_TABLES):
        table = tpcdi_prospect_table(num_rows=TABLE_ROWS + 6, seed=9000 + i)
        write_csv(table.rename(f"table_{i:04d}"), lake_dir / f"table_{i:04d}.csv")
    build_from_paths(publisher, sorted(lake_dir.glob("*.csv")), workers=WORKERS)
    prepare_lake(publisher, prepared, _matcher(), workers=WORKERS)
    started = time.perf_counter()
    republish = publish_snapshot(publisher, artifact, prepared_store=prepared)
    republish_seconds = time.perf_counter() - started
    assert republish.blobs_written == 2 * DELTA_TABLES, (
        "in-place re-publish rewrote more than the delta "
        f"({republish.blobs_written} blobs)"
    )

    # 3. Delta pull into the already-synced replica.
    started = time.perf_counter()
    delta = pull_snapshot(artifact, replica, prepared_store=replica_prepared)
    delta_seconds = time.perf_counter() - started
    assert delta.blobs_fetched == 2 * DELTA_TABLES, (
        f"delta pull fetched {delta.blobs_fetched} blobs, "
        f"expected {2 * DELTA_TABLES}"
    )
    assert delta.iblt_fallback == 0, "delta reconciliation fell back to full diff"

    # 4. Acceptance: post-pull rankings byte-identical to a fresh build.
    fresh = SketchStore(workdir / "fresh.sketches")
    fresh_prepared = PreparedStore(workdir / "fresh.sketches.prepared")
    build_from_paths(fresh, sorted(lake_dir.glob("*.csv")), workers=WORKERS)
    prepare_lake(fresh, fresh_prepared, _matcher(), workers=WORKERS)
    query = tpcdi_prospect_table(num_rows=TABLE_ROWS, seed=42).rename("query_table")
    assert _ranking_bytes(replica, replica_prepared, query) == _ranking_bytes(
        fresh, fresh_prepared, query
    ), "replica ranking diverged from a freshly built store"

    for handle in (publisher, prepared, replica, replica_prepared, fresh, fresh_prepared):
        handle.close()

    ratio = delta.bytes_fetched / max(1, full.bytes_fetched)
    return {
        "tables": NUM_TABLES,
        "delta_tables": DELTA_TABLES,
        "table_rows": TABLE_ROWS,
        "workers": WORKERS,
        "cpu_count": os.cpu_count(),
        "publish_seconds": round(publish_seconds, 3),
        "republish_seconds": round(republish_seconds, 3),
        "full_pull_bytes": full.bytes_fetched,
        "full_pull_blobs": full.blobs_fetched,
        "full_pull_seconds": round(full_seconds, 3),
        "delta_pull_bytes": delta.bytes_fetched,
        "delta_pull_blobs": delta.blobs_fetched,
        "delta_pull_seconds": round(delta_seconds, 3),
        "delta_bytes_ratio": round(ratio, 5),
        "delta_via_iblt": delta.iblt_fallback == 0,
        "snapshot_id": republish.snapshot_id,
    }


def test_snapshot_sync_benchmark():
    workdir = Path(tempfile.mkdtemp(prefix="bench_pr8_"))
    try:
        stats = _bench(workdir)
    finally:
        shutil.rmtree(workdir, ignore_errors=True)

    payload = {
        "benchmark": "bench_snapshot_sync",
        "smoke": SMOKE,
        "snapshot_sync": stats,
    }
    _OUTPUT_PATH.write_text(json.dumps(payload, indent=2) + "\n", encoding="utf-8")

    lines = [
        f"workload:    {NUM_TABLES} tables x {stats['table_rows']} rows, "
        f"{DELTA_TABLES}-table delta (smoke={SMOKE})",
        f"full pull:   {stats['full_pull_bytes']:>12,} bytes "
        f"({stats['full_pull_blobs']} blobs) in {stats['full_pull_seconds']:6.2f} s",
        f"delta pull:  {stats['delta_pull_bytes']:>12,} bytes "
        f"({stats['delta_pull_blobs']} blobs) in {stats['delta_pull_seconds']:6.2f} s",
        f"byte ratio:  {100 * stats['delta_bytes_ratio']:.2f}% of full "
        f"(bound {100 * MAX_DELTA_BYTES_RATIO:.0f}%), reconciled via "
        + ("IBLT decode" if stats["delta_via_iblt"] else "full diff"),
        "post-pull replica ranking byte-identical to a freshly built store",
        f"written to   {_OUTPUT_PATH.name}",
    ]
    print_report(
        "Snapshot sync — content-addressed full vs delta pull (PR 8)",
        "\n".join(lines),
    )

    assert stats["delta_bytes_ratio"] <= MAX_DELTA_BYTES_RATIO, (
        f"delta pull moved {100 * stats['delta_bytes_ratio']:.2f}% of the "
        f"full-snapshot bytes (bound {100 * MAX_DELTA_BYTES_RATIO:.0f}%)"
    )
