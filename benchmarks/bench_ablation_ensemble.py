"""Ablation — composing matchers (the paper's "one size does not fit all" lesson).

Section IX concludes that composing matching methods (COMA-style) "should be
the preferred way in dataset discovery pipelines".  This ablation compares a
schema-only matcher, an instance-only matcher and their ensemble across the
noisy-schema fabricated pairs of all four scenarios: the ensemble should be
more robust than either member alone (its mean recall is at least close to
the better member and clearly above the weaker one).
"""

from __future__ import annotations

import statistics

from benchmarks.conftest import fabricated_pairs, print_report
from repro.experiments.reports import format_table
from repro.experiments.runner import run_single_experiment
from repro.fabrication import Scenario
from repro.matchers.coma import ComaSchemaMatcher
from repro.matchers.ensemble import EnsembleMatcher
from repro.matchers.jaccard_levenshtein import JaccardLevenshteinMatcher


def _pairs():
    pairs = []
    for scenario in Scenario:
        pairs.extend(fabricated_pairs(scenario.value, sources=("tpcdi",)))
    return pairs


def _evaluate(pairs) -> dict[str, float]:
    schema_only = ComaSchemaMatcher()
    instance_only = JaccardLevenshteinMatcher(threshold=0.8, sample_size=60)
    ensemble = EnsembleMatcher(
        [ComaSchemaMatcher(), JaccardLevenshteinMatcher(threshold=0.8, sample_size=60)]
    )
    means = {}
    for matcher in (schema_only, instance_only, ensemble):
        recalls = [
            run_single_experiment(matcher, pair).recall_at_ground_truth for pair in pairs
        ]
        means[matcher.name] = statistics.fmean(recalls)
    return means


def test_ablation_ensemble_composition(benchmark):
    pairs = _pairs()
    means = benchmark.pedantic(_evaluate, args=(pairs,), rounds=1, iterations=1)
    print_report(
        "Ablation — schema-only vs instance-only vs ensemble (mean recall@GT)",
        format_table(["Matcher", "Mean recall@GT"], [[k, f"{v:.3f}"] for k, v in means.items()]),
    )

    weakest = min(means["ComaSchema"], means["JaccardLevenshtein"])
    strongest = max(means["ComaSchema"], means["JaccardLevenshtein"])
    # The ensemble is clearly better than the weaker member ...
    assert means["Ensemble"] >= weakest
    # ... and competitive with the stronger one.
    assert means["Ensemble"] >= strongest - 0.1
    benchmark.extra_info["mean_recall"] = means
