"""Figure 5 — effectiveness of instance-based methods per relatedness scenario.

Reproduces the Figure 5 boxplots: the Distribution-based matcher, the
Jaccard–Levenshtein baseline and COMA-Instance on fabricated pairs of all
four scenarios, split by noisy vs. verbatim instances.  The paper's findings
asserted here: view-unionable is harder than unionable (no row overlap to
exploit), and semantically-joinable is harder than joinable (instance noise
breaks value equality).
"""

from __future__ import annotations

import statistics

from benchmarks.conftest import fabricated_pairs, fast_grids, print_report
from repro.experiments.reports import render_boxplot_figure
from repro.experiments.results import ResultSet
from repro.experiments.runner import ExperimentRunner
from repro.fabrication import Scenario

METHODS = ("DistributionBased", "JaccardLevenshtein", "ComaInstance")


def _pairs():
    pairs = []
    for scenario in Scenario:
        pairs.extend(fabricated_pairs(scenario.value, sources=("tpcdi",)))
    return pairs


def _run(pairs) -> ResultSet:
    grids = {name: grid for name, grid in fast_grids().items() if name in METHODS}
    return ExperimentRunner(grids=grids).run_all(pairs)


def _mean_recall(results: ResultSet, scenario: Scenario) -> float:
    values = results.for_scenario(scenario.value).recall_values()
    return statistics.fmean(values) if values else 0.0


def test_fig5_instance_based_methods(benchmark):
    pairs = _pairs()
    results = benchmark.pedantic(_run, args=(pairs,), rounds=1, iterations=1)
    print_report(
        "Figure 5 — instance-based methods per scenario (recall@GT min/median/max)",
        render_boxplot_figure(results, title="", methods=list(METHODS)),
    )

    unionable = _mean_recall(results, Scenario.UNIONABLE)
    view_unionable = _mean_recall(results, Scenario.VIEW_UNIONABLE)
    joinable = _mean_recall(results, Scenario.JOINABLE)
    semantically_joinable = _mean_recall(results, Scenario.SEMANTICALLY_JOINABLE)

    # Paper: view-unionable is considerably harder than unionable.
    assert view_unionable <= unionable + 0.05
    # Paper: semantically-joinable results are worse than joinable ones.
    assert semantically_joinable <= joinable + 0.05
    # Joinable pairs share verbatim instances, so instance methods do well.
    assert joinable >= 0.5

    benchmark.extra_info["mean_recall_by_scenario"] = {
        "unionable": unionable,
        "view_unionable": view_unionable,
        "joinable": joinable,
        "semantically_joinable": semantically_joinable,
    }
